#include "src/ckpt/recovery.h"

#include <cstdio>

#include "src/image/image_io.h"

namespace now {

std::string frame_file_path(const std::string& dir, const std::string& prefix,
                            int frame) {
  char name[64];
  std::snprintf(name, sizeof(name), "/%s_%04d.tga", prefix.c_str(), frame);
  return dir + name;
}

RecoveryState build_recovery(const std::string& journal_path,
                             const std::string& frames_dir,
                             const std::string& prefix, int width, int height,
                             int frame_count) {
  RecoveryState state;
  const JournalReplay replay = replay_journal(journal_path);
  if (!replay.ok) {
    state.error = replay.error;
    return state;
  }
  if (replay.header.width != width || replay.header.height != height ||
      replay.header.frame_count != frame_count) {
    state.error = "journal was written for a different animation (" +
                  std::to_string(replay.header.width) + "x" +
                  std::to_string(replay.header.height) + ", " +
                  std::to_string(replay.header.frame_count) + " frames)";
    return state;
  }

  state.ok = true;
  state.records_replayed = replay.records;
  state.journal_truncated = replay.truncated_tail;
  state.journal_valid_bytes = replay.valid_bytes;
  state.frames.assign(static_cast<std::size_t>(frame_count), std::nullopt);

  for (int f = 0; f < frame_count; ++f) {
    if (!replay.frame_complete[f]) continue;
    const auto digest_it = replay.frame_digest.find(f);
    Framebuffer fb;
    const bool loaded =
        read_tga(&fb, frame_file_path(frames_dir, prefix, f)) &&
        fb.width() == width && fb.height() == height &&
        digest_it != replay.frame_digest.end() &&
        digest_frame(fb) == digest_it->second;
    if (loaded) {
      state.frames[f] = std::move(fb);
      ++state.frames_restored;
    } else {
      // The journal promised this frame but the disk disagrees (deleted,
      // truncated by a concurrent crash, edited): re-render it.
      ++state.frames_demoted;
    }
  }
  state.frames_to_render = frame_count - state.frames_restored;
  return state;
}

}  // namespace now
