#include "src/ckpt/recovery.h"

#include <cstdio>

#include "src/image/image_io.h"

namespace now {

std::string frame_file_path(const std::string& dir, const std::string& prefix,
                            int frame) {
  char name[64];
  std::snprintf(name, sizeof(name), "/%s_%04d.tga", prefix.c_str(), frame);
  return dir + name;
}

RecoveryState build_recovery(const std::string& journal_path,
                             const std::string& frames_dir,
                             const std::string& prefix, int width, int height,
                             int frame_count, int shard_count) {
  RecoveryState state;
  const JournalReplay replay = replay_journal(journal_path);
  if (!replay.ok) {
    state.error = replay.error;
    return state;
  }
  if (replay.header.width != width || replay.header.height != height ||
      replay.header.frame_count != frame_count) {
    state.error = "journal was written for a different animation (" +
                  std::to_string(replay.header.width) + "x" +
                  std::to_string(replay.header.height) + ", " +
                  std::to_string(replay.header.frame_count) + " frames)";
    return state;
  }
  if (replay.header.shard_count != shard_count) {
    // Ownership ranges — and therefore which segment holds which frame's
    // records — depend on the shard count. Refuse loudly rather than
    // resume into silent corruption.
    state.error = "journal was written with --shards " +
                  std::to_string(replay.header.shard_count) +
                  " but this run requested --shards " +
                  std::to_string(shard_count) +
                  "; resume with the original shard count";
    return state;
  }

  state.ok = true;
  state.shard_count = shard_count;
  state.records_replayed = replay.records;
  state.journal_truncated = replay.truncated_tail;
  state.journal_valid_bytes = replay.valid_bytes;
  state.frames.assign(static_cast<std::size_t>(frame_count), std::nullopt);

  const auto load_completed = [&](const JournalReplay& rep) {
    for (int f = 0; f < frame_count; ++f) {
      if (f >= static_cast<int>(rep.frame_complete.size()) ||
          !rep.frame_complete[f] || state.frames[f].has_value()) {
        continue;
      }
      const auto digest_it = rep.frame_digest.find(f);
      Framebuffer fb;
      const bool loaded =
          read_tga(&fb, frame_file_path(frames_dir, prefix, f)) &&
          fb.width() == width && fb.height() == height &&
          digest_it != rep.frame_digest.end() &&
          digest_frame(fb) == digest_it->second;
      if (loaded) {
        state.frames[f] = std::move(fb);
        ++state.frames_restored;
      } else {
        // The journal promised this frame but the disk disagrees (deleted,
        // truncated by a concurrent crash, edited): re-render it.
        ++state.frames_demoted;
      }
    }
  };

  if (shard_count <= 1) {
    load_completed(replay);
  } else {
    // Sharded run: the scheduler journal carries only checkpoints; each
    // shard's region commits and frame completes live in its own segment.
    // A segment that is missing or has no valid matching header is treated
    // as empty — valid_bytes 0 tells the shard to start a fresh segment and
    // its frames simply re-render.
    state.shard_valid_bytes.assign(static_cast<std::size_t>(shard_count), 0);
    for (int i = 0; i < shard_count; ++i) {
      const JournalReplay seg =
          replay_journal(shard_journal_path(journal_path, i));
      if (!seg.ok || seg.header.width != width ||
          seg.header.height != height ||
          seg.header.frame_count != frame_count ||
          seg.header.shard_count != shard_count ||
          seg.header.shard_index != i) {
        continue;
      }
      state.shard_valid_bytes[i] = seg.valid_bytes;
      state.records_replayed += seg.records;
      state.journal_truncated = state.journal_truncated || seg.truncated_tail;
      load_completed(seg);
    }
  }
  state.frames_to_render = frame_count - state.frames_restored;
  return state;
}

}  // namespace now
