#include "src/ckpt/recovery.h"

#include <cstdio>

#include "src/image/image_io.h"

namespace now {
namespace {

/// Load frame `f` back from disk and verify it against the digest its
/// kFrameComplete record promised. Failure means re-render, never trust.
bool load_verified_frame(Framebuffer* fb, const JournalReplay& rep,
                         const std::string& frames_dir,
                         const std::string& prefix, int f, int width,
                         int height) {
  const auto digest_it = rep.frame_digest.find(f);
  return read_tga(fb, frame_file_path(frames_dir, prefix, f)) &&
         fb->width() == width && fb->height() == height &&
         digest_it != rep.frame_digest.end() &&
         digest_frame(*fb) == digest_it->second;
}

void bucket_commits(std::vector<std::vector<RegionCommitRecord>>* by_frame,
                    const JournalReplay& rep, int frame_count) {
  for (const RegionCommitRecord& rec : rep.commits) {
    if (rec.frame >= 0 && rec.frame < frame_count) {
      (*by_frame)[rec.frame].push_back(rec);
    }
  }
}

}  // namespace

std::string frame_file_path(const std::string& dir, const std::string& prefix,
                            int frame) {
  char name[64];
  std::snprintf(name, sizeof(name), "/%s_%04d.tga", prefix.c_str(), frame);
  return dir + name;
}

RecoveryState build_recovery(const std::string& journal_path,
                             const std::string& frames_dir,
                             const std::string& prefix, int width, int height,
                             int frame_count, int shard_count) {
  RecoveryState state;
  const JournalReplay replay = replay_journal(journal_path);
  if (!replay.ok) {
    state.error = replay.error;
    return state;
  }
  if (replay.header.width != width || replay.header.height != height ||
      replay.header.frame_count != frame_count) {
    state.error = "journal was written for a different animation (" +
                  std::to_string(replay.header.width) + "x" +
                  std::to_string(replay.header.height) + ", " +
                  std::to_string(replay.header.frame_count) + " frames)";
    return state;
  }
  if (replay.header.shard_count != shard_count) {
    // Ownership ranges — and therefore which segment holds which frame's
    // records — depend on the shard count. Refuse loudly rather than
    // resume into silent corruption.
    state.error = "journal was written with --shards " +
                  std::to_string(replay.header.shard_count) +
                  " but this run requested --shards " +
                  std::to_string(shard_count) +
                  "; resume with the original shard count";
    return state;
  }

  state.ok = true;
  state.shard_count = shard_count;
  state.records_replayed = replay.records;
  state.journal_truncated = replay.truncated_tail;
  state.journal_valid_bytes = replay.valid_bytes;
  state.frames.assign(static_cast<std::size_t>(frame_count), std::nullopt);
  state.frame_commits.assign(static_cast<std::size_t>(frame_count), {});
  state.last_checkpoint = replay.last_checkpoint;

  const auto load_completed = [&](const JournalReplay& rep) {
    bucket_commits(&state.frame_commits, rep, frame_count);
    for (int f = 0; f < frame_count; ++f) {
      if (f >= static_cast<int>(rep.frame_complete.size()) ||
          !rep.frame_complete[f] || state.frames[f].has_value()) {
        continue;
      }
      Framebuffer fb;
      if (load_verified_frame(&fb, rep, frames_dir, prefix, f, width,
                              height)) {
        state.frames[f] = std::move(fb);
        ++state.frames_restored;
      } else {
        // The journal promised this frame but the disk disagrees (deleted,
        // truncated by a concurrent crash, edited): re-render it.
        ++state.frames_demoted;
      }
    }
  };

  if (shard_count <= 1) {
    load_completed(replay);
  } else {
    // Sharded run: the scheduler journal carries only checkpoints; each
    // shard's region commits and frame completes live in its own segment.
    // A segment that is missing or has no valid matching header is treated
    // as empty — valid_bytes 0 tells the shard to start a fresh segment and
    // its frames simply re-render.
    state.shard_valid_bytes.assign(static_cast<std::size_t>(shard_count), 0);
    for (int i = 0; i < shard_count; ++i) {
      const JournalReplay seg =
          replay_journal(shard_journal_path(journal_path, i));
      if (!seg.ok || seg.header.width != width ||
          seg.header.height != height ||
          seg.header.frame_count != frame_count ||
          seg.header.shard_count != shard_count ||
          seg.header.shard_index != i) {
        continue;
      }
      state.shard_valid_bytes[i] = seg.valid_bytes;
      state.records_replayed += seg.records;
      state.journal_truncated = state.journal_truncated || seg.truncated_tail;
      load_completed(seg);
    }
  }
  state.frames_to_render = frame_count - state.frames_restored;
  return state;
}

ShardRebuild rebuild_shard_segment(const std::string& segment_path,
                                   const std::string& frames_dir,
                                   const std::string& prefix, int width,
                                   int height, int frame_count,
                                   int shard_count, int shard_index) {
  ShardRebuild out;
  out.frames.assign(static_cast<std::size_t>(frame_count), std::nullopt);
  out.frame_commits.assign(static_cast<std::size_t>(frame_count), {});

  const JournalReplay seg = replay_journal(segment_path);
  if (!seg.ok) {
    // No segment (or no valid header): the shard restarts from nothing —
    // safe, everything it owned re-renders.
    out.ok = true;
    return out;
  }
  if (seg.header.width != width || seg.header.height != height ||
      seg.header.frame_count != frame_count ||
      seg.header.shard_count != shard_count ||
      (shard_count > 1 && seg.header.shard_index != shard_index)) {
    out.error = "journal segment belongs to a different run";
    return out;
  }
  out.ok = true;
  out.valid_bytes = seg.valid_bytes;
  bucket_commits(&out.frame_commits, seg, frame_count);
  for (int f = 0; f < frame_count; ++f) {
    if (f >= static_cast<int>(seg.frame_complete.size()) ||
        !seg.frame_complete[f]) {
      continue;
    }
    Framebuffer fb;
    if (load_verified_frame(&fb, seg, frames_dir, prefix, f, width, height)) {
      out.frames[f] = std::move(fb);
      ++out.frames_restored;
    } else {
      ++out.frames_demoted;
    }
  }
  return out;
}

}  // namespace now
