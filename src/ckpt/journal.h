// Crash-consistent render journal: the master's durable record of progress.
//
// The journal is an append-only file of CRC-framed records. The master
// appends one kRegionCommit per accepted region-frame result (task id,
// region, frame, pixel digest), one kFrameComplete after a frame's targa
// file has been atomically renamed into place (write-ahead: the pixels are
// durable before the record that declares them durable), and periodic
// kCheckpoint records compacting the scheduler state (completed-frame
// bitmap, pending task queue, per-worker task views).
//
// Every append is fsync'd by default, so after a crash the file is a valid
// prefix of records plus at most one torn tail. replay_journal() stops at
// the first record whose frame or CRC is invalid and reports the length of
// the valid prefix; a writer resuming an interrupted run truncates the file
// back to that prefix before appending, so a journal never accumulates
// garbage between valid records.
//
// Record framing (all integers little-endian via WireWriter):
//   [u32 magic 'NWJL'][u8 type][u32 payload_len][payload]
//   [u32 crc32(type ++ payload_len ++ payload)]
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/image/framebuffer.h"

namespace now {

enum class JournalRecordType : std::uint8_t {
  kHeader = 1,         // run identity: journal version + animation dimensions
  kRegionCommit = 2,   // one accepted region-frame result
  kFrameComplete = 3,  // frame fully assembled and durable on disk
  kCheckpoint = 4,     // compacted scheduler state
};

struct JournalHeader {
  std::uint32_t version = 2;
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::int32_t frame_count = 0;
  /// v2: sharded-journal identity. A sharded run (--shards N) writes one
  /// scheduler journal (shard_index -1, checkpoints only) plus one segment
  /// per shard (region commits + frame completes for its owned range); a
  /// single-master run writes exactly the v1 layout with count 1 / index 0.
  /// Version-1 journals decode with the defaults below, so pre-shard runs
  /// stay resumable.
  std::int32_t shard_count = 1;
  std::int32_t shard_index = 0;
};

/// Journal-segment path of shard `shard` for a run journaling at `base` —
/// the single naming scheme shared by the writer and the resume loader.
std::string shard_journal_path(const std::string& base, int shard);

struct RegionCommitRecord {
  std::int32_t task_id = -1;
  PixelRect rect;
  std::int32_t frame = 0;
  std::uint32_t digest = 0;  // crc32 of the region's committed RGB bytes
};

struct FrameCompleteRecord {
  std::int32_t frame = 0;
  std::uint32_t digest = 0;  // crc32 of the full frame's RGB bytes
};

/// Compacted scheduler state. Tasks are described structurally (no
/// dependency on the wire protocol): a pixel region × a frame range.
struct CheckpointRecord {
  struct Task {
    std::int32_t task_id = -1;
    PixelRect rect;
    std::int32_t first_frame = 0;
    std::int32_t frame_count = 0;
  };
  /// In-flight view: what the master believes a worker is rendering.
  struct WorkerView {
    std::int32_t worker = -1;
    std::int32_t task_id = -1;
    PixelRect rect;
    std::int32_t next_expected = 0;
    std::int32_t end_frame = 0;
  };
  /// Per-worker straggler statistics (EWMA render time, deviation band,
  /// sample count, flagged level) so a restarted scheduler ranks
  /// speculation victims with the dead run's knowledge instead of cold.
  struct StragglerStat {
    std::int32_t worker = -1;
    double ewma = 0.0;
    double dev = 0.0;
    std::int32_t n = 0;
    bool flagged = false;
  };

  std::vector<bool> completed;  // one bit per frame
  std::vector<Task> pending;
  std::vector<WorkerView> in_flight;

  // -- v2 trailer (scheduler checkpoint/restart). Absent in records written
  // before scheduler restart existed; decode leaves the defaults, which a
  // restoring scheduler treats as "no extra state".
  std::int32_t next_task_id = -1;
  std::vector<StragglerStat> stragglers;
};

/// CRC-32 of a framebuffer region's RGB bytes in row-major order — the
/// digest stored in commit records and verified on resume.
std::uint32_t digest_rect(const Framebuffer& fb, const PixelRect& rect);
inline std::uint32_t digest_frame(const Framebuffer& fb) {
  return digest_rect(fb, fb.full_rect());
}

struct JournalOptions {
  /// fsync after every append. Crash consistency requires it; tests that
  /// only exercise replay logic may disable it for speed.
  bool fsync = true;
};

/// Appends records to a journal file. Not thread-safe (the master is the
/// only writer and runs one handler at a time on every backend).
class JournalWriter {
 public:
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Start a fresh journal: truncate `path` and write the header record.
  /// Returns null on I/O failure.
  static std::unique_ptr<JournalWriter> create(const std::string& path,
                                               const JournalHeader& header,
                                               const JournalOptions& options);

  /// Continue an interrupted journal: truncate `path` back to `valid_bytes`
  /// (the replay's valid prefix, discarding any torn tail) and append from
  /// there. Returns null on I/O failure.
  static std::unique_ptr<JournalWriter> resume(const std::string& path,
                                               std::size_t valid_bytes,
                                               const JournalOptions& options);

  void region_commit(const RegionCommitRecord& rec);
  void frame_complete(const FrameCompleteRecord& rec);
  void checkpoint(const CheckpointRecord& rec);

  /// False after any failed write; the master keeps rendering (the journal
  /// degrades to best-effort) and the failure surfaces in ckpt.* metrics.
  bool good() const { return good_; }

  std::int64_t records_appended() const { return records_; }
  std::int64_t bytes_appended() const { return bytes_; }
  std::int64_t checkpoints_written() const { return checkpoints_; }
  std::int64_t commits_since_checkpoint() const {
    return commits_since_checkpoint_;
  }

 private:
  JournalWriter(int fd, JournalOptions options)
      : fd_(fd), options_(options) {}

  void append(JournalRecordType type, const std::string& payload);

  int fd_ = -1;
  JournalOptions options_;
  bool good_ = true;
  std::int64_t records_ = 0;
  std::int64_t bytes_ = 0;
  std::int64_t checkpoints_ = 0;
  std::int64_t commits_since_checkpoint_ = 0;
};

/// Everything replay_journal() recovers from a journal file.
struct JournalReplay {
  /// Header record present and well-formed. When false, `error` says why
  /// and nothing else is meaningful.
  bool ok = false;
  std::string error;

  JournalHeader header;
  /// Folded completion state: checkpoint bitmaps ∪ kFrameComplete records.
  std::vector<bool> frame_complete;
  /// Digest per completed frame (from its kFrameComplete record).
  std::map<std::int32_t, std::uint32_t> frame_digest;
  /// All region commits, in append order.
  std::vector<RegionCommitRecord> commits;
  std::optional<CheckpointRecord> last_checkpoint;

  std::int64_t records = 0;  // valid records consumed (header included)
  /// Byte length of the valid record prefix; a resuming writer truncates
  /// the file to this length before appending.
  std::size_t valid_bytes = 0;
  /// File ended with a torn or corrupt record (the crash tail); everything
  /// after valid_bytes was ignored.
  bool truncated_tail = false;
  /// File offset just past each valid record, in order — lets tests slice
  /// the journal at every record boundary.
  std::vector<std::size_t> record_offsets;
};

/// Read and fold a journal file. Never throws: a missing file or corrupt
/// header comes back with ok == false.
JournalReplay replay_journal(const std::string& path);

}  // namespace now
