#include "src/ckpt/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/net/crc32.h"
#include "src/net/message.h"

namespace now {
namespace {

constexpr std::uint32_t kJournalMagic = 0x4C4A574Eu;  // "NWJL" little-endian
constexpr std::size_t kFrameOverhead = 4 + 1 + 4 + 4;  // magic+type+len+crc

void put_rect(WireWriter* w, const PixelRect& rect) {
  w->i32(rect.x0);
  w->i32(rect.y0);
  w->i32(rect.width);
  w->i32(rect.height);
}

bool get_rect(WireReader* r, PixelRect* rect) {
  return r->i32(&rect->x0) && r->i32(&rect->y0) && r->i32(&rect->width) &&
         r->i32(&rect->height);
}

std::string encode_header(const JournalHeader& h) {
  WireWriter w;
  w.u32(h.version);
  w.i32(h.width);
  w.i32(h.height);
  w.i32(h.frame_count);
  if (h.version >= 2) {
    w.i32(h.shard_count);
    w.i32(h.shard_index);
  }
  return w.take();
}

bool decode_header(JournalHeader* h, const std::string& payload) {
  WireReader r(payload);
  if (!(r.u32(&h->version) && r.i32(&h->width) && r.i32(&h->height) &&
        r.i32(&h->frame_count))) {
    return false;
  }
  if (h->version == 1) {
    // Pre-shard journal: single master, single implicit segment.
    h->shard_count = 1;
    h->shard_index = 0;
    return r.done();
  }
  if (h->version != 2) return false;
  return r.i32(&h->shard_count) && r.i32(&h->shard_index) && r.done();
}

std::string encode_region_commit(const RegionCommitRecord& rec) {
  WireWriter w;
  w.i32(rec.task_id);
  put_rect(&w, rec.rect);
  w.i32(rec.frame);
  w.u32(rec.digest);
  return w.take();
}

bool decode_region_commit(RegionCommitRecord* rec, const std::string& payload) {
  WireReader r(payload);
  return r.i32(&rec->task_id) && get_rect(&r, &rec->rect) &&
         r.i32(&rec->frame) && r.u32(&rec->digest) && r.done();
}

std::string encode_frame_complete(const FrameCompleteRecord& rec) {
  WireWriter w;
  w.i32(rec.frame);
  w.u32(rec.digest);
  return w.take();
}

bool decode_frame_complete(FrameCompleteRecord* rec,
                           const std::string& payload) {
  WireReader r(payload);
  return r.i32(&rec->frame) && r.u32(&rec->digest) && r.done();
}

std::string encode_checkpoint(const CheckpointRecord& rec) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(rec.completed.size()));
  // Completed bitmap, packed 8 frames per byte.
  std::uint8_t byte = 0;
  for (std::size_t f = 0; f < rec.completed.size(); ++f) {
    if (rec.completed[f]) byte |= static_cast<std::uint8_t>(1u << (f % 8));
    if (f % 8 == 7 || f + 1 == rec.completed.size()) {
      w.u8(byte);
      byte = 0;
    }
  }
  w.u32(static_cast<std::uint32_t>(rec.pending.size()));
  for (const CheckpointRecord::Task& t : rec.pending) {
    w.i32(t.task_id);
    put_rect(&w, t.rect);
    w.i32(t.first_frame);
    w.i32(t.frame_count);
  }
  w.u32(static_cast<std::uint32_t>(rec.in_flight.size()));
  for (const CheckpointRecord::WorkerView& v : rec.in_flight) {
    w.i32(v.worker);
    w.i32(v.task_id);
    put_rect(&w, v.rect);
    w.i32(v.next_expected);
    w.i32(v.end_frame);
  }
  // v2 trailer: scheduler-restart state. Old readers never existed for this
  // format (decode tolerates its absence instead).
  w.i32(rec.next_task_id);
  w.u32(static_cast<std::uint32_t>(rec.stragglers.size()));
  for (const CheckpointRecord::StragglerStat& s : rec.stragglers) {
    w.i32(s.worker);
    w.f64(s.ewma);
    w.f64(s.dev);
    w.i32(s.n);
    w.u8(s.flagged ? 1 : 0);
  }
  return w.take();
}

bool decode_checkpoint(CheckpointRecord* rec, const std::string& payload) {
  WireReader r(payload);
  std::uint32_t frames = 0;
  if (!r.u32(&frames) || frames > (1u << 24)) return false;
  rec->completed.assign(frames, false);
  std::uint8_t byte = 0;
  for (std::uint32_t f = 0; f < frames; ++f) {
    if (f % 8 == 0 && !r.u8(&byte)) return false;
    rec->completed[f] = (byte >> (f % 8)) & 1u;
  }
  std::uint32_t pending = 0;
  if (!r.u32(&pending) || pending > (1u << 24)) return false;
  rec->pending.assign(pending, {});
  for (CheckpointRecord::Task& t : rec->pending) {
    if (!(r.i32(&t.task_id) && get_rect(&r, &t.rect) && r.i32(&t.first_frame) &&
          r.i32(&t.frame_count))) {
      return false;
    }
  }
  std::uint32_t views = 0;
  if (!r.u32(&views) || views > (1u << 24)) return false;
  rec->in_flight.assign(views, {});
  for (CheckpointRecord::WorkerView& v : rec->in_flight) {
    if (!(r.i32(&v.worker) && r.i32(&v.task_id) && get_rect(&r, &v.rect) &&
          r.i32(&v.next_expected) && r.i32(&v.end_frame))) {
      return false;
    }
  }
  if (r.done()) return true;  // pre-restart checkpoint: no trailer
  std::uint32_t stragglers = 0;
  if (!r.i32(&rec->next_task_id) || !r.u32(&stragglers) ||
      stragglers > (1u << 20)) {
    return false;
  }
  rec->stragglers.assign(stragglers, {});
  for (CheckpointRecord::StragglerStat& s : rec->stragglers) {
    std::uint8_t flagged = 0;
    if (!(r.i32(&s.worker) && r.f64(&s.ewma) && r.f64(&s.dev) && r.i32(&s.n) &&
          r.u8(&flagged))) {
      return false;
    }
    s.flagged = flagged != 0;
  }
  return r.done();
}

std::string frame_record(JournalRecordType type, const std::string& payload) {
  WireWriter w;
  w.u32(kJournalMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  std::string out = w.take();
  out += payload;
  // CRC covers type + length + payload (the magic is a fixed sentinel).
  const std::uint32_t crc = crc32(out.data() + 4, out.size() - 4);
  WireWriter tail;
  tail.u32(crc);
  out += tail.take();
  return out;
}

}  // namespace

std::string shard_journal_path(const std::string& base, int shard) {
  return base + ".shard" + std::to_string(shard);
}

std::uint32_t digest_rect(const Framebuffer& fb, const PixelRect& rect) {
  std::uint32_t crc = 0;
  std::vector<std::uint8_t> row(static_cast<std::size_t>(rect.width) * 3);
  for (int y = rect.y0; y < rect.y0 + rect.height; ++y) {
    std::size_t i = 0;
    for (int x = rect.x0; x < rect.x0 + rect.width; ++x) {
      const Rgb8 p = fb.at(x, y);
      row[i++] = p.r;
      row[i++] = p.g;
      row[i++] = p.b;
    }
    crc = crc32(row.data(), row.size(), crc);
  }
  return crc;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<JournalWriter> JournalWriter::create(
    const std::string& path, const JournalHeader& header,
    const JournalOptions& options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  std::unique_ptr<JournalWriter> w(new JournalWriter(fd, options));
  w->append(JournalRecordType::kHeader, encode_header(header));
  if (!w->good()) return nullptr;
  return w;
}

std::unique_ptr<JournalWriter> JournalWriter::resume(
    const std::string& path, std::size_t valid_bytes,
    const JournalOptions& options) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) return nullptr;
  // Discard the crash's torn tail so the file stays a clean record sequence.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(fd, options));
}

void JournalWriter::append(JournalRecordType type, const std::string& payload) {
  if (!good_) return;
  const std::string rec = frame_record(type, payload);
  const char* p = rec.data();
  std::size_t left = rec.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      good_ = false;
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (options_.fsync && ::fsync(fd_) != 0) good_ = false;
  ++records_;
  bytes_ += static_cast<std::int64_t>(rec.size());
}

void JournalWriter::region_commit(const RegionCommitRecord& rec) {
  append(JournalRecordType::kRegionCommit, encode_region_commit(rec));
  ++commits_since_checkpoint_;
}

void JournalWriter::frame_complete(const FrameCompleteRecord& rec) {
  append(JournalRecordType::kFrameComplete, encode_frame_complete(rec));
}

void JournalWriter::checkpoint(const CheckpointRecord& rec) {
  append(JournalRecordType::kCheckpoint, encode_checkpoint(rec));
  ++checkpoints_;
  commits_since_checkpoint_ = 0;
}

JournalReplay replay_journal(const std::string& path) {
  JournalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.error = "cannot open journal: " + path;
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();

  std::size_t pos = 0;
  bool first = true;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameOverhead) {
      out.truncated_tail = true;
      break;
    }
    const std::string head_bytes = bytes.substr(pos, 9);
    WireReader head(head_bytes);
    std::uint32_t magic = 0;
    std::uint8_t type = 0;
    std::uint32_t len = 0;
    head.u32(&magic);
    head.u8(&type);
    head.u32(&len);
    if (magic != kJournalMagic || bytes.size() - pos < kFrameOverhead + len) {
      out.truncated_tail = true;
      break;
    }
    const std::uint32_t want_crc = crc32(bytes.data() + pos + 4, 5 + len);
    const std::string crc_bytes = bytes.substr(pos + 9 + len, 4);
    WireReader tail(crc_bytes);
    std::uint32_t got_crc = 0;
    tail.u32(&got_crc);
    if (want_crc != got_crc) {
      out.truncated_tail = true;
      break;
    }
    const std::string payload = bytes.substr(pos + 9, len);

    bool valid = true;
    switch (static_cast<JournalRecordType>(type)) {
      case JournalRecordType::kHeader: {
        JournalHeader h;
        valid = decode_header(&h, payload);
        if (valid && first) {
          out.header = h;
          out.frame_complete.assign(
              static_cast<std::size_t>(std::max(h.frame_count, 0)), false);
          out.ok = true;
        }
        break;
      }
      case JournalRecordType::kRegionCommit: {
        RegionCommitRecord rec;
        valid = decode_region_commit(&rec, payload);
        if (valid) out.commits.push_back(rec);
        break;
      }
      case JournalRecordType::kFrameComplete: {
        FrameCompleteRecord rec;
        valid = decode_frame_complete(&rec, payload);
        if (valid && rec.frame >= 0 &&
            rec.frame < static_cast<std::int32_t>(out.frame_complete.size())) {
          out.frame_complete[rec.frame] = true;
          out.frame_digest[rec.frame] = rec.digest;
        }
        break;
      }
      case JournalRecordType::kCheckpoint: {
        CheckpointRecord rec;
        valid = decode_checkpoint(&rec, payload);
        if (valid) {
          for (std::size_t f = 0;
               f < rec.completed.size() && f < out.frame_complete.size(); ++f) {
            if (rec.completed[f]) out.frame_complete[f] = true;
          }
          out.last_checkpoint = std::move(rec);
        }
        break;
      }
      default:
        valid = false;
        break;
    }
    if (!valid || (first && static_cast<JournalRecordType>(type) !=
                                JournalRecordType::kHeader)) {
      out.truncated_tail = true;
      break;
    }
    first = false;
    pos += kFrameOverhead + len;
    ++out.records;
    out.valid_bytes = pos;
    out.record_offsets.push_back(pos);
  }
  if (!out.ok && out.error.empty()) {
    out.error = "journal has no valid header record";
  }
  return out;
}

}  // namespace now
