// Resume support: fold a replayed journal and the output frame directory
// into the state render_farm() needs to skip completed work.
//
// The durable pixel state of a run is the set of atomically-renamed frame
// targa files; the journal's kFrameComplete records say which frames those
// are and what their pixel digests were. build_recovery() loads each
// completed frame back, verifies its digest, and marks everything else —
// frames whose file is missing, truncated, or altered, and frames whose
// region commits were lost with the master's memory — for re-rendering.
// Re-rendering is byte-identical to the interrupted run's output by the
// coherence algorithm's core guarantee, so a resumed animation is
// indistinguishable from an uninterrupted one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/ckpt/journal.h"
#include "src/image/framebuffer.h"

namespace now {

struct RecoveryState {
  /// Usable for resume. When false, `error` explains (missing journal, no
  /// valid header, dimension mismatch with the scene).
  bool ok = false;
  std::string error;

  /// Restored image per completed-and-verified frame; nullopt = re-render.
  std::vector<std::optional<Framebuffer>> frames;
  int frames_restored = 0;
  int frames_to_render = 0;
  /// Completed per the journal but failed to load or verify from disk —
  /// demoted to re-render.
  int frames_demoted = 0;

  std::int64_t records_replayed = 0;
  bool journal_truncated = false;
  /// Valid journal prefix length; the resuming writer truncates to this.
  std::size_t journal_valid_bytes = 0;

  /// Sharded run (--shards N > 1): shard count the journal was written
  /// with, and the valid prefix length of each shard's journal segment. A
  /// zero entry means the segment was missing or had no valid header — its
  /// shard starts a fresh segment and its frames re-render.
  int shard_count = 1;
  std::vector<std::size_t> shard_valid_bytes;

  /// Last kCheckpoint in the scheduler journal's valid prefix (the compacted
  /// task table + straggler stats), if any — a restarting scheduler resumes
  /// its task structure from here instead of re-partitioning from scratch.
  std::optional<CheckpointRecord> last_checkpoint;
  /// Region commits folded from every valid journal prefix, bucketed by
  /// frame. Two consumers: a restarting scheduler re-covers committed-but-
  /// lost cells of incomplete frames (their pixels died with the process),
  /// and a rebuilt shard re-arms its idempotent commit gate for completed
  /// frames so late duplicates cannot double-apply.
  std::vector<std::vector<RegionCommitRecord>> frame_commits;
};

/// Name of frame `frame`'s targa file under `dir` with `prefix` — the single
/// naming scheme shared by the master's writer and the resume loader.
std::string frame_file_path(const std::string& dir, const std::string& prefix,
                            int frame);

/// Replay `journal_path` and load completed frames from `frames_dir`.
/// `width`/`height`/`frame_count` are the scene's, cross-checked against the
/// journal header so a journal from a different animation is rejected.
///
/// `shard_count` is the run's --shards value and must equal the journal
/// header's (a sharded journal cannot be resumed with a different shard
/// count — ownership ranges, and therefore segment contents, would no
/// longer line up; the mismatch is a hard error, never silent corruption).
/// With shard_count > 1 the scheduler journal at `journal_path` carries
/// only checkpoints; completed frames are folded from the per-shard
/// segments at shard_journal_path(journal_path, i).
RecoveryState build_recovery(const std::string& journal_path,
                             const std::string& frames_dir,
                             const std::string& prefix, int width, int height,
                             int frame_count, int shard_count = 1);

/// What a replacement shard rebuilds from its own journal segment: the
/// durable (digest-verified) frames it had completed, the commit records to
/// re-arm its duplicate gate with, and the segment prefix to truncate to
/// before appending. Used by in-process shard failover (kTagRejoin) — the
/// same fold build_recovery() does at process start, scoped to one segment.
struct ShardRebuild {
  bool ok = false;
  std::string error;
  /// Indexed by GLOBAL frame number; only the shard's owned completed
  /// frames are populated.
  std::vector<std::optional<Framebuffer>> frames;
  std::vector<std::vector<RegionCommitRecord>> frame_commits;
  int frames_restored = 0;
  int frames_demoted = 0;
  std::size_t valid_bytes = 0;
};

/// Replay the journal segment at `segment_path` (the shard's own file, as
/// named by shard_journal_path(); a single-master run passes its journal
/// directly) and reload its completed frames from `frames_dir`. A missing or
/// headerless segment comes back ok with zero valid bytes: the shard
/// restarts empty and its frames re-render, which is always safe.
ShardRebuild rebuild_shard_segment(const std::string& segment_path,
                                   const std::string& frames_dir,
                                   const std::string& prefix, int width,
                                   int height, int frame_count,
                                   int shard_count, int shard_index);

}  // namespace now
