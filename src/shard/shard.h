// FrameShard: one framebuffer/IO shard of the sharded master (rank
// worker_count+1+shard_index). It owns a contiguous frame range of the
// animation: workers send their (delta-coded) frame results straight here,
// the shard decodes them against its own committed predecessor state,
// verifies the idempotent-commit gate, journals each commit to its own
// crash-consistent segment, writes its own TGAs, and answers every result
// with a CommitDigest to the scheduler (rank 0).
//
// Frame assembly is the single-master algorithm verbatim, restricted to the
// owned range, so a sharded run's frames are byte-identical to the
// single-master run's. The one structural difference is chain validation:
// the shard sees only a slice of each worker's result stream, so it tracks
// a per-task chain (first result must be dense; sparse results must arrive
// in frame order with an owned predecessor) and rejects anything that would
// decode against pixels it does not have — the scheduler turns a reject
// digest into the same cancel-and-reclaim a single master performs on a
// stream gap.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/ckpt/recovery.h"
#include "src/image/framebuffer.h"
#include "src/net/runtime.h"
#include "src/obs/event_trace.h"
#include "src/obs/metrics.h"
#include "src/par/cost_model.h"
#include "src/shard/digest.h"
#include "src/shard/frame_sink.h"
#include "src/shard/ownership.h"

namespace now {

struct ShardConfig {
  ShardMap map;
  int shard_index = 0;
  int width = 0;
  int height = 0;
  CostModel cost;
  /// Per-frame targa output for owned frames ("" disables).
  std::string output_dir;
  std::string output_prefix = "frame";
  /// This shard's journal segment ("" disables journaling).
  std::string journal_path;
  bool journal_fsync = true;
  /// Replayed state from a previous run (null = fresh start): restored
  /// frames in the owned range are loaded, and the segment is appended to
  /// from its valid prefix.
  const RecoveryState* recovery = nullptr;
  EventTracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

struct ShardReport {
  std::int64_t frame_results = 0;     // decoded results received
  std::int64_t frames_committed = 0;  // fresh region-frame commits
  std::int64_t frames_completed = 0;  // owned frames fully assembled
  std::int64_t frames_restored = 0;   // owned frames loaded on resume
  std::int64_t duplicates = 0;        // commit-gate hits (chain advanced)
  std::int64_t stale_results = 0;     // redeliveries behind the chain
  std::int64_t chain_rejects = 0;     // results that broke their chain
  std::int64_t decode_failures = 0;   // envelopes that failed to decode
  std::int64_t frame_bytes = 0;       // wire payload bytes received
  std::int64_t journal_records = 0;
  std::int64_t journal_bytes = 0;
  bool journal_ok = true;
  /// Failover rebuilds: the shard rank died (or was fenced by the
  /// scheduler), replayed its journal segment, and re-announced itself.
  std::int64_t rebuilds = 0;
};

class FrameShard final : public Actor {
 public:
  explicit FrameShard(const ShardConfig& config);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& msg) override;

  /// Owned frames, indexed by global frame number minus first_frame().
  /// Valid after the runtime finishes.
  const std::vector<Framebuffer>& frames() const { return frames_; }
  int first_frame() const { return first_; }
  int owned_frames() const { return static_cast<int>(frames_.size()); }
  const ShardReport& report() const { return report_; }

 private:
  /// Per-task slice of the worker's result chain as seen by this shard.
  struct Chain {
    std::int32_t next = -1;  // next frame a chain-valid result must carry
    bool started = false;    // first (dense) result seen
    bool broken = false;     // rejected once; everything later is rejected
  };

  void handle_frame_result(Context& ctx, const Message& msg);
  /// Failover restart (kTagRejoin from the runtime, or kTagShardReset from
  /// a scheduler that declared this incarnation dead): forget all in-memory
  /// state, rebuild committed frames + the idempotent gate from the journal
  /// segment, reopen the sink on the segment's valid prefix, and re-Hello
  /// the scheduler.
  void handle_rebuild(Context& ctx);
  void send_digest(Context& ctx, const CommitDigest& d);
  /// (Re)open the FrameSink on the journal segment: `resume` appends after
  /// `valid_bytes` (0 starts a fresh segment), false truncates and starts
  /// over. Shared by the constructor and failover rebuild.
  void open_sink(bool resume, std::size_t valid_bytes);
  void sync_journal_stats();

  ShardConfig config_;
  int first_ = 0;
  int end_ = 0;
  std::vector<Framebuffer> frames_;
  std::vector<std::int64_t> area_missing_;
  /// Authoritative idempotent-commit gate for owned frames (the scheduler
  /// keeps a digest-fed mirror for scheduling decisions only).
  std::vector<std::set<std::uint64_t>> committed_rects_;
  std::map<std::int32_t, Chain> chains_;
  std::unique_ptr<FrameSink> sink_;

  // Per-endpoint instruments (null when metrics are off).
  Counter* decode_failures_ = nullptr;     // global net.frame_decode_failures
  Counter* ep_decode_failures_ = nullptr;  // endpoint.<rank>.frame_decode_...
  Counter* ep_frame_bytes_ = nullptr;      // endpoint.<rank>.frame_bytes

  ShardReport report_;
};

}  // namespace now
