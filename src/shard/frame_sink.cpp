#include "src/shard/frame_sink.h"

#include "src/ckpt/recovery.h"
#include "src/image/image_io.h"

namespace now {

FrameSink::FrameSink(const FrameSinkConfig& config) : config_(config) {
  if (!config_.journal_path.empty()) {
    JournalOptions jopts;
    jopts.fsync = config_.journal_fsync;
    if (config_.resume && config_.resume_valid_bytes > 0) {
      journal_ = JournalWriter::resume(config_.journal_path,
                                       config_.resume_valid_bytes, jopts);
    } else {
      journal_ =
          JournalWriter::create(config_.journal_path, config_.header, jopts);
    }
  }
  if (config_.metrics != nullptr) {
    const std::string prefix =
        "endpoint." + std::to_string(config_.endpoint_rank) + ".";
    frames_committed_ =
        &config_.metrics->counter(prefix + "frames_committed");
    frames_completed_ =
        &config_.metrics->counter(prefix + "frames_completed");
  }
}

void FrameSink::commit_region(std::int32_t task_id, const PixelRect& rect,
                              std::int32_t frame, const Framebuffer& fb) {
  if (frames_committed_ != nullptr) frames_committed_->inc();
  if (journal_ == nullptr) return;
  RegionCommitRecord rc;
  rc.task_id = task_id;
  rc.rect = rect;
  rc.frame = frame;
  rc.digest = digest_rect(fb, rect);
  journal_->region_commit(rc);
}

void FrameSink::complete_frame(std::int32_t frame, const Framebuffer& fb) {
  if (frames_completed_ != nullptr) frames_completed_->inc();
  if (!config_.output_dir.empty()) {
    write_tga_atomic(fb, config_.frame_path
                             ? config_.frame_path(frame)
                             : frame_file_path(config_.output_dir,
                                               config_.output_prefix, frame));
  }
  if (journal_ != nullptr) {
    FrameCompleteRecord fc;
    fc.frame = frame;
    fc.digest = digest_frame(fb);
    journal_->frame_complete(fc);
  }
}

void FrameSink::checkpoint(const CheckpointRecord& rec) {
  if (journal_ != nullptr) journal_->checkpoint(rec);
}

}  // namespace now
