// FrameSink: the one owner of durable frame IO — journal appends and
// atomic TGA writes — shared by the single-master path, the thin scheduler
// (checkpoint-only journal), and each framebuffer shard.
//
// Before the shard subsystem this logic lived inline in RenderMaster;
// extracting it keeps the crash-consistency contract in exactly one place:
// a region commit appends a CRC-framed record whose digest runs over the
// *decoded* pixels (journals are codec-invariant), and a frame completion
// renames the TGA into place *before* appending the record that declares it
// durable (write-ahead: a resume never trusts a frame that is not wholly on
// disk).
//
// Each sink also labels its IO by receiving endpoint
// (endpoint.<rank>.frames_committed / frames_completed), so a sharded run's
// per-shard imbalance is visible in --report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/ckpt/journal.h"
#include "src/image/framebuffer.h"
#include "src/obs/metrics.h"

namespace now {

struct FrameSinkConfig {
  /// Directory for per-frame targa output ("" disables file writing).
  std::string output_dir;
  std::string output_prefix = "frame";
  /// Optional naming override: maps a frame index to the full file path of
  /// its targa. The multi-tenant service namespaces output per shot with
  /// this (<prefix>-<tenant>-shot<id>_<local>.tga); unset keeps the classic
  /// frame_file_path(dir, prefix, frame) layout every resume path expects.
  std::function<std::string(std::int32_t)> frame_path;
  /// Journal (segment) path ("" disables journaling).
  std::string journal_path;
  bool journal_fsync = true;
  /// Identity written in the header record of a fresh journal.
  JournalHeader header;
  /// Resume: append to the journal's valid prefix instead of truncating the
  /// file to a fresh header. resume_valid_bytes == 0 means the previous run
  /// left no valid prefix (e.g. a shard segment that never got written) and
  /// the sink creates a fresh journal instead.
  bool resume = false;
  std::size_t resume_valid_bytes = 0;
  /// Sink for endpoint.<rank>.* counters. Null disables.
  MetricsRegistry* metrics = nullptr;
  /// Rank label for per-endpoint accounting.
  int endpoint_rank = 0;
};

class FrameSink {
 public:
  explicit FrameSink(const FrameSinkConfig& config);

  /// Append one accepted region-frame commit; the digest is computed over
  /// the committed pixels of `fb` inside `rect`.
  void commit_region(std::int32_t task_id, const PixelRect& rect,
                     std::int32_t frame, const Framebuffer& fb);

  /// Frame fully assembled: atomically write its TGA (when output is
  /// enabled), then append the frame-complete record — in that order.
  void complete_frame(std::int32_t frame, const Framebuffer& fb);

  void checkpoint(const CheckpointRecord& rec);

  bool journaling() const { return journal_ != nullptr; }
  std::int64_t commits_since_checkpoint() const {
    return journal_ != nullptr ? journal_->commits_since_checkpoint() : 0;
  }

  // Journal statistics for the owning actor's report.
  std::int64_t journal_records() const {
    return journal_ != nullptr ? journal_->records_appended() : 0;
  }
  std::int64_t journal_bytes() const {
    return journal_ != nullptr ? journal_->bytes_appended() : 0;
  }
  std::int64_t journal_checkpoints() const {
    return journal_ != nullptr ? journal_->checkpoints_written() : 0;
  }
  /// False after any journal I/O failure, including a failed open: the
  /// owner keeps rendering (the journal degrades to best-effort) and the
  /// failure surfaces in ckpt.* metrics.
  bool journal_ok() const {
    if (!config_.journal_path.empty() && journal_ == nullptr) return false;
    return journal_ == nullptr || journal_->good();
  }

 private:
  FrameSinkConfig config_;
  std::unique_ptr<JournalWriter> journal_;
  Counter* frames_committed_ = nullptr;  // endpoint.<rank>.frames_committed
  Counter* frames_completed_ = nullptr;  // endpoint.<rank>.frames_completed
};

}  // namespace now
