// CommitDigest: the shard → scheduler wire record (kTagCommitDigest).
//
// In sharded mode the scheduler never sees pixels; a shard answers every
// frame result it receives with one fixed-size digest saying what became of
// it. The scheduler drives all of its existing machinery — progress leases,
// gap detection, speculation bookkeeping, global completion accounting —
// from these digests alone, which is what makes its inbound bytes
// proportional to results, not pixel volume.
#pragma once

#include <cstdint>
#include <string>

#include "src/image/framebuffer.h"

namespace now {

enum class CommitKind : std::uint8_t {
  /// Chain-valid, first commit of this (rect, frame): pixels applied,
  /// journaled, and durable at the shard.
  kFresh = 1,
  /// Chain-valid but the (rect, frame) was already committed (a speculation
  /// partner or reclaim overlap landed first). The sender's chain still
  /// advanced — both copies render identical pixels.
  kDuplicate = 2,
  /// Redelivery of a frame behind the sender's chain (duplicated message).
  kStale = 3,
  /// The result broke its task's sparse chain at this shard (a gap, a
  /// sparse first frame, out-of-range): nothing applied, and nothing from
  /// this task will be until it is reassigned. The scheduler reclaims.
  kChainReject = 4,
  /// The envelope failed to decode (CRC, version, structure); treated as a
  /// lost message. task_id/frame are -1.
  kDecodeFail = 5,
};

struct CommitDigest {
  /// Rank of the worker whose frame result this digest covers (the shard
  /// relays msg.source; the scheduler credits this rank's heartbeat).
  std::int32_t worker = -1;
  std::int32_t task_id = -1;
  std::int32_t frame = -1;
  /// Trace context relayed from the FrameResult, so the scheduler can close
  /// the frame's cross-rank flow chain at digest time (0 on decode failure).
  std::uint64_t trace_ctx = 0;
  PixelRect rect;
  CommitKind kind = CommitKind::kFresh;
  std::uint8_t full_render = 0;
  // Worker-reported accounting, forwarded for the scheduler's farm totals.
  std::uint64_t rays = 0;
  std::uint64_t shadow_rays = 0;
  std::int64_t pixels_recomputed = 0;
  double compute_seconds = 0.0;
  /// Elapsed render time on the worker's own clock (see
  /// FrameResult::render_seconds) — feeds the scheduler's straggler EWMAs.
  double render_seconds = 0.0;
};

std::string encode_commit_digest(const CommitDigest& d);
bool decode_commit_digest(CommitDigest* d, const std::string& payload);

/// Key for the idempotent-commit gate: a region rect packed into 16-bit
/// lanes (image dimensions are far below 65536). Shared by the scheduler's
/// mirror and each shard's authoritative gate.
std::uint64_t rect_key(const PixelRect& r);

/// Inverse of rect_key(). The packing is lossless for rect dimensions below
/// 65536, so the scheduler can recover the rect of every mirror entry it
/// rolls back when a shard dies and turn it back into a render task.
PixelRect rect_from_key(std::uint64_t key);

}  // namespace now
