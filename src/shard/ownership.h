// ShardMap: the static frame-ownership map of the sharded framebuffer.
//
// With --shards N the master splits into a thin scheduler (rank 0) and N
// framebuffer/IO shards (ranks worker_count+1 .. worker_count+N), each
// owning a disjoint contiguous range of frames. Workers commit rendered
// frames directly to the owning shard — pixels never touch the scheduler —
// and the scheduler keeps the lease/reassignment/speculation machinery fed
// by per-commit digests from the shards.
//
// The map is pure arithmetic over (frame_count, shard_count): every rank
// computes the same owner for a frame with no coordination, the same
// balanced-contiguous convention as split_frames() (the first
// frame_count % shard_count shards get one extra frame). shard_count <= 1
// means the single-master topology: owner_rank() is always 0 and nothing
// about the PR-5 farm changes.
#pragma once

#include <utility>

namespace now {

struct ShardMap {
  int shard_count = 1;
  /// Ranks 1..worker_count are workers; shard ranks start after them.
  int worker_count = 0;
  int frame_count = 0;

  /// True when the farm runs the scheduler + shards topology.
  bool sharded() const { return shard_count > 1; }

  /// World size implied by the map: scheduler + workers (+ shards).
  int world_size() const {
    return 1 + worker_count + (sharded() ? shard_count : 0);
  }

  /// Index of the shard owning `frame` (0-based; frame in [0, frame_count)).
  int shard_of(int frame) const;

  /// Owned frame range [first, end) of shard `shard`.
  std::pair<int, int> range_of(int shard) const;

  /// World rank of shard `shard`.
  int rank_of_shard(int shard) const { return 1 + worker_count + shard; }

  /// Destination rank for a frame result: the owning shard, or the master
  /// when the map is unsharded.
  int owner_rank(int frame) const {
    return sharded() ? rank_of_shard(shard_of(frame)) : 0;
  }

  /// True when `frame` starts a new shard's range: its predecessor lives on
  /// a different shard, so a sparse delta against it could not be decoded
  /// by the owner. Workers promote these frames to dense key frames.
  bool key_frame_boundary(int frame) const {
    return sharded() && frame > 0 && shard_of(frame) != shard_of(frame - 1);
  }
};

}  // namespace now
