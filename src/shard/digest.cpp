#include "src/shard/digest.h"

#include "src/net/message.h"

namespace now {

std::uint64_t rect_key(const PixelRect& r) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(r.x0)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(r.y0)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(r.width))
          << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(r.height));
}

PixelRect rect_from_key(std::uint64_t key) {
  PixelRect r;
  r.x0 = static_cast<int>((key >> 48) & 0xffff);
  r.y0 = static_cast<int>((key >> 32) & 0xffff);
  r.width = static_cast<int>((key >> 16) & 0xffff);
  r.height = static_cast<int>(key & 0xffff);
  return r;
}

std::string encode_commit_digest(const CommitDigest& d) {
  WireWriter w;
  w.i32(d.worker);
  w.i32(d.task_id);
  w.i32(d.frame);
  w.u64(d.trace_ctx);
  w.i32(d.rect.x0);
  w.i32(d.rect.y0);
  w.i32(d.rect.width);
  w.i32(d.rect.height);
  w.u8(static_cast<std::uint8_t>(d.kind));
  w.u8(d.full_render);
  w.u64(d.rays);
  w.u64(d.shadow_rays);
  w.i64(d.pixels_recomputed);
  w.f64(d.compute_seconds);
  w.f64(d.render_seconds);
  return w.take();
}

bool decode_commit_digest(CommitDigest* d, const std::string& payload) {
  WireReader r(payload);
  std::uint8_t kind = 0;
  if (!(r.i32(&d->worker) && r.i32(&d->task_id) && r.i32(&d->frame) &&
        r.u64(&d->trace_ctx) && r.i32(&d->rect.x0) && r.i32(&d->rect.y0) &&
        r.i32(&d->rect.width) &&
        r.i32(&d->rect.height) && r.u8(&kind) && r.u8(&d->full_render) &&
        r.u64(&d->rays) && r.u64(&d->shadow_rays) &&
        r.i64(&d->pixels_recomputed) && r.f64(&d->compute_seconds) &&
        r.f64(&d->render_seconds) && r.done())) {
    return false;
  }
  if (kind < static_cast<std::uint8_t>(CommitKind::kFresh) ||
      kind > static_cast<std::uint8_t>(CommitKind::kDecodeFail)) {
    return false;
  }
  d->kind = static_cast<CommitKind>(kind);
  return true;
}

}  // namespace now
