#include "src/shard/ownership.h"

#include <cassert>

namespace now {

int ShardMap::shard_of(int frame) const {
  assert(frame >= 0 && frame < frame_count);
  if (shard_count <= 1) return 0;
  const int base = frame_count / shard_count;
  const int extra = frame_count % shard_count;
  // The first `extra` shards own base+1 frames each.
  const int fat = extra * (base + 1);
  if (frame < fat) return frame / (base + 1);
  return extra + (frame - fat) / base;
}

std::pair<int, int> ShardMap::range_of(int shard) const {
  assert(shard >= 0 && shard < shard_count);
  if (shard_count <= 1) return {0, frame_count};
  const int base = frame_count / shard_count;
  const int extra = frame_count % shard_count;
  const int first = shard * base + (shard < extra ? shard : extra);
  const int len = base + (shard < extra ? 1 : 0);
  return {first, first + len};
}

}  // namespace now
