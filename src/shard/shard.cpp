#include "src/shard/shard.h"

#include <cassert>

#include "src/par/protocol.h"

namespace now {

// Everything — allocation, resume restore, segment open/truncate — happens
// in the constructor, not on_start: a fully-restored resume lets the
// scheduler stop the run during ITS on_start, before any other actor
// starts, and the restored pixels and repaired segment must exist anyway.
FrameShard::FrameShard(const ShardConfig& config) : config_(config) {
  if (config_.tracer != nullptr && !config_.tracer->enabled()) {
    config_.tracer = nullptr;
  }
  const auto range = config_.map.range_of(config_.shard_index);
  first_ = range.first;
  end_ = range.second;

  const int w = config_.width;
  const int h = config_.height;
  const int owned = end_ - first_;
  const int rank = config_.map.rank_of_shard(config_.shard_index);
  frames_.assign(static_cast<std::size_t>(owned), Framebuffer(w, h));
  area_missing_.assign(static_cast<std::size_t>(owned), std::int64_t{w} * h);
  committed_rects_.assign(static_cast<std::size_t>(owned), {});

  if (config_.metrics != nullptr) {
    const std::string prefix = "endpoint." + std::to_string(rank) + ".";
    decode_failures_ =
        &config_.metrics->counter("net.frame_decode_failures");
    ep_decode_failures_ =
        &config_.metrics->counter(prefix + "frame_decode_failures");
    ep_frame_bytes_ = &config_.metrics->counter(prefix + "frame_bytes");
  }

  // Resume: owned frames the previous run completed (segment record +
  // verified targa) are restored wholesale, and their idempotent gates are
  // re-armed from the replayed commit records so a duplicate commit (an
  // overlapping reclaim, a speculation loser from the dead run) can never
  // double-apply into a frame whose area is already zero.
  std::size_t resume_valid_bytes = 0;
  if (config_.recovery != nullptr) {
    const RecoveryState& rec = *config_.recovery;
    for (int f = first_; f < end_; ++f) {
      if (f < static_cast<int>(rec.frames.size()) &&
          rec.frames[f].has_value()) {
        const int local = f - first_;
        frames_[local] = *rec.frames[f];
        area_missing_[local] = 0;
        if (f < static_cast<int>(rec.frame_commits.size())) {
          for (const RegionCommitRecord& c : rec.frame_commits[f]) {
            committed_rects_[local].insert(rect_key(c.rect));
          }
        }
        ++report_.frames_restored;
      }
    }
    if (config_.shard_index < static_cast<int>(rec.shard_valid_bytes.size())) {
      resume_valid_bytes = rec.shard_valid_bytes[config_.shard_index];
    }
  }

  open_sink(config_.recovery != nullptr, resume_valid_bytes);
  sync_journal_stats();
}

void FrameShard::open_sink(bool resume, std::size_t valid_bytes) {
  FrameSinkConfig sink;
  sink.output_dir = config_.output_dir;
  sink.output_prefix = config_.output_prefix;
  sink.journal_path = config_.journal_path;
  sink.journal_fsync = config_.journal_fsync;
  sink.header.width = config_.width;
  sink.header.height = config_.height;
  sink.header.frame_count = config_.map.frame_count;
  sink.header.shard_count = config_.map.shard_count;
  sink.header.shard_index = config_.shard_index;
  sink.resume = resume;
  sink.resume_valid_bytes = valid_bytes;
  sink.metrics = config_.metrics;
  sink.endpoint_rank = config_.map.rank_of_shard(config_.shard_index);
  sink_ = std::make_unique<FrameSink>(sink);
}

void FrameShard::on_start(Context& ctx) {
  if (config_.tracer != nullptr && report_.frames_restored > 0) {
    config_.tracer->instant(ctx.rank(), "shard", "resume.restore", ctx.now(),
                            {{"frames", report_.frames_restored}});
  }
}

void FrameShard::on_message(Context& ctx, const Message& msg) {
  ctx.charge(config_.cost.master_per_message_seconds);
  switch (msg.tag) {
    case kTagFrameResult:
      handle_frame_result(ctx, msg);
      break;
    case kTagPing:
      // Liveness probe from the scheduler's shard lease: any answer renews
      // the lease (the pong itself is the heartbeat).
      ctx.send(0, kTagPong, {});
      break;
    case kTagRejoin:   // runtime revived this rank after a crash
    case kTagShardReset:  // scheduler fenced a falsely-declared incarnation
      handle_rebuild(ctx);
      break;
    case kTagStop:
      // The scheduler broadcasts kTagStop at run end; shards have no
      // shutdown work (the runtime drains them when the scheduler stops).
      break;
    default:
      assert(false && "unexpected message tag at shard");
      break;
  }
}

void FrameShard::handle_rebuild(Context& ctx) {
  // The previous incarnation's memory is gone (or declared gone): rebuild
  // from the journal segment, the only durable truth. Completed frames come
  // back verified from disk with their gates re-armed; partially-committed
  // frames are lost and revert to full area — the scheduler performs the
  // matching rollback on its digest mirror and re-covers those cells.
  const int w = config_.width;
  const int h = config_.height;
  const int owned = end_ - first_;
  frames_.assign(static_cast<std::size_t>(owned), Framebuffer(w, h));
  area_missing_.assign(static_cast<std::size_t>(owned), std::int64_t{w} * h);
  committed_rects_.assign(static_cast<std::size_t>(owned), {});
  chains_.clear();
  sink_.reset();  // release the dead incarnation's journal fd before reopening

  std::size_t valid_bytes = 0;
  int restored = 0;
  if (!config_.journal_path.empty()) {
    const ShardRebuild rb = rebuild_shard_segment(
        config_.journal_path, config_.output_dir, config_.output_prefix, w, h,
        config_.map.frame_count, config_.map.shard_count, config_.shard_index);
    if (rb.ok) {
      valid_bytes = rb.valid_bytes;
      for (int f = first_; f < end_; ++f) {
        if (!rb.frames[f].has_value()) continue;
        const int local = f - first_;
        frames_[local] = *rb.frames[f];
        area_missing_[local] = 0;
        for (const RegionCommitRecord& c : rb.frame_commits[f]) {
          committed_rects_[local].insert(rect_key(c.rect));
        }
        ++restored;
      }
    }
  }
  open_sink(/*resume=*/true, valid_bytes);
  ++report_.rebuilds;
  report_.frames_restored += restored;
  sync_journal_stats();

  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "shard", "shard.rebuild", ctx.now(),
                            {{"frames", restored}});
  }
  // Re-admission: the scheduler treats a Hello from a shard rank as "this
  // shard is (back) alive with exactly its durable state".
  ctx.send(0, kTagHello, {});
}

void FrameShard::send_digest(Context& ctx, const CommitDigest& d) {
  ctx.send(0, kTagCommitDigest, encode_commit_digest(d));
}

void FrameShard::sync_journal_stats() {
  report_.journal_records = sink_->journal_records();
  report_.journal_bytes = sink_->journal_bytes();
  report_.journal_ok = sink_->journal_ok();
}

void FrameShard::handle_frame_result(Context& ctx, const Message& msg) {
  report_.frame_bytes += static_cast<std::int64_t>(msg.payload.size());
  if (ep_frame_bytes_ != nullptr) {
    ep_frame_bytes_->inc(static_cast<std::int64_t>(msg.payload.size()));
  }

  CommitDigest d;
  d.worker = msg.source;

  FrameResult result;
  if (!decode_frame_result(&result, msg.payload)) {
    // Envelope failed CRC/structure validation. The scheduler cannot tie
    // this to a task (nothing decoded), so the digest only reports the
    // sender; the worker's next valid result or its lease surfaces the gap.
    ++report_.decode_failures;
    if (decode_failures_ != nullptr) decode_failures_->inc();
    if (ep_decode_failures_ != nullptr) ep_decode_failures_->inc();
    d.kind = CommitKind::kDecodeFail;
    send_digest(ctx, d);
    return;
  }
  ++report_.frame_results;
  d.task_id = result.task_id;
  d.frame = result.frame;
  d.trace_ctx = result.trace_ctx;
  d.rect = result.payload.rect;
  d.full_render = result.full_render;
  d.rays = result.rays;
  d.shadow_rays = result.shadow_rays;
  d.pixels_recomputed = result.pixels_recomputed;
  d.compute_seconds = result.compute_seconds;
  d.render_seconds = result.render_seconds;

  const int frame = result.frame;
  assert(frame >= first_ && frame < end_ &&
         "worker routed a frame to the wrong shard");
  const PixelRect& region = result.payload.rect;

  // Per-task chain validation, the shard's slice of the master's per-worker
  // gap detection. The shard never sees assignments, so the chain starts at
  // the first result for a task id: it must be dense (workers promote to a
  // key frame at every ownership boundary and at a task's first frame), and
  // each later result must carry exactly the next owned frame. A gap or a
  // sparse result without an owned, committed predecessor poisons the chain:
  // everything after it is rejected and the scheduler reclaims the range.
  Chain& chain = chains_[result.task_id];
  if (chain.broken) {
    d.kind = CommitKind::kChainReject;
    ++report_.chain_rejects;
    send_digest(ctx, d);
    return;
  }
  if (!chain.started) {
    if (!result.payload.dense) {
      // First result of this task at this shard references a predecessor we
      // do not hold. Corruption or mis-promotion; reject and poison.
      ++report_.decode_failures;
      if (decode_failures_ != nullptr) decode_failures_->inc();
      if (ep_decode_failures_ != nullptr) ep_decode_failures_->inc();
      chain.broken = true;
      d.kind = CommitKind::kChainReject;
      ++report_.chain_rejects;
      send_digest(ctx, d);
      return;
    }
    chain.started = true;
    chain.next = frame;
  }
  if (frame < chain.next) {
    // Duplicated delivery behind the chain: already applied, just ack.
    d.kind = CommitKind::kStale;
    ++report_.stale_results;
    send_digest(ctx, d);
    return;
  }
  if (frame > chain.next) {
    // A result vanished in transit; the sparse chain is broken from the gap
    // onward. The scheduler turns this into cancel-and-reclaim.
    chain.broken = true;
    d.kind = CommitKind::kChainReject;
    ++report_.chain_rejects;
    send_digest(ctx, d);
    return;
  }
  if (!result.payload.dense && frame == first_) {
    // A sparse result whose predecessor is outside the owned range can only
    // be corruption that slipped past the CRC (workers always promote at
    // the boundary). Reject like a decode failure.
    ++report_.decode_failures;
    if (decode_failures_ != nullptr) decode_failures_->inc();
    if (ep_decode_failures_ != nullptr) ep_decode_failures_->inc();
    chain.broken = true;
    d.kind = CommitKind::kChainReject;
    ++report_.chain_rejects;
    send_digest(ctx, d);
    return;
  }

  // Idempotent-commit gate, same as the single master: a (region, frame)
  // already committed — by a speculation partner or an overlapping reclaim —
  // advances the chain but is applied nowhere. Both copies render identical
  // pixels (the coherence guarantee), so skipping the apply keeps this
  // sender's later sparse results valid against frames_[frame - 1].
  const int local = frame - first_;
  const bool fresh = committed_rects_[local].insert(rect_key(region)).second;
  chain.next = frame + 1;
  if (!fresh) {
    d.kind = CommitKind::kDuplicate;
    ++report_.duplicates;
    send_digest(ctx, d);
    return;
  }

  if (!result.payload.dense) {
    assert(local > 0);
    frames_[local].blit(region, frames_[local - 1].extract(region));
  }
  apply_payload(&frames_[local], result.payload);
  sink_->commit_region(result.task_id, region, frame, frames_[local]);
  ++report_.frames_committed;

  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "shard", "frame.result", ctx.now(),
                            {{"worker", msg.source},
                             {"frame", frame},
                             {"full", result.full_render ? 1 : 0}});
    if (result.trace_ctx != 0) {
      config_.tracer->flow_step(
          ctx.rank(), trace_flow_id(result.trace_ctx, frame), ctx.now(),
          {{"task", result.task_id}, {"frame", frame}, {"step", 3}});
    }
  }

  area_missing_[local] -= region.area();
  assert(area_missing_[local] >= 0);
  if (area_missing_[local] == 0) {
    ++report_.frames_completed;
    ctx.charge(config_.cost.master_frame_write_seconds);
    sink_->complete_frame(frame, frames_[local]);
  }
  sync_journal_stats();

  d.kind = CommitKind::kFresh;
  send_digest(ctx, d);
}

}  // namespace now
