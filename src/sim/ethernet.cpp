#include "src/sim/ethernet.h"

#include <algorithm>

namespace now {

double EthernetModel::transmit(double ready_time, std::int64_t payload_bytes) {
  const std::int64_t wire_bytes =
      payload_bytes + params_.per_message_overhead_bytes;
  const double start = std::max(ready_time, free_at_);
  contention_seconds_ += start - ready_time;
  const double duration =
      static_cast<double>(wire_bytes) / params_.bandwidth_bytes_per_sec;
  free_at_ = start + duration;
  busy_seconds_ += duration;
  total_bytes_ += wire_bytes;
  ++total_messages_;
  return free_at_ + params_.latency_seconds;
}

}  // namespace now
