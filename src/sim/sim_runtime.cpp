#include "src/sim/sim_runtime.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/fault/fault_injector.h"

namespace now {
namespace {

struct SimEvent {
  enum Kind { kDelivery, kNetworkEntry };
  double time;
  std::int64_t seq;  // FIFO tie-break for simultaneous events
  Kind kind;
  int dest;
  Message msg;
};

struct EventLater {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class SimState;

class SimContext final : public Context {
 public:
  SimContext(SimState* state, int rank) : state_(state), rank_(rank) {}

  int rank() const override { return rank_; }
  int world_size() const override;
  void send(int dest, int tag, std::string payload) override;
  void send_after(double delay_seconds, int tag, std::string payload) override;
  void charge(double seconds) override;
  double now() const override;
  void stop() override;

  double current_time = 0.0;  // advances with charge() during a handler

 private:
  SimState* state_;
  int rank_;
};

class SimState {
 public:
  SimState(const SimConfig& config, const std::vector<Actor*>& actors)
      : config_(config), actors_(actors), ethernet_(config.ethernet) {
    const int n = static_cast<int>(actors.size());
    if (static_cast<int>(config_.speeds.size()) != n) {
      throw std::invalid_argument(
          "SimConfig.speeds must have one entry per actor");
    }
    for (const double s : config_.speeds) {
      if (s <= 0.0) throw std::invalid_argument("speed factors must be > 0");
    }
    local_time_.assign(n, 0.0);
    busy_.assign(n, 0.0);
    for (int rank = 0; rank < n; ++rank) contexts_.emplace_back(this, rank);
    if (!config_.fault_plan.empty()) {
      // The sim tolerates a rank-0 crash (the schedule just drains without a
      // stop broadcast); whether the farm can *recover* from one is checked
      // upstream in validate_farm_config.
      validate_fault_plan(config_.fault_plan, n,
                          /*allow_scheduler_crash=*/true);
      injector_ = std::make_unique<FaultInjector>(config_.fault_plan, n,
                                                  config_.obs.tracer);
    }
    tracer_ = config_.obs.tracer;
    if (tracer_ != nullptr && !tracer_->enabled()) tracer_ = nullptr;
  }

  SimRuntimeStats run() {
    const int n = static_cast<int>(actors_.size());
    // Rejoin events are ordinary deliveries on the schedule: when one comes
    // due, the rank is revived and handed the rejoin tag so it can
    // re-announce itself (elastic membership).
    if (injector_ && config_.fault_plan.rejoin_tag >= 0) {
      for (const FaultEvent& e : config_.fault_plan.events) {
        if (e.kind != FaultKind::kRejoin || e.at_time < 0.0) continue;
        queue_.push(SimEvent{e.at_time, next_seq_++, SimEvent::kDelivery,
                             e.rank,
                             Message{e.rank, config_.fault_plan.rejoin_tag,
                                     {}}});
      }
      // Relative rejoins (after_crash_seconds) resolve only when the crash
      // fires; the injector hands the resolved time back through this hook,
      // always inside the sequential event loop — pushing mid-drain is safe
      // and keeps the schedule deterministic.
      injector_->set_rejoin_hook([this](int rank, double at) {
        queue_.push(SimEvent{at, next_seq_++, SimEvent::kDelivery, rank,
                             Message{rank, config_.fault_plan.rejoin_tag,
                                     {}}});
      });
    }
    for (int rank = 0; rank < n; ++rank) {
      invoke_start(rank);
      if (stopped_) break;
    }
    std::int64_t events = 0;
    while (!stopped_ && !queue_.empty()) {
      if (++events > config_.max_events) {
        throw std::runtime_error("SimRuntime exceeded max_events");
      }
      SimEvent ev = queue_.top();
      queue_.pop();
      if (ev.kind == SimEvent::kNetworkEntry) {
        const std::int64_t bytes =
            static_cast<std::int64_t>(ev.msg.payload.size());
        double deliver = ethernet_.transmit(ev.time, bytes);
        if (tracer_) {
          // The wire time (queueing for the shared medium + transmission),
          // on the *sender's* timeline; injected delay spikes are charged to
          // the fault injector, not to communication.
          tracer_->complete(ev.msg.source, "net", "net.send", ev.time,
                            deliver - ev.time,
                            {{"dest", ev.dest},
                             {"tag", ev.msg.tag},
                             {"bytes", bytes}});
        }
        if (injector_) {
          deliver += injector_->delivery_delay(ev.dest, ev.time);
        }
        queue_.push(SimEvent{deliver, next_seq_++, SimEvent::kDelivery,
                             ev.dest, std::move(ev.msg)});
        continue;
      }
      // A crashed rank is fail-stop inert: pending deliveries — including
      // its own render-loop continuations — evaporate.
      if (injector_) {
        if (config_.fault_plan.rejoin_tag >= 0 &&
            ev.msg.tag == config_.fault_plan.rejoin_tag &&
            ev.msg.source == ev.dest) {
          // The restart signal itself must reach the dead rank: revive
          // before the crash check swallows it.
          injector_->revive(ev.dest, ev.time);
          // The restarted process starts a fresh local clock; model the
          // restart by advancing the rank to the rejoin instant (its stale
          // pre-crash clock must not leak into post-rejoin timing).
          local_time_[ev.dest] = std::max(local_time_[ev.dest], ev.time);
        }
        if (injector_->crashed(ev.dest, ev.time)) continue;
      }
      invoke_message(ev);
    }

    // The runtime contract promises every actor an on_shutdown before its
    // Context dies; the sim delivers them sequentially once the schedule
    // drains. Virtual time does not advance (shutdown is bookkeeping, not
    // simulated work).
    for (int rank = 0; rank < n; ++rank) {
      SimContext& ctx = contexts_[rank];
      ctx.current_time = local_time_[rank];
      actors_[rank]->on_shutdown(ctx);
      local_time_[rank] = ctx.current_time;
    }

    SimRuntimeStats stats;
    stats.rank_busy_seconds = busy_;
    stats.rank_finish_time = local_time_;
    stats.elapsed_seconds =
        *std::max_element(local_time_.begin(), local_time_.end());
    stats.messages = cross_messages_;
    stats.bytes = cross_bytes_;
    stats.ethernet_busy_seconds = ethernet_.busy_seconds();
    stats.ethernet_contention_seconds = ethernet_.contention_seconds();
    if (injector_) {
      stats.fault_crashes = injector_->crashes_triggered();
      stats.fault_dropped_messages = injector_->messages_dropped();
      stats.fault_duplicated_messages = injector_->messages_duplicated();
      stats.fault_reordered_messages = injector_->messages_reordered();
    }
    if (MetricsRegistry* metrics = config_.obs.metrics) {
      metrics->gauge("sim.ethernet_busy_seconds")
          .set(stats.ethernet_busy_seconds);
      metrics->gauge("sim.ethernet_contention_seconds")
          .set(stats.ethernet_contention_seconds);
      for (int rank = 0; rank < n; ++rank) {
        const std::string prefix = "rank." + std::to_string(rank);
        metrics->gauge(prefix + ".busy_seconds").set(busy_[rank]);
        metrics->gauge(prefix + ".finish_seconds").set(local_time_[rank]);
      }
      if (injector_) injector_->export_metrics(metrics);
    }
    return stats;
  }

  // -- called by SimContext -----------------------------------------------
  int world_size() const { return static_cast<int>(actors_.size()); }

  void send(int src, double send_time, int dest, int tag,
            std::string payload) {
    if (injector_ && injector_->crashed(src, send_time)) return;
    if (dest == src) {  // self-continuation: no network
      queue_.push(SimEvent{send_time, next_seq_++, SimEvent::kDelivery, dest,
                           Message{src, tag, std::move(payload)}});
      return;
    }
    int copies = 1;
    if (injector_) {
      const FaultInjector::SendFaults f =
          injector_->on_send(src, dest, tag, send_time);
      if (f.drop) return;
      if (f.hold) {
        // kReorderMessage: park this message; the rank's next send to the
        // same destination releases it behind itself (adjacent swap). If no
        // later send comes the hold degrades to a drop, which the lease /
        // chain machinery already recovers.
        held_[{src, dest}] = Message{src, tag, std::move(payload)};
        return;
      }
      if (f.duplicate) copies = 2;
    }
    // Two-phase network hop: a handler may have advanced its local clock far
    // past events still queued for other ranks, so the Ethernet medium must
    // be acquired when global virtual time actually reaches the send time —
    // not at handler-execution time — or contention would be fabricated
    // between messages that are minutes apart.
    for (int c = 0; c < copies; ++c) {
      cross_bytes_ += static_cast<std::int64_t>(payload.size());
      ++cross_messages_;
      queue_.push(SimEvent{send_time, next_seq_++, SimEvent::kNetworkEntry,
                           dest, Message{src, tag, payload}});
    }
    const auto held = held_.find({src, dest});
    if (held != held_.end()) {
      cross_bytes_ += static_cast<std::int64_t>(held->second.payload.size());
      ++cross_messages_;
      queue_.push(SimEvent{send_time, next_seq_++, SimEvent::kNetworkEntry,
                           dest, std::move(held->second)});
      held_.erase(held);
    }
  }

  void send_self_delayed(int rank, double deliver_time, int tag,
                         std::string payload) {
    queue_.push(SimEvent{deliver_time, next_seq_++, SimEvent::kDelivery, rank,
                         Message{rank, tag, std::move(payload)}});
  }

  double fault_charge_scale(int rank, double now) const {
    return injector_ ? injector_->charge_scale(rank, now) : 1.0;
  }

  double scale(int rank, double reference_seconds) const {
    return reference_seconds / config_.speeds[rank];
  }

  void add_busy(int rank, double seconds) { busy_[rank] += seconds; }

  void request_stop() { stopped_ = true; }

 private:
  void invoke_start(int rank) {
    SimContext& ctx = contexts_[rank];
    ctx.current_time = local_time_[rank];
    actors_[rank]->on_start(ctx);
    local_time_[rank] = ctx.current_time;
  }

  void invoke_message(const SimEvent& ev) {
    SimContext& ctx = contexts_[ev.dest];
    // An actor busy past the delivery time handles the message when free —
    // a PVM worker only polls between frames.
    ctx.current_time = std::max(local_time_[ev.dest], ev.time);
    if (tracer_ && ev.msg.source != ev.dest) {
      // Timestamped when the handler runs (not wire arrival), which keeps
      // the receiving rank's timeline monotone.
      tracer_->instant(
          ev.dest, "net", "net.recv", ctx.current_time,
          {{"src", ev.msg.source},
           {"tag", ev.msg.tag},
           {"bytes", static_cast<std::int64_t>(ev.msg.payload.size())}});
    }
    actors_[ev.dest]->on_message(ctx, ev.msg);
    local_time_[ev.dest] = ctx.current_time;
  }

  const SimConfig& config_;
  const std::vector<Actor*>& actors_;
  EthernetModel ethernet_;
  EventTracer* tracer_ = nullptr;  // null when absent or disabled
  std::unique_ptr<FaultInjector> injector_;
  std::map<std::pair<int, int>, Message> held_;  // kReorderMessage parking
  std::priority_queue<SimEvent, std::vector<SimEvent>, EventLater> queue_;
  std::vector<SimContext> contexts_;
  std::vector<double> local_time_;
  std::vector<double> busy_;
  std::int64_t next_seq_ = 0;
  std::int64_t cross_messages_ = 0;
  std::int64_t cross_bytes_ = 0;
  bool stopped_ = false;

  friend class SimContext;
};

int SimContext::world_size() const { return state_->world_size(); }

void SimContext::send(int dest, int tag, std::string payload) {
  state_->send(rank_, current_time, dest, tag, std::move(payload));
}

void SimContext::send_after(double delay_seconds, int tag,
                            std::string payload) {
  assert(delay_seconds >= 0.0);
  state_->send_self_delayed(rank_, current_time + delay_seconds, tag,
                            std::move(payload));
}

void SimContext::charge(double seconds) {
  assert(seconds >= 0.0);
  const double scaled = state_->scale(rank_, seconds) *
                        state_->fault_charge_scale(rank_, current_time);
  current_time += scaled;
  state_->add_busy(rank_, scaled);
}

double SimContext::now() const { return current_time; }

void SimContext::stop() { state_->request_stop(); }

}  // namespace

RuntimeStats SimRuntime::run(const std::vector<Actor*>& actors) {
  return run_sim(actors);
}

SimRuntimeStats SimRuntime::run_sim(const std::vector<Actor*>& actors) {
  SimState state(config_, actors);
  return state.run();
}

}  // namespace now
