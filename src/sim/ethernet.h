// Shared-medium Ethernet model.
//
// The paper's cluster hangs off one 10 Mb/s Ethernet segment, "relatively
// slow compared to interconnection networks found on multiprocessor
// machines". The model is a single FIFO medium: each transmission occupies
// it for (overhead + payload bytes) / bandwidth, transmissions queue behind
// one another (contention), and delivery adds a fixed latency.
#pragma once

#include <cstdint>

namespace now {

struct EthernetParams {
  double bandwidth_bytes_per_sec = 10e6 / 8.0;  // 10 Mb/s
  double latency_seconds = 0.7e-3;              // per-message software+wire latency
  std::int64_t per_message_overhead_bytes = 90; // frame + IP/UDP + PVM header
};

class EthernetModel {
 public:
  explicit EthernetModel(const EthernetParams& params = {}) : params_(params) {}

  /// Transmit `payload_bytes` when the sender is ready at `ready_time`.
  /// Returns the delivery time at the receiver and advances medium state.
  double transmit(double ready_time, std::int64_t payload_bytes);

  /// Time the medium becomes free.
  double free_at() const { return free_at_; }

  /// Cumulative seconds the medium spent transmitting.
  double busy_seconds() const { return busy_seconds_; }

  std::int64_t total_bytes() const { return total_bytes_; }
  std::int64_t total_messages() const { return total_messages_; }
  /// Cumulative time transmissions spent waiting for the medium.
  double contention_seconds() const { return contention_seconds_; }

  const EthernetParams& params() const { return params_; }

 private:
  EthernetParams params_;
  double free_at_ = 0.0;
  double busy_seconds_ = 0.0;
  std::int64_t total_bytes_ = 0;
  std::int64_t total_messages_ = 0;
  double contention_seconds_ = 0.0;
};

}  // namespace now
