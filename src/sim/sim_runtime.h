// SimRuntime: sequential discrete-event simulation of the workstation
// cluster. Actors execute their real computation immediately (rendering
// actually happens), but *time* is virtual: Context::charge converts
// reference-machine seconds into this rank's seconds via its speed factor,
// and every cross-rank message passes through the shared EthernetModel.
//
// This is the substitution for the paper's physical testbed (one 200 MHz and
// two 100 MHz SGIs on 10 Mb/s Ethernet): speed factors {1.0, 0.5, 0.5}
// reproduce the heterogeneity that drives the paper's load-balancing story,
// with fully deterministic results.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/net/runtime.h"
#include "src/sim/ethernet.h"

namespace now {

struct SimConfig {
  /// Per-rank speed relative to the reference machine. Must match the actor
  /// count handed to run().
  std::vector<double> speeds;
  EthernetParams ethernet;
  /// Deterministic fault schedule (crashes, drops, duplicates, delay
  /// spikes, slowdowns), injected as discrete events: replaying the same
  /// plan yields bit-identical virtual-time results.
  FaultPlan fault_plan;
  /// Safety valve against protocol bugs: abort after this many events.
  std::int64_t max_events = 500'000'000;
  /// Observability sinks: cross-rank send/recv trace events (virtual
  /// timestamps, so traces are bit-reproducible) and end-of-run sim.* /
  /// rank.* metrics.
  RuntimeObs obs;
};

struct SimRuntimeStats : RuntimeStats {
  double ethernet_busy_seconds = 0.0;
  double ethernet_contention_seconds = 0.0;
  std::vector<double> rank_busy_seconds;  // compute time charged per rank
  std::vector<double> rank_finish_time;   // local clock at shutdown
  // Fault injection accounting (zero when no plan was configured).
  int fault_crashes = 0;
  std::int64_t fault_dropped_messages = 0;
  std::int64_t fault_duplicated_messages = 0;
  std::int64_t fault_reordered_messages = 0;
};

class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(SimConfig config) : config_(std::move(config)) {}

  RuntimeStats run(const std::vector<Actor*>& actors) override;

  /// run() with the simulation-specific extras.
  SimRuntimeStats run_sim(const std::vector<Actor*>& actors);

 private:
  SimConfig config_;
};

}  // namespace now
