#pragma once

#include "src/geom/primitive.h"

namespace now {

/// Oriented box: center, per-axis half extents and a rotation. With identity
/// rotation this is an axis-aligned box.
class Box final : public Primitive {
 public:
  Box(const Vec3& center, const Vec3& half_extents,
      const Mat3& rotation = Mat3::identity())
      : center_(center), half_(half_extents), rotation_(rotation) {}

  /// Axis-aligned box from min/max corners.
  static Box from_corners(const Vec3& lo, const Vec3& hi);

  ShapeType type() const override { return ShapeType::kBox; }
  bool intersect(const Ray& ray, double t_min, double t_max,
                 Hit* hit) const override;
  Aabb bounds() const override;
  bool overlaps_box(const Aabb& box) const override;
  std::unique_ptr<Primitive> transformed(const Transform& t) const override;
  std::unique_ptr<Primitive> clone() const override;

  const Vec3& center() const { return center_; }
  const Vec3& half_extents() const { return half_; }
  const Mat3& rotation() const { return rotation_; }

 private:
  Vec3 center_;
  Vec3 half_;
  Mat3 rotation_;
};

}  // namespace now
