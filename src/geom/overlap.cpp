#include "src/geom/overlap.h"

#include <algorithm>
#include <cmath>

namespace now {

double point_box_distance_squared(const Vec3& p, const Aabb& box) {
  double d2 = 0.0;
  for (int axis = 0; axis < 3; ++axis) {
    const double v = p[axis];
    if (v < box.lo[axis]) {
      const double d = box.lo[axis] - v;
      d2 += d * d;
    } else if (v > box.hi[axis]) {
      const double d = v - box.hi[axis];
      d2 += d * d;
    }
  }
  return d2;
}

double segment_box_distance(const Vec3& a, const Vec3& b, const Aabb& box) {
  // distance(t) = dist(lerp(a,b,t), box) is convex in t, so ternary search
  // converges to the global minimum.
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 64; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    const double d1 = point_box_distance_squared(lerp(a, b, m1), box);
    const double d2 = point_box_distance_squared(lerp(a, b, m2), box);
    if (d1 < d2) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  const double t = 0.5 * (lo + hi);
  return std::sqrt(point_box_distance_squared(lerp(a, b, t), box));
}

bool plane_overlaps_box(const Vec3& normal, double d, const Aabb& box) {
  // Project the box onto the plane normal; the plane passes through the box
  // iff the projection interval contains d.
  const Vec3 c = box.center();
  const Vec3 e = box.extent() * 0.5;
  const double center_dist = dot(normal, c) - d;
  const double radius = std::fabs(normal.x) * e.x + std::fabs(normal.y) * e.y +
                        std::fabs(normal.z) * e.z;
  return std::fabs(center_dist) <= radius;
}

namespace {

// Project the triangle (in box-centered coordinates) and the box half
// extents onto `axis` and check for separation.
bool axis_separates(const Vec3& axis, const Vec3& v0, const Vec3& v1,
                    const Vec3& v2, const Vec3& half) {
  const double p0 = dot(v0, axis);
  const double p1 = dot(v1, axis);
  const double p2 = dot(v2, axis);
  const double r = half.x * std::fabs(axis.x) + half.y * std::fabs(axis.y) +
                   half.z * std::fabs(axis.z);
  const double tri_min = std::min({p0, p1, p2});
  const double tri_max = std::max({p0, p1, p2});
  return tri_min > r || tri_max < -r;
}

}  // namespace

bool triangle_overlaps_box(const Vec3& tv0, const Vec3& tv1, const Vec3& tv2,
                           const Aabb& box) {
  const Vec3 c = box.center();
  const Vec3 half = box.extent() * 0.5;
  const Vec3 v0 = tv0 - c;
  const Vec3 v1 = tv1 - c;
  const Vec3 v2 = tv2 - c;
  const Vec3 e0 = v1 - v0;
  const Vec3 e1 = v2 - v1;
  const Vec3 e2 = v0 - v2;

  // 9 cross-product axes.
  const Vec3 box_axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (const Vec3& ba : box_axes) {
    for (const Vec3& edge : {e0, e1, e2}) {
      const Vec3 axis = cross(ba, edge);
      if (axis.length_squared() < 1e-18) continue;  // parallel, skip axis
      if (axis_separates(axis, v0, v1, v2, half)) return false;
    }
  }
  // 3 box face normals.
  for (const Vec3& ba : box_axes) {
    if (axis_separates(ba, v0, v1, v2, half)) return false;
  }
  // Triangle face normal.
  const Vec3 n = cross(e0, e1);
  if (n.length_squared() > 1e-18 && axis_separates(n, v0, v1, v2, half)) {
    return false;
  }
  return true;
}

bool oriented_box_overlaps_box(const Vec3& center, const Mat3& rotation,
                               const Vec3& half_extents, const Aabb& box) {
  // Standard OBB-vs-AABB separating axis test: the AABB is an OBB with
  // identity orientation.
  const Vec3 a_half = box.extent() * 0.5;
  const Vec3 t = center - box.center();

  // R[i][j] = dot(aabb_axis_i, obb_axis_j); aabb axes are the identity.
  double R[3][3];
  double AbsR[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      R[i][j] = rotation.col(j)[i];
      AbsR[i][j] = std::fabs(R[i][j]) + 1e-12;
    }
  }
  const double T[3] = {t.x, t.y, t.z};
  const double ea[3] = {a_half.x, a_half.y, a_half.z};
  const double eb[3] = {half_extents.x, half_extents.y, half_extents.z};

  // Axes of the AABB.
  for (int i = 0; i < 3; ++i) {
    const double ra = ea[i];
    const double rb =
        eb[0] * AbsR[i][0] + eb[1] * AbsR[i][1] + eb[2] * AbsR[i][2];
    if (std::fabs(T[i]) > ra + rb) return false;
  }
  // Axes of the OBB.
  for (int j = 0; j < 3; ++j) {
    const double ra =
        ea[0] * AbsR[0][j] + ea[1] * AbsR[1][j] + ea[2] * AbsR[2][j];
    const double rb = eb[j];
    const double proj = T[0] * R[0][j] + T[1] * R[1][j] + T[2] * R[2][j];
    if (std::fabs(proj) > ra + rb) return false;
  }
  // Cross-product axes A_i × B_j.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const int i1 = (i + 1) % 3;
      const int i2 = (i + 2) % 3;
      const int j1 = (j + 1) % 3;
      const int j2 = (j + 2) % 3;
      const double ra = ea[i1] * AbsR[i2][j] + ea[i2] * AbsR[i1][j];
      const double rb = eb[j1] * AbsR[i][j2] + eb[j2] * AbsR[i][j1];
      const double proj = T[i2] * R[i1][j] - T[i1] * R[i2][j];
      if (std::fabs(proj) > ra + rb) return false;
    }
  }
  return true;
}

}  // namespace now
