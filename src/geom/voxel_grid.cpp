#include "src/geom/voxel_grid.h"

#include <algorithm>

namespace now {

VoxelGrid VoxelGrid::heuristic(const Aabb& extent, int object_count,
                               double density, int max_axis) {
  Aabb box = extent;
  if (box.empty()) box = Aabb{{-1, -1, -1}, {1, 1, 1}};
  // Pad slightly so geometry sitting exactly on the boundary is interior.
  box = box.padded(1e-6 * (1.0 + box.extent().length()));

  const Vec3 ext = box.extent();
  const double volume = std::max(ext.x * ext.y * ext.z, 1e-12);
  const double cells_target =
      density * std::cbrt(std::max(object_count, 1) + 0.0);
  // Cells per axis proportional to the axis length, so voxels stay roughly
  // cubical regardless of the extent's aspect ratio.
  const double k = cells_target / std::cbrt(volume);
  const auto axis_cells = [&](double len) {
    return std::clamp(static_cast<int>(std::ceil(k * len)), 1, max_axis);
  };
  return VoxelGrid(box, axis_cells(ext.x), axis_cells(ext.y),
                   axis_cells(ext.z));
}

}  // namespace now
