#include "src/geom/box.h"

#include <algorithm>

#include "src/geom/overlap.h"

namespace now {

Box Box::from_corners(const Vec3& lo, const Vec3& hi) {
  return Box((lo + hi) * 0.5, (hi - lo) * 0.5);
}

bool Box::intersect(const Ray& ray, double t_min, double t_max,
                    Hit* hit) const {
  // Transform the ray into the box's local frame (rotation^T is its inverse).
  const Mat3 inv = rotation_.transposed();
  const Vec3 local_origin = inv * (ray.origin - center_);
  const Vec3 local_dir = inv * ray.direction;

  double t0 = t_min;
  double t1 = t_max;
  int enter_axis = -1;
  int exit_axis = -1;
  for (int axis = 0; axis < 3; ++axis) {
    const double inv_d = 1.0 / local_dir[axis];
    double near = (-half_[axis] - local_origin[axis]) * inv_d;
    double far = (half_[axis] - local_origin[axis]) * inv_d;
    if (inv_d < 0.0) std::swap(near, far);
    if (near > t0) {
      t0 = near;
      enter_axis = axis;
    }
    if (far < t1) {
      t1 = far;
      exit_axis = axis;
    }
    if (t0 > t1) return false;
  }

  double t = t0;
  int axis = enter_axis;
  if (axis < 0) {  // ray origin inside the box: use the exit face
    t = t1;
    axis = exit_axis;
    if (t <= t_min || t >= t_max) return false;
  }
  if (t <= t_min || t >= t_max) return false;

  hit->t = t;
  hit->point = ray.at(t);
  const Vec3 local_point = inv * (hit->point - center_);
  Vec3 local_normal{0, 0, 0};
  local_normal[axis] = local_point[axis] > 0.0 ? 1.0 : -1.0;
  hit->set_normal(ray, rotation_ * local_normal);
  return true;
}

Aabb Box::bounds() const {
  // Extent of the rotated box along each world axis.
  Vec3 world_half{0, 0, 0};
  for (int axis = 0; axis < 3; ++axis) {
    const Vec3 col = rotation_.col(axis);
    world_half.x += std::fabs(col.x) * half_[axis];
    world_half.y += std::fabs(col.y) * half_[axis];
    world_half.z += std::fabs(col.z) * half_[axis];
  }
  return {center_ - world_half, center_ + world_half};
}

bool Box::overlaps_box(const Aabb& box) const {
  return oriented_box_overlaps_box(center_, rotation_, half_, box);
}

std::unique_ptr<Primitive> Box::transformed(const Transform& t) const {
  return std::make_unique<Box>(t.apply_point(center_), half_ * t.scale,
                               t.rotation * rotation_);
}

std::unique_ptr<Primitive> Box::clone() const {
  return std::make_unique<Box>(*this);
}

}  // namespace now
