#include "src/geom/primitive.h"

namespace now {

const char* to_string(ShapeType type) {
  switch (type) {
    case ShapeType::kSphere: return "sphere";
    case ShapeType::kPlane: return "plane";
    case ShapeType::kBox: return "box";
    case ShapeType::kCylinder: return "cylinder";
    case ShapeType::kDisc: return "disc";
    case ShapeType::kTriangle: return "triangle";
    case ShapeType::kMesh: return "mesh";
  }
  return "unknown";
}

}  // namespace now
