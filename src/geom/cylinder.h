#pragma once

#include "src/geom/primitive.h"

namespace now {

/// Capped cylinder between endpoints p0 and p1 with the given radius.
/// The Newton cradle's frame and strings are built from these.
class Cylinder final : public Primitive {
 public:
  Cylinder(const Vec3& p0, const Vec3& p1, double radius)
      : p0_(p0), p1_(p1), radius_(radius) {}

  ShapeType type() const override { return ShapeType::kCylinder; }
  bool intersect(const Ray& ray, double t_min, double t_max,
                 Hit* hit) const override;
  Aabb bounds() const override;

  /// Conservative: capsule (cylinder + spherical caps) vs box. A superset of
  /// the capped cylinder, as the change detector requires.
  bool overlaps_box(const Aabb& box) const override;

  std::unique_ptr<Primitive> transformed(const Transform& t) const override;
  std::unique_ptr<Primitive> clone() const override;

  const Vec3& p0() const { return p0_; }
  const Vec3& p1() const { return p1_; }
  double radius() const { return radius_; }

 private:
  Vec3 p0_;
  Vec3 p1_;
  double radius_;
};

}  // namespace now
