#pragma once

#include <vector>

#include "src/geom/primitive.h"

namespace now {

class Triangle final : public Primitive {
 public:
  Triangle(const Vec3& v0, const Vec3& v1, const Vec3& v2)
      : v0_(v0), v1_(v1), v2_(v2) {}

  ShapeType type() const override { return ShapeType::kTriangle; }
  bool intersect(const Ray& ray, double t_min, double t_max,
                 Hit* hit) const override;
  Aabb bounds() const override;
  bool overlaps_box(const Aabb& box) const override;
  std::unique_ptr<Primitive> transformed(const Transform& t) const override;
  std::unique_ptr<Primitive> clone() const override;

  const Vec3& v0() const { return v0_; }
  const Vec3& v1() const { return v1_; }
  const Vec3& v2() const { return v2_; }

 private:
  Vec3 v0_, v1_, v2_;
};

/// Indexed triangle mesh with an internal median-split BVH so large meshes
/// don't degrade the tracer to per-triangle linear scans.
class Mesh final : public Primitive {
 public:
  Mesh(std::vector<Vec3> vertices, std::vector<int> indices);

  ShapeType type() const override { return ShapeType::kMesh; }
  bool intersect(const Ray& ray, double t_min, double t_max,
                 Hit* hit) const override;
  Aabb bounds() const override { return bounds_; }
  bool overlaps_box(const Aabb& box) const override;
  std::unique_ptr<Primitive> transformed(const Transform& t) const override;
  std::unique_ptr<Primitive> clone() const override;

  int triangle_count() const { return static_cast<int>(indices_.size()) / 3; }
  const std::vector<Vec3>& vertices() const { return vertices_; }
  const std::vector<int>& indices() const { return indices_; }

 private:
  struct BvhNode {
    Aabb box;
    int left = -1;    // child node index, or -1 for leaf
    int right = -1;
    int first = 0;    // leaf: first triangle in order_
    int count = 0;    // leaf: triangle count
  };

  void tri_vertices(int tri, Vec3* a, Vec3* b, Vec3* c) const;
  Aabb tri_bounds(int tri) const;
  int build_node(std::vector<int>& tris, int begin, int end);
  bool intersect_node(int node, const Ray& ray, double t_min, double& t_max,
                      Hit* hit) const;

  std::vector<Vec3> vertices_;
  std::vector<int> indices_;
  std::vector<int> order_;  // triangle order referenced by BVH leaves
  std::vector<BvhNode> nodes_;
  Aabb bounds_;
};

}  // namespace now
