#include "src/geom/sphere.h"

#include "src/geom/overlap.h"

namespace now {

bool Sphere::intersect(const Ray& ray, double t_min, double t_max,
                       Hit* hit) const {
  const Vec3 oc = ray.origin - center_;
  const double a = ray.direction.length_squared();
  const double half_b = dot(oc, ray.direction);
  const double c = oc.length_squared() - radius_ * radius_;
  const double disc = half_b * half_b - a * c;
  if (disc < 0.0) return false;
  const double sqrt_disc = std::sqrt(disc);
  double root = (-half_b - sqrt_disc) / a;
  if (root <= t_min || root >= t_max) {
    root = (-half_b + sqrt_disc) / a;
    if (root <= t_min || root >= t_max) return false;
  }
  hit->t = root;
  hit->point = ray.at(root);
  hit->set_normal(ray, (hit->point - center_) / radius_);
  return true;
}

Aabb Sphere::bounds() const {
  const Vec3 r{radius_, radius_, radius_};
  return {center_ - r, center_ + r};
}

bool Sphere::overlaps_box(const Aabb& box) const {
  return point_box_distance_squared(center_, box) <= radius_ * radius_;
}

std::unique_ptr<Primitive> Sphere::transformed(const Transform& t) const {
  return std::make_unique<Sphere>(t.apply_point(center_), radius_ * t.scale);
}

std::unique_ptr<Primitive> Sphere::clone() const {
  return std::make_unique<Sphere>(*this);
}

}  // namespace now
