#pragma once

#include "src/geom/primitive.h"

namespace now {

/// Flat disc: center, unit normal, radius.
class Disc final : public Primitive {
 public:
  Disc(const Vec3& center, const Vec3& unit_normal, double radius)
      : center_(center), normal_(unit_normal), radius_(radius) {}

  ShapeType type() const override { return ShapeType::kDisc; }
  bool intersect(const Ray& ray, double t_min, double t_max,
                 Hit* hit) const override;
  Aabb bounds() const override;
  std::unique_ptr<Primitive> transformed(const Transform& t) const override;
  std::unique_ptr<Primitive> clone() const override;

  const Vec3& center() const { return center_; }
  const Vec3& normal() const { return normal_; }
  double radius() const { return radius_; }

 private:
  Vec3 center_;
  Vec3 normal_;
  double radius_;
};

}  // namespace now
