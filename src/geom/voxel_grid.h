// Uniform spatial subdivision: the voxel lattice shared by the grid ray
// accelerator and the frame-coherence grid (the paper uses one uniform
// subdivision of object space for both acceleration and coherence marking).
//
// Traversal is the Amanatides & Woo 3D-DDA; the paper's "modified 3D-DDA"
// corresponds to walk() clipped to a ray segment [t_min, t_end].
#pragma once

#include <cassert>
#include <cmath>

#include "src/math/aabb.h"
#include "src/math/ray.h"

namespace now {

class VoxelGrid {
 public:
  VoxelGrid() = default;

  VoxelGrid(const Aabb& bounds, int nx, int ny, int nz)
      : bounds_(bounds), nx_(nx), ny_(ny), nz_(nz) {
    assert(nx > 0 && ny > 0 && nz > 0);
    const Vec3 ext = bounds.extent();
    cell_size_ = {ext.x / nx, ext.y / ny, ext.z / nz};
  }

  /// Grid over `extent` with resolution chosen by the Cleary/Woo heuristic:
  /// roughly `density * cbrt(object_count)` cells per axis, shaped to the
  /// extent's aspect ratio, clamped to [1, max_axis].
  static VoxelGrid heuristic(const Aabb& extent, int object_count,
                             double density = 3.0, int max_axis = 128);

  bool valid() const { return nx_ > 0; }
  const Aabb& bounds() const { return bounds_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::int64_t cell_count() const {
    return std::int64_t{nx_} * ny_ * nz_;
  }
  const Vec3& cell_size() const { return cell_size_; }

  int cell_index(int ix, int iy, int iz) const {
    return (iz * ny_ + iy) * nx_ + ix;
  }

  Aabb cell_bounds(int ix, int iy, int iz) const {
    const Vec3 lo{bounds_.lo.x + ix * cell_size_.x,
                  bounds_.lo.y + iy * cell_size_.y,
                  bounds_.lo.z + iz * cell_size_.z};
    return {lo, lo + cell_size_};
  }

  /// Cell containing `p`, clamped to the grid.
  void locate(const Vec3& p, int* ix, int* iy, int* iz) const {
    *ix = clamp_axis((p.x - bounds_.lo.x) / cell_size_.x, nx_);
    *iy = clamp_axis((p.y - bounds_.lo.y) / cell_size_.y, ny_);
    *iz = clamp_axis((p.z - bounds_.lo.z) / cell_size_.z, nz_);
  }

  /// Inclusive cell index range overlapped by `box` (clamped to the grid).
  /// Returns false when the box misses the grid entirely.
  bool cell_range(const Aabb& box, int* ix0, int* iy0, int* iz0, int* ix1,
                  int* iy1, int* iz1) const {
    if (!bounds_.overlaps(box)) return false;
    locate(box.lo, ix0, iy0, iz0);
    locate(box.hi, ix1, iy1, iz1);
    return true;
  }

  /// Walk the cells pierced by ray parameter range [t_min, t_max] in order.
  /// Visitor signature: bool(int ix, int iy, int iz, double t_enter,
  /// double t_exit); returning false stops the walk early.
  template <typename Visitor>
  void walk(const Ray& ray, double t_min, double t_max, Visitor&& visit) const {
    double t_enter, t_exit;
    if (!bounds_.intersect(ray, t_min, t_max, &t_enter, &t_exit)) return;

    // Start cell: nudge inside to avoid landing exactly on a face.
    const double t_start = t_enter + 1e-12 * (1.0 + std::fabs(t_enter));
    int cell[3];
    locate(ray.at(t_start), &cell[0], &cell[1], &cell[2]);

    const int n[3] = {nx_, ny_, nz_};
    int step[3];
    double t_next[3];
    double t_delta[3];
    for (int axis = 0; axis < 3; ++axis) {
      const double d = ray.direction[axis];
      if (d > 0.0) {
        step[axis] = 1;
        const double edge = bounds_.lo[axis] + (cell[axis] + 1) * cell_size_[axis];
        t_next[axis] = (edge - ray.origin[axis]) / d;
        t_delta[axis] = cell_size_[axis] / d;
      } else if (d < 0.0) {
        step[axis] = -1;
        const double edge = bounds_.lo[axis] + cell[axis] * cell_size_[axis];
        t_next[axis] = (edge - ray.origin[axis]) / d;
        t_delta[axis] = -cell_size_[axis] / d;
      } else {
        step[axis] = 0;
        t_next[axis] = kRayInfinity;
        t_delta[axis] = kRayInfinity;
      }
    }

    double t = t_enter;
    for (;;) {
      // Exit parameter of the current cell.
      int exit_axis = 0;
      if (t_next[1] < t_next[exit_axis]) exit_axis = 1;
      if (t_next[2] < t_next[exit_axis]) exit_axis = 2;
      const double cell_exit = t_next[exit_axis] < t_exit ? t_next[exit_axis] : t_exit;

      if (!visit(cell[0], cell[1], cell[2], t, cell_exit)) return;

      if (t_next[exit_axis] >= t_exit) return;  // left the t range
      t = t_next[exit_axis];
      cell[exit_axis] += step[exit_axis];
      if (cell[exit_axis] < 0 || cell[exit_axis] >= n[exit_axis]) return;
      t_next[exit_axis] += t_delta[exit_axis];
    }
  }

 private:
  static int clamp_axis(double v, int n) {
    const int i = static_cast<int>(std::floor(v));
    return i < 0 ? 0 : (i >= n ? n - 1 : i);
  }

  Aabb bounds_;
  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  Vec3 cell_size_;
};

}  // namespace now
