#include "src/geom/plane.h"

#include "src/geom/overlap.h"

namespace now {

Plane Plane::through(const Vec3& point, const Vec3& normal) {
  const Vec3 n = normal.normalized();
  return Plane(n, dot(n, point));
}

bool Plane::intersect(const Ray& ray, double t_min, double t_max,
                      Hit* hit) const {
  const double denom = dot(normal_, ray.direction);
  if (std::fabs(denom) < 1e-12) return false;  // parallel
  const double t = (d_ - dot(normal_, ray.origin)) / denom;
  if (t <= t_min || t >= t_max) return false;
  hit->t = t;
  hit->point = ray.at(t);
  hit->set_normal(ray, normal_);
  return true;
}

bool Plane::overlaps_box(const Aabb& box) const {
  return plane_overlaps_box(normal_, d_, box);
}

std::unique_ptr<Primitive> Plane::transformed(const Transform& t) const {
  // world plane: n'·x = d' with n' = R n and d' = s*d + n'·translation.
  const Vec3 n = t.apply_direction(normal_);
  const double d = d_ * t.scale + dot(n, t.translation);
  return std::make_unique<Plane>(n, d);
}

std::unique_ptr<Primitive> Plane::clone() const {
  return std::make_unique<Plane>(*this);
}

}  // namespace now
