#pragma once

#include "src/geom/primitive.h"

namespace now {

/// Infinite plane n·x = d with unit normal n. The only unbounded primitive;
/// the grid accelerator keeps planes on a separate always-tested list.
class Plane final : public Primitive {
 public:
  Plane(const Vec3& unit_normal, double d) : normal_(unit_normal), d_(d) {}

  /// Plane through `point` with the given (not necessarily unit) normal.
  static Plane through(const Vec3& point, const Vec3& normal);

  ShapeType type() const override { return ShapeType::kPlane; }
  bool intersect(const Ray& ray, double t_min, double t_max,
                 Hit* hit) const override;
  Aabb bounds() const override { return {}; }
  bool is_bounded() const override { return false; }
  bool overlaps_box(const Aabb& box) const override;
  std::unique_ptr<Primitive> transformed(const Transform& t) const override;
  std::unique_ptr<Primitive> clone() const override;

  const Vec3& normal() const { return normal_; }
  double d() const { return d_; }

 private:
  Vec3 normal_;
  double d_;
};

}  // namespace now
