#include "src/geom/triangle.h"

#include <algorithm>
#include <cassert>

#include "src/geom/overlap.h"

namespace now {
namespace {

/// Moller-Trumbore intersection. Reports the geometric (unoriented) normal.
bool intersect_triangle(const Vec3& v0, const Vec3& v1, const Vec3& v2,
                        const Ray& ray, double t_min, double t_max,
                        double* t_out, Vec3* normal_out) {
  const Vec3 e1 = v1 - v0;
  const Vec3 e2 = v2 - v0;
  const Vec3 p = cross(ray.direction, e2);
  const double det = dot(e1, p);
  if (std::fabs(det) < 1e-14) return false;
  const double inv_det = 1.0 / det;
  const Vec3 s = ray.origin - v0;
  const double u = dot(s, p) * inv_det;
  if (u < 0.0 || u > 1.0) return false;
  const Vec3 q = cross(s, e1);
  const double v = dot(ray.direction, q) * inv_det;
  if (v < 0.0 || u + v > 1.0) return false;
  const double t = dot(e2, q) * inv_det;
  if (t <= t_min || t >= t_max) return false;
  *t_out = t;
  *normal_out = cross(e1, e2).normalized();
  return true;
}

}  // namespace

bool Triangle::intersect(const Ray& ray, double t_min, double t_max,
                         Hit* hit) const {
  double t;
  Vec3 normal;
  if (!intersect_triangle(v0_, v1_, v2_, ray, t_min, t_max, &t, &normal)) {
    return false;
  }
  hit->t = t;
  hit->point = ray.at(t);
  hit->set_normal(ray, normal);
  return true;
}

Aabb Triangle::bounds() const {
  const Vec3 pts[3] = {v0_, v1_, v2_};
  return Aabb::of_points(pts, 3).padded(1e-9);
}

bool Triangle::overlaps_box(const Aabb& box) const {
  return triangle_overlaps_box(v0_, v1_, v2_, box);
}

std::unique_ptr<Primitive> Triangle::transformed(const Transform& t) const {
  return std::make_unique<Triangle>(t.apply_point(v0_), t.apply_point(v1_),
                                    t.apply_point(v2_));
}

std::unique_ptr<Primitive> Triangle::clone() const {
  return std::make_unique<Triangle>(*this);
}

Mesh::Mesh(std::vector<Vec3> vertices, std::vector<int> indices)
    : vertices_(std::move(vertices)), indices_(std::move(indices)) {
  assert(indices_.size() % 3 == 0);
  const int tri_count = triangle_count();
  order_.resize(tri_count);
  for (int i = 0; i < tri_count; ++i) order_[i] = i;
  for (const Vec3& v : vertices_) bounds_.absorb(v);
  bounds_ = bounds_.padded(1e-9);
  if (tri_count > 0) {
    nodes_.reserve(static_cast<std::size_t>(2 * tri_count));
    std::vector<int> tris = order_;
    build_node(tris, 0, tri_count);
    order_ = tris;
  }
}

void Mesh::tri_vertices(int tri, Vec3* a, Vec3* b, Vec3* c) const {
  *a = vertices_[indices_[3 * tri + 0]];
  *b = vertices_[indices_[3 * tri + 1]];
  *c = vertices_[indices_[3 * tri + 2]];
}

Aabb Mesh::tri_bounds(int tri) const {
  Vec3 a, b, c;
  tri_vertices(tri, &a, &b, &c);
  const Vec3 pts[3] = {a, b, c};
  return Aabb::of_points(pts, 3);
}

int Mesh::build_node(std::vector<int>& tris, int begin, int end) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Aabb box;
  for (int i = begin; i < end; ++i) box.absorb(tri_bounds(tris[i]));
  nodes_[node_index].box = box.padded(1e-9);

  constexpr int kLeafSize = 4;
  if (end - begin <= kLeafSize) {
    nodes_[node_index].first = begin;
    nodes_[node_index].count = end - begin;
    return node_index;
  }
  // Median split along the widest axis of the centroid bounds.
  Aabb centroid_box;
  for (int i = begin; i < end; ++i) {
    centroid_box.absorb(tri_bounds(tris[i]).center());
  }
  const Vec3 ext = centroid_box.extent();
  int axis = 0;
  if (ext.y > ext.x) axis = 1;
  if (ext.z > ext[axis]) axis = 2;
  const int mid = (begin + end) / 2;
  std::nth_element(tris.begin() + begin, tris.begin() + mid,
                   tris.begin() + end, [&](int a, int b) {
                     return tri_bounds(a).center()[axis] <
                            tri_bounds(b).center()[axis];
                   });
  const int left = build_node(tris, begin, mid);
  const int right = build_node(tris, mid, end);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

bool Mesh::intersect(const Ray& ray, double t_min, double t_max,
                     Hit* hit) const {
  if (nodes_.empty()) return false;
  double limit = t_max;
  return intersect_node(0, ray, t_min, limit, hit);
}

bool Mesh::intersect_node(int node_index, const Ray& ray, double t_min,
                          double& t_max, Hit* hit) const {
  const BvhNode& node = nodes_[node_index];
  if (!node.box.intersect(ray, t_min, t_max, nullptr, nullptr)) return false;
  if (node.left < 0) {
    bool found = false;
    for (int i = 0; i < node.count; ++i) {
      const int tri = order_[node.first + i];
      Vec3 a, b, c;
      tri_vertices(tri, &a, &b, &c);
      double t;
      Vec3 normal;
      if (intersect_triangle(a, b, c, ray, t_min, t_max, &t, &normal)) {
        t_max = t;
        hit->t = t;
        hit->point = ray.at(t);
        hit->set_normal(ray, normal);
        found = true;
      }
    }
    return found;
  }
  const bool hit_left = intersect_node(node.left, ray, t_min, t_max, hit);
  const bool hit_right = intersect_node(node.right, ray, t_min, t_max, hit);
  return hit_left || hit_right;
}

bool Mesh::overlaps_box(const Aabb& box) const {
  if (!bounds_.overlaps(box)) return false;
  for (int tri = 0; tri < triangle_count(); ++tri) {
    Vec3 a, b, c;
    tri_vertices(tri, &a, &b, &c);
    if (triangle_overlaps_box(a, b, c, box)) return true;
  }
  return false;
}

std::unique_ptr<Primitive> Mesh::transformed(const Transform& t) const {
  std::vector<Vec3> verts;
  verts.reserve(vertices_.size());
  for (const Vec3& v : vertices_) verts.push_back(t.apply_point(v));
  return std::make_unique<Mesh>(std::move(verts), indices_);
}

std::unique_ptr<Primitive> Mesh::clone() const {
  return std::make_unique<Mesh>(vertices_, indices_);
}

}  // namespace now
