#include "src/geom/cylinder.h"

#include <algorithm>

#include "src/geom/overlap.h"

namespace now {

bool Cylinder::intersect(const Ray& ray, double t_min, double t_max,
                         Hit* hit) const {
  const Vec3 axis = p1_ - p0_;
  const double height = axis.length();
  if (height < 1e-12) return false;
  const Vec3 a = axis / height;  // unit axis

  // Decompose ray into components parallel/perpendicular to the axis.
  const Vec3 oc = ray.origin - p0_;
  const Vec3 d_perp = ray.direction - dot(ray.direction, a) * a;
  const Vec3 oc_perp = oc - dot(oc, a) * a;

  bool found = false;
  double best_t = t_max;
  Vec3 best_normal;

  // Lateral surface: |perp(o + t d)|^2 = r^2.
  const double qa = d_perp.length_squared();
  const double qb = 2.0 * dot(d_perp, oc_perp);
  const double qc = oc_perp.length_squared() - radius_ * radius_;
  if (qa > 1e-18) {
    const double disc = qb * qb - 4.0 * qa * qc;
    if (disc >= 0.0) {
      const double sq = std::sqrt(disc);
      for (const double t : {(-qb - sq) / (2 * qa), (-qb + sq) / (2 * qa)}) {
        if (t <= t_min || t >= best_t) continue;
        const Vec3 p = ray.at(t);
        const double h = dot(p - p0_, a);
        if (h < 0.0 || h > height) continue;
        best_t = t;
        best_normal = (p - (p0_ + a * h)) / radius_;
        found = true;
      }
    }
  }

  // End caps: discs at p0 (normal -a) and p1 (normal +a).
  const double denom = dot(ray.direction, a);
  if (std::fabs(denom) > 1e-12) {
    for (int cap = 0; cap < 2; ++cap) {
      const Vec3& c = cap == 0 ? p0_ : p1_;
      const Vec3 n = cap == 0 ? -a : a;
      const double t = dot(c - ray.origin, a) / denom;
      if (t <= t_min || t >= best_t) continue;
      const Vec3 p = ray.at(t);
      if ((p - c).length_squared() > radius_ * radius_) continue;
      best_t = t;
      best_normal = n;
      found = true;
    }
  }

  if (!found) return false;
  hit->t = best_t;
  hit->point = ray.at(best_t);
  hit->set_normal(ray, best_normal);
  return true;
}

Aabb Cylinder::bounds() const {
  // Tight bounds of a capped cylinder: per axis, extent of the endpoints
  // expanded by r*sqrt(1 - a[axis]^2) where a is the unit axis.
  const Vec3 axis = p1_ - p0_;
  const double len = axis.length();
  Vec3 pad{radius_, radius_, radius_};
  if (len > 1e-12) {
    const Vec3 a = axis / len;
    for (int i = 0; i < 3; ++i) {
      const double s = 1.0 - a[i] * a[i];
      pad[i] = radius_ * std::sqrt(std::max(0.0, s));
    }
  }
  return {min(p0_, p1_) - pad, max(p0_, p1_) + pad};
}

bool Cylinder::overlaps_box(const Aabb& box) const {
  if (!bounds().overlaps(box)) return false;
  return segment_box_distance(p0_, p1_, box) <= radius_ + 1e-9;
}

std::unique_ptr<Primitive> Cylinder::transformed(const Transform& t) const {
  return std::make_unique<Cylinder>(t.apply_point(p0_), t.apply_point(p1_),
                                    radius_ * t.scale);
}

std::unique_ptr<Primitive> Cylinder::clone() const {
  return std::make_unique<Cylinder>(*this);
}

}  // namespace now
