#pragma once

#include "src/geom/primitive.h"

namespace now {

class Sphere final : public Primitive {
 public:
  Sphere(const Vec3& center, double radius) : center_(center), radius_(radius) {}

  ShapeType type() const override { return ShapeType::kSphere; }
  bool intersect(const Ray& ray, double t_min, double t_max,
                 Hit* hit) const override;
  Aabb bounds() const override;
  bool overlaps_box(const Aabb& box) const override;
  std::unique_ptr<Primitive> transformed(const Transform& t) const override;
  std::unique_ptr<Primitive> clone() const override;

  const Vec3& center() const { return center_; }
  double radius() const { return radius_; }

 private:
  Vec3 center_;
  double radius_;
};

}  // namespace now
