// Shared geometric predicates for primitive-vs-box overlap.
#pragma once

#include "src/math/aabb.h"
#include "src/math/transform.h"
#include "src/math/vec3.h"

namespace now {

/// Squared distance from a point to an axis-aligned box (0 when inside).
double point_box_distance_squared(const Vec3& p, const Aabb& box);

/// Minimum distance between the segment [a, b] and `box` (0 on overlap).
/// Exact to within the convergence of a ternary search on the convex
/// distance-along-segment function (~1e-9 relative).
double segment_box_distance(const Vec3& a, const Vec3& b, const Aabb& box);

/// Exact plane-vs-box overlap: true when the plane n·x = d passes through
/// the box (signed corner distances straddle or touch zero).
bool plane_overlaps_box(const Vec3& normal, double d, const Aabb& box);

/// Exact triangle-vs-box overlap (separating axis test, Akenine-Moller).
bool triangle_overlaps_box(const Vec3& v0, const Vec3& v1, const Vec3& v2,
                           const Aabb& box);

/// Exact oriented-box-vs-axis-aligned-box overlap (separating axis test).
/// The oriented box is given by center, rotation and per-axis half extents.
bool oriented_box_overlaps_box(const Vec3& center, const Mat3& rotation,
                               const Vec3& half_extents, const Aabb& box);

}  // namespace now
