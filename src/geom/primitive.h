// Primitive interface.
//
// Primitives live in *world space*: animated objects re-instantiate their
// local-space primitive through the frame's Transform (a moved sphere is just
// a sphere with a different center). This keeps both ray intersection and
// the change detector's primitive-vs-voxel overlap tests free of inverse
// transforms.
#pragma once

#include <memory>

#include "src/math/aabb.h"
#include "src/math/ray.h"
#include "src/math/transform.h"
#include "src/math/vec3.h"

namespace now {

/// Used by the scene parser and tests to identify concrete primitive types.
enum class ShapeType : std::uint8_t {
  kSphere,
  kPlane,
  kBox,
  kCylinder,
  kDisc,
  kTriangle,
  kMesh,
};

const char* to_string(ShapeType type);

struct Hit {
  double t = kRayInfinity;
  Vec3 point;
  Vec3 normal;       // unit, always opposing the incident ray
  bool front_face = true;  // false when the ray started inside the surface
  int object_id = -1;      // filled in by the scene lookup

  /// Orient `outward` against the ray and record sidedness.
  void set_normal(const Ray& ray, const Vec3& outward) {
    front_face = dot(ray.direction, outward) < 0.0;
    normal = front_face ? outward : -outward;
  }
};

class Primitive {
 public:
  virtual ~Primitive() = default;

  virtual ShapeType type() const = 0;

  /// Nearest intersection with t in (t_min, t_max). Returns false on miss.
  virtual bool intersect(const Ray& ray, double t_min, double t_max,
                         Hit* hit) const = 0;

  /// World-space bounds. Unbounded primitives (planes) return an empty box
  /// and report is_bounded() == false.
  virtual Aabb bounds() const = 0;
  virtual bool is_bounded() const { return true; }

  /// Conservative primitive-vs-box overlap: must return true whenever the
  /// primitive's surface or interior touches `box`; may return true on some
  /// near misses. The change detector rasterizes footprints with this.
  virtual bool overlaps_box(const Aabb& box) const { return bounds().overlaps(box); }

  /// A copy of this primitive moved by `t` (world = t(local)).
  virtual std::unique_ptr<Primitive> transformed(const Transform& t) const = 0;

  virtual std::unique_ptr<Primitive> clone() const = 0;
};

}  // namespace now
