#include "src/geom/disc.h"

#include <algorithm>

namespace now {

bool Disc::intersect(const Ray& ray, double t_min, double t_max,
                     Hit* hit) const {
  const double denom = dot(normal_, ray.direction);
  if (std::fabs(denom) < 1e-12) return false;
  const double t = dot(center_ - ray.origin, normal_) / denom;
  if (t <= t_min || t >= t_max) return false;
  const Vec3 p = ray.at(t);
  if ((p - center_).length_squared() > radius_ * radius_) return false;
  hit->t = t;
  hit->point = p;
  hit->set_normal(ray, normal_);
  return true;
}

Aabb Disc::bounds() const {
  Vec3 pad;
  for (int i = 0; i < 3; ++i) {
    const double s = 1.0 - normal_[i] * normal_[i];
    pad[i] = radius_ * std::sqrt(std::max(0.0, s)) + 1e-9;
  }
  return {center_ - pad, center_ + pad};
}

std::unique_ptr<Primitive> Disc::transformed(const Transform& t) const {
  return std::make_unique<Disc>(t.apply_point(center_),
                                t.apply_direction(normal_), radius_ * t.scale);
}

std::unique_ptr<Primitive> Disc::clone() const {
  return std::make_unique<Disc>(*this);
}

}  // namespace now
