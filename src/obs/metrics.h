// Metrics registry: the farm's canonical aggregation path for counters,
// gauges and histograms. Instruments are created on first use by name and
// are safe to update concurrently from any thread (the wall-clock runtimes
// update from one thread per rank plus reader/timer threads).
//
// A registry constructed disabled hands every caller a shared no-op
// instrument: no allocation, no map lookup, and nothing ever appears in its
// snapshot — instrumented code needs no `if (enabled)` guards.
//
// Snapshots are plain data (sorted maps) with a stable JSON rendering, so
// two runs with identical workloads produce byte-identical metrics files —
// the property that makes BENCH_*.json trajectories machine-comparable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace now {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one explicit overflow bucket is appended. The layout is frozen at
/// creation so bucket indices stay comparable across runs and PRs.
///
/// Out-of-range samples are not silently clamped into the last bounded
/// bucket: they land in the overflow bucket and are separately counted by
/// overflow(), which snapshots surface as a `<name>.overflow` counter. A NaN
/// sample counts as overflow and is excluded from sum().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Samples above the last bound (or NaN) — the overflow bucket's count.
  std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }

  /// Default layouts (exponential): seconds from 1 ms to ~17 min, and bytes
  /// from 64 B to 16 MB.
  static const std::vector<double>& default_seconds_bounds();
  static const std::vector<double>& default_bytes_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<double> sum_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::uint64_t overflow = 0;  // == counts.back()
  double sum = 0.0;
};

/// Point-in-time copy of a registry's instruments. Plain data: safe to keep
/// after the registry is gone (FarmResult::metrics outlives the farm run).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Value lookups that default to zero for absent names, so callers can
  /// read backend-specific metrics (e.g. sim.*) without checking presence.
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Deterministic JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names sorted and numbers printed with a fixed
  /// format.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// The bucket layout is fixed by the first call for a name; later calls
  /// return the existing instrument regardless of `bounds`.
  Histogram& histogram(
      const std::string& name,
      const std::vector<double>& bounds = Histogram::default_seconds_bounds());

  MetricsSnapshot snapshot() const;

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace now
