// StatusServer: a tiny HTTP/1.0 listener giving curl-able visibility into a
// running farm. Two routes:
//
//   GET /metrics  -> Prometheus text exposition of the MetricsRegistry
//   GET /status   -> JSON the scheduler publishes each sample tick
//                    (per-worker lease/task state, shard commit counts,
//                    queue depth, recent throughput)
//
// The server owns one accept thread on 127.0.0.1 (port 0 = ephemeral; the
// bound port is queryable for tests). Responses are produced by caller-
// supplied providers, so the server knows nothing about farm internals —
// providers must be thread-safe (registry snapshots are; the scheduler
// publishes /status through the mutex-guarded StatusBoard below).
//
// Under the sim runtime the server is simply never constructed: the live
// plane is inert and cannot perturb a deterministic run.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "src/obs/metrics.h"

namespace now {

/// Renders a metrics snapshot in Prometheus text exposition format 0.0.4:
/// dots become underscores, counters get a `# TYPE ... counter` header,
/// gauges `gauge`, histograms the `_bucket{le="..."}` / `_sum` / `_count`
/// triplet (with the overflow bucket as le="+Inf"). Deterministic: sorted
/// names, fixed float formatting.
std::string prometheus_text(const MetricsSnapshot& snap);

/// Mutex-guarded mailbox between the scheduler (writer) and the status
/// endpoint (reader): the scheduler renders its /status JSON once per
/// sample tick and publishes it here; readers get the latest snapshot.
class StatusBoard {
 public:
  void publish(std::string json);
  std::string latest() const;

 private:
  mutable std::mutex mu_;
  std::string json_ = "{}\n";
};

class StatusServer {
 public:
  using Provider = std::function<std::string()>;

  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port) and starts the
  /// accept thread. Check ok() — a failed bind leaves the server inert.
  StatusServer(int port, Provider metrics_text, Provider status_json);
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  bool ok() const;
  /// The actually bound port (differs from the requested one when 0).
  int port() const;
  std::int64_t requests_served() const;

  /// Stops the accept thread and closes the socket (idempotent).
  void stop();

  struct Impl;  // opaque; public only so the .cpp's helpers can name it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace now
