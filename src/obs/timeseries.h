// TimeSeriesSampler: periodic snapshots of a MetricsRegistry's counters and
// gauges into bounded per-series ring buffers — the farm's recent history,
// cheap enough to keep always and small enough to never grow (capacity
// samples per series, oldest evicted first).
//
// The master drives sampling from its own message loop (a self-timer under
// every runtime), so under SimRuntime the sample clock is virtual time and
// the retained series are bit-reproducible. Readers (the status endpoint)
// take the lock briefly and copy; the sampler itself never blocks on them.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace now {

struct TimePoint {
  double t = 0.0;      // seconds (virtual under sim, wall otherwise)
  double value = 0.0;  // counter or gauge value at t
};

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(std::size_t capacity_per_series = 512)
      : capacity_(capacity_per_series < 2 ? 2 : capacity_per_series) {}

  /// Records every counter and gauge in `snap` at time `t`. Histograms are
  /// tracked through their count/sum would-be series only if exported as
  /// gauges by the caller; the sampler itself stores scalars only.
  void sample(double t, const MetricsSnapshot& snap);

  /// Series names seen so far, ascending.
  std::vector<std::string> series_names() const;

  /// Retained points for one series, oldest first (empty if unknown).
  std::vector<TimePoint> series(const std::string& name) const;

  /// Mean increase per second of a (monotone) counter series over its
  /// retained window; 0 when fewer than two samples or no time elapsed.
  double rate_per_second(const std::string& name) const;

  std::int64_t ticks() const;
  std::size_t capacity_per_series() const { return capacity_; }

 private:
  struct Ring {
    std::vector<TimePoint> buf;
    std::size_t next = 0;
    bool wrapped = false;
  };

  void push(const std::string& name, TimePoint p);
  std::vector<TimePoint> ordered(const Ring& ring) const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Ring> series_;
  std::int64_t ticks_ = 0;
};

}  // namespace now
