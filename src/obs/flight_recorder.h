// FlightRecorder: a bounded in-memory ring of the most recent trace events
// per rank, kept even when export tracing is off, so a crash still leaves a
// readable tail of what each rank was doing. An EventTracer mirrors every
// event it sees into the recorder (EventTracer::set_flight_recorder); on
// abort — a fault-injected death, a fatal signal, or an explicit flush —
// each rank's ring is written as a standalone Chrome trace file
// `trace-crash-<rank>.json` in the chosen directory.
//
// Memory is strictly bounded: `capacity` events per rank, oldest evicted
// first. Crash trace files are diagnostics, never gated artifacts: a
// fault-injected death flushes the dead rank's ring on every backend (when a
// flush directory is configured), and frames/journals/metrics are untouched.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/event_trace.h"

namespace now {

class FlightRecorder {
 public:
  explicit FlightRecorder(int capacity_per_rank = 4096)
      : capacity_(capacity_per_rank < 1 ? 1 : capacity_per_rank) {}

  /// Appends `ev` to its rank's ring, evicting the oldest event when full.
  void record(const TraceEvent& ev);

  /// The rank's retained events, oldest first.
  std::vector<TraceEvent> rank_events(int rank) const;

  /// Ranks with at least one retained event, ascending.
  std::vector<int> ranks() const;

  std::int64_t events_recorded() const;
  std::int64_t events_evicted() const;
  int capacity_per_rank() const { return capacity_; }

  /// Path a flush for `rank` writes to: `<dir>/trace-crash-<rank>.json`.
  static std::string crash_trace_path(const std::string& dir, int rank);

  /// Writes `rank`'s ring as a standalone Chrome trace file. The file is one
  /// rank's partial view — cross-rank flow starts and span partners may live
  /// on other ranks or have been evicted — so it is loadable JSON but not
  /// held to the merged-trace validator's flow/span-balance rules. Returns
  /// false when the rank has no events or the file cannot be written.
  bool flush_rank(int rank, const std::string& dir) const;

  /// Flushes every populated rank; returns the number of files written.
  int flush_all(const std::string& dir) const;

  /// Directory that implicit flushes (fault-injected deaths) write into.
  /// "" (the default) disables implicit flushing.
  void set_flush_dir(const std::string& dir);
  std::string flush_dir() const;

 private:
  struct Ring {
    std::vector<TraceEvent> buf;  // capacity_ slots once wrapped
    std::size_t next = 0;         // insertion cursor, valid once wrapped
    bool wrapped = false;
  };

  const int capacity_;
  mutable std::mutex mu_;
  std::string flush_dir_;
  std::map<int, Ring> rings_;
  std::int64_t recorded_ = 0;
  std::int64_t evicted_ = 0;
};

/// Installs process-wide fatal-signal handlers (SIGSEGV, SIGBUS, SIGABRT,
/// SIGFPE, SIGTERM) that flush `recorder` into `dir` before re-raising the
/// signal with default disposition. Best-effort: the flush allocates, which
/// is not async-signal-safe, but a crash dump that usually works beats none.
/// Passing nullptr uninstalls. Only one recorder can be armed per process.
void install_crash_flush(FlightRecorder* recorder, const std::string& dir);

}  // namespace now
