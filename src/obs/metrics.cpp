#include "src/obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace now {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  // NaN would violate lower_bound's ordering requirements and poison the
  // sum; route it straight to the overflow bucket, excluded from sum().
  const bool is_nan = value != value;
  const std::size_t idx =
      is_nan ? bounds_.size()
             : static_cast<std::size_t>(
                   std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                   bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (idx == bounds_.size()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  }
  if (is_nan) return;
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

std::vector<double> exponential_bounds(double lo, double factor, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double v = lo;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

}  // namespace

const std::vector<double>& Histogram::default_seconds_bounds() {
  // 1 ms .. ~1048 s in ×2 steps (21 bounds).
  static const std::vector<double> kBounds =
      exponential_bounds(1e-3, 2.0, 21);
  return kBounds;
}

const std::vector<double>& Histogram::default_bytes_bounds() {
  // 64 B .. 16 MB in ×4 steps (10 bounds).
  static const std::vector<double> kBounds = exponential_bounds(64.0, 4.0, 10);
  return kBounds;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Shortest round-trip double formatting via %.17g would print noise digits;
// %.12g is stable, deterministic, and more precision than any metric needs.
void append_double(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(&out, name);
    out += ": ";
    append_double(&out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(&out, name);
    out += ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      append_double(&out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"overflow\": " + std::to_string(h.overflow) + ", \"sum\": ";
    append_double(&out, h.sum);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

// Shared sinks for disabled registries: updates land here and are never
// read. One set per process keeps the disabled path allocation-free.
Counter& noop_counter() {
  static Counter c;
  return c;
}
Gauge& noop_gauge() {
  static Gauge g;
  return g;
}
Histogram& noop_histogram() {
  static Histogram h{{}};  // single overflow bucket
  return h;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  if (!enabled_) return noop_counter();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (!enabled_) return noop_gauge();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  if (!enabled_) return noop_histogram();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts = h->counts();
    hs.count = h->count();
    hs.overflow = h->overflow();
    hs.sum = h->sum();
    // Out-of-range samples surface as an explicit counter next to the
    // histogram, so overflow is visible without reading bucket arrays.
    if (hs.overflow > 0) snap.counters[name + ".overflow"] = hs.overflow;
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

}  // namespace now
