// Structured event tracing: spans (B/E pairs), instant events, complete
// (X) events and cross-rank flow events (s/t/f chains) recorded per actor
// rank, timestamped in whatever clock the runtime runs on — virtual seconds
// under SimRuntime (bit-reproducible), wall seconds under the thread/TCP
// runtimes.
//
// The export format is Chrome trace-event JSON ("traceEvents" array with
// microsecond timestamps, pid 0, tid = rank), loadable in Perfetto or
// chrome://tracing. Events are exported sorted per rank by timestamp with
// insertion order as the tie-break, so a deterministic run produces a
// byte-identical trace file.
//
// Flow events carry a 64-bit flow id minted by the scheduler at task
// assignment (see trace_flow_id); Chrome binds s/t/f events with the same
// (cat, name, id) into one arrow chain, so a frame's life — assign, render,
// send, commit — renders as a single connected line across rank timelines.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace now {

class FlightRecorder;

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
    kComplete = 'X',
    kFlowStart = 's',
    kFlowStep = 't',
    kFlowEnd = 'f',
  };

  /// One key/value argument. Keys and categories are string literals so an
  /// event costs one small-vector allocation at most.
  struct Arg {
    const char* key;
    std::int64_t value;
  };

  Phase phase = Phase::kInstant;
  int rank = 0;             // exported as tid
  double ts_seconds = 0.0;  // virtual (sim) or wall (threads/tcp)
  double dur_seconds = 0.0; // kComplete only
  std::uint64_t flow_id = 0;  // kFlowStart/Step/End only
  const char* cat = "";     // e.g. "frame", "net", "task", "lease", "fault"
  const char* name = "";
  std::vector<Arg> args;
};

/// The per-frame flow id: a task's trace context (minted nonzero by the
/// scheduler at assignment and carried through every protocol message)
/// combined with the frame number. Frame counts are far below 2^24, so the
/// id is collision-free and still exact in a JSON double.
inline std::uint64_t trace_flow_id(std::uint64_t trace_ctx,
                                   std::int32_t frame) {
  return (trace_ctx << 24) | static_cast<std::uint32_t>(frame & 0xFFFFFF);
}

class EventTracer {
 public:
  explicit EventTracer(bool enabled = false) : enabled_(enabled) {}

  /// True when events are observable — recorded for export, mirrored into a
  /// flight-recorder ring, or both. A fully disabled tracer returns from
  /// every record call before taking the lock.
  bool enabled() const { return enabled_ || flight_ != nullptr; }

  /// Mirrors every recorded event into `fr`'s bounded per-rank rings (in
  /// addition to — or, when export tracing is off, instead of — the export
  /// buffer). Call before actors are constructed: they snapshot enabled().
  void set_flight_recorder(FlightRecorder* fr) { flight_ = fr; }
  FlightRecorder* flight_recorder() const { return flight_; }

  void begin(int rank, const char* cat, const char* name, double ts,
             std::vector<TraceEvent::Arg> args = {});
  void end(int rank, const char* cat, const char* name, double ts,
           std::vector<TraceEvent::Arg> args = {});
  void instant(int rank, const char* cat, const char* name, double ts,
               std::vector<TraceEvent::Arg> args = {});
  void complete(int rank, const char* cat, const char* name, double ts,
                double dur, std::vector<TraceEvent::Arg> args = {});

  /// Cross-rank flow chain: one start at assignment, steps at every hop,
  /// one end at the authoritative commit. All three share cat "flow" and
  /// name "frame" — Chrome binds flow arrows on (cat, name, id).
  void flow_start(int rank, std::uint64_t id, double ts,
                  std::vector<TraceEvent::Arg> args = {});
  void flow_step(int rank, std::uint64_t id, double ts,
                 std::vector<TraceEvent::Arg> args = {});
  void flow_end(int rank, std::uint64_t id, double ts,
                std::vector<TraceEvent::Arg> args = {});

  std::size_t size() const;

  /// All events, stable-sorted by (rank, timestamp): within one rank the
  /// timeline is monotone, with insertion order breaking ties.
  std::vector<TraceEvent> sorted_events() const;

 private:
  void record(TraceEvent ev);

  const bool enabled_;
  FlightRecorder* flight_ = nullptr;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Renders events as a Chrome trace-event JSON document. Deterministic:
/// identical event lists yield identical bytes.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Validates a Chrome trace-event JSON document: well-formed JSON, a
/// top-level "traceEvents" array, every event carrying ph/tid/ts/name,
/// timestamps non-decreasing per tid, B/E span pairs balanced per tid, flow
/// events carrying an id, and every flow id's earliest event being a flow
/// start (requeued tasks may re-start a flow; a step or end with no start
/// is a broken chain). On failure returns false and describes the first
/// problem in `*error`.
bool validate_chrome_trace(const std::string& json, std::string* error);

/// Bare JSON well-formedness check (used for metrics files too).
bool json_syntax_ok(const std::string& json, std::string* error);

/// Connectivity census over flow chains: a chain is connected when it has a
/// start, at least one step, an end, and spans at least two ranks — i.e. the
/// frame's life is traceable scheduler -> worker -> committer in one arrow
/// chain. Chains without an end (speculation losers, reclaimed tasks) count
/// toward `total` only.
struct FlowChainStats {
  std::int64_t total = 0;      // distinct flow ids
  std::int64_t connected = 0;  // ids with s + t + f across >= 2 ranks
};
FlowChainStats flow_chain_stats(const std::vector<TraceEvent>& events);

}  // namespace now
