// Structured event tracing: spans (B/E pairs), instant events and complete
// (X) events recorded per actor rank, timestamped in whatever clock the
// runtime runs on — virtual seconds under SimRuntime (bit-reproducible),
// wall seconds under the thread/TCP runtimes.
//
// The export format is Chrome trace-event JSON ("traceEvents" array with
// microsecond timestamps, pid 0, tid = rank), loadable in Perfetto or
// chrome://tracing. Events are exported sorted per rank by timestamp with
// insertion order as the tie-break, so a deterministic run produces a
// byte-identical trace file.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace now {

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
    kComplete = 'X',
  };

  /// One key/value argument. Keys and categories are string literals so an
  /// event costs one small-vector allocation at most.
  struct Arg {
    const char* key;
    std::int64_t value;
  };

  Phase phase = Phase::kInstant;
  int rank = 0;             // exported as tid
  double ts_seconds = 0.0;  // virtual (sim) or wall (threads/tcp)
  double dur_seconds = 0.0; // kComplete only
  const char* cat = "";     // e.g. "frame", "net", "task", "lease", "fault"
  const char* name = "";
  std::vector<Arg> args;
};

class EventTracer {
 public:
  explicit EventTracer(bool enabled = false) : enabled_(enabled) {}

  /// Disabled tracer: every record call returns before taking the lock.
  bool enabled() const { return enabled_; }

  void begin(int rank, const char* cat, const char* name, double ts,
             std::vector<TraceEvent::Arg> args = {});
  void end(int rank, const char* cat, const char* name, double ts,
           std::vector<TraceEvent::Arg> args = {});
  void instant(int rank, const char* cat, const char* name, double ts,
               std::vector<TraceEvent::Arg> args = {});
  void complete(int rank, const char* cat, const char* name, double ts,
                double dur, std::vector<TraceEvent::Arg> args = {});

  std::size_t size() const;

  /// All events, stable-sorted by (rank, timestamp): within one rank the
  /// timeline is monotone, with insertion order breaking ties.
  std::vector<TraceEvent> sorted_events() const;

 private:
  void record(TraceEvent ev);

  const bool enabled_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Renders events as a Chrome trace-event JSON document. Deterministic:
/// identical event lists yield identical bytes.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Validates a Chrome trace-event JSON document: well-formed JSON, a
/// top-level "traceEvents" array, every event carrying ph/tid/ts/name,
/// timestamps non-decreasing per tid, and B/E span pairs balanced per tid.
/// On failure returns false and describes the first problem in `*error`.
bool validate_chrome_trace(const std::string& json, std::string* error);

/// Bare JSON well-formedness check (used for metrics files too).
bool json_syntax_ok(const std::string& json, std::string* error);

}  // namespace now
