#include "src/obs/straggler.h"

#include <cmath>

namespace now {

double StragglerDetector::fleet_mean_locked() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& [worker, s] : stats_) {
    if (s.n >= config_.min_samples) {
      sum += s.ewma;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

bool StragglerDetector::observe(int worker, double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN/negative: treat as instant
  Stats& s = stats_[worker];
  if (s.n == 0) {
    s.ewma = seconds;
    s.dev = 0.0;
  } else {
    const double a = config_.alpha;
    s.dev = (1.0 - a) * s.dev + a * std::fabs(seconds - s.ewma);
    s.ewma = (1.0 - a) * s.ewma + a * seconds;
  }
  ++s.n;

  // Flag against the fleet: clearly above the mean AND outside the worker's
  // own noise band, so a uniformly-noisy fleet flags nobody. Requires at
  // least two qualifying workers — "slower than whom?" needs a peer.
  const double mean = fleet_mean_locked();
  int qualifying = 0;
  for (const auto& [w, st] : stats_) {
    if (st.n >= config_.min_samples) ++qualifying;
  }
  bool transition = false;
  if (s.n >= config_.min_samples && qualifying >= 2 && mean > 0.0) {
    if (!s.flagged && s.ewma > mean * config_.threshold &&
        s.ewma - mean > s.dev) {
      s.flagged = true;
      transition = true;
      ++transitions_;
    } else if (s.flagged && s.ewma < mean * config_.clear_ratio) {
      s.flagged = false;
    }
  }
  return transition;
}

bool StragglerDetector::is_straggler(int worker) const {
  const auto it = stats_.find(worker);
  return it != stats_.end() && it->second.flagged;
}

std::vector<int> StragglerDetector::stragglers() const {
  std::vector<int> out;
  for (const auto& [worker, s] : stats_) {
    if (s.flagged) out.push_back(worker);
  }
  return out;
}

double StragglerDetector::expected_seconds(int worker) const {
  const auto it = stats_.find(worker);
  if (it != stats_.end() && it->second.n >= config_.min_samples) {
    return it->second.ewma > 0.0 ? it->second.ewma : 1.0;
  }
  const double mean = fleet_mean_locked();
  return mean > 0.0 ? mean : 1.0;
}

double StragglerDetector::fleet_mean_seconds() const {
  return fleet_mean_locked();
}

int StragglerDetector::samples(int worker) const {
  const auto it = stats_.find(worker);
  return it == stats_.end() ? 0 : it->second.n;
}

std::vector<StragglerDetector::Snapshot> StragglerDetector::snapshot() const {
  std::vector<Snapshot> out;
  out.reserve(stats_.size());
  for (const auto& [worker, s] : stats_) {
    out.push_back(Snapshot{worker, s.ewma, s.dev, s.n, s.flagged});
  }
  return out;
}

void StragglerDetector::restore(const std::vector<Snapshot>& snapshots) {
  for (const Snapshot& s : snapshots) {
    stats_[s.worker] = Stats{s.ewma, s.dev, s.n, s.flagged};
  }
}

}  // namespace now
