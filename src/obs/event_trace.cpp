#include "src/obs/event_trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/obs/flight_recorder.h"

namespace now {

void EventTracer::record(TraceEvent ev) {
  // The flight recorder sees every event (bounded ring, no growth); the
  // export buffer only grows when export tracing was requested.
  if (flight_ != nullptr) flight_->record(ev);
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void EventTracer::begin(int rank, const char* cat, const char* name, double ts,
                        std::vector<TraceEvent::Arg> args) {
  if (!enabled()) return;
  record({TraceEvent::Phase::kBegin, rank, ts, 0.0, 0, cat, name,
          std::move(args)});
}

void EventTracer::end(int rank, const char* cat, const char* name, double ts,
                      std::vector<TraceEvent::Arg> args) {
  if (!enabled()) return;
  record({TraceEvent::Phase::kEnd, rank, ts, 0.0, 0, cat, name,
          std::move(args)});
}

void EventTracer::instant(int rank, const char* cat, const char* name,
                          double ts, std::vector<TraceEvent::Arg> args) {
  if (!enabled()) return;
  record({TraceEvent::Phase::kInstant, rank, ts, 0.0, 0, cat, name,
          std::move(args)});
}

void EventTracer::complete(int rank, const char* cat, const char* name,
                           double ts, double dur,
                           std::vector<TraceEvent::Arg> args) {
  if (!enabled()) return;
  record({TraceEvent::Phase::kComplete, rank, ts, dur, 0, cat, name,
          std::move(args)});
}

void EventTracer::flow_start(int rank, std::uint64_t id, double ts,
                             std::vector<TraceEvent::Arg> args) {
  if (!enabled()) return;
  record({TraceEvent::Phase::kFlowStart, rank, ts, 0.0, id, "flow", "frame",
          std::move(args)});
}

void EventTracer::flow_step(int rank, std::uint64_t id, double ts,
                            std::vector<TraceEvent::Arg> args) {
  if (!enabled()) return;
  record({TraceEvent::Phase::kFlowStep, rank, ts, 0.0, id, "flow", "frame",
          std::move(args)});
}

void EventTracer::flow_end(int rank, std::uint64_t id, double ts,
                           std::vector<TraceEvent::Arg> args) {
  if (!enabled()) return;
  record({TraceEvent::Phase::kFlowEnd, rank, ts, 0.0, id, "flow", "frame",
          std::move(args)});
}

std::size_t EventTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> EventTracer::sorted_events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.ts_seconds < b.ts_seconds;
                   });
  return out;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[64];
  bool first = true;
  for (const TraceEvent& ev : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"ph\": \"";
    out.push_back(static_cast<char>(ev.phase));
    out += "\", \"pid\": 0, \"tid\": ";
    out += std::to_string(ev.rank);
    // Chrome expects microseconds; three decimals keeps nanosecond detail
    // while staying a fixed-width deterministic rendering.
    std::snprintf(buf, sizeof(buf), "%.3f", ev.ts_seconds * 1e6);
    out += ", \"ts\": ";
    out += buf;
    if (ev.phase == TraceEvent::Phase::kComplete) {
      std::snprintf(buf, sizeof(buf), "%.3f", ev.dur_seconds * 1e6);
      out += ", \"dur\": ";
      out += buf;
    }
    if (ev.phase == TraceEvent::Phase::kInstant) out += ", \"s\": \"t\"";
    if (ev.phase == TraceEvent::Phase::kFlowStart ||
        ev.phase == TraceEvent::Phase::kFlowStep ||
        ev.phase == TraceEvent::Phase::kFlowEnd) {
      out += ", \"id\": ";
      out += std::to_string(ev.flow_id);
      // Bind the arrow head to the enclosing slice, matching how the start
      // binds to the slice it was emitted inside.
      if (ev.phase == TraceEvent::Phase::kFlowEnd) out += ", \"bp\": \"e\"";
    }
    out += ", \"cat\": \"";
    out += ev.cat;
    out += "\", \"name\": \"";
    out += ev.name;
    out += "\"";
    if (!ev.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"";
        out += ev.args[i].key;
        out += "\": ";
        out += std::to_string(ev.args[i].value);
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate our own exports (and any
// well-formed document): no comments, UTF-8 passthrough, doubles via strtod.

namespace {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : p_(text.data()), end_(text.data() + text.size()), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ && error_->empty()) *error_ = what;
    return false;
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool literal(const char* s) {
    const char* q = p_;
    while (*s) {
      if (q == end_ || *q != *s) return false;
      ++q;
      ++s;
    }
    p_ = q;
    return true;
  }

  bool string(std::string* out) {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return fail("unterminated escape");
        switch (*p_) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (end_ - p_ < 5) return fail("bad \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(p_[i]))) {
                return fail("bad \\u escape");
              }
            }
            out->push_back('?');  // validation only; no codepoint decoding
            p_ += 4;
            break;
          }
          default: return fail("unknown escape");
        }
        ++p_;
      } else if (static_cast<unsigned char>(*p_) < 0x20) {
        return fail("raw control character in string");
      } else {
        out->push_back(*p_);
        ++p_;
      }
    }
    if (p_ == end_) return fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool number(double* out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return fail("expected number");
    }
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return fail("bad fraction");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return fail("bad exponent");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    *out = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  bool value(JsonValue* out) {
    if (p_ == end_) return fail("unexpected end of document");
    switch (*p_) {
      case '{': {
        out->kind = JsonValue::kObject;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!string(&key)) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          ++p_;
          skip_ws();
          JsonValue v;
          if (!value(&v)) return false;
          out->object.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        out->kind = JsonValue::kArray;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        while (true) {
          skip_ws();
          JsonValue v;
          if (!value(&v)) return false;
          out->array.push_back(std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->kind = JsonValue::kString;
        return string(&out->string);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->kind = JsonValue::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->kind = JsonValue::kNull;
        return true;
      default:
        out->kind = JsonValue::kNumber;
        return number(&out->number);
    }
  }

  const char* p_;
  const char* end_;
  std::string* error_;
};

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  if (error) error->clear();
  JsonParser parser(text, error);
  return parser.parse(out);
}

}  // namespace

bool json_syntax_ok(const std::string& json, std::string* error) {
  JsonValue root;
  return parse_json(json, &root, error);
}

bool validate_chrome_trace(const std::string& json, std::string* error) {
  std::string parse_error;
  JsonValue root;
  if (!parse_json(json, &root, &parse_error)) {
    if (error) *error = "invalid JSON: " + parse_error;
    return false;
  }
  const auto set_error = [&](const std::string& what) {
    if (error) *error = what;
    return false;
  };
  if (root.kind != JsonValue::kObject) {
    return set_error("root is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    return set_error("missing traceEvents array");
  }
  std::map<int, double> last_ts;
  std::map<int, std::vector<std::string>> open_spans;
  struct FlowSeen {
    double min_start_ts = 0.0;
    double min_other_ts = 0.0;
    bool has_start = false;
    bool has_other = false;
  };
  std::map<std::uint64_t, FlowSeen> flows;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (ev.kind != JsonValue::kObject) return set_error(at + "not an object");
    const JsonValue* ph = ev.find("ph");
    const JsonValue* tid = ev.find("tid");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* name = ev.find("name");
    if (ph == nullptr || ph->kind != JsonValue::kString ||
        ph->string.size() != 1) {
      return set_error(at + "missing or malformed ph");
    }
    if (tid == nullptr || tid->kind != JsonValue::kNumber) {
      return set_error(at + "missing tid");
    }
    if (ts == nullptr || ts->kind != JsonValue::kNumber) {
      return set_error(at + "missing ts");
    }
    if (name == nullptr || name->kind != JsonValue::kString) {
      return set_error(at + "missing name");
    }
    const int rank = static_cast<int>(tid->number);
    const auto it = last_ts.find(rank);
    if (it != last_ts.end() && ts->number < it->second) {
      return set_error(at + "timestamps not monotone for tid " +
                       std::to_string(rank));
    }
    last_ts[rank] = ts->number;
    const char phase = ph->string[0];
    if (phase == 'B') {
      open_spans[rank].push_back(name->string);
    } else if (phase == 'E') {
      auto& stack = open_spans[rank];
      if (stack.empty()) {
        return set_error(at + "E without matching B on tid " +
                         std::to_string(rank));
      }
      if (stack.back() != name->string) {
        return set_error(at + "E name '" + name->string +
                         "' does not match open span '" + stack.back() + "'");
      }
      stack.pop_back();
    } else if (phase == 'X') {
      const JsonValue* dur = ev.find("dur");
      if (dur == nullptr || dur->kind != JsonValue::kNumber) {
        return set_error(at + "X event missing dur");
      }
    } else if (phase == 's' || phase == 't' || phase == 'f') {
      const JsonValue* id = ev.find("id");
      if (id == nullptr || id->kind != JsonValue::kNumber) {
        return set_error(at + "flow event missing id");
      }
      FlowSeen& seen = flows[static_cast<std::uint64_t>(id->number)];
      if (phase == 's') {
        if (!seen.has_start || ts->number < seen.min_start_ts) {
          seen.min_start_ts = ts->number;
        }
        seen.has_start = true;
      } else {
        if (!seen.has_other || ts->number < seen.min_other_ts) {
          seen.min_other_ts = ts->number;
        }
        seen.has_other = true;
      }
    }
  }
  for (const auto& [rank, stack] : open_spans) {
    if (!stack.empty()) {
      return set_error("unbalanced span '" + stack.back() + "' on tid " +
                       std::to_string(rank));
    }
  }
  for (const auto& [id, seen] : flows) {
    if (!seen.has_start) {
      return set_error("flow id " + std::to_string(id) +
                       " has steps but no start");
    }
    if (seen.has_other && seen.min_other_ts < seen.min_start_ts) {
      return set_error("flow id " + std::to_string(id) +
                       " steps before its earliest start");
    }
  }
  return true;
}

FlowChainStats flow_chain_stats(const std::vector<TraceEvent>& events) {
  struct Chain {
    bool start = false, step = false, end = false;
    int first_rank = -1;
    bool multi_rank = false;
  };
  std::map<std::uint64_t, Chain> chains;
  for (const TraceEvent& ev : events) {
    if (ev.phase != TraceEvent::Phase::kFlowStart &&
        ev.phase != TraceEvent::Phase::kFlowStep &&
        ev.phase != TraceEvent::Phase::kFlowEnd) {
      continue;
    }
    Chain& c = chains[ev.flow_id];
    if (ev.phase == TraceEvent::Phase::kFlowStart) c.start = true;
    if (ev.phase == TraceEvent::Phase::kFlowStep) c.step = true;
    if (ev.phase == TraceEvent::Phase::kFlowEnd) c.end = true;
    if (c.first_rank == -1) c.first_rank = ev.rank;
    if (ev.rank != c.first_rank) c.multi_rank = true;
  }
  FlowChainStats stats;
  stats.total = static_cast<std::int64_t>(chains.size());
  for (const auto& [id, c] : chains) {
    if (c.start && c.step && c.end && c.multi_rank) ++stats.connected;
  }
  return stats;
}

}  // namespace now
