#include "src/obs/report.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace now {
namespace {

struct Interval {
  double lo;
  double hi;
};

/// Length of union(a) ∩ union(b); both inputs must already be merged
/// (sorted, non-overlapping).
double overlap_length(const std::vector<Interval>& a,
                      const std::vector<Interval>& b) {
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].lo, b[j].lo);
    const double hi = std::min(a[i].hi, b[j].hi);
    if (hi > lo) total += hi - lo;
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::int64_t find_arg(const TraceEvent& ev, const char* key,
                      std::int64_t fallback) {
  for (const TraceEvent::Arg& arg : ev.args) {
    if (std::strcmp(arg.key, key) == 0) return arg.value;
  }
  return fallback;
}

/// Merge in place (sort + coalesce), clamped to [0, elapsed].
std::vector<Interval> merged(std::vector<Interval> intervals, double elapsed) {
  for (Interval& iv : intervals) {
    iv.lo = std::clamp(iv.lo, 0.0, elapsed);
    iv.hi = std::clamp(iv.hi, 0.0, elapsed);
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> out;
  for (const Interval& iv : intervals) {
    if (iv.hi <= iv.lo) continue;
    if (!out.empty() && iv.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

double sum_length(const std::vector<Interval>& intervals) {
  double total = 0.0;
  for (const Interval& iv : intervals) total += iv.hi - iv.lo;
  return total;
}

}  // namespace

UtilizationReport compute_utilization(const std::vector<TraceEvent>& events,
                                      int world_size,
                                      double elapsed_seconds) {
  UtilizationReport report;
  report.elapsed_seconds = elapsed_seconds;
  if (world_size < 1) return report;
  if (elapsed_seconds <= 0.0) {
    // Zero-duration run (quick abort, immediate fault): there is no time to
    // apportion, so report the well-defined empty state — every rank fully
    // idle with fractions that still sum to 1 — instead of dividing by zero.
    for (int rank = 0; rank < world_size; ++rank) {
      RankUtilization u;
      u.rank = rank;
      u.idle_frac = 1.0;
      report.ranks.push_back(u);
    }
    return report;
  }

  std::vector<std::vector<Interval>> busy(world_size);
  std::vector<std::vector<Interval>> comm(world_size);
  std::vector<std::vector<std::pair<double, const TraceEvent*>>> open(
      world_size);
  std::vector<std::int64_t> frames(world_size, 0);

  for (const TraceEvent& ev : events) {
    if (ev.rank < 0 || ev.rank >= world_size) continue;
    const bool is_frame = std::strcmp(ev.cat, "frame") == 0;
    const bool is_net = std::strcmp(ev.cat, "net") == 0;
    switch (ev.phase) {
      case TraceEvent::Phase::kBegin:
        if (is_frame) open[ev.rank].push_back({ev.ts_seconds, &ev});
        break;
      case TraceEvent::Phase::kEnd:
        if (is_frame && !open[ev.rank].empty()) {
          busy[ev.rank].push_back({open[ev.rank].back().first, ev.ts_seconds});
          open[ev.rank].pop_back();
          ++frames[ev.rank];
          report.pixels_recomputed += find_arg(ev, "pixels_recomputed", 0);
          report.pixels_total += find_arg(ev, "pixels_total", 0);
        }
        break;
      case TraceEvent::Phase::kComplete:
        if (is_frame) {
          busy[ev.rank].push_back(
              {ev.ts_seconds, ev.ts_seconds + ev.dur_seconds});
        } else if (is_net) {
          comm[ev.rank].push_back(
              {ev.ts_seconds, ev.ts_seconds + ev.dur_seconds});
        }
        break;
      case TraceEvent::Phase::kInstant:
        break;
    }
  }

  for (int rank = 0; rank < world_size; ++rank) {
    RankUtilization u;
    u.rank = rank;
    u.frames = frames[rank];
    const std::vector<Interval> busy_merged =
        merged(std::move(busy[rank]), elapsed_seconds);
    const std::vector<Interval> comm_merged =
        merged(std::move(comm[rank]), elapsed_seconds);
    u.busy_seconds = sum_length(busy_merged);
    // Transmit windows that overlap rendering are not idle-network time the
    // worker could have used; count only the exclusive communication share.
    u.comm_seconds =
        sum_length(comm_merged) - overlap_length(comm_merged, busy_merged);
    u.idle_seconds =
        std::max(0.0, elapsed_seconds - u.busy_seconds - u.comm_seconds);
    u.busy_frac = u.busy_seconds / elapsed_seconds;
    u.comm_frac = u.comm_seconds / elapsed_seconds;
    u.idle_frac = u.idle_seconds / elapsed_seconds;
    report.ranks.push_back(u);
  }

  double max_busy = 0.0;
  double sum_busy = 0.0;
  int workers = 0;
  for (const RankUtilization& u : report.ranks) {
    if (u.rank == 0) continue;
    max_busy = std::max(max_busy, u.busy_seconds);
    sum_busy += u.busy_seconds;
    ++workers;
  }
  if (workers > 0 && sum_busy > 0.0) {
    report.load_imbalance = max_busy / (sum_busy / workers);
  }
  if (report.pixels_total > 0) {
    report.coherence_savings =
        1.0 - static_cast<double>(report.pixels_recomputed) /
                  static_cast<double>(report.pixels_total);
  }
  return report;
}

std::string UtilizationReport::to_text() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-6s %12s %12s %12s %7s %7s %7s %8s\n", "rank", "busy",
                "comm", "idle", "busy%", "comm%", "idle%", "frames");
  out += line;
  for (const RankUtilization& u : ranks) {
    std::snprintf(line, sizeof(line),
                  "%-6s %11.3fs %11.3fs %11.3fs %6.1f%% %6.1f%% %6.1f%% %8lld\n",
                  u.rank == 0 ? "master" : std::to_string(u.rank).c_str(),
                  u.busy_seconds, u.comm_seconds, u.idle_seconds,
                  100.0 * u.busy_frac, 100.0 * u.comm_frac,
                  100.0 * u.idle_frac, static_cast<long long>(u.frames));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "elapsed %.3fs   load imbalance %.2f   coherence savings "
                "%.1f%% (%lld of %lld pixels skipped)\n",
                elapsed_seconds, load_imbalance, 100.0 * coherence_savings,
                static_cast<long long>(pixels_total - pixels_recomputed),
                static_cast<long long>(pixels_total));
  out += line;
  return out;
}

}  // namespace now
