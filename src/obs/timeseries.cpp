#include "src/obs/timeseries.h"

namespace now {

void TimeSeriesSampler::push(const std::string& name, TimePoint p) {
  Ring& ring = series_[name];
  if (!ring.wrapped) {
    ring.buf.push_back(p);
    if (ring.buf.size() == capacity_) {
      ring.wrapped = true;
      ring.next = 0;
    }
    return;
  }
  ring.buf[ring.next] = p;
  ring.next = (ring.next + 1) % ring.buf.size();
}

void TimeSeriesSampler::sample(double t, const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
  for (const auto& [name, value] : snap.counters) {
    push(name, {t, static_cast<double>(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    push(name, {t, value});
  }
}

std::vector<TimePoint> TimeSeriesSampler::ordered(const Ring& ring) const {
  if (!ring.wrapped) return ring.buf;
  std::vector<TimePoint> out;
  out.reserve(ring.buf.size());
  for (std::size_t i = 0; i < ring.buf.size(); ++i) {
    out.push_back(ring.buf[(ring.next + i) % ring.buf.size()]);
  }
  return out;
}

std::vector<std::string> TimeSeriesSampler::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) out.push_back(name);
  return out;
}

std::vector<TimePoint> TimeSeriesSampler::series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return ordered(it->second);
}

double TimeSeriesSampler::rate_per_second(const std::string& name) const {
  const std::vector<TimePoint> points = series(name);
  if (points.size() < 2) return 0.0;
  const double dt = points.back().t - points.front().t;
  if (dt <= 0.0) return 0.0;
  return (points.back().value - points.front().value) / dt;
}

std::int64_t TimeSeriesSampler::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

}  // namespace now
