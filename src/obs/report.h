// Per-worker timeline/utilization report computed from an event trace: how
// much of the run each rank spent rendering (busy), on the wire (comm) and
// waiting (idle), plus the farm-level load-imbalance factor and the
// coherence savings the paper's evaluation revolves around.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/event_trace.h"

namespace now {

struct RankUtilization {
  int rank = 0;
  double busy_seconds = 0.0;  // union of "frame" spans (B/E and X)
  double comm_seconds = 0.0;  // union of "net" X events, minus busy overlap
  double idle_seconds = 0.0;  // elapsed − busy − comm (clamped at 0)
  double busy_frac = 0.0;
  double comm_frac = 0.0;
  double idle_frac = 0.0;
  std::int64_t frames = 0;    // completed frame.render spans
};

struct UtilizationReport {
  double elapsed_seconds = 0.0;
  std::vector<RankUtilization> ranks;  // every rank, master (0) first
  /// Max worker busy time over mean worker busy time (1.0 = perfectly
  /// balanced; only ranks >= 1 participate).
  double load_imbalance = 1.0;
  /// 1 − recomputed/total pixels over all frame spans (0 when unknown).
  double coherence_savings = 0.0;
  std::int64_t pixels_recomputed = 0;
  std::int64_t pixels_total = 0;

  bool empty() const { return ranks.empty(); }

  /// Fixed-width text table (the render_farm_cli --report output).
  std::string to_text() const;
};

/// Computes per-rank utilization from a sorted or unsorted event list.
/// `elapsed_seconds` is the farm run's total duration (virtual or wall);
/// `world_size` the number of ranks including the master.
UtilizationReport compute_utilization(const std::vector<TraceEvent>& events,
                                      int world_size, double elapsed_seconds);

}  // namespace now
