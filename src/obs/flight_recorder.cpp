#include "src/obs/flight_recorder.h"

#include <csignal>
#include <fstream>

namespace now {

void FlightRecorder::record(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  Ring& ring = rings_[ev.rank];
  ++recorded_;
  if (!ring.wrapped) {
    ring.buf.push_back(ev);
    if (static_cast<int>(ring.buf.size()) == capacity_) {
      ring.wrapped = true;
      ring.next = 0;
    }
    return;
  }
  ring.buf[ring.next] = ev;
  ring.next = (ring.next + 1) % ring.buf.size();
  ++evicted_;
}

std::vector<TraceEvent> FlightRecorder::rank_events(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = rings_.find(rank);
  if (it == rings_.end()) return {};
  const Ring& ring = it->second;
  if (!ring.wrapped) return ring.buf;
  std::vector<TraceEvent> out;
  out.reserve(ring.buf.size());
  for (std::size_t i = 0; i < ring.buf.size(); ++i) {
    out.push_back(ring.buf[(ring.next + i) % ring.buf.size()]);
  }
  return out;
}

std::vector<int> FlightRecorder::ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  out.reserve(rings_.size());
  for (const auto& [rank, ring] : rings_) out.push_back(rank);
  return out;
}

std::int64_t FlightRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::int64_t FlightRecorder::events_evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::string FlightRecorder::crash_trace_path(const std::string& dir,
                                             int rank) {
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') path += '/';
  path += "trace-crash-" + std::to_string(rank) + ".json";
  return path;
}

bool FlightRecorder::flush_rank(int rank, const std::string& dir) const {
  const std::vector<TraceEvent> events = rank_events(rank);
  if (events.empty()) return false;
  std::ofstream f(crash_trace_path(dir, rank), std::ios::binary);
  if (!f) return false;
  f << chrome_trace_json(events);
  return f.good();
}

void FlightRecorder::set_flush_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_dir_ = dir;
}

std::string FlightRecorder::flush_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flush_dir_;
}

int FlightRecorder::flush_all(const std::string& dir) const {
  int written = 0;
  for (const int rank : ranks()) {
    if (flush_rank(rank, dir)) ++written;
  }
  return written;
}

// ---------------------------------------------------------------------------
// Fatal-signal flush. One armed recorder per process; the handler flushes,
// restores default disposition, and re-raises so the exit status still says
// what killed us.

namespace {

FlightRecorder* g_crash_recorder = nullptr;
std::string* g_crash_dir = nullptr;

void crash_flush_handler(int sig) {
  if (g_crash_recorder != nullptr && g_crash_dir != nullptr) {
    g_crash_recorder->flush_all(*g_crash_dir);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_crash_flush(FlightRecorder* recorder, const std::string& dir) {
  static const int kSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGTERM};
  if (recorder == nullptr) {
    for (const int sig : kSignals) std::signal(sig, SIG_DFL);
    g_crash_recorder = nullptr;
    delete g_crash_dir;
    g_crash_dir = nullptr;
    return;
  }
  g_crash_recorder = recorder;
  delete g_crash_dir;
  g_crash_dir = new std::string(dir);
  for (const int sig : kSignals) std::signal(sig, crash_flush_handler);
}

}  // namespace now
