// StragglerDetector: rolling per-worker render-time statistics that flag
// outlier workers. Each committed frame's observed render time — elapsed on
// the worker's own clock, so machine speed and slowdowns show through —
// feeds an EWMA and an EWMA absolute deviation per worker; a worker whose smoothed time exceeds
// the fleet mean by the configured factor (and by more than its own noise
// band) is flagged a straggler, with hysteresis so a worker flaps neither
// on one slow frame nor on one fast one.
//
// The scheduler owns one detector and feeds it on every fresh commit —
// a deterministic order under SimRuntime, so flag transitions (and the
// sched.stragglers counter they increment) are bit-reproducible. The
// end-game speculation heuristic consumes expected_seconds(): victims are
// ranked by predicted remaining work (remaining frames x smoothed per-frame
// time) instead of raw frame counts, so a slow worker with few frames left
// can outrank a fast worker with many.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace now {

struct StragglerConfig {
  double alpha = 0.2;       // EWMA smoothing for mean and deviation
  double threshold = 1.75;  // flag when ewma > fleet_mean * threshold
  double clear_ratio = 1.25;  // unflag when ewma < fleet_mean * clear_ratio
  int min_samples = 3;      // frames before a worker can be flagged
};

class StragglerDetector {
 public:
  explicit StragglerDetector(StragglerConfig config = {})
      : config_(config) {}

  /// Records one frame's compute time for `worker`. Returns true when this
  /// observation newly flags the worker as a straggler (a transition, not a
  /// level — the caller counts transitions into sched.stragglers).
  bool observe(int worker, double seconds);

  bool is_straggler(int worker) const;
  std::vector<int> stragglers() const;

  /// Smoothed per-frame seconds for `worker`: its EWMA once it has
  /// min_samples, else the fleet mean, else 1.0 — always positive, so
  /// remaining-work products rank sanely even before data arrives.
  double expected_seconds(int worker) const;

  /// Mean of qualifying workers' EWMAs (0 when none qualify yet).
  double fleet_mean_seconds() const;

  std::int64_t flag_transitions() const { return transitions_; }
  int samples(int worker) const;

  /// Serializable per-worker state, for scheduler checkpoints: a restarted
  /// scheduler restores these so speculation ranking continues from the
  /// dead run's knowledge instead of cold EWMAs.
  struct Snapshot {
    int worker = -1;
    double ewma = 0.0;
    double dev = 0.0;
    int n = 0;
    bool flagged = false;
  };
  std::vector<Snapshot> snapshot() const;
  void restore(const std::vector<Snapshot>& snapshots);

 private:
  struct Stats {
    double ewma = 0.0;
    double dev = 0.0;  // EWMA of |sample - ewma|
    int n = 0;
    bool flagged = false;
  };

  double fleet_mean_locked() const;

  StragglerConfig config_;
  std::map<int, Stats> stats_;
  std::int64_t transitions_ = 0;
};

}  // namespace now
