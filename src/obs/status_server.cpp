#include "src/obs/status_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <thread>

namespace now {

// ---------------------------------------------------------------------------
// Prometheus text exposition.

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
/// map by replacing every other character with '_'.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_prom_double(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *out += buf;
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    append_prom_double(&out, value);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += n + "_bucket{le=\"";
      append_prom_double(&out, h.bounds[i]);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum ";
    append_prom_double(&out, h.sum);
    out += "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// StatusBoard.

void StatusBoard::publish(std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  json_ = std::move(json);
}

std::string StatusBoard::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return json_;
}

// ---------------------------------------------------------------------------
// StatusServer.

struct StatusServer::Impl {
  Provider metrics_text;
  Provider status_json;
  int listener = -1;
  int port = 0;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> requests{0};
  std::thread thread;
};

namespace {

void set_rcv_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void serve_one(int fd, StatusServer::Impl* impl) {
  set_rcv_timeout(fd, 2.0);
  // Read until the blank line ending the header block: a request arrives in
  // as many TCP segments as it likes, and answering before the client has
  // finished sending risks a reset that kills the response in flight. The
  // 2s receive timeout and the 8 KiB cap bound a slow or hostile peer.
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  std::string path;
  if (req.rfind("GET ", 0) == 0) {
    const std::size_t sp = req.find(' ', 4);
    if (sp != std::string::npos) path = req.substr(4, sp - 4);
  }
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  std::string status = "200 OK";
  if (path == "/metrics") {
    body = impl->metrics_text ? impl->metrics_text() : "";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/status") {
    body = impl->status_json ? impl->status_json() : "{}\n";
    content_type = "application/json";
  } else {
    status = "404 Not Found";
    body = "not found: try /metrics or /status\n";
  }
  std::string resp = "HTTP/1.0 " + status +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n" + body;
  send_all(fd, resp);
  impl->requests.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

StatusServer::StatusServer(int port, Provider metrics_text,
                           Provider status_json)
    : impl_(std::make_unique<Impl>()) {
  impl_->metrics_text = std::move(metrics_text);
  impl_->status_json = std::move(status_json);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return;
  }
  impl_->listener = fd;
  impl_->port = ntohs(bound.sin_port);
  // The accept loop wakes on a receive timeout to notice stop() — the same
  // idiom the TCP runtime's acceptor uses.
  set_rcv_timeout(fd, 0.1);
  Impl* impl = impl_.get();
  impl_->thread = std::thread([impl] {
    while (!impl->stop.load(std::memory_order_acquire)) {
      const int client = ::accept(impl->listener, nullptr, nullptr);
      if (client < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        break;
      }
      serve_one(client, impl);
      ::close(client);
    }
  });
}

StatusServer::~StatusServer() { stop(); }

bool StatusServer::ok() const { return impl_->listener >= 0; }

int StatusServer::port() const { return impl_->port; }

std::int64_t StatusServer::requests_served() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

void StatusServer::stop() {
  if (impl_->stop.exchange(true)) {
    if (impl_->thread.joinable()) impl_->thread.join();
    return;
  }
  if (impl_->thread.joinable()) impl_->thread.join();
  if (impl_->listener >= 0) {
    ::close(impl_->listener);
    impl_->listener = -1;
  }
}

}  // namespace now
