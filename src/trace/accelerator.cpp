#include "src/trace/accelerator.h"

namespace now {

bool BruteForceAccelerator::closest_hit(const Ray& ray, double t_min,
                                        double t_max, Hit* hit) const {
  bool found = false;
  double nearest = t_max;
  for (int i = 0; i < world_.object_count(); ++i) {
    Hit h;
    if (world_.object(i).primitive->intersect(ray, t_min, nearest, &h)) {
      nearest = h.t;
      h.object_id = world_.object(i).object_id;
      *hit = h;
      found = true;
    }
  }
  return found;
}

bool BruteForceAccelerator::any_hit(const Ray& ray, double t_min, double t_max,
                                    Hit* hit) const {
  for (int i = 0; i < world_.object_count(); ++i) {
    Hit h;
    if (world_.object(i).primitive->intersect(ray, t_min, t_max, &h)) {
      if (hit != nullptr) {
        h.object_id = world_.object(i).object_id;
        *hit = h;
      }
      return true;
    }
  }
  return false;
}

}  // namespace now
