// Bounding-volume-hierarchy accelerator over world objects.
//
// The paper's tracer uses uniform spatial subdivision (Glassner 1984); this
// BVH is the modern baseline it is benchmarked against (bench_accel). Both
// accelerators must produce identical hits — tested against brute force.
#pragma once

#include <vector>

#include "src/trace/accelerator.h"

namespace now {

class BvhAccelerator final : public Accelerator {
 public:
  explicit BvhAccelerator(const World& world, int leaf_size = 2);

  bool closest_hit(const Ray& ray, double t_min, double t_max,
                   Hit* hit) const override;
  bool any_hit(const Ray& ray, double t_min, double t_max,
               Hit* hit) const override;
  const char* name() const override { return "bvh"; }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

 private:
  struct Node {
    Aabb box;
    int left = -1;   // internal: child indices
    int right = -1;
    int first = 0;   // leaf: range into order_
    int count = 0;
  };

  int build(std::vector<int>& objs, int begin, int end, int leaf_size);
  bool closest_in_node(int node, const Ray& ray, double t_min,
                       double& nearest, Hit* hit) const;
  bool any_in_node(int node, const Ray& ray, double t_min, double t_max,
                   Hit* hit) const;
  int node_depth(int node) const;

  const World& world_;
  std::vector<Node> nodes_;
  std::vector<int> order_;      // bounded object indices, BVH order
  std::vector<int> unbounded_;  // planes etc., always tested
};

}  // namespace now
