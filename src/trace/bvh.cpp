#include "src/trace/bvh.h"

#include <algorithm>

namespace now {

BvhAccelerator::BvhAccelerator(const World& world, int leaf_size)
    : world_(world) {
  std::vector<int> objs;
  for (int i = 0; i < world.object_count(); ++i) {
    if (world.object(i).primitive->is_bounded()) {
      objs.push_back(i);
    } else {
      unbounded_.push_back(i);
    }
  }
  if (!objs.empty()) {
    nodes_.reserve(2 * objs.size());
    build(objs, 0, static_cast<int>(objs.size()), std::max(1, leaf_size));
    order_ = objs;
  }
}

int BvhAccelerator::build(std::vector<int>& objs, int begin, int end,
                          int leaf_size) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Aabb box;
  for (int i = begin; i < end; ++i) {
    box.absorb(world_.object(objs[i]).primitive->bounds());
  }
  nodes_[node_index].box = box.padded(1e-9);

  if (end - begin <= leaf_size) {
    nodes_[node_index].first = begin;
    nodes_[node_index].count = end - begin;
    return node_index;
  }
  Aabb centroids;
  for (int i = begin; i < end; ++i) {
    centroids.absorb(world_.object(objs[i]).primitive->bounds().center());
  }
  const Vec3 ext = centroids.extent();
  int axis = 0;
  if (ext.y > ext.x) axis = 1;
  if (ext.z > ext[axis]) axis = 2;
  const int mid = (begin + end) / 2;
  std::nth_element(
      objs.begin() + begin, objs.begin() + mid, objs.begin() + end,
      [&](int a, int b) {
        return world_.object(a).primitive->bounds().center()[axis] <
               world_.object(b).primitive->bounds().center()[axis];
      });
  const int left = build(objs, begin, mid, leaf_size);
  const int right = build(objs, mid, end, leaf_size);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

bool BvhAccelerator::closest_hit(const Ray& ray, double t_min, double t_max,
                                 Hit* hit) const {
  double nearest = t_max;
  bool found = false;
  for (const int i : unbounded_) {
    Hit h;
    if (world_.object(i).primitive->intersect(ray, t_min, nearest, &h)) {
      nearest = h.t;
      h.object_id = world_.object(i).object_id;
      *hit = h;
      found = true;
    }
  }
  if (!nodes_.empty() && closest_in_node(0, ray, t_min, nearest, hit)) {
    found = true;
  }
  return found;
}

bool BvhAccelerator::closest_in_node(int node_index, const Ray& ray,
                                     double t_min, double& nearest,
                                     Hit* hit) const {
  const Node& node = nodes_[node_index];
  if (!node.box.intersect(ray, t_min, nearest, nullptr, nullptr)) return false;
  if (node.left < 0) {
    bool found = false;
    for (int i = 0; i < node.count; ++i) {
      const int obj = order_[node.first + i];
      Hit h;
      if (world_.object(obj).primitive->intersect(ray, t_min, nearest, &h)) {
        nearest = h.t;
        h.object_id = world_.object(obj).object_id;
        *hit = h;
        found = true;
      }
    }
    return found;
  }
  const bool l = closest_in_node(node.left, ray, t_min, nearest, hit);
  const bool r = closest_in_node(node.right, ray, t_min, nearest, hit);
  return l || r;
}

bool BvhAccelerator::any_hit(const Ray& ray, double t_min, double t_max,
                             Hit* hit) const {
  for (const int i : unbounded_) {
    Hit h;
    if (world_.object(i).primitive->intersect(ray, t_min, t_max, &h)) {
      if (hit != nullptr) {
        h.object_id = world_.object(i).object_id;
        *hit = h;
      }
      return true;
    }
  }
  return !nodes_.empty() && any_in_node(0, ray, t_min, t_max, hit);
}

bool BvhAccelerator::any_in_node(int node_index, const Ray& ray, double t_min,
                                 double t_max, Hit* hit) const {
  const Node& node = nodes_[node_index];
  if (!node.box.intersect(ray, t_min, t_max, nullptr, nullptr)) return false;
  if (node.left < 0) {
    for (int i = 0; i < node.count; ++i) {
      const int obj = order_[node.first + i];
      Hit h;
      if (world_.object(obj).primitive->intersect(ray, t_min, t_max, &h)) {
        if (hit != nullptr) {
          h.object_id = world_.object(obj).object_id;
          *hit = h;
        }
        return true;
      }
    }
    return false;
  }
  return any_in_node(node.left, ray, t_min, t_max, hit) ||
         any_in_node(node.right, ray, t_min, t_max, hit);
}

int BvhAccelerator::node_depth(int node) const {
  if (node < 0) return 0;
  if (nodes_[node].left < 0) return 1;
  return 1 + std::max(node_depth(nodes_[node].left),
                      node_depth(nodes_[node].right));
}

int BvhAccelerator::depth() const {
  return nodes_.empty() ? 0 : node_depth(0);
}

}  // namespace now
