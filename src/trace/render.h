// Plain (non-coherent) frame rendering: shade every pixel of a region.
// This is the baseline the frame-coherence renderer is measured against.
#pragma once

#include "src/image/framebuffer.h"
#include "src/trace/tracer.h"

namespace now {

/// Render `region` of `fb` (which defines the full image dimensions).
/// Returns the ray statistics of the pass.
TraceStats render_region(Tracer* tracer, Framebuffer* fb,
                         const PixelRect& region);

/// Render the whole frame.
TraceStats render_frame(Tracer* tracer, Framebuffer* fb);

/// Convenience: build tracer + grid accelerator and render one frame of
/// `world` at the given resolution.
Framebuffer render_world(const World& world, int width, int height,
                         const TraceOptions& options = {},
                         TraceStats* stats = nullptr);

}  // namespace now
