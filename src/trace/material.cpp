#include "src/trace/material.h"

namespace now {

Material Material::matte(const Color& c) {
  Material m;
  m.texture = std::make_shared<SolidColor>(c);
  m.ambient = 0.1;
  m.diffuse = 0.8;
  m.specular = 0.1;
  m.reflectivity = 0.0;
  m.transmittance = 0.0;
  return m;
}

Material Material::mirror(const Color& tint, double reflectivity) {
  Material m;
  m.texture = std::make_shared<SolidColor>(tint);
  m.ambient = 0.05;
  m.diffuse = 0.2;
  m.specular = 0.6;
  m.shininess = 128.0;
  m.reflectivity = reflectivity;
  return m;
}

Material Material::chrome() {
  Material m = mirror(Color{0.9, 0.9, 0.95}, 0.75);
  m.diffuse = 0.15;
  m.specular = 0.8;
  m.shininess = 256.0;
  return m;
}

Material Material::glass(double ior) {
  Material m;
  m.texture = std::make_shared<SolidColor>(Color{0.95, 0.95, 1.0});
  m.ambient = 0.0;
  m.diffuse = 0.05;
  m.specular = 0.5;
  m.shininess = 256.0;
  m.reflectivity = 0.1;
  m.transmittance = 0.85;
  m.ior = ior;
  return m;
}

Material Material::textured(std::shared_ptr<const Texture> texture) {
  Material m;
  m.texture = std::move(texture);
  m.ambient = 0.1;
  m.diffuse = 0.8;
  m.specular = 0.05;
  return m;
}

}  // namespace now
