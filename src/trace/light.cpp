#include "src/trace/light.h"

#include "src/math/ray.h"

namespace now {

void Light::sample(const Vec3& point, Vec3* to_light, double* distance) const {
  if (type == LightType::kPoint) {
    const Vec3 d = position - point;
    *distance = d.length();
    *to_light = *distance > 0.0 ? d / *distance : Vec3{0, 1, 0};
  } else {
    *to_light = -direction;
    *distance = kRayInfinity;
  }
}

}  // namespace now
