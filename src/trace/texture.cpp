#include "src/trace/texture.h"

#include <cmath>
#include <cstdint>

namespace now {
namespace {

/// Hash a lattice point to [0, 1). Plain integer mixing keeps it fast and
/// identical on every platform.
double lattice_value(std::int64_t x, std::int64_t y, std::int64_t z) {
  std::uint64_t h = static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL ^
                    static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL ^
                    static_cast<std::uint64_t>(z) * 0x165667b19e3779f9ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

double value_noise(const Vec3& p) {
  const double fx = std::floor(p.x);
  const double fy = std::floor(p.y);
  const double fz = std::floor(p.z);
  const auto x0 = static_cast<std::int64_t>(fx);
  const auto y0 = static_cast<std::int64_t>(fy);
  const auto z0 = static_cast<std::int64_t>(fz);
  const double tx = smoothstep(p.x - fx);
  const double ty = smoothstep(p.y - fy);
  const double tz = smoothstep(p.z - fz);

  double corners[2][2][2];
  for (int dz = 0; dz < 2; ++dz)
    for (int dy = 0; dy < 2; ++dy)
      for (int dx = 0; dx < 2; ++dx)
        corners[dz][dy][dx] = lattice_value(x0 + dx, y0 + dy, z0 + dz);

  double xy[2][2];
  for (int dz = 0; dz < 2; ++dz)
    for (int dy = 0; dy < 2; ++dy)
      xy[dz][dy] = corners[dz][dy][0] + tx * (corners[dz][dy][1] - corners[dz][dy][0]);
  double x[2];
  for (int dz = 0; dz < 2; ++dz) x[dz] = xy[dz][0] + ty * (xy[dz][1] - xy[dz][0]);
  return x[0] + tz * (x[1] - x[0]);
}

double turbulence(const Vec3& p, int octaves) {
  double sum = 0.0;
  double amplitude = 1.0;
  double total = 0.0;
  Vec3 q = p;
  for (int i = 0; i < octaves; ++i) {
    sum += amplitude * value_noise(q);
    total += amplitude;
    amplitude *= 0.5;
    q *= 2.0;
  }
  return total > 0.0 ? sum / total : 0.0;
}

Color CheckerTexture::value(const Vec3& p) const {
  const auto cell = [&](double v) {
    return static_cast<std::int64_t>(std::floor(v / cell_));
  };
  const std::int64_t parity = (cell(p.x) + cell(p.y) + cell(p.z)) & 1;
  return parity == 0 ? a_ : b_;
}

Color BrickTexture::value(const Vec3& p) const {
  // Evaluate on the (x, y) plane by default; for floors (y-dominant normals)
  // the caller's geometry still produces a plausible bond via x/z ordering.
  // Wall coordinates: u along x+z (so all four room walls pattern), v up y.
  const double u = p.x + p.z;
  const double v = p.y;
  const double row_f = std::floor(v / height_);
  const auto row = static_cast<std::int64_t>(row_f);
  // Offset every other course by half a brick (running bond).
  const double u_shift = (row & 1) ? width_ * 0.5 : 0.0;
  const double local_v = v - row_f * height_;
  const double cu = u + u_shift;
  const double local_u = cu - std::floor(cu / width_) * width_;
  const bool in_mortar = local_v < mortar_size_ || local_u < mortar_size_;
  if (in_mortar) return mortar_;
  // Slight per-brick tint variation so the wall does not look flat.
  const auto col = static_cast<std::int64_t>(std::floor(cu / width_));
  const double tint =
      0.85 + 0.3 * value_noise({static_cast<double>(col), static_cast<double>(row), 0.0});
  return brick_ * tint;
}

Color MarbleTexture::value(const Vec3& p) const {
  const double t = turbulence(p * frequency_, 4);
  const double s = 0.5 * (1.0 + std::sin(frequency_ * (p.x + p.y + p.z) +
                                         turbulence_ * t * kTwoPi));
  return lerp(a_, b_, s);
}

}  // namespace now
