#include "src/trace/uniform_grid.h"

namespace now {

UniformGridAccelerator::UniformGridAccelerator(const World& world,
                                               double density, int max_axis)
    : world_(world),
      grid_(VoxelGrid::heuristic(world.bounded_extent(), world.object_count(),
                                 density, max_axis)) {
  build();
}

UniformGridAccelerator::UniformGridAccelerator(const World& world,
                                               const VoxelGrid& grid)
    : world_(world), grid_(grid) {
  build();
}

void UniformGridAccelerator::build() {
  cells_.assign(static_cast<std::size_t>(grid_.cell_count()), {});
  for (int i = 0; i < world_.object_count(); ++i) {
    const Primitive& prim = *world_.object(i).primitive;
    if (!prim.is_bounded()) {
      unbounded_.push_back(i);
      continue;
    }
    int ix0, iy0, iz0, ix1, iy1, iz1;
    if (!grid_.cell_range(prim.bounds(), &ix0, &iy0, &iz0, &ix1, &iy1, &iz1)) {
      // Object entirely outside grid bounds (can happen with explicit
      // grids); keep it reachable via the unbounded list.
      unbounded_.push_back(i);
      continue;
    }
    for (int iz = iz0; iz <= iz1; ++iz) {
      for (int iy = iy0; iy <= iy1; ++iy) {
        for (int ix = ix0; ix <= ix1; ++ix) {
          if (prim.overlaps_box(grid_.cell_bounds(ix, iy, iz))) {
            cells_[grid_.cell_index(ix, iy, iz)].push_back(i);
          }
        }
      }
    }
  }
}

bool UniformGridAccelerator::test_cell(int cell, const Ray& ray, double t_min,
                                       double& nearest, Hit* hit) const {
  bool found = false;
  for (const int i : cells_[cell]) {
    Hit h;
    if (world_.object(i).primitive->intersect(ray, t_min, nearest, &h)) {
      nearest = h.t;
      h.object_id = world_.object(i).object_id;
      *hit = h;
      found = true;
    }
  }
  return found;
}

bool UniformGridAccelerator::test_unbounded(const Ray& ray, double t_min,
                                            double& nearest, Hit* hit) const {
  bool found = false;
  for (const int i : unbounded_) {
    Hit h;
    if (world_.object(i).primitive->intersect(ray, t_min, nearest, &h)) {
      nearest = h.t;
      h.object_id = world_.object(i).object_id;
      *hit = h;
      found = true;
    }
  }
  return found;
}

bool UniformGridAccelerator::closest_hit(const Ray& ray, double t_min,
                                         double t_max, Hit* hit) const {
  double nearest = t_max;
  bool found = test_unbounded(ray, t_min, nearest, hit);

  grid_.walk(ray, t_min, t_max,
             [&](int ix, int iy, int iz, double /*t_enter*/, double t_exit) {
               const int cell = grid_.cell_index(ix, iy, iz);
               if (test_cell(cell, ray, t_min, nearest, hit)) found = true;
               // A hit inside or before this cell terminates the walk: no
               // later cell can contain a closer intersection. Objects
               // spanning multiple cells may report a hit beyond the current
               // cell's exit, so only stop once the hit is within the cell.
               return !(found && nearest <= t_exit + 1e-12);
             });
  return found;
}

bool UniformGridAccelerator::any_hit(const Ray& ray, double t_min,
                                     double t_max, Hit* hit) const {
  double nearest = t_max;
  Hit local;
  if (test_unbounded(ray, t_min, nearest, &local)) {
    if (hit != nullptr) *hit = local;
    return true;
  }
  bool found = false;
  grid_.walk(ray, t_min, t_max,
             [&](int ix, int iy, int iz, double, double) {
               const int cell = grid_.cell_index(ix, iy, iz);
               for (const int i : cells_[cell]) {
                 Hit h;
                 if (world_.object(i).primitive->intersect(ray, t_min, t_max, &h)) {
                   h.object_id = world_.object(i).object_id;
                   local = h;
                   found = true;
                   return false;  // stop the walk
                 }
               }
               return true;
             });
  if (found && hit != nullptr) *hit = local;
  return found;
}

std::int64_t UniformGridAccelerator::total_cell_entries() const {
  std::int64_t n = 0;
  for (const auto& cell : cells_) n += static_cast<std::int64_t>(cell.size());
  return n;
}

}  // namespace now
