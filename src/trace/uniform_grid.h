// Uniform-grid ray accelerator (Glassner 1984 style, as used by POV-Ray's
// era of tracers and referenced by the paper).
//
// Bounded primitives are rasterized into grid cells with their conservative
// overlaps_box() tests; unbounded primitives (planes) live on a side list
// tested for every ray.
#pragma once

#include <vector>

#include "src/geom/voxel_grid.h"
#include "src/trace/accelerator.h"

namespace now {

class UniformGridAccelerator final : public Accelerator {
 public:
  /// Builds the grid for `world`; `density`/`max_axis` feed the resolution
  /// heuristic (see VoxelGrid::heuristic).
  explicit UniformGridAccelerator(const World& world, double density = 3.0,
                                  int max_axis = 128);

  /// Build with an explicit grid (used by resolution-sweep benchmarks).
  UniformGridAccelerator(const World& world, const VoxelGrid& grid);

  bool closest_hit(const Ray& ray, double t_min, double t_max,
                   Hit* hit) const override;
  bool any_hit(const Ray& ray, double t_min, double t_max,
               Hit* hit) const override;
  const char* name() const override { return "uniform-grid"; }

  const VoxelGrid& grid() const { return grid_; }
  std::int64_t total_cell_entries() const;

 private:
  void build();
  /// Test the objects of one cell; keeps the nearest hit under `nearest`.
  bool test_cell(int cell, const Ray& ray, double t_min, double& nearest,
                 Hit* hit) const;
  bool test_unbounded(const Ray& ray, double t_min, double& nearest,
                      Hit* hit) const;

  const World& world_;
  VoxelGrid grid_;
  std::vector<std::vector<int>> cells_;  // object indices per cell
  std::vector<int> unbounded_;           // object indices of planes etc.
};

}  // namespace now
