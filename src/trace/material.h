// Surface material for the Whitted shading model used by the paper:
//   I = I_local + k_rg * I_reflected + k_tg * I_transmitted
// where I_local is ambient + Phong direct illumination with shadow rays, and
// k_rg / k_tg are the wavelength-independent reflection / transmission
// constants from Section 3 of the paper.
#pragma once

#include <memory>

#include "src/trace/texture.h"

namespace now {

struct Material {
  std::shared_ptr<const Texture> texture =
      std::make_shared<SolidColor>(Color::gray(0.8));

  double ambient = 0.1;      // ambient coefficient
  double diffuse = 0.7;      // k_d
  double specular = 0.2;     // k_s (Phong highlight)
  double shininess = 32.0;   // Phong exponent

  double reflectivity = 0.0;   // k_rg
  double transmittance = 0.0;  // k_tg
  double ior = 1.5;            // index of refraction when transmissive

  /// When true, reflect/transmit weights are modulated by a Schlick fresnel
  /// term (an extension beyond the paper's constant-coefficient model).
  bool fresnel = false;

  static Material matte(const Color& c);
  static Material mirror(const Color& tint, double reflectivity);
  /// Highly reflective polished metal (the cradle's marbles are chrome).
  static Material chrome();
  /// Transparent refractive material (the bouncing ball is glass).
  static Material glass(double ior = 1.5);
  static Material textured(std::shared_ptr<const Texture> texture);
};

}  // namespace now
