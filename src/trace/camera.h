// Pinhole camera.
//
// The frame-coherence algorithm requires a stationary camera within a shot
// (Section 3 of the paper: "any camera movement logically separates one
// sequence from another"), so Camera supports exact equality comparison —
// the shot splitter uses it to find cut points.
#pragma once

#include "src/math/ray.h"
#include "src/math/vec3.h"

namespace now {

class Camera {
 public:
  Camera() { setup({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 60.0, 4.0 / 3.0); }

  Camera(const Vec3& look_from, const Vec3& look_at, const Vec3& up,
         double vfov_degrees, double aspect) {
    setup(look_from, look_at, up, vfov_degrees, aspect);
  }

  /// Ray through sample (sx, sy) of pixel (px, py) on a width×height image
  /// with an n×n supersampling grid. Sample (0,0) with n=1 is the pixel
  /// center. Directions are unit length.
  Ray generate_ray(int px, int py, int width, int height, int sx = 0,
                   int sy = 0, int samples_per_axis = 1) const;

  const Vec3& position() const { return origin_; }
  const Vec3& forward() const { return forward_; }
  double vfov_degrees() const { return vfov_degrees_; }
  double aspect() const { return aspect_; }

  bool operator==(const Camera& o) const {
    return origin_ == o.origin_ && forward_ == o.forward_ &&
           right_ == o.right_ && up_ == o.up_ && half_h_ == o.half_h_ &&
           half_w_ == o.half_w_;
  }
  bool operator!=(const Camera& o) const { return !(*this == o); }

 private:
  void setup(const Vec3& look_from, const Vec3& look_at, const Vec3& up,
             double vfov_degrees, double aspect);

  Vec3 origin_;
  Vec3 forward_;  // unit view direction
  Vec3 right_;    // unit, scaled at ray generation by half_w_
  Vec3 up_;       // unit
  double half_w_ = 1.0;
  double half_h_ = 1.0;
  double vfov_degrees_ = 60.0;
  double aspect_ = 4.0 / 3.0;
};

}  // namespace now
