#include "src/trace/render.h"

#include "src/trace/uniform_grid.h"

namespace now {

TraceStats render_region(Tracer* tracer, Framebuffer* fb,
                         const PixelRect& region) {
  const TraceStats before = tracer->stats();
  for (int y = region.y0; y < region.y0 + region.height; ++y) {
    for (int x = region.x0; x < region.x0 + region.width; ++x) {
      fb->set(x, y, tracer->shade_pixel(x, y, fb->width(), fb->height()));
    }
  }
  TraceStats delta = tracer->stats();
  delta.camera_rays -= before.camera_rays;
  delta.reflection_rays -= before.reflection_rays;
  delta.refraction_rays -= before.refraction_rays;
  delta.shadow_rays -= before.shadow_rays;
  delta.pixels_shaded -= before.pixels_shaded;
  return delta;
}

TraceStats render_frame(Tracer* tracer, Framebuffer* fb) {
  return render_region(tracer, fb, fb->full_rect());
}

Framebuffer render_world(const World& world, int width, int height,
                         const TraceOptions& options, TraceStats* stats) {
  Framebuffer fb(width, height);
  const UniformGridAccelerator accel(world);
  Tracer tracer(world, accel, options);
  const TraceStats s = render_frame(&tracer, &fb);
  if (stats != nullptr) *stats = s;
  return fb;
}

}  // namespace now
