#include "src/trace/camera.h"

#include <cmath>

namespace now {

void Camera::setup(const Vec3& look_from, const Vec3& look_at, const Vec3& up,
                   double vfov_degrees, double aspect) {
  origin_ = look_from;
  forward_ = (look_at - look_from).normalized();
  right_ = cross(forward_, up).normalized();
  up_ = cross(right_, forward_);
  vfov_degrees_ = vfov_degrees;
  aspect_ = aspect;
  half_h_ = std::tan(degrees_to_radians(vfov_degrees) * 0.5);
  half_w_ = half_h_ * aspect;
}

Ray Camera::generate_ray(int px, int py, int width, int height, int sx,
                         int sy, int samples_per_axis) const {
  // Stratified sample position inside the pixel; (0.5, 0.5) offsets give
  // the cell centers, so n=1 samples the pixel center.
  const double step = 1.0 / samples_per_axis;
  const double fx = (px + (sx + 0.5) * step) / width;
  const double fy = (py + (sy + 0.5) * step) / height;
  // Image y grows downward; camera up grows upward.
  const double u = 2.0 * fx - 1.0;
  const double v = 1.0 - 2.0 * fy;
  const Vec3 dir = forward_ + right_ * (u * half_w_) + up_ * (v * half_h_);
  return Ray{origin_, dir.normalized()};
}

}  // namespace now
