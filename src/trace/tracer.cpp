#include "src/trace/tracer.h"

#include <cmath>

namespace now {

TraceStats& TraceStats::operator+=(const TraceStats& o) {
  camera_rays += o.camera_rays;
  reflection_rays += o.reflection_rays;
  refraction_rays += o.refraction_rays;
  shadow_rays += o.shadow_rays;
  pixels_shaded += o.pixels_shaded;
  return *this;
}

Tracer::Tracer(const World& world, const Accelerator& accel,
               TraceOptions options)
    : world_(world), accel_(accel), options_(options) {}

Color Tracer::shade_pixel(int px, int py, int width, int height) {
  const int n = options_.supersample_axis;
  Color sum;
  for (int sy = 0; sy < n; ++sy) {
    for (int sx = 0; sx < n; ++sx) {
      const Ray ray =
          world_.camera().generate_ray(px, py, width, height, sx, sy, n);
      sum += trace(ray, 0, 1.0, px, py, RayKind::kCamera);
    }
  }
  ++stats_.pixels_shaded;
  return sum / static_cast<double>(n * n);
}

Color Tracer::trace(const Ray& ray, int depth, double weight, int px, int py,
                    RayKind kind) {
  switch (kind) {
    case RayKind::kCamera: ++stats_.camera_rays; break;
    case RayKind::kReflection: ++stats_.reflection_rays; break;
    case RayKind::kRefraction: ++stats_.refraction_rays; break;
    case RayKind::kShadow: ++stats_.shadow_rays; break;
  }

  Hit hit;
  if (!accel_.closest_hit(ray, kRayEpsilon, kRayInfinity, &hit)) {
    if (listener_ != nullptr) {
      listener_->on_segment(px, py, ray, kRayInfinity, kind);
    }
    return world_.background();
  }
  if (listener_ != nullptr) {
    listener_->on_segment(px, py, ray, hit.t, kind);
  }
  return shade_hit(hit, ray, depth, weight, px, py);
}

Color Tracer::shade_hit(const Hit& hit, const Ray& ray, int depth,
                        double weight, int px, int py) {
  // object_id indexes the scene's stable ids; materials are looked up
  // through the world object that produced the hit. Scene ids equal world
  // indices for worlds built by the scene module, so a linear fallback is
  // only needed when they diverge.
  const Material* mat = nullptr;
  if (hit.object_id >= 0 && hit.object_id < world_.object_count() &&
      world_.object(hit.object_id).object_id == hit.object_id) {
    mat = &world_.material(world_.object(hit.object_id).material_id);
  } else {
    for (const WorldObject& obj : world_.objects()) {
      if (obj.object_id == hit.object_id) {
        mat = &world_.material(obj.material_id);
        break;
      }
    }
  }
  if (mat == nullptr) return Color{1, 0, 1};  // unmatched id: loud magenta

  const Color tex_color = mat->texture->value(hit.point);

  // Ambient term.
  Color result = tex_color * mat->ambient * options_.ambient_light;

  // Direct illumination with shadow rays.
  for (const Light& light : world_.lights()) {
    result += direct_light(light, hit, ray, *mat, tex_color, px, py);
  }

  if (depth >= options_.max_depth) return result;

  double reflect_w = mat->reflectivity;
  double transmit_w = mat->transmittance;
  if (mat->fresnel && (reflect_w > 0.0 || transmit_w > 0.0)) {
    // Schlick approximation on the incident angle.
    const double cos_i = -dot(ray.direction.normalized(), hit.normal);
    const double eta = hit.front_face ? 1.0 / mat->ior : mat->ior;
    double r0 = (1.0 - eta) / (1.0 + eta);
    r0 *= r0;
    const double fr = r0 + (1.0 - r0) * std::pow(1.0 - clamp01(cos_i), 5.0);
    reflect_w = reflect_w + transmit_w * fr;
    transmit_w = transmit_w * (1.0 - fr);
  }

  // Reflected contribution (k_rg * I_reflected).
  if (reflect_w > 0.0 &&
      (options_.adaptive_bailout <= 0.0 ||
       weight * reflect_w > options_.adaptive_bailout)) {
    const Vec3 dir = reflect(ray.direction.normalized(), hit.normal);
    const Ray reflected{hit.point + hit.normal * kRayEpsilon, dir};
    result += reflect_w * trace(reflected, depth + 1, weight * reflect_w, px,
                                py, RayKind::kReflection);
  }

  // Transmitted contribution (k_tg * I_transmitted).
  if (transmit_w > 0.0 &&
      (options_.adaptive_bailout <= 0.0 ||
       weight * transmit_w > options_.adaptive_bailout)) {
    const double eta = hit.front_face ? 1.0 / mat->ior : mat->ior;
    Vec3 dir;
    if (refract(ray.direction.normalized(), hit.normal, eta, &dir)) {
      const Ray refracted{hit.point - hit.normal * kRayEpsilon, dir};
      result += transmit_w * trace(refracted, depth + 1, weight * transmit_w,
                                   px, py, RayKind::kRefraction);
    } else {
      // Total internal reflection: the transmitted energy reflects instead.
      const Vec3 rdir = reflect(ray.direction.normalized(), hit.normal);
      const Ray reflected{hit.point + hit.normal * kRayEpsilon, rdir};
      result += transmit_w * trace(reflected, depth + 1, weight * transmit_w,
                                   px, py, RayKind::kReflection);
    }
  }
  return result;
}

Color Tracer::direct_light(const Light& light, const Hit& hit, const Ray& ray,
                           const Material& mat, const Color& tex_color,
                           int px, int py) {
  Vec3 to_light;
  double light_dist;
  light.sample(hit.point, &to_light, &light_dist);

  const double n_dot_l = dot(hit.normal, to_light);
  if (n_dot_l <= 0.0) return Color::black();  // light behind the surface

  if (options_.shadows) {
    ++stats_.shadow_rays;
    const Ray shadow_ray{hit.point + hit.normal * kRayEpsilon, to_light};
    Hit blocker;
    const double max_t = light_dist - 2.0 * kRayEpsilon;
    const bool blocked =
        accel_.any_hit(shadow_ray, kRayEpsilon, max_t, &blocker);
    if (listener_ != nullptr) {
      // Mark up to the blocker: an occluder moving out of the traversed
      // span, or any object moving into it, can change this pixel. Objects
      // beyond the blocker cannot.
      listener_->on_segment(px, py, shadow_ray,
                            blocked ? blocker.t : light_dist,
                            RayKind::kShadow);
    }
    if (blocked) return Color::black();
  }

  const Color light_color = light.color * light.intensity;
  Color out = tex_color * mat.diffuse * n_dot_l * light_color;

  // Phong highlight about the mirror direction of the light.
  const Vec3 view = -ray.direction.normalized();
  const Vec3 refl = reflect(-to_light, hit.normal);
  const double r_dot_v = dot(refl, view);
  if (r_dot_v > 0.0 && mat.specular > 0.0) {
    out += light_color * mat.specular * std::pow(r_dot_v, mat.shininess);
  }
  return out;
}

}  // namespace now
