// Procedural textures.
//
// All textures are functions of the 3D surface point only (POV-Ray style
// solid textures); there are no UV coordinates to carry through primitives.
// Textures must be pure functions of position so that re-rendering a pixel
// under frame coherence reproduces the original color exactly.
#pragma once

#include <memory>

#include "src/math/vec3.h"

namespace now {

class Texture {
 public:
  virtual ~Texture() = default;
  virtual Color value(const Vec3& point) const = 0;
  virtual std::shared_ptr<Texture> clone() const = 0;
};

class SolidColor final : public Texture {
 public:
  explicit SolidColor(const Color& c) : color_(c) {}
  Color value(const Vec3&) const override { return color_; }
  std::shared_ptr<Texture> clone() const override {
    return std::make_shared<SolidColor>(color_);
  }
  const Color& color() const { return color_; }

 private:
  Color color_;
};

/// 3D checkerboard with the given cell size.
class CheckerTexture final : public Texture {
 public:
  CheckerTexture(const Color& a, const Color& b, double cell_size)
      : a_(a), b_(b), cell_(cell_size) {}
  Color value(const Vec3& p) const override;
  std::shared_ptr<Texture> clone() const override {
    return std::make_shared<CheckerTexture>(a_, b_, cell_);
  }

 private:
  Color a_;
  Color b_;
  double cell_;
};

/// Running-bond brick pattern (the paper's Figure 1 room is brick). The
/// pattern is evaluated on the two world axes most orthogonal to `normal_hint`
/// so the same texture works on walls and floors.
class BrickTexture final : public Texture {
 public:
  BrickTexture(const Color& brick, const Color& mortar, double brick_width,
               double brick_height, double mortar_size)
      : brick_(brick),
        mortar_(mortar),
        width_(brick_width),
        height_(brick_height),
        mortar_size_(mortar_size) {}
  Color value(const Vec3& p) const override;
  std::shared_ptr<Texture> clone() const override {
    return std::make_shared<BrickTexture>(brick_, mortar_, width_, height_,
                                          mortar_size_);
  }

 private:
  Color brick_;
  Color mortar_;
  double width_;
  double height_;
  double mortar_size_;
};

/// Marble-like banding driven by deterministic lattice value noise.
class MarbleTexture final : public Texture {
 public:
  MarbleTexture(const Color& a, const Color& b, double frequency,
                double turbulence)
      : a_(a), b_(b), frequency_(frequency), turbulence_(turbulence) {}
  Color value(const Vec3& p) const override;
  std::shared_ptr<Texture> clone() const override {
    return std::make_shared<MarbleTexture>(a_, b_, frequency_, turbulence_);
  }

 private:
  Color a_;
  Color b_;
  double frequency_;
  double turbulence_;
};

/// Deterministic lattice value noise in [0, 1] (no global tables).
double value_noise(const Vec3& p);

/// Sum of `octaves` value-noise octaves, normalized to [0, 1].
double turbulence(const Vec3& p, int octaves);

}  // namespace now
