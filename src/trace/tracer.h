// Whitted-style recursive ray tracer.
//
// Implements the paper's intensity model
//   I = I_local + k_rg * I_reflected + k_tg * I_transmitted
// with Phong local illumination and hard shadow rays, to a fixed maximum
// recursion depth (the paper renders with "maximum ray depth of 5").
//
// Every traced ray segment — camera, reflected, refracted and shadow — is
// reported to an optional RayListener together with the pixel that spawned
// it. The frame-coherence recorder (src/core) is such a listener: it walks
// each segment through the coherence voxel grid and appends the pixel to the
// pixel list of every voxel traversed (Figure 3 of the paper).
#pragma once

#include <cstdint>

#include "src/trace/accelerator.h"
#include "src/trace/world.h"

namespace now {

struct TraceStats {
  std::uint64_t camera_rays = 0;
  std::uint64_t reflection_rays = 0;
  std::uint64_t refraction_rays = 0;
  std::uint64_t shadow_rays = 0;
  std::uint64_t pixels_shaded = 0;

  std::uint64_t total_rays() const {
    return camera_rays + reflection_rays + refraction_rays + shadow_rays;
  }

  TraceStats& operator+=(const TraceStats& o);

  friend TraceStats operator+(TraceStats a, const TraceStats& b) {
    a += b;
    return a;
  }
};

/// Observer of every traced ray segment. `t_end` is the parameter at which
/// the segment stops mattering for the pixel: the hit parameter, the
/// distance to the light for unblocked shadow rays, or kRayInfinity for
/// rays that leave the scene.
class RayListener {
 public:
  virtual ~RayListener() = default;
  virtual void on_segment(int px, int py, const Ray& ray, double t_end,
                          RayKind kind) = 0;
};

struct TraceOptions {
  int max_depth = 5;
  bool shadows = true;
  /// n×n supersampling grid per pixel (1 = pixel centers only, the paper's
  /// configuration; anti-aliasing is an extension).
  int supersample_axis = 1;
  /// Contribution cutoff: recursion stops when the accumulated weight falls
  /// below this (POV-Ray's adc_bailout). 0 disables.
  double adaptive_bailout = 0.0;
  /// Global ambient light color multiplying material ambient terms.
  Color ambient_light = Color::white();
};

class Tracer {
 public:
  Tracer(const World& world, const Accelerator& accel, TraceOptions options = {});

  /// Not owned; nullptr disables reporting.
  void set_listener(RayListener* listener) { listener_ = listener; }

  /// Fully shade pixel (px, py) of a width×height image: fires all camera
  /// rays (supersampling included) and the recursive trees beneath them.
  Color shade_pixel(int px, int py, int width, int height);

  /// Trace one ray (exposed for tests). Attribution pixel (px, py) is passed
  /// through to the listener.
  Color trace(const Ray& ray, int depth, double weight, int px, int py,
              RayKind kind);

  const TraceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  const TraceOptions& options() const { return options_; }
  const World& world() const { return world_; }

 private:
  Color shade_hit(const Hit& hit, const Ray& ray, int depth, double weight,
                  int px, int py);
  /// Direct illumination from one light, shadow ray included.
  Color direct_light(const Light& light, const Hit& hit, const Ray& ray,
                     const Material& mat, const Color& tex_color, int px,
                     int py);

  const World& world_;
  const Accelerator& accel_;
  TraceOptions options_;
  RayListener* listener_ = nullptr;
  TraceStats stats_;
};

}  // namespace now
