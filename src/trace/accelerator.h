// Ray-intersection accelerators.
//
// The paper's tracer (POV-Ray 3.0) uses uniform spatial subdivision
// (Glassner-style); we provide that plus a brute-force reference used for
// differential testing — both must report identical hits.
#pragma once

#include "src/trace/world.h"

namespace now {

class Accelerator {
 public:
  virtual ~Accelerator() = default;

  /// Nearest hit with t in (t_min, t_max). Fills hit->object_id.
  virtual bool closest_hit(const Ray& ray, double t_min, double t_max,
                           Hit* hit) const = 0;

  /// Any hit — used by shadow rays. On success, `hit` (if non-null) holds the
  /// blocker found, which is not necessarily the nearest.
  virtual bool any_hit(const Ray& ray, double t_min, double t_max,
                       Hit* hit) const = 0;

  virtual const char* name() const = 0;
};

class BruteForceAccelerator final : public Accelerator {
 public:
  explicit BruteForceAccelerator(const World& world) : world_(world) {}

  bool closest_hit(const Ray& ray, double t_min, double t_max,
                   Hit* hit) const override;
  bool any_hit(const Ray& ray, double t_min, double t_max,
               Hit* hit) const override;
  const char* name() const override { return "brute-force"; }

 private:
  const World& world_;
};

}  // namespace now
