// Light sources: point and directional. Shadows are hard (one shadow ray per
// light per shading point), matching the paper's POV-Ray configuration.
#pragma once

#include "src/math/vec3.h"

namespace now {

enum class LightType : std::uint8_t { kPoint, kDirectional };

struct Light {
  LightType type = LightType::kPoint;
  Vec3 position;        // point lights
  Vec3 direction;       // directional lights: direction the light travels
  Color color = Color::white();
  double intensity = 1.0;

  static Light point(const Vec3& position, const Color& color,
                     double intensity = 1.0) {
    Light l;
    l.type = LightType::kPoint;
    l.position = position;
    l.color = color;
    l.intensity = intensity;
    return l;
  }

  static Light directional(const Vec3& travel_direction, const Color& color,
                           double intensity = 1.0) {
    Light l;
    l.type = LightType::kDirectional;
    l.direction = travel_direction.normalized();
    l.color = color;
    l.intensity = intensity;
    return l;
  }

  /// Unit vector from `point` toward the light and the distance to it
  /// (kRayInfinity for directional lights).
  void sample(const Vec3& point, Vec3* to_light, double* distance) const;
};

}  // namespace now
