// World: one frame's worth of world-space geometry, materials and lights.
//
// The scene module instantiates a World per frame from the animated scene
// description; the tracer and the accelerators operate only on Worlds and
// know nothing about animation.
#pragma once

#include <memory>
#include <vector>

#include "src/geom/primitive.h"
#include "src/math/aabb.h"
#include "src/trace/camera.h"
#include "src/trace/light.h"
#include "src/trace/material.h"

namespace now {

struct WorldObject {
  std::unique_ptr<Primitive> primitive;
  int material_id = 0;
  /// Stable scene-level object identity, preserved across frames; the change
  /// detector matches moving objects between frames by this id.
  int object_id = -1;
};

class World {
 public:
  World() = default;
  World(World&&) = default;
  World& operator=(World&&) = default;

  World clone() const;

  int add_material(const Material& m);
  /// Returns the index of the added object within the world.
  int add_object(std::unique_ptr<Primitive> primitive, int material_id,
                 int object_id = -1);
  void add_light(const Light& light);

  int object_count() const { return static_cast<int>(objects_.size()); }
  const WorldObject& object(int i) const { return objects_[i]; }
  const std::vector<WorldObject>& objects() const { return objects_; }
  const Material& material(int id) const { return materials_[id]; }
  int material_count() const { return static_cast<int>(materials_.size()); }
  const std::vector<Light>& lights() const { return lights_; }

  const Camera& camera() const { return camera_; }
  void set_camera(const Camera& c) { camera_ = c; }

  const Color& background() const { return background_; }
  void set_background(const Color& c) { background_ = c; }

  /// Union of bounds of the bounded objects (planes excluded).
  Aabb bounded_extent() const;

 private:
  std::vector<WorldObject> objects_;
  std::vector<Material> materials_;
  std::vector<Light> lights_;
  Camera camera_;
  Color background_{0.05, 0.05, 0.08};
};

}  // namespace now
