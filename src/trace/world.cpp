#include "src/trace/world.h"

namespace now {

World World::clone() const {
  World out;
  out.materials_ = materials_;
  out.lights_ = lights_;
  out.camera_ = camera_;
  out.background_ = background_;
  out.objects_.reserve(objects_.size());
  for (const WorldObject& obj : objects_) {
    out.objects_.push_back(
        {obj.primitive->clone(), obj.material_id, obj.object_id});
  }
  return out;
}

int World::add_material(const Material& m) {
  materials_.push_back(m);
  return static_cast<int>(materials_.size()) - 1;
}

int World::add_object(std::unique_ptr<Primitive> primitive, int material_id,
                      int object_id) {
  const int index = static_cast<int>(objects_.size());
  objects_.push_back({std::move(primitive), material_id,
                      object_id < 0 ? index : object_id});
  return index;
}

void World::add_light(const Light& light) { lights_.push_back(light); }

Aabb World::bounded_extent() const {
  Aabb out;
  for (const WorldObject& obj : objects_) {
    if (obj.primitive->is_bounded()) out.absorb(obj.primitive->bounds());
  }
  return out;
}

}  // namespace now
