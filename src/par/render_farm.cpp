#include "src/par/render_farm.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/net/tcp_runtime.h"
#include "src/net/thread_runtime.h"

namespace now {

const char* to_string(FarmBackend backend) {
  switch (backend) {
    case FarmBackend::kSim: return "sim";
    case FarmBackend::kThreads: return "threads";
    case FarmBackend::kTcp: return "tcp";
  }
  return "unknown";
}

namespace {

int resolved_worker_count(const FarmConfig& config) {
  return config.worker_speeds.empty()
             ? config.workers
             : static_cast<int>(config.worker_speeds.size());
}

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("FarmConfig: " + what);
}

}  // namespace

void validate_farm_config(const AnimatedScene& scene,
                          const FarmConfig& config) {
  if (scene.width() < 1 || scene.height() < 1) {
    fail("scene must be at least 1x1 pixels");
  }
  if (scene.frame_count() < 1) fail("scene must have at least 1 frame");
  const int worker_count = resolved_worker_count(config);
  if (worker_count < 1) {
    fail("need at least 1 worker (workers or worker_speeds)");
  }
  for (const double s : config.worker_speeds) {
    if (!std::isfinite(s) || s <= 0.0) {
      fail("worker_speeds entries must be finite and > 0");
    }
  }
  if (!std::isfinite(config.master_speed) || config.master_speed <= 0.0) {
    fail("master_speed must be finite and > 0");
  }
  if (config.partition.block_size < 1) {
    fail("partition.block_size must be >= 1");
  }
  if (config.partition.hybrid_frames < 1) {
    fail("partition.hybrid_frames must be >= 1");
  }
  if (config.partition.min_split_frames < 1) {
    fail("partition.min_split_frames must be >= 1");
  }
  if (config.fault.enabled) {
    if (!(config.fault.lease_base_seconds > 0.0)) {
      fail("fault.lease_base_seconds must be > 0 when fault.enabled");
    }
    if (config.fault.lease_per_frame_seconds < 0.0) {
      fail("fault.lease_per_frame_seconds must be >= 0");
    }
    if (!(config.fault.ping_grace_seconds > 0.0)) {
      fail("fault.ping_grace_seconds must be > 0 when fault.enabled");
    }
  }
  if (!config.fault_plan.empty()) {
    validate_fault_plan(config.fault_plan, worker_count + 1);
    if (config.fault_plan.has_crashes() && !config.fault.enabled) {
      fail("fault_plan contains crashes but fault.enabled is false; the "
           "master would wait forever on the crashed rank");
    }
    if (config.backend != FarmBackend::kSim) {
      for (const FaultEvent& ev : config.fault_plan.events) {
        if (ev.kind == FaultKind::kSlowdown) {
          fail("slowdown faults scale simulated compute charges and are "
               "only meaningful on the kSim backend");
        }
      }
    }
  }
}

FarmResult render_farm(const AnimatedScene& scene, const FarmConfig& config) {
  validate_farm_config(scene, config);

  std::vector<double> speeds = config.worker_speeds;
  if (speeds.empty()) {
    speeds.assign(static_cast<std::size_t>(config.workers), 1.0);
  }
  const int worker_count = static_cast<int>(speeds.size());

  MasterConfig master_config;
  master_config.partition = config.partition;
  master_config.cost = config.cost;
  master_config.fault = config.fault;
  master_config.output_dir = config.output_dir;
  master_config.output_prefix = config.output_prefix;
  RenderMaster master(scene, master_config);

  WorkerConfig worker_config;
  worker_config.coherence = config.coherence;
  worker_config.cost = config.cost;
  worker_config.sparse_returns = config.sparse_returns;
  std::vector<std::unique_ptr<RenderWorker>> workers;
  workers.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers.push_back(std::make_unique<RenderWorker>(scene, worker_config));
  }

  std::vector<Actor*> actors;
  actors.push_back(&master);
  for (auto& w : workers) actors.push_back(w.get());

  // Crash-after-N-frames triggers count the rank's frame-result sends.
  FaultPlan fault_plan = config.fault_plan;
  fault_plan.progress_tag = kTagFrameResult;

  FarmResult result;
  switch (config.backend) {
    case FarmBackend::kSim: {
      SimConfig sim_config;
      sim_config.speeds.push_back(config.master_speed);
      sim_config.speeds.insert(sim_config.speeds.end(), speeds.begin(),
                               speeds.end());
      sim_config.ethernet = config.ethernet;
      sim_config.fault_plan = fault_plan;
      SimRuntime runtime(std::move(sim_config));
      result.sim = runtime.run_sim(actors);
      result.runtime = result.sim;
      break;
    }
    case FarmBackend::kThreads: {
      ThreadRuntime runtime(fault_plan);
      result.runtime = runtime.run(actors);
      break;
    }
    case FarmBackend::kTcp: {
      TcpRuntime runtime(fault_plan);
      result.runtime = runtime.run(actors);
      break;
    }
  }
  result.elapsed_seconds = result.runtime.elapsed_seconds;
  result.frames = master.frames();
  result.master = master.report();
  for (auto& w : workers) result.workers.push_back(w->report());
  result.faults = master.fault_report();
  return result;
}

}  // namespace now
