#include "src/par/render_farm.h"

#include <memory>
#include <stdexcept>

#include "src/net/tcp_runtime.h"
#include "src/net/thread_runtime.h"

namespace now {

const char* to_string(FarmBackend backend) {
  switch (backend) {
    case FarmBackend::kSim: return "sim";
    case FarmBackend::kThreads: return "threads";
    case FarmBackend::kTcp: return "tcp";
  }
  return "unknown";
}

FarmResult render_farm(const AnimatedScene& scene, const FarmConfig& config) {
  std::vector<double> speeds = config.worker_speeds;
  if (speeds.empty()) {
    speeds.assign(static_cast<std::size_t>(config.workers), 1.0);
  }
  const int worker_count = static_cast<int>(speeds.size());
  if (worker_count < 1) throw std::invalid_argument("need at least 1 worker");

  MasterConfig master_config;
  master_config.partition = config.partition;
  master_config.cost = config.cost;
  master_config.output_dir = config.output_dir;
  master_config.output_prefix = config.output_prefix;
  RenderMaster master(scene, master_config);

  WorkerConfig worker_config;
  worker_config.coherence = config.coherence;
  worker_config.cost = config.cost;
  worker_config.sparse_returns = config.sparse_returns;
  std::vector<std::unique_ptr<RenderWorker>> workers;
  workers.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers.push_back(std::make_unique<RenderWorker>(scene, worker_config));
  }

  std::vector<Actor*> actors;
  actors.push_back(&master);
  for (auto& w : workers) actors.push_back(w.get());

  FarmResult result;
  switch (config.backend) {
    case FarmBackend::kSim: {
      SimConfig sim_config;
      sim_config.speeds.push_back(config.master_speed);
      sim_config.speeds.insert(sim_config.speeds.end(), speeds.begin(),
                               speeds.end());
      sim_config.ethernet = config.ethernet;
      SimRuntime runtime(std::move(sim_config));
      result.sim = runtime.run_sim(actors);
      result.runtime = result.sim;
      break;
    }
    case FarmBackend::kThreads: {
      ThreadRuntime runtime;
      result.runtime = runtime.run(actors);
      break;
    }
    case FarmBackend::kTcp: {
      TcpRuntime runtime;
      result.runtime = runtime.run(actors);
      break;
    }
  }
  result.elapsed_seconds = result.runtime.elapsed_seconds;
  result.frames = master.frames();
  result.master = master.report();
  for (auto& w : workers) result.workers.push_back(w->report());
  return result;
}

}  // namespace now
