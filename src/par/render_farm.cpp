#include "src/par/render_farm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/net/tcp_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/status_server.h"
#include "src/obs/timeseries.h"

namespace now {

const char* to_string(FarmBackend backend) {
  switch (backend) {
    case FarmBackend::kSim: return "sim";
    case FarmBackend::kThreads: return "threads";
    case FarmBackend::kTcp: return "tcp";
  }
  return "unknown";
}

namespace {

int resolved_worker_count(const FarmConfig& config) {
  return config.worker_speeds.empty()
             ? config.workers
             : static_cast<int>(config.worker_speeds.size());
}

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("FarmConfig: " + what);
}

// End-of-run publication: fold the actor reports into the registry so every
// backend reports through the same metric names.
void publish_reports(MetricsRegistry& reg, const RuntimeStats& runtime,
                     const MasterReport& master,
                     const std::vector<WorkerReport>& workers,
                     const FaultReport& faults,
                     const std::vector<ShardReport>& shards) {
  reg.gauge("farm.elapsed_seconds").set(runtime.elapsed_seconds);
  reg.counter("net.messages")
      .inc(static_cast<std::uint64_t>(runtime.messages));
  reg.counter("net.bytes").inc(static_cast<std::uint64_t>(runtime.bytes));

  reg.counter("master.frame_results")
      .inc(static_cast<std::uint64_t>(master.frame_results));
  reg.counter("master.adaptive_splits")
      .inc(static_cast<std::uint64_t>(master.adaptive_splits));
  reg.counter("master.frames_completed")
      .inc(static_cast<std::uint64_t>(master.frames_completed));
  reg.counter("master.rays_total").inc(master.rays_total);
  reg.counter("master.shadow_rays_total").inc(master.shadow_rays_total);
  reg.counter("master.pixels_recomputed")
      .inc(static_cast<std::uint64_t>(master.pixels_recomputed_total));
  reg.counter("master.full_renders")
      .inc(static_cast<std::uint64_t>(master.full_renders));
  reg.gauge("master.worker_compute_seconds")
      .set(master.worker_compute_seconds);
  for (std::size_t w = 1; w < master.frames_by_worker.size(); ++w) {
    reg.counter("rank." + std::to_string(w) + ".frames")
        .inc(static_cast<std::uint64_t>(master.frames_by_worker[w]));
  }

  std::int64_t peak_mark_bytes = 0;
  for (const WorkerReport& r : workers) {
    reg.counter("worker.tasks_completed")
        .inc(static_cast<std::uint64_t>(r.tasks_completed));
    reg.counter("worker.frames_rendered")
        .inc(static_cast<std::uint64_t>(r.frames_rendered));
    reg.counter("worker.rays").inc(r.rays);
    reg.counter("worker.pixels_recomputed")
        .inc(static_cast<std::uint64_t>(r.pixels_recomputed));
    reg.gauge("worker.compute_seconds").add(r.compute_seconds);
    reg.counter("worker.tasks_shrunk_away")
        .inc(static_cast<std::uint64_t>(r.tasks_shrunk_away));
    peak_mark_bytes = std::max(peak_mark_bytes, r.peak_mark_bytes);
  }
  reg.gauge("worker.peak_mark_bytes")
      .set(static_cast<double>(peak_mark_bytes));

  reg.counter("recovery.deaths_detected")
      .inc(static_cast<std::uint64_t>(faults.deaths_detected));
  reg.counter("recovery.pings_sent")
      .inc(static_cast<std::uint64_t>(faults.pings_sent));
  reg.counter("recovery.tasks_nacked")
      .inc(static_cast<std::uint64_t>(faults.tasks_nacked));
  reg.counter("recovery.tasks_reassigned")
      .inc(static_cast<std::uint64_t>(faults.tasks_reassigned));
  reg.counter("recovery.frames_reassigned")
      .inc(static_cast<std::uint64_t>(faults.frames_reassigned));
  reg.counter("recovery.results_ignored")
      .inc(static_cast<std::uint64_t>(faults.results_ignored));
  reg.gauge("recovery.lost_work_seconds").set(faults.lost_work_seconds);
  reg.gauge("recovery.restart_work_seconds").set(faults.restart_work_seconds);
  reg.gauge("recovery.detection_latency_seconds")
      .set(faults.detection_latency_seconds);
  reg.counter("recovery.workers_rejoined")
      .inc(static_cast<std::uint64_t>(faults.workers_rejoined));
  reg.counter("recovery.shards_failed")
      .inc(static_cast<std::uint64_t>(faults.shards_failed));
  reg.counter("recovery.shards_rejoined")
      .inc(static_cast<std::uint64_t>(faults.shards_rejoined));
  reg.counter("recovery.shard_commits_rolled_back")
      .inc(static_cast<std::uint64_t>(faults.shard_commits_rolled_back));
  reg.counter("recovery.speculations_launched")
      .inc(static_cast<std::uint64_t>(faults.speculations_launched));
  reg.counter("recovery.speculations_won")
      .inc(static_cast<std::uint64_t>(faults.speculations_won));
  reg.counter("recovery.speculation_frames_wasted")
      .inc(static_cast<std::uint64_t>(faults.speculation_frames_wasted));
  reg.gauge("recovery.speculation_wasted_seconds")
      .set(faults.speculation_wasted_seconds);

  // ckpt.* totals are merged across the scheduler journal and every shard
  // segment, so a sharded run reports the same shape a single-master run
  // does; the per-segment split is visible under shard.<i>.* below.
  std::int64_t journal_records = master.journal_records;
  std::int64_t journal_bytes = master.journal_bytes;
  bool journal_ok = master.journal_ok;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardReport& s = shards[i];
    journal_records += s.journal_records;
    journal_bytes += s.journal_bytes;
    journal_ok = journal_ok && s.journal_ok;
    const std::string prefix = "shard." + std::to_string(i) + ".";
    reg.counter(prefix + "frame_results")
        .inc(static_cast<std::uint64_t>(s.frame_results));
    reg.counter(prefix + "frames_committed")
        .inc(static_cast<std::uint64_t>(s.frames_committed));
    reg.counter(prefix + "frames_completed")
        .inc(static_cast<std::uint64_t>(s.frames_completed));
    reg.counter(prefix + "frames_restored")
        .inc(static_cast<std::uint64_t>(s.frames_restored));
    reg.counter(prefix + "duplicates")
        .inc(static_cast<std::uint64_t>(s.duplicates));
    reg.counter(prefix + "stale_results")
        .inc(static_cast<std::uint64_t>(s.stale_results));
    reg.counter(prefix + "chain_rejects")
        .inc(static_cast<std::uint64_t>(s.chain_rejects));
    reg.counter(prefix + "decode_failures")
        .inc(static_cast<std::uint64_t>(s.decode_failures));
    reg.counter(prefix + "frame_bytes")
        .inc(static_cast<std::uint64_t>(s.frame_bytes));
    reg.counter(prefix + "journal_records")
        .inc(static_cast<std::uint64_t>(s.journal_records));
    reg.counter(prefix + "journal_bytes")
        .inc(static_cast<std::uint64_t>(s.journal_bytes));
    reg.counter(prefix + "rebuilds")
        .inc(static_cast<std::uint64_t>(s.rebuilds));
  }

  reg.counter("ckpt.frames_restored")
      .inc(static_cast<std::uint64_t>(master.frames_restored));
  reg.counter("ckpt.journal_records")
      .inc(static_cast<std::uint64_t>(journal_records));
  reg.counter("ckpt.journal_bytes")
      .inc(static_cast<std::uint64_t>(journal_bytes));
  reg.counter("ckpt.journal_checkpoints")
      .inc(static_cast<std::uint64_t>(master.journal_checkpoints));
  reg.gauge("ckpt.journal_ok").set(journal_ok ? 1.0 : 0.0);
}

}  // namespace

void validate_farm_config(const AnimatedScene& scene,
                          const FarmConfig& config) {
  if (scene.width() < 1 || scene.height() < 1) {
    fail("scene must be at least 1x1 pixels");
  }
  if (scene.frame_count() < 1) fail("scene must have at least 1 frame");
  const int worker_count = resolved_worker_count(config);
  if (worker_count < 1) {
    fail("need at least 1 worker (workers or worker_speeds)");
  }
  for (const double s : config.worker_speeds) {
    if (!std::isfinite(s) || s <= 0.0) {
      fail("worker_speeds entries must be finite and > 0");
    }
  }
  if (!std::isfinite(config.master_speed) || config.master_speed <= 0.0) {
    fail("master_speed must be finite and > 0");
  }
  if (config.coherence.threads < 0) {
    fail("coherence.threads must be >= 0 (0 = one per hardware thread)");
  }
  if (config.partition.block_size < 1) {
    fail("partition.block_size must be >= 1");
  }
  if (config.partition.hybrid_frames < 1) {
    fail("partition.hybrid_frames must be >= 1");
  }
  if (config.partition.min_split_frames < 1) {
    fail("partition.min_split_frames must be >= 1");
  }
  if (config.fault.enabled) {
    if (!(config.fault.lease_base_seconds > 0.0)) {
      fail("fault.lease_base_seconds must be > 0 when fault.enabled");
    }
    if (config.fault.lease_per_frame_seconds < 0.0) {
      fail("fault.lease_per_frame_seconds must be >= 0");
    }
    if (!(config.fault.ping_grace_seconds > 0.0)) {
      fail("fault.ping_grace_seconds must be > 0 when fault.enabled");
    }
  }
  if (!config.journal_path.empty() && config.output_dir.empty()) {
    fail("journal_path requires output_dir; the journal's frame records "
         "point at the frame files");
  }
  if (config.resume && config.journal_path.empty()) {
    fail("resume requires journal_path");
  }
  if (config.journal_checkpoint_every < 1) {
    fail("journal_checkpoint_every must be >= 1");
  }
  if (!std::isfinite(config.obs.sample_interval_seconds) ||
      config.obs.sample_interval_seconds < 0.0) {
    fail("obs.sample_interval_seconds must be finite and >= 0");
  }
  if (config.obs.status_port > 65535) {
    fail("obs.status_port must be <= 65535");
  }
  if (config.obs.flight_capacity < 1) {
    fail("obs.flight_capacity must be >= 1");
  }
  if (config.service.enabled) {
    if (config.shards > 1) {
      fail("service mode requires shards == 1; per-shot output namespacing "
           "and the global frame space are single-sink for now");
    }
    if (!config.journal_path.empty() || config.resume) {
      fail("service mode does not support journaling or resume; shots are "
           "admitted at runtime and have no stable frame space to replay");
    }
    if (!config.fault_plan.empty()) {
      fail("service mode does not yet support fault injection");
    }
    if (config.service.clients.empty()) {
      fail("service mode needs at least one client script");
    }
    for (const AnimatedScene* extra : config.service.extra_scenes) {
      if (extra == nullptr) fail("service extra_scenes must be non-null");
      if (extra->width() != scene.width() ||
          extra->height() != scene.height()) {
        fail("service extra_scenes must match the primary scene's pixel "
             "dimensions");
      }
      if (extra->frame_count() < 1) {
        fail("service extra_scenes must have at least 1 frame");
      }
    }
    for (const ClientScript& script : config.service.clients) {
      for (const ClientAction& action : script.actions) {
        if (!std::isfinite(action.at_seconds) || action.at_seconds < 0.0) {
          fail("client action at_seconds must be finite and >= 0");
        }
        if ((action.kind == ClientActionKind::kStatus ||
             action.kind == ClientActionKind::kCancel) &&
            action.submit_index < 0) {
          fail("client action submit_index must be >= 0");
        }
      }
    }
  }
  if (config.shards < 1) fail("shards must be >= 1");
  if (config.shards > scene.frame_count()) {
    fail("shards must not exceed the frame count (a shard with no owned "
         "frames would idle forever)");
  }
  if (config.shards > 1 && !config.fault_plan.empty() &&
      !config.fault.enabled) {
    for (const FaultEvent& ev : config.fault_plan.events) {
      if (ev.kind == FaultKind::kDropMessage) {
        // With one master, every loss shows up as a gap in the worker's
        // result stream at rank 0. A sharded run can lose the last frame a
        // worker sends to one shard without the next shard ever knowing —
        // that loss is only detectable by the progress lease.
        fail("dropped messages with shards > 1 require fault.enabled; a "
             "loss at an ownership boundary is only detected by the lease");
      }
    }
  }
  if (!config.fault_plan.empty()) {
    const int world_size =
        1 + worker_count + (config.shards > 1 ? config.shards : 0);
    // A scheduler kill is only recoverable by restarting the run from the
    // journal (--resume); in-process it just ends the render early, which
    // is only meaningful (and deterministic) under the sim backend.
    const bool scheduler_crash_ok = config.backend == FarmBackend::kSim &&
                                    !config.journal_path.empty();
    validate_fault_plan(config.fault_plan, world_size, scheduler_crash_ok);
    // Shard ranks sit above the workers; with shards == 1 there are none
    // and every crashable rank in [1, world_size) is a worker.
    const int first_shard_rank =
        config.shards > 1 ? worker_count + 1 : world_size;
    for (const FaultEvent& ev : config.fault_plan.events) {
      if (ev.kind != FaultKind::kCrash) continue;
      if (ev.rank == 0) {
        if (config.fault_plan.rank_rejoins(0)) {
          fail("the scheduler cannot rejoin in-process (its task table died "
               "with it); recover a scheduler kill by rerunning with "
               "resume");
        }
        continue;
      }
      if (ev.rank >= first_shard_rank) {
        if (config.journal_path.empty()) {
          fail("a shard crash requires journal_path; the replacement shard "
               "rebuilds its committed frames from its journal segment");
        }
        if (!config.fault.enabled) {
          fail("a shard crash requires fault.enabled; only the scheduler's "
               "shard liveness lease detects the death and rolls back its "
               "lost commits");
        }
        if (!config.fault_plan.rank_rejoins(ev.rank)) {
          fail("a shard crash requires a rejoin for the same rank; without "
               "a replacement the shard's owned frames can never complete");
        }
        continue;
      }
      // Worker crash. A crashed rank that rejoins re-announces itself,
      // which lets the master recover even without lease-based detection; a
      // crash with no rejoin needs the detector.
      if (!config.fault.enabled && !config.fault_plan.rank_rejoins(ev.rank)) {
        fail("fault_plan contains a crash without a rejoin but "
             "fault.enabled is false; the master would wait forever on "
             "the crashed rank");
      }
    }
    if (config.backend != FarmBackend::kSim) {
      for (const FaultEvent& ev : config.fault_plan.events) {
        if (ev.kind == FaultKind::kSlowdown) {
          fail("slowdown faults scale simulated compute charges and are "
               "only meaningful on the kSim backend");
        }
      }
    }
  }
}

FarmResult render_farm(const AnimatedScene& scene, const FarmConfig& config) {
  validate_farm_config(scene, config);

  std::vector<double> speeds = config.worker_speeds;
  if (speeds.empty()) {
    speeds.assign(static_cast<std::size_t>(config.workers), 1.0);
  }
  const int worker_count = static_cast<int>(speeds.size());

  // Frame ownership: identity when shards == 1 (owner_rank is always 0 and
  // nothing below changes), a contiguous near-even split otherwise.
  ShardMap shard_map;
  shard_map.shard_count = config.shards;
  shard_map.worker_count = worker_count;
  shard_map.frame_count = scene.frame_count();
  const bool sharded = shard_map.sharded();

  // One registry + tracer pair shared by every layer of the run. Both are
  // safe to hand out unconditionally: a disabled registry deals in no-op
  // instruments, a disabled tracer is normalized to null by its consumers.
  MetricsRegistry registry(config.obs.metrics);
  EventTracer tracer(config.obs.trace);
  // The flight recorder rides on the tracer: attaching it keeps the tracer
  // "enabled" (every instrumented site keeps emitting) while the export
  // buffer stays empty unless obs.trace is also on. Attach before any actor
  // is constructed — actors normalize a disabled tracer to null.
  FlightRecorder flight(config.obs.flight_capacity);
  // Fatal-signal flush is armed only while the farm runs (RAII so a throwing
  // runtime cannot leave handlers pointing at a dead recorder). Fault-
  // injected deaths flush through the injector instead — see FaultInjector.
  struct CrashFlushGuard {
    bool armed = false;
    ~CrashFlushGuard() {
      if (armed) install_crash_flush(nullptr, "");
    }
  } crash_guard;
  if (config.obs.flight_recorder) {
    flight.set_flush_dir(config.obs.flight_dir);
    tracer.set_flight_recorder(&flight);
    install_crash_flush(&flight, config.obs.flight_dir);
    crash_guard.armed = true;
  }
  RuntimeObs obs{&tracer, &registry};

  MasterConfig master_config;
  master_config.partition = config.partition;
  master_config.cost = config.cost;
  master_config.fault = config.fault;
  master_config.output_dir = config.output_dir;
  master_config.output_prefix = config.output_prefix;
  master_config.journal_path = config.journal_path;
  master_config.journal_fsync = config.journal_fsync;
  master_config.journal_checkpoint_every = config.journal_checkpoint_every;
  master_config.speculate = config.speculation;
  master_config.tracer = &tracer;
  master_config.metrics = &registry;
  master_config.shards = shard_map;
  master_config.straggler = config.obs.straggler;
  const bool service = config.service.enabled;
  const int client_count =
      service ? static_cast<int>(config.service.clients.size()) : 0;
  if (service) {
    master_config.service.enabled = true;
    master_config.service.client_count = client_count;
    master_config.service.scenes.push_back(&scene);
    for (const AnimatedScene* extra : config.service.extra_scenes) {
      master_config.service.scenes.push_back(extra);
    }
  }

  // Live telemetry plane. The sampler runs on every backend (under kSim the
  // tick is a deterministic self-message on virtual time); the HTTP server
  // only exists on wall-clock backends.
  const bool wall_clock = config.backend != FarmBackend::kSim;
  const bool want_status = wall_clock && config.obs.status_port >= 0;
  double sample_interval = config.obs.sample_interval_seconds;
  if (sample_interval <= 0.0 && want_status) {
    sample_interval = 0.25;  // the endpoint needs a publisher to be useful
  }
  TimeSeriesSampler sampler;
  StatusBoard status_board;
  if (sample_interval > 0.0) {
    master_config.sample_interval_seconds = sample_interval;
    master_config.sampler = &sampler;
    if (want_status) master_config.status = &status_board;
  }

  // Resume: replay the journal and reload completed frames before the
  // master starts. `recovery` must outlive the runtime run below.
  RecoveryState recovery;
  ResumeReport resume_report;
  if (config.resume) {
    recovery = build_recovery(config.journal_path, config.output_dir,
                              config.output_prefix, scene.width(),
                              scene.height(), scene.frame_count(),
                              config.shards);
    if (!recovery.ok) {
      throw std::invalid_argument("FarmConfig: resume failed: " +
                                  recovery.error);
    }
    master_config.recovery = &recovery;
    resume_report.resumed = true;
    resume_report.frames_restored = recovery.frames_restored;
    resume_report.frames_demoted = recovery.frames_demoted;
    resume_report.records_replayed = recovery.records_replayed;
    resume_report.journal_truncated = recovery.journal_truncated;
    resume_report.scheduler_checkpoint = recovery.last_checkpoint.has_value();
  }
  RenderMaster master(scene, master_config);

  WorkerConfig worker_config;
  worker_config.coherence = config.coherence;
  worker_config.coherence.metrics = &registry;
  if (config.backend == FarmBackend::kSim) {
    // The sim charges virtual compute time per frame; real render threads
    // would only perturb wall-clock noise into its deterministic traces.
    worker_config.coherence.threads = 1;
  }
  worker_config.cost = config.cost;
  worker_config.sparse_returns = config.sparse_returns;
  worker_config.frame_codec = config.frame_codec;
  // The sim runtime is sequential and its contexts are not thread-safe, so
  // it always sends inline; the codec still applies (and changes simulated
  // Ethernet transmit times, since the sim charges by payload size).
  worker_config.pipeline =
      config.pipeline && config.backend != FarmBackend::kSim;
  worker_config.tracer = &tracer;
  worker_config.metrics = &registry;
  worker_config.shards = shard_map;
  if (service) worker_config.extra_scenes = config.service.extra_scenes;
  std::vector<std::unique_ptr<RenderWorker>> workers;
  workers.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers.push_back(std::make_unique<RenderWorker>(scene, worker_config));
  }

  // Framebuffer shards ride at the tail of the rank space so worker ranks
  // stay 1..worker_count on every backend.
  std::vector<std::unique_ptr<FrameShard>> shards;
  if (sharded) {
    for (int i = 0; i < config.shards; ++i) {
      ShardConfig shard_config;
      shard_config.map = shard_map;
      shard_config.shard_index = i;
      shard_config.width = scene.width();
      shard_config.height = scene.height();
      shard_config.cost = config.cost;
      shard_config.output_dir = config.output_dir;
      shard_config.output_prefix = config.output_prefix;
      if (!config.journal_path.empty()) {
        shard_config.journal_path = shard_journal_path(config.journal_path, i);
      }
      shard_config.journal_fsync = config.journal_fsync;
      shard_config.recovery = config.resume ? &recovery : nullptr;
      shard_config.tracer = &tracer;
      shard_config.metrics = &registry;
      shards.push_back(std::make_unique<FrameShard>(shard_config));
    }
  }

  // Service clients ride at the tail of the rank space (after the workers;
  // service mode excludes shards).
  std::vector<std::unique_ptr<ShotClient>> clients;
  if (service) {
    for (const ClientScript& script : config.service.clients) {
      clients.push_back(std::make_unique<ShotClient>(script));
    }
  }

  std::vector<Actor*> actors;
  actors.push_back(&master);
  for (auto& w : workers) actors.push_back(w.get());
  for (auto& s : shards) actors.push_back(s.get());
  for (auto& c : clients) actors.push_back(c.get());

  // Crash-after-N-frames triggers count the rank's frame-result sends;
  // rejoin events are delivered to the revived rank under kTagRejoin.
  FaultPlan fault_plan = config.fault_plan;
  fault_plan.progress_tag = kTagFrameResult;
  // Progress means different things per rank class: a shard's unit of work
  // is the digest it answers, the scheduler's is the assignment it hands
  // out. after_frames triggers count the right one automatically.
  fault_plan.shard_progress_tag = kTagCommitDigest;
  fault_plan.scheduler_progress_tag = kTagTask;
  fault_plan.first_shard_rank = sharded ? worker_count + 1 : -1;
  fault_plan.rejoin_tag = kTagRejoin;

  FarmResult result;

  // Start the status endpoint before the runtime so /metrics and /status
  // answer mid-render. Providers snapshot through their own locks; the
  // server thread never touches actor state directly.
  std::unique_ptr<StatusServer> status_server;
  if (want_status) {
    status_server = std::make_unique<StatusServer>(
        config.obs.status_port,
        [&registry] { return prometheus_text(registry.snapshot()); },
        [&status_board] { return status_board.latest(); });
    if (status_server->ok()) result.status_port = status_server->port();
  }
  switch (config.backend) {
    case FarmBackend::kSim: {
      SimConfig sim_config;
      sim_config.speeds.push_back(config.master_speed);
      sim_config.speeds.insert(sim_config.speeds.end(), speeds.begin(),
                               speeds.end());
      // Shards are IO machines of the master's class, not renderers — and
      // service clients charge no compute at all, so their speed is moot.
      for (int i = 0; i < static_cast<int>(shards.size()); ++i) {
        sim_config.speeds.push_back(config.master_speed);
      }
      for (int i = 0; i < static_cast<int>(clients.size()); ++i) {
        sim_config.speeds.push_back(config.master_speed);
      }
      sim_config.ethernet = config.ethernet;
      sim_config.fault_plan = fault_plan;
      sim_config.obs = obs;
      SimRuntime runtime(std::move(sim_config));
      result.runtime = runtime.run(actors);
      break;
    }
    case FarmBackend::kThreads: {
      ThreadRuntime runtime(fault_plan, obs);
      result.runtime = runtime.run(actors);
      break;
    }
    case FarmBackend::kTcp: {
      TcpOptions tcp_options;
      // Each shard rank gets its own listener; workers dial every endpoint
      // so frame results can bypass rank 0 entirely.
      for (int i = 0; i < static_cast<int>(shards.size()); ++i) {
        tcp_options.extra_endpoints.push_back(shard_map.rank_of_shard(i));
      }
      TcpRuntime runtime(fault_plan, tcp_options, obs);
      result.runtime = runtime.run(actors);
      break;
    }
  }
  result.elapsed_seconds = result.runtime.elapsed_seconds;
  if (sharded) {
    // The thin scheduler holds no pixels: stitch the animation back
    // together from the shards' owned ranges.
    result.frames.assign(static_cast<std::size_t>(scene.frame_count()),
                         Framebuffer(scene.width(), scene.height()));
    for (auto& s : shards) {
      for (int f = 0; f < s->owned_frames(); ++f) {
        result.frames[static_cast<std::size_t>(s->first_frame() + f)] =
            s->frames()[static_cast<std::size_t>(f)];
      }
      result.shards.push_back(s->report());
    }
  } else {
    result.frames = master.frames();
  }
  result.master = master.report();
  for (auto& w : workers) result.workers.push_back(w->report());
  result.faults = master.fault_report();
  result.resume = resume_report;
  if (service) {
    result.tenants = master.tenant_summaries();
    result.assignment_log = master.assignment_log();
    for (auto& c : clients) result.clients.push_back(c->report());
    // Slice each shot's frames back out of the global frame space.
    for (const ShotSummary& summary : master.shot_summaries()) {
      FarmResult::ShotResult shot;
      shot.summary = summary;
      for (int f = 0; f < summary.frame_count; ++f) {
        const std::size_t global =
            static_cast<std::size_t>(summary.base_frame + f);
        if (global < result.frames.size()) {
          shot.frames.push_back(result.frames[global]);
        }
      }
      result.shots.push_back(std::move(shot));
    }
  }

  publish_reports(registry, result.runtime, result.master, result.workers,
                  result.faults, result.shards);
  if (service) {
    registry.counter("master.shots_submitted")
        .inc(static_cast<std::uint64_t>(result.master.shots_submitted));
    registry.counter("master.shots_completed")
        .inc(static_cast<std::uint64_t>(result.master.shots_completed));
    registry.counter("master.shots_cancelled")
        .inc(static_cast<std::uint64_t>(result.master.shots_cancelled));
    registry.counter("master.shots_rejected")
        .inc(static_cast<std::uint64_t>(result.master.shots_rejected));
    registry.counter("master.preemptions")
        .inc(static_cast<std::uint64_t>(result.master.preemptions));
  }
  if (status_server != nullptr) {
    result.status_requests = status_server->requests_served();
    status_server->stop();
  }
  result.metrics = registry.snapshot();
  if (config.obs.trace) {
    result.trace_events = tracer.sorted_events();
    result.utilization = compute_utilization(
        result.trace_events,
        worker_count + 1 + static_cast<int>(shards.size()),
        result.elapsed_seconds);
    result.flow_chains = flow_chain_stats(result.trace_events);
  }
  return result;
}

}  // namespace now
