// Virtual-time cost model.
//
// The discrete-event backend executes the real rendering instantly (in wall
// time) and charges virtual seconds derived from the work actually done.
// The model is calibrated to the paper's reference machine — the 200 MHz
// SGI Indigo2 that rendered the 45-frame Newton animation in 2:55:51 — so
// serial virtual timings for our Newton scene land at the paper's scale
// (the net rate, amortizing shading and traversal into the per-ray charge,
// comes to ≈1,040 rays per second).
//
// The frame-coherence bookkeeping charge (per voxel visited by the DDA
// marker) is calibrated so first-frame overhead is ≈12% of generation time,
// matching Section 4 ("overhead constitutes a reasonable 12% of the total
// generation time").
#pragma once

#include "src/core/coherent_renderer.h"

namespace now {

struct CostModel {
  /// Reference-machine seconds per traced ray (any kind).
  double seconds_per_ray = 1.0 / 1040.0;

  /// Coherence bookkeeping: seconds per voxel marked by the DDA walker.
  double seconds_per_voxel_mark = 3.8e-5;

  /// Per-pixel framebuffer/bookkeeping cost even when a pixel is skipped
  /// (dirty-set scan, mask updates).
  double seconds_per_pixel_touch = 1.0e-6;

  /// Fixed per-frame cost on a worker (frame setup, accel rebuild).
  double seconds_per_frame_setup = 0.35;

  /// Master-side cost to assemble and write one finished frame to disk
  /// (225 KB targa on a 1998 workstation disk). Overlaps worker compute.
  double master_frame_write_seconds = 0.4;

  /// Master-side handling cost per received message.
  double master_per_message_seconds = 2.0e-3;

  /// Reference seconds a worker charges for one rendered frame region.
  double frame_compute_seconds(const FrameRenderResult& result) const {
    return static_cast<double>(result.stats.total_rays()) * seconds_per_ray +
           static_cast<double>(result.voxels_marked) * seconds_per_voxel_mark +
           static_cast<double>(result.pixels_total) * seconds_per_pixel_touch +
           seconds_per_frame_setup;
  }
};

}  // namespace now
