// RenderWorker: the slave process of the paper's master/slave PVM program.
//
// On receiving a task it builds a fresh CoherentRenderer for the task's
// pixel region (coherence state never survives task boundaries — which is
// exactly why sequence division pays a full render per subsequence) and
// renders the task one frame per kTagContinue self-message, so master
// control traffic (shrink requests) interleaves between frames.
//
// Incremental frames are returned as sparse run-length payloads carrying
// only the recomputed pixels; full renders go back dense.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/core/coherent_renderer.h"
#include "src/net/runtime.h"
#include "src/obs/event_trace.h"
#include "src/obs/metrics.h"
#include "src/par/cost_model.h"
#include "src/par/protocol.h"
#include "src/par/send_pipeline.h"
#include "src/scene/animated_scene.h"

namespace now {

struct WorkerConfig {
  CoherenceOptions coherence;
  CostModel cost;
  /// Send only recomputed pixels on incremental frames (saves Ethernet).
  bool sparse_returns = true;
  /// Wire codec for frame results. kDelta additionally value-diffs
  /// recomputed pixels against the previous frame (the coherence mask is
  /// conservative: a recomputed pixel often lands on the same color) and
  /// compresses the payload; the master reconstructs against its committed
  /// predecessor, so final frames are byte-identical either way.
  FrameCodec frame_codec = FrameCodec::kRaw;
  /// Encode + send frame t on a dedicated sender thread while frame t+1
  /// renders. Requires a wall-clock runtime (sim Contexts are not
  /// thread-safe); leave false there and sends stay inline.
  bool pipeline = false;
  /// Per-frame render spans (cat "frame") on this worker's timeline; the
  /// utilization report derives busy time from them. Null disables.
  EventTracer* tracer = nullptr;
  /// Sink for worker.frame_seconds / net.frame_result_bytes histograms.
  MetricsRegistry* metrics = nullptr;
  /// Frame ownership map: results go to owner_rank(frame), and the frame
  /// right after an ownership boundary is promoted to a dense key frame so
  /// no sparse chain ever crosses shards (the receiving shard has no
  /// predecessor pixels to decode against). Default: single master, no
  /// promotion.
  ShardMap shards;
  /// Multi-tenant service mode: scenes addressable by RenderTask::scene_id
  /// beyond the primary one (id 0 = the scene the worker was built with,
  /// ids 1.. = these, in order). All must share the primary's dimensions.
  /// Pointees must outlive the worker. Empty for classic runs.
  std::vector<const AnimatedScene*> extra_scenes;
};

struct WorkerReport {
  int tasks_completed = 0;
  /// Tasks whose remaining range was shrunk to nothing: the end was reached
  /// by a shrink, not by rendering a final frame. Not "completed" — the
  /// stolen remainder is finished (and counted) by whoever received it.
  int tasks_shrunk_away = 0;
  int frames_rendered = 0;
  std::uint64_t rays = 0;
  std::int64_t pixels_recomputed = 0;
  double compute_seconds = 0.0;  // reference-machine seconds charged
  /// High-water mark of coherence-grid mark storage on this worker. The
  /// paper's frame-division memory claim ("memory requirements are directly
  /// proportional to the size of the image area") is measured with this.
  std::int64_t peak_mark_bytes = 0;
};

class RenderWorker final : public Actor {
 public:
  RenderWorker(const AnimatedScene& scene, const WorkerConfig& config);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& msg) override;
  void on_shutdown(Context& ctx) override;

  const WorkerReport& report() const { return report_; }

 private:
  void start_task(Context& ctx, const RenderTask& task);
  void render_next_frame(Context& ctx);
  void handle_shrink(Context& ctx, const ShrinkRequest& req);

  const AnimatedScene& scene_;
  /// Scene table: entry 0 is scene_, the rest are config_.extra_scenes.
  std::vector<const AnimatedScene*> scenes_;
  WorkerConfig config_;
  SendPipeline pipeline_;

  std::optional<RenderTask> task_;
  std::unique_ptr<CoherentRenderer> renderer_;
  Framebuffer fb_;
  /// Previous frame's region pixels (row-major), kept only under kDelta:
  /// the baseline the value-diff shrinks the sparse mask against.
  std::vector<Rgb8> prev_region_;
  std::int32_t next_frame_ = 0;
  std::int32_t end_frame_ = 0;

  // Cached instruments: one pointer chase per frame, no name lookups.
  Histogram* frame_seconds_hist_ = nullptr;
  Histogram* chunk_seconds_hist_ = nullptr;

  WorkerReport report_;
};

}  // namespace now
