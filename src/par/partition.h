// Data partitioning schemes (Section 3 of the paper).
//
//   Sequence division — each worker receives a consecutive subsequence of
//     whole frames ("each processor would be assigned 30 240x320 frames").
//     Frame coherence applies within each subsequence; adaptive re-splitting
//     keeps all processors busy at the cost of extra full first-frames.
//
//   Frame division — each frame is divided into subareas assigned to a
//     worker for the entire animation ("80x80 pixel subareas were assigned
//     to processors to compute for the entire 45 frames"). Memory per worker
//     is proportional to the subarea; coherence persists across the whole
//     animation for each subarea.
//
//   Hybrid — subarea × subsequence chunks ("each processor computes pixels
//     in a subarea of a frame for a subsequence of the entire animation").
//     With chunk length 1 this degenerates to per-frame demand-driven blocks,
//     the configuration the paper uses for distributed rendering *without*
//     coherence (columns 4-5 of Table 1).
#pragma once

#include <string>
#include <vector>

#include "src/par/protocol.h"

namespace now {

enum class PartitionScheme {
  kSequenceDivision,
  kFrameDivision,
  kHybrid,
};

const char* to_string(PartitionScheme scheme);

struct PartitionConfig {
  PartitionScheme scheme = PartitionScheme::kFrameDivision;
  /// Subarea edge for frame division / hybrid (the paper uses 80×80).
  int block_size = 80;
  /// Frame-chunk length for hybrid (1 = per-frame demand-driven blocks).
  int hybrid_frames = 8;
  /// Master may steal the unrendered half of a loaded worker's task when
  /// another worker idles.
  bool adaptive = true;
  /// Minimum remaining frames before a task is worth splitting.
  int min_split_frames = 4;
  /// Frames at which a new shot begins (camera cuts). Sequence-division
  /// tasks never span a cut; the master fills this from the scene.
  std::vector<int> sequence_cuts;
};

/// Cover a width×height image with block_size×block_size tiles (edge tiles
/// clipped). Tiles are row-major.
std::vector<PixelRect> tile_rects(int width, int height, int block_size);

/// Split [0, frames) into `parts` contiguous ranges differing by ≤1 frame.
std::vector<std::pair<int, int>> split_frames(int frames, int parts);

/// Split [0, frames) into ~`parts` contiguous ranges that never cross a cut
/// (each cut frame starts a new shot; the coherence algorithm cannot carry
/// state across a camera move). Each shot receives range counts
/// proportional to its length, at least one each.
std::vector<std::pair<int, int>> split_frames_at_cuts(
    int frames, int parts, const std::vector<int>& cut_frames);

/// Initial task list for a scheme over a width×height×frames animation with
/// `workers` workers. Tasks exactly tile image-area × frames (no overlap, no
/// gap); task ids are their indices.
std::vector<RenderTask> make_initial_tasks(const PartitionConfig& config,
                                           int width, int height, int frames,
                                           int workers);

}  // namespace now
