#include "src/par/send_pipeline.h"

#include <chrono>
#include <utility>

namespace now {

SendPipeline::SendPipeline(const SendPipelineOptions& options)
    : options_(options) {
  if (options_.max_queued_frames < 1) options_.max_queued_frames = 1;
  if (options_.tracer != nullptr && !options_.tracer->enabled()) {
    options_.tracer = nullptr;
  }
  if (options_.metrics != nullptr) {
    bytes_raw_ = &options_.metrics->counter("net.frame_bytes_raw");
    bytes_wire_ = &options_.metrics->counter("net.frame_bytes_wire");
    key_frames_ = &options_.metrics->counter("net.key_frames");
    delta_frames_ = &options_.metrics->counter("net.delta_frames");
    dropped_ = &options_.metrics->counter("net.pipeline_dropped");
    result_bytes_ = &options_.metrics->histogram(
        "net.frame_result_bytes", Histogram::default_bytes_bounds());
  }
}

SendPipeline::~SendPipeline() { shutdown(); }

void SendPipeline::encode_and_send(Context& ctx, Item& item) {
  const FrameResult& result = *item.frame;
  const double start = ctx.now();
  std::string encoded = encode_frame_result(result, options_.codec);
  // "Raw" is what this frame would have cost on the wire without the codec:
  // the exact uncompressed payload encoding. The wire counter is what it
  // actually cost; the ratio is the codec's whole value proposition.
  if (bytes_raw_ != nullptr) {
    bytes_raw_->inc(static_cast<std::uint64_t>(encoded_size(result.payload)));
    bytes_wire_->inc(static_cast<std::uint64_t>(encoded.size()));
    (result.key_frame() ? key_frames_ : delta_frames_)->inc();
    result_bytes_->observe(static_cast<double>(encoded.size()));
  }
  if (options_.tracer != nullptr) {
    // Threaded mode runs on wall-clock backends, so ctx.now() spans are real
    // durations of encode + send on the sender thread's lane.
    options_.tracer->complete(
        ctx.rank(), "net", "net.send_pipeline", start, ctx.now() - start,
        {{"frame", result.frame},
         {"task", result.task_id},
         {"key", result.key_frame() ? 1 : 0},
         {"bytes", static_cast<std::int64_t>(encoded.size())}});
    if (result.trace_ctx != 0) {
      // Step 2 of the frame's flow chain: result encoded and on the wire.
      options_.tracer->flow_step(
          ctx.rank(), trace_flow_id(result.trace_ctx, result.frame),
          ctx.now(),
          {{"task", result.task_id}, {"frame", result.frame}, {"step", 2}});
    }
  }
  ctx.send(options_.shards.owner_rank(result.frame), kTagFrameResult,
           std::move(encoded));
}

void SendPipeline::send_control(Context& ctx, int tag, std::string payload) {
  if (!options_.threaded) {
    ctx.send(0, tag, std::move(payload));
    return;
  }
  enqueue(ctx, Item{tag, std::move(payload), std::nullopt}, /*is_frame=*/false);
}

void SendPipeline::send_frame(Context& ctx, FrameResult result) {
  if (!options_.threaded) {
    Item item{kTagFrameResult, {}, std::move(result)};
    encode_and_send(ctx, item);
    return;
  }
  enqueue(ctx, Item{kTagFrameResult, {}, std::move(result)},
          /*is_frame=*/true);
}

void SendPipeline::enqueue(Context& ctx, Item item, bool is_frame) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    // The pipeline is already wound down (shutdown raced a late send): fall
    // back to an inline send rather than losing the message.
    lock.unlock();
    if (is_frame) {
      encode_and_send(ctx, item);
    } else {
      ctx.send(0, item.tag, std::move(item.payload));
    }
    return;
  }
  if (is_frame) {
    // Double buffer: block while the sender still owes max_queued_frames
    // results. This is the render/send overlap boundary — the caller renders
    // frame t+1 while the sender encodes and ships frame t.
    space_cv_.wait(lock, [&] {
      return stop_ || queued_frames_ < options_.max_queued_frames;
    });
    if (stop_) {
      lock.unlock();
      encode_and_send(ctx, item);
      return;
    }
    ++queued_frames_;
  }
  ctx_ = &ctx;
  if (!started_) {
    started_ = true;
    sender_ = std::thread([this] { run(); });
  }
  queue_.push_back(std::move(item));
  cv_.notify_one();
}

void SendPipeline::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;  // leftovers are counted and dropped by shutdown()
    Item item = std::move(queue_.front());
    queue_.pop_front();
    const bool is_frame = item.frame.has_value();
    Context* ctx = ctx_;
    lock.unlock();
    if (is_frame) {
      encode_and_send(*ctx, item);
    } else {
      ctx->send(0, item.tag, std::move(item.payload));
    }
    lock.lock();
    if (is_frame) {
      --queued_frames_;
      space_cv_.notify_all();
    }
  }
}

void SendPipeline::discard_pending() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dropped_ != nullptr) {
    dropped_->inc(static_cast<std::uint64_t>(queue_.size()));
  }
  queue_.clear();
  queued_frames_ = 0;
  space_cv_.notify_all();
}

void SendPipeline::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    if (dropped_ != nullptr) {
      dropped_->inc(static_cast<std::uint64_t>(queue_.size()));
    }
    queue_.clear();
    queued_frames_ = 0;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  if (sender_.joinable()) sender_.join();
}

}  // namespace now
