// RenderFarm: one-call façade over the master/worker actors and the three
// runtimes. This is the library's top-level entry point for distributed
// animation rendering:
//
//   FarmConfig cfg;
//   cfg.backend = FarmBackend::kSim;             // or kThreads / kTcp
//   cfg.worker_speeds = {1.0, 0.5, 0.5};         // the paper's SGI mix
//   cfg.partition.scheme = PartitionScheme::kFrameDivision;
//   FarmResult r = render_farm(scene, cfg);
#pragma once

#include <string>
#include <vector>

#include "src/par/master.h"
#include "src/par/worker.h"
#include "src/sim/sim_runtime.h"

namespace now {

enum class FarmBackend {
  kSim,      // discrete-event virtual time (deterministic, heterogeneous)
  kThreads,  // real std::thread parallelism, wall clock
  kTcp,      // real threads over loopback TCP sockets, wall clock
};

const char* to_string(FarmBackend backend);

struct FarmConfig {
  FarmBackend backend = FarmBackend::kSim;
  /// Worker count when worker_speeds is empty (speeds default to 1.0).
  int workers = 3;
  /// Per-worker speed factors (kSim only; size defines the worker count).
  std::vector<double> worker_speeds;
  /// Master machine speed factor (kSim only).
  double master_speed = 1.0;
  EthernetParams ethernet;
  PartitionConfig partition;
  CoherenceOptions coherence;
  CostModel cost;
  bool sparse_returns = true;
  std::string output_dir;  // per-frame targa output ("" = keep in memory)
  std::string output_prefix = "frame";
};

struct FarmResult {
  std::vector<Framebuffer> frames;
  double elapsed_seconds = 0.0;  // virtual (kSim) or wall (others)
  RuntimeStats runtime;
  MasterReport master;
  std::vector<WorkerReport> workers;
  SimRuntimeStats sim;  // populated for kSim only
};

FarmResult render_farm(const AnimatedScene& scene, const FarmConfig& config);

}  // namespace now
