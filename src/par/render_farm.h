// RenderFarm: one-call façade over the master/worker actors and the three
// runtimes. This is the library's top-level entry point for distributed
// animation rendering:
//
//   FarmConfig cfg;
//   cfg.backend = FarmBackend::kSim;             // or kThreads / kTcp
//   cfg.worker_speeds = {1.0, 0.5, 0.5};         // the paper's SGI mix
//   cfg.partition.scheme = PartitionScheme::kFrameDivision;
//   FarmResult r = render_farm(scene, cfg);
#pragma once

#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/fault/fault_tolerance.h"
#include "src/obs/event_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/par/master.h"
#include "src/par/service_client.h"
#include "src/par/worker.h"
#include "src/shard/shard.h"
#include "src/sim/sim_runtime.h"

namespace now {

enum class FarmBackend {
  kSim,      // discrete-event virtual time (deterministic, heterogeneous)
  kThreads,  // real std::thread parallelism, wall clock
  kTcp,      // real threads over loopback TCP sockets, wall clock
};

const char* to_string(FarmBackend backend);

struct FarmObsConfig {
  /// Record structured trace events (per-frame render spans, cross-rank
  /// sends/receives, scheduling decisions, fault injections) and compute the
  /// utilization report. Off by default: every tracer call is a lock.
  bool trace = false;
  /// Aggregate counters/gauges/histograms into FarmResult::metrics. On by
  /// default; when disabled, instrumented code receives shared no-op
  /// instruments and FarmResult::metrics comes back empty.
  bool metrics = true;
  /// Live telemetry plane: > 0 arms the scheduler's sample tick, which
  /// snapshots the registry into bounded time-series rings and publishes
  /// the /status JSON. Under kSim the ticks ride virtual time (so sampling
  /// is deterministic) and cost no simulated compute; every gated output is
  /// byte-identical with sampling on or off.
  double sample_interval_seconds = 0.0;
  /// HTTP status endpoint on 127.0.0.1 (wall-clock backends only; ignored
  /// under kSim — the live plane is inert there). 0 picks an ephemeral
  /// port, -1 disables. Serves GET /metrics (Prometheus text) and
  /// GET /status (scheduler JSON). Enabling it implies a default sample
  /// interval when none is set.
  int status_port = -1;
  /// Keep a bounded per-rank ring of recent trace events (even with `trace`
  /// off) and flush a rank's ring as `trace-crash-<rank>.json` into
  /// `flight_dir` when a fault-injected death fires. Callers wanting a
  /// flush on real fatal signals arm install_crash_flush() themselves.
  bool flight_recorder = false;
  std::string flight_dir = ".";
  int flight_capacity = 4096;
  /// Straggler-detection thresholds (always-on commit bookkeeping; feeds
  /// sched.stragglers and the speculation victim ranking).
  StragglerConfig straggler;
};

/// Multi-tenant service mode: the farm runs as a shot-queue service.
/// Scripted ShotClient actors (one rank each, after the workers) submit,
/// poll, and cancel shots against the master's job queue; the weighted-fair
/// scheduler divides the workers between tenants. Requires shards == 1 and
/// no journal/resume; the run ends when every client is done and every
/// admitted shot is terminal.
struct ServiceConfig {
  bool enabled = false;
  /// One scripted client per entry; at least one when enabled.
  std::vector<ClientScript> clients;
  /// Scenes addressable by ShotSubmit::scene_id beyond the primary (id 0 is
  /// the scene passed to render_farm, ids 1.. are these, in order). All
  /// must share the primary's pixel dimensions and outlive the call.
  std::vector<const AnimatedScene*> extra_scenes;
};

struct FarmConfig {
  FarmBackend backend = FarmBackend::kSim;
  /// Worker count when worker_speeds is empty (speeds default to 1.0).
  int workers = 3;
  /// Per-worker speed factors (kSim only; size defines the worker count).
  std::vector<double> worker_speeds;
  /// Master machine speed factor (kSim only).
  double master_speed = 1.0;
  EthernetParams ethernet;
  PartitionConfig partition;
  CoherenceOptions coherence;
  CostModel cost;
  bool sparse_returns = true;
  /// Frame transport codec. kDelta value-diffs incremental frames against
  /// the predecessor and compresses payloads (full frames where coherence
  /// restarts stay dense key frames); final frames are byte-identical to
  /// kRaw on every backend, only the wire bytes change.
  FrameCodec frame_codec = FrameCodec::kDelta;
  /// Overlap each frame's encode+send with the next frame's render on a
  /// dedicated per-worker sender thread. Wall-clock backends only; the sim
  /// always sends inline (its contexts are single-threaded by design).
  bool pipeline = true;
  /// Deterministic fault schedule injected into the chosen runtime (worker
  /// ranks are 1-based; rank 0 is the master and cannot fault). Slowdown
  /// events require kSim; crash events require fault.enabled, or the run
  /// would wait forever on a rank that will never answer.
  FaultPlan fault_plan;
  /// Master-side failure detection and recovery (leases, pings,
  /// reassignment). Off by default: zero overhead, no timers.
  FaultToleranceConfig fault;
  std::string output_dir;  // per-frame targa output ("" = keep in memory)
  std::string output_prefix = "frame";
  /// Crash-consistent render journal ("" = no journal). Requires
  /// output_dir: the journal's frame-complete records point at the frame
  /// files, which are the durable pixel state a resume restores from.
  std::string journal_path;
  /// Resume an interrupted run: replay journal_path, restore completed
  /// frames from output_dir, render only the remainder. The resumed output
  /// is byte-identical to an uninterrupted run's.
  bool resume = false;
  bool journal_fsync = true;
  int journal_checkpoint_every = 64;
  /// End-game speculation: duplicate the slowest in-flight task onto idle
  /// workers and keep whichever copy commits first.
  bool speculation = false;
  /// Framebuffer shards. 1 (default) is the classic single master. N > 1
  /// splits the master into a thin scheduler (rank 0) plus N FrameShard
  /// actors (ranks workers+1 .. workers+N), each owning a contiguous frame
  /// range: workers stream pixels straight to the owning shard, which
  /// decodes, journals to its own segment, and writes its own TGAs, while
  /// the scheduler sees only small per-result digests. Output is
  /// byte-identical to shards == 1 on every backend. A journaled sharded
  /// run must resume with the same shard count.
  int shards = 1;
  /// Multi-tenant render service (see ServiceConfig). Off by default.
  ServiceConfig service;
  FarmObsConfig obs;
};

/// What a resume recovered before rendering started.
struct ResumeReport {
  bool resumed = false;
  int frames_restored = 0;
  /// Journal-complete frames whose file was missing or failed its digest —
  /// demoted to re-render.
  int frames_demoted = 0;
  std::int64_t records_replayed = 0;
  bool journal_truncated = false;  // the crash left a torn tail
  /// The journal's valid prefix held a scheduler checkpoint: the task
  /// table, task-id counter, and straggler statistics were restored from it
  /// instead of re-partitioning the incomplete remainder.
  bool scheduler_checkpoint = false;
};

struct FarmResult {
  std::vector<Framebuffer> frames;
  double elapsed_seconds = 0.0;  // virtual (kSim) or wall (others)
  RuntimeStats runtime;
  MasterReport master;
  std::vector<WorkerReport> workers;
  /// Per-shard reports (empty when shards == 1).
  std::vector<ShardReport> shards;
  FaultReport faults;  // detection / recovery accounting (master's view)
  ResumeReport resume;  // what a --resume run restored
  /// Unified metrics snapshot — the one reporting path shared by all three
  /// backends. Backend-specific series (e.g. sim.* and rank.* gauges from
  /// the simulator) simply appear here when the backend publishes them.
  MetricsSnapshot metrics;
  /// Populated when obs.trace: all events, and the per-worker
  /// busy/comm/idle breakdown computed from them.
  std::vector<TraceEvent> trace_events;
  UtilizationReport utilization;
  /// Cross-rank flow chains (one per committed region-frame) found in
  /// trace_events; connected means start + step + end spanning >= 2 ranks.
  FlowChainStats flow_chains;
  /// Actually bound port of the /status endpoint (-1 when it never ran) and
  /// the number of HTTP requests it answered.
  int status_port = -1;
  std::int64_t status_requests = 0;
  // -- multi-tenant service (empty unless service.enabled) ---------------
  /// One entry per admitted shot, in shot-id order. `frames` is the shot's
  /// slice of the global frame space (cancelled shots carry whatever
  /// completed before the cancel; unfinished frames are black).
  struct ShotResult {
    ShotSummary summary;
    std::vector<Framebuffer> frames;
  };
  std::vector<ShotResult> shots;
  std::vector<TenantSummary> tenants;
  /// Per-client replay of admission verdicts, status replies, and terminal
  /// updates, in ServiceConfig::clients order.
  std::vector<ClientReport> clients;
  /// Every weighted-fair grant in dispatch order (fairness gates window
  /// over the contended prefix).
  std::vector<ServiceAssignment> assignment_log;
};

/// Validates `config` against `scene` and throws std::invalid_argument with
/// a descriptive message on the first violation. render_farm() calls this
/// up front; it is exposed so callers can validate without running.
void validate_farm_config(const AnimatedScene& scene,
                          const FarmConfig& config);

FarmResult render_farm(const AnimatedScene& scene, const FarmConfig& config);

}  // namespace now
