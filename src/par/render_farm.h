// RenderFarm: one-call façade over the master/worker actors and the three
// runtimes. This is the library's top-level entry point for distributed
// animation rendering:
//
//   FarmConfig cfg;
//   cfg.backend = FarmBackend::kSim;             // or kThreads / kTcp
//   cfg.worker_speeds = {1.0, 0.5, 0.5};         // the paper's SGI mix
//   cfg.partition.scheme = PartitionScheme::kFrameDivision;
//   FarmResult r = render_farm(scene, cfg);
#pragma once

#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/fault/fault_tolerance.h"
#include "src/par/master.h"
#include "src/par/worker.h"
#include "src/sim/sim_runtime.h"

namespace now {

enum class FarmBackend {
  kSim,      // discrete-event virtual time (deterministic, heterogeneous)
  kThreads,  // real std::thread parallelism, wall clock
  kTcp,      // real threads over loopback TCP sockets, wall clock
};

const char* to_string(FarmBackend backend);

struct FarmConfig {
  FarmBackend backend = FarmBackend::kSim;
  /// Worker count when worker_speeds is empty (speeds default to 1.0).
  int workers = 3;
  /// Per-worker speed factors (kSim only; size defines the worker count).
  std::vector<double> worker_speeds;
  /// Master machine speed factor (kSim only).
  double master_speed = 1.0;
  EthernetParams ethernet;
  PartitionConfig partition;
  CoherenceOptions coherence;
  CostModel cost;
  bool sparse_returns = true;
  /// Deterministic fault schedule injected into the chosen runtime (worker
  /// ranks are 1-based; rank 0 is the master and cannot fault). Slowdown
  /// events require kSim; crash events require fault.enabled, or the run
  /// would wait forever on a rank that will never answer.
  FaultPlan fault_plan;
  /// Master-side failure detection and recovery (leases, pings,
  /// reassignment). Off by default: zero overhead, no timers.
  FaultToleranceConfig fault;
  std::string output_dir;  // per-frame targa output ("" = keep in memory)
  std::string output_prefix = "frame";
};

struct FarmResult {
  std::vector<Framebuffer> frames;
  double elapsed_seconds = 0.0;  // virtual (kSim) or wall (others)
  RuntimeStats runtime;
  MasterReport master;
  std::vector<WorkerReport> workers;
  FaultReport faults;   // detection / recovery accounting (master's view)
  SimRuntimeStats sim;  // populated for kSim only
};

/// Validates `config` against `scene` and throws std::invalid_argument with
/// a descriptive message on the first violation. render_farm() calls this
/// up front; it is exposed so callers can validate without running.
void validate_farm_config(const AnimatedScene& scene,
                          const FarmConfig& config);

FarmResult render_farm(const AnimatedScene& scene, const FarmConfig& config);

}  // namespace now
