// RenderMaster: assigns tasks, collects pixels, assembles frames, writes
// files, and performs adaptive re-splitting when workers idle (Section 3).
//
// Frame assembly with sparse returns relies on per-sender message ordering
// (guaranteed by all three runtimes): a sparse result for frame f of a
// region is applied on top of that region's pixels from frame f-1, which the
// same worker necessarily delivered earlier. The first frame of every task
// is always dense.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/image/framebuffer.h"
#include "src/net/runtime.h"
#include "src/par/cost_model.h"
#include "src/par/partition.h"
#include "src/par/protocol.h"
#include "src/scene/animated_scene.h"

namespace now {

struct MasterConfig {
  PartitionConfig partition;
  CostModel cost;
  /// Directory for per-frame targa output ("" disables file writing).
  std::string output_dir;
  std::string output_prefix = "frame";
};

struct MasterReport {
  std::int64_t frame_results = 0;
  std::int64_t adaptive_splits = 0;
  std::int64_t frames_completed = 0;
  std::uint64_t rays_total = 0;
  std::uint64_t shadow_rays_total = 0;
  std::int64_t pixels_recomputed_total = 0;
  std::int64_t full_renders = 0;       // frame results that were full renders
  double worker_compute_seconds = 0.0; // sum of reference-seconds charged
  /// Region-frames delivered per worker rank (rank 0 stays 0).
  std::vector<std::int64_t> frames_by_worker;
};

class RenderMaster final : public Actor {
 public:
  RenderMaster(const AnimatedScene& scene, const MasterConfig& config);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& msg) override;

  /// Assembled animation (valid after the runtime finishes).
  const std::vector<Framebuffer>& frames() const { return frames_; }
  const MasterReport& report() const { return report_; }

 private:
  struct WorkerState {
    bool known = false;        // sent hello
    bool active = false;       // has an unfinished task
    bool awaiting_ack = false; // shrink in flight
    RenderTask task;
    std::int32_t next_expected = 0;  // first unreported frame
    std::int32_t end_frame = 0;      // master's view (post-shrink)
  };

  void handle_frame_result(Context& ctx, const Message& msg);
  void handle_idle(Context& ctx, int worker);
  void handle_shrink_ack(Context& ctx, const Message& msg);
  void try_dispatch(Context& ctx);
  bool try_adaptive_split(Context& ctx);
  void assign(Context& ctx, int worker, const RenderTask& task);
  void maybe_finish(Context& ctx);

  const AnimatedScene& scene_;
  MasterConfig config_;

  std::deque<RenderTask> pending_;
  std::vector<WorkerState> workers_;
  std::deque<int> idle_;

  std::vector<Framebuffer> frames_;
  std::vector<std::int64_t> frame_area_missing_;
  std::int64_t area_frames_missing_ = 0;
  std::int32_t next_task_id_ = 0;
  bool stopping_ = false;

  MasterReport report_;
};

}  // namespace now
