// RenderMaster: assigns tasks, collects pixels, assembles frames, writes
// files, and performs adaptive re-splitting when workers idle (Section 3).
//
// Frame assembly with sparse returns relies on per-sender message ordering
// (guaranteed by all three runtimes): a sparse result for frame f of a
// region is applied on top of that region's pixels from frame f-1, which the
// same worker necessarily delivered earlier. The first frame of every task
// is always dense.
//
// Fault tolerance (MasterConfig::fault.enabled): every worker message is a
// heartbeat; each assignment takes out a *progress* lease (deadline scaled
// by the task's frame count, renewed by every accepted frame result)
// enforced by deferred LeaseCheck self-messages. A worker whose lease
// expires is pinged once; after the grace period, no pong means the worker
// is dead, while a pong without progress means the worker is alive but the
// task is stuck (e.g. the assignment was lost in transit) — either way the
// unfinished frames are re-enqueued as a fresh task whose renderer pays a
// full first-frame restart (the paper's coherence-restart cost). Messages
// from dead ranks are ignored forever; duplicated results and results for
// cancelled tasks are discarded; a gap in a worker's result stream (a lost
// frame result) cancels the task and reclaims the remainder, because the
// region's sparse chain is broken from the gap onward. If every worker dies
// the master stops with whatever frames it has — it never blocks shutdown
// on a dead rank.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/ckpt/journal.h"
#include "src/ckpt/recovery.h"
#include "src/fault/fault_tolerance.h"
#include "src/image/framebuffer.h"
#include "src/net/runtime.h"
#include "src/obs/event_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/status_server.h"
#include "src/obs/straggler.h"
#include "src/obs/timeseries.h"
#include "src/par/cost_model.h"
#include "src/par/jobqueue.h"
#include "src/par/partition.h"
#include "src/par/protocol.h"
#include "src/scene/animated_scene.h"
#include "src/shard/digest.h"
#include "src/shard/frame_sink.h"
#include "src/shard/ownership.h"

namespace now {

/// Multi-tenant render service (MasterConfig::service). When enabled the
/// master admits *shots* at runtime through the job-queue messages
/// (src/par/jobqueue.h) instead of partitioning one animation up front:
/// each admitted shot gets a contiguous base in a concatenated global frame
/// space, its own partition into tasks, and a per-shot queue; a
/// weighted-fair stride scheduler picks which tenant's shot feeds the next
/// idle worker; per-tenant quotas cap in-flight tasks; admission backlog
/// preempts end-game speculation clones first.
struct MasterServiceConfig {
  bool enabled = false;
  /// ShotClient actors ride at ranks [1 + workers, 1 + workers +
  /// client_count); the run ends when every client said done and every
  /// admitted shot is terminal.
  int client_count = 0;
  /// Scene table addressed by ShotSubmit::scene_id. Entry 0 must be the
  /// primary scene the master was built with; all entries share its pixel
  /// dimensions. Pointees must outlive the master.
  std::vector<const AnimatedScene*> scenes;
};

struct MasterConfig {
  PartitionConfig partition;
  CostModel cost;
  /// Failure detection and recovery (off by default: zero overhead).
  FaultToleranceConfig fault;
  /// Directory for per-frame targa output ("" disables file writing).
  std::string output_dir;
  std::string output_prefix = "frame";
  /// Render journal ("" disables): every committed region-frame is appended
  /// as a checksummed, fsync'd record, frame TGAs are written atomically
  /// *before* their completion record, and the scheduler state is compacted
  /// into periodic checkpoint records. A crashed run resumes from the
  /// journal + frame files via `recovery`.
  std::string journal_path;
  bool journal_fsync = true;
  /// Checkpoint record every N region-frame commits.
  int journal_checkpoint_every = 64;
  /// Replayed journal state from a previous run (null = fresh start). The
  /// master restores the completed frames, re-enqueues only the incomplete
  /// remainder, and appends to the journal's valid prefix.
  const RecoveryState* recovery = nullptr;
  /// End-game speculation: when the pending queue is empty and idle workers
  /// outnumber active tasks, clone the slowest task onto an idle worker and
  /// keep whichever copy commits first (duplicate commits are idempotent).
  bool speculate = false;
  /// Scheduling-decision instants (task.assign, task.split, lease.ping,
  /// worker.dead, ...) on the master's timeline. Null disables.
  EventTracer* tracer = nullptr;
  /// Sink for net.frame_decode_failures (results whose envelope failed to
  /// decode — CRC mismatch, bad version, malformed payload — and were
  /// treated as lost messages). Null disables.
  MetricsRegistry* metrics = nullptr;
  /// Live telemetry plane: when sample_interval_seconds > 0 (and a sampler
  /// or status board is attached) the master arms a kTagSampleTick
  /// self-timer that snapshots `metrics` into `sampler`'s bounded rings and
  /// publishes the /status JSON into `status`. The tick handler charges no
  /// compute and sends nothing cross-rank, so under SimRuntime the ticks
  /// ride virtual time without changing any gated output.
  double sample_interval_seconds = 0.0;
  TimeSeriesSampler* sampler = nullptr;
  StatusBoard* status = nullptr;
  /// Straggler-detection thresholds. Detection itself is always-on
  /// bookkeeping fed by fresh commits; it surfaces through the
  /// sched.stragglers counter, worker.straggler trace instants, and the
  /// speculation victim ranking.
  StragglerConfig straggler;
  /// Frame ownership map. With shards.shard_count > 1 the master runs as a
  /// *thin scheduler*: it holds no pixels, workers stream frame results
  /// directly to the owning FrameShard actor, and the master drives all
  /// scheduling (leases, reassignment, adaptive splits, speculation,
  /// checkpoints) from the per-result CommitDigests the shards send back.
  /// The default (count 1) is the classic single-master pipeline.
  ShardMap shards;
  /// Multi-tenant service mode (see MasterServiceConfig). Off by default:
  /// the classic one-animation-per-process behavior is bit-for-bit
  /// unchanged.
  MasterServiceConfig service;
};

/// Per-tenant accounting of the weighted-fair scheduler (service mode).
struct TenantSummary {
  std::string name;
  double weight = 1.0;
  std::int32_t quota = 0;  // 0 = unlimited
  std::int64_t tasks_assigned = 0;
  /// Pixel-frames granted — the unit the stride scheduler charges, so
  /// fairness gates compare units, not task counts.
  std::int64_t units_assigned = 0;
  std::int64_t frames_committed = 0;
  /// High-water mark of concurrently in-flight tasks (gate: <= quota).
  std::int32_t peak_inflight = 0;
};

/// One admitted shot's final state (service mode).
struct ShotSummary {
  std::int32_t shot_id = -1;
  std::string tenant;
  std::string label;
  std::int32_t scene_id = 0;
  std::int32_t scene_first_frame = 0;
  std::int32_t frame_count = 0;
  /// First global frame in the scheduler's concatenated frame space.
  std::int32_t base_frame = 0;
  ShotPhase phase = ShotPhase::kActive;
  std::int32_t frames_done = 0;
};

/// One weighted-fair grant, in order (service mode; bounded log for
/// fairness gates: the contended-window share of each tenant's units must
/// track its weight).
struct ServiceAssignment {
  std::int32_t tenant = -1;
  std::int32_t shot_id = -1;
  std::int64_t units = 0;  // pixel-frames granted
};

struct MasterReport {
  std::int64_t frame_results = 0;
  std::int64_t adaptive_splits = 0;
  std::int64_t frames_completed = 0;
  std::uint64_t rays_total = 0;
  std::uint64_t shadow_rays_total = 0;
  std::int64_t pixels_recomputed_total = 0;
  std::int64_t full_renders = 0;       // frame results that were full renders
  double worker_compute_seconds = 0.0; // sum of reference-seconds charged
  /// Region-frames delivered per worker rank (rank 0 stays 0).
  std::vector<std::int64_t> frames_by_worker;
  // -- recovery (journal + resume) -------------------------------------
  std::int64_t frames_restored = 0;     // whole frames loaded from disk
  std::int64_t journal_records = 0;     // records appended this run
  std::int64_t journal_bytes = 0;       // bytes appended this run
  std::int64_t journal_checkpoints = 0; // checkpoint records this run
  bool journal_ok = true;               // false after any journal I/O error
  // -- live telemetry ---------------------------------------------------
  std::int64_t straggler_flags = 0;     // worker → straggler transitions
  std::int64_t telemetry_samples = 0;   // sample ticks taken
  // -- multi-tenant service ---------------------------------------------
  std::int64_t shots_submitted = 0;     // admitted shots
  std::int64_t shots_completed = 0;
  std::int64_t shots_cancelled = 0;
  std::int64_t shots_rejected = 0;      // malformed or invalid submits
  /// Speculation clones dissolved to make room for admitted backlog.
  std::int64_t preemptions = 0;
};

class RenderMaster final : public Actor {
 public:
  RenderMaster(const AnimatedScene& scene, const MasterConfig& config);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& msg) override;

  /// Assembled animation (valid after the runtime finishes). In service
  /// mode this is the concatenated global frame space; slice per shot with
  /// shot_summaries()'s base_frame/frame_count.
  const std::vector<Framebuffer>& frames() const { return frames_; }
  const MasterReport& report() const { return report_; }
  const FaultReport& fault_report() const { return fault_report_; }

  // -- multi-tenant service results (empty in classic mode) --------------
  std::vector<TenantSummary> tenant_summaries() const;
  std::vector<ShotSummary> shot_summaries() const;
  const std::vector<ServiceAssignment>& assignment_log() const {
    return assignment_log_;
  }

 private:
  struct WorkerState {
    bool known = false;        // sent hello
    bool active = false;       // has an unfinished task
    bool awaiting_ack = false; // shrink in flight
    bool queued = false;       // sitting in the idle queue
    bool dead = false;         // lease expired; rank is ignored forever
    bool cancelled = false;    // current task written off (results ignored)
    RenderTask task;
    std::int32_t next_expected = 0;  // first unreported frame
    std::int32_t end_frame = 0;      // master's view (post-shrink)
    double last_heard = 0.0;    // heartbeat: time of last message
    double last_progress = 0.0; // time of assignment or last accepted result
    double ping_time = -1.0;    // when the outstanding ping was sent (-1 none)
    double lease_seconds = 0.0; // current assignment's lease length
    // -- sharded mode only -----------------------------------------------
    /// kTagRequest arrived while digests for this task were still in
    /// flight from the shards (digest streams from different shards may
    /// reorder around ownership boundaries): the idle transition is parked
    /// until the digest chain catches up or the task is written off.
    bool request_pending = false;
    /// Digest reorder buffer: frames acknowledged by a *different* shard
    /// than the one next_expected belongs to, held until the chain reaches
    /// them. A gap within one shard's digests is genuine loss (per-sender
    /// FIFO), never reordering.
    std::set<std::int32_t> deferred_frames;
    // -- service mode only -----------------------------------------------
    /// Tenant whose quota this worker's assignment is charged against
    /// (-1 = none). Speculation clones stay uncharged so the quota gate
    /// (peak_inflight <= quota) holds for admitted work.
    int charged_tenant = -1;
  };

  /// Liveness state of one FrameShard rank (sharded mode with
  /// fault.enabled; empty otherwise). Shards hold *liveness* leases, not
  /// progress leases: a shard whose owned range is already complete
  /// legitimately commits nothing, but it must keep answering.
  struct ShardState {
    bool dead = false;       // lease expired; commits rolled back
    bool reset_sent = false; // fenced a still-talking dead incarnation
    double last_heard = 0.0; // any message from the shard rank
    double ping_time = -1.0; // outstanding liveness ping (-1 none)
  };

  void handle_frame_result(Context& ctx, const Message& msg);
  /// Sharded mode: one CommitDigest from a shard, the scheduler's only view
  /// of a worker's result. Order-independent accounting (commit totals,
  /// area bookkeeping, checkpoints) applies immediately; order-dependent
  /// worker progress goes through the deferred_frames reorder buffer.
  void handle_commit_digest(Context& ctx, const Message& msg);
  /// Digest chain for `worker` advanced to the end of its task (or the task
  /// was written off): run the parked idle transition, if any.
  void release_pending_request(Context& ctx, int worker);
  /// `hello` distinguishes kTagHello (may re-admit a dead rank: elastic
  /// membership) from kTagRequest (a dead rank's requests stay ignored).
  void handle_idle(Context& ctx, int worker, bool hello);
  void handle_shrink_ack(Context& ctx, const Message& msg);
  /// A busy worker refused an assignment: requeue it immediately instead of
  /// letting it sit on the refusing worker until its lease expires.
  void handle_task_nack(Context& ctx, const Message& msg);
  void handle_lease_check(Context& ctx, const Message& msg);
  /// Shard liveness lease (kTagShardCheck self-timer): silent shard gets
  /// pinged, a pinged shard that stays silent through the grace period is
  /// declared dead and its uncommitted frames rolled back.
  void handle_shard_check(Context& ctx, const Message& msg);
  /// Hello from a shard rank: a replacement incarnation rebuilt from its
  /// journal segment and is re-announcing. Re-admit it — and if its death
  /// was never detected (restart raced the lease), perform the rollback now,
  /// because its partial frames died with its memory either way.
  void handle_shard_hello(Context& ctx, int source);
  void arm_shard_lease(Context& ctx, int shard, double delay, int phase);
  void declare_shard_dead(Context& ctx, int shard);
  /// The shard-death rollback: every incomplete frame the shard owned loses
  /// its committed cells (area returns to full, the mirror is cleared), the
  /// lost cells come back as reclaim tasks, and workers mid-task on the dead
  /// range are cancelled rather than left rendering into the void.
  void rollback_dead_shard(Context& ctx, int shard);
  /// Turn (rect → frame set) of lost committed cells into one reclaim task
  /// per contiguous frame run. Shared by shard rollback and checkpoint
  /// restore; over-coverage is safe (idempotent gates), under-coverage
  /// hangs the run.
  void enqueue_lost_cells(
      Context& ctx,
      const std::map<std::uint64_t, std::pair<PixelRect, std::set<int>>>&
          lost);
  /// Dispatch gate: the task touches a frame owned by a declared-dead shard
  /// (results for it would be lost); hold it until the shard re-admits.
  bool task_blocked_by_dead_shard(const RenderTask& task) const;
  /// Resume with a scheduler checkpoint: restore the task table (pending +
  /// in-flight remainders), task-id counter, and straggler statistics, plus
  /// reclaim tasks for cells the journal committed into frames that never
  /// completed — their pixels died with the process.
  void restore_from_checkpoint(Context& ctx,
                               const std::vector<char>& restored);
  /// Telemetry self-timer: snapshot metrics into the sampler, publish the
  /// /status JSON, re-arm. Never charges compute, never sends cross-rank.
  void handle_sample_tick(Context& ctx);
  /// The /status document: per-worker lease/task state, queue depth, shard
  /// completion counts, stragglers, recent throughput.
  std::string render_status_json(Context& ctx) const;
  /// Fresh-commit telemetry shared by the single-master and digest paths:
  /// close the frame's flow chain, feed the straggler detector, bump the
  /// live counters.
  void note_commit(Context& ctx, int worker, std::int32_t task_id,
                   std::uint64_t trace_ctx, std::int32_t frame,
                   double render_seconds);
  void try_dispatch(Context& ctx);
  bool try_adaptive_split(Context& ctx);
  /// End-game: clone the slowest active task onto an idle worker. Returns
  /// true when a clone was dispatched.
  bool try_speculate(Context& ctx);
  /// One copy of a speculated pair finished its range: dissolve the pair
  /// and shrink the losing copy away.
  void finish_speculation(Context& ctx, std::int32_t winner_task,
                          std::int32_t loser_task);
  /// By value: assignment mints the task's trace context before sending.
  void assign(Context& ctx, int worker, RenderTask task);
  void maybe_finish(Context& ctx);
  /// Every region-frame of `task` already committed (or its frames fully
  /// assembled): assigning it would be pure duplicate work.
  bool task_fully_committed(const RenderTask& task) const;
  /// Append a compacted scheduler checkpoint to the journal.
  void write_checkpoint();
  void sync_journal_stats();
  /// Write off the worker's current task: results for it are ignored from
  /// now on, and the frames not yet delivered are re-enqueued as a fresh
  /// task (whose first frame will be a full coherence-restart render).
  void cancel_and_reclaim(Context& ctx, int worker);
  void declare_dead(Context& ctx, int worker);
  void discard_result(const FrameResult& result, bool wasted_work);

  // -- multi-tenant service ----------------------------------------------
  /// Weighted-fair admission state for one tenant (stride scheduling: each
  /// grant advances pass by units * kStrideScale / weight, the runnable
  /// tenant with the lowest pass goes next).
  struct Tenant {
    std::string name;
    double weight = 1.0;
    std::int32_t quota = 0;  // max in-flight tasks, 0 = unlimited
    std::int32_t inflight = 0;
    std::int32_t peak_inflight = 0;
    double pass = 0.0;
    std::int64_t tasks_assigned = 0;
    std::int64_t units_assigned = 0;  // pixel-frames granted
    std::int64_t frames_committed = 0;
    Counter* frames_counter = nullptr;   // tenant.<name>.frames_committed
    Counter* assigns_counter = nullptr;  // tenant.<name>.tasks_assigned
  };

  /// One admitted shot: a contiguous [base_frame, base_frame + frame_count)
  /// slice of the global frame space plus its private task queue.
  struct Shot {
    std::int32_t shot_id = -1;
    int tenant = -1;  // index into tenants_
    int client_rank = -1;
    std::string label;
    std::int32_t scene_id = 0;
    std::int32_t scene_first_frame = 0;
    std::int32_t frame_count = 0;
    std::int32_t base_frame = 0;
    ShotPhase phase = ShotPhase::kActive;
    std::int32_t frames_done = 0;
    /// Pixel-frames across the initial task queue (the shot's total work —
    /// the affinity quantum in pick_tenant).
    std::int64_t units_total = 0;
    std::deque<RenderTask> queue;
  };

  bool is_client_rank(Context& ctx, int rank) const;
  void handle_shot_submit(Context& ctx, const Message& msg);
  void handle_shot_status(Context& ctx, const Message& msg);
  void handle_shot_cancel(Context& ctx, const Message& msg);
  void handle_client_done(Context& ctx, int source);
  /// Find-or-create the tenant named in a submit. The first submit fixes
  /// the tenant's weight and quota; its stride pass starts at the minimum
  /// existing pass so a late arrival cannot monopolize the farm back-paying
  /// "missed" grants.
  int tenant_for(const std::string& name, double weight, std::int32_t quota);
  /// Lowest-pass tenant with a runnable shot and quota headroom (-1: none),
  /// with shot affinity: the last-served tenant keeps the grant while its
  /// stride lead stays under one shot's worth of units, so a shot's tasks
  /// finish near each other and its frames complete (and flush) promptly.
  /// Pure per-task rotation would scatter each shot's tiles across the
  /// whole schedule, bunching frame completions into master-side write
  /// stalls exactly when every worker is asking for its next task.
  int pick_tenant();
  /// First active shot of `tenant` (admission order) whose queue still has
  /// an uncommitted task; prunes committed queue heads as a side effect.
  int runnable_shot(int tenant);
  /// Service-mode half of try_dispatch: feed idle workers via the
  /// weighted-fair queue, then preempt speculation if backlog remains.
  void service_dispatch(Context& ctx);
  void charge_tenant(Context& ctx, int worker, int tenant,
                     const RenderTask& task);
  /// Un-charge the quota slot once (idempotent: resets charged_tenant).
  void release_assignment(int worker);
  /// Runnable admitted work, no idle live worker: dissolve one speculation
  /// pair and shrink the clone away so its worker returns for real work.
  void service_preempt_if_backlogged(Context& ctx);
  void finish_shot(Context& ctx, Shot& shot);
  /// Shot owning a global frame (-1 when none — cannot happen for frames
  /// in [0, frames_.size()) once admitted).
  int shot_of_frame(std::int32_t frame) const;
  std::string service_frame_path(std::int32_t frame) const;

  const AnimatedScene& scene_;
  MasterConfig config_;

  std::deque<RenderTask> pending_;
  std::vector<WorkerState> workers_;
  std::deque<int> idle_;
  /// One entry per shard in sharded mode with fault.enabled; empty when
  /// shard liveness is off.
  std::vector<ShardState> shard_states_;

  std::vector<Framebuffer> frames_;
  std::vector<std::int64_t> frame_area_missing_;
  std::int64_t area_frames_missing_ = 0;
  std::int32_t next_task_id_ = 0;
  bool stopping_ = false;

  std::set<std::int32_t> cancelled_tasks_;   // results discarded
  std::set<std::int32_t> reassigned_tasks_;  // recovery tasks (restart cost)

  /// Idempotent-commit gate: per frame, the packed rects already applied.
  /// A duplicate (rect, frame) commit — a speculation loser, an overlap
  /// from reclaim — is skipped entirely (no pixel write, no accounting, no
  /// journal record).
  std::vector<std::set<std::uint64_t>> committed_rects_;
  /// Speculated task pairs, keyed both ways (task_id → partner task_id).
  std::map<std::int32_t, std::int32_t> spec_partner_;
  /// Every task id that was ever half of a pair: duplicate commits from
  /// these are speculation waste, not protocol anomalies.
  std::set<std::int32_t> spec_tasks_;
  /// Durable IO (journal appends + TGA writes), shared with the shard path.
  /// In sharded mode the sink carries the scheduler's checkpoint-only
  /// journal and never sees pixels.
  std::unique_ptr<FrameSink> sink_;
  /// Sharded mode: fresh commits since the last checkpoint record (the
  /// scheduler journal has no region commits to count).
  std::int64_t digests_since_checkpoint_ = 0;
  Counter* decode_failures_ = nullptr;  // null when metrics are off
  Counter* ep_frame_bytes_ = nullptr;       // endpoint.0.frame_bytes
  Counter* ep_digest_bytes_ = nullptr;      // endpoint.0.digest_bytes
  Counter* ep_decode_failures_ = nullptr;   // endpoint.0.frame_decode_failures
  // Live scheduler instruments, registered whenever metrics are on (never
  // gated on the telemetry plane, so sim metrics JSON is identical with the
  // plane enabled or disabled). Updated deterministically from commits.
  Counter* frames_committed_live_ = nullptr;  // sched.frames_committed
  Counter* stragglers_flagged_ = nullptr;     // sched.stragglers
  Gauge* queue_depth_ = nullptr;              // sched.queue_depth

  StragglerDetector straggler_;

  // -- multi-tenant service (all empty/false in classic mode) ------------
  bool service_ = false;
  std::vector<Tenant> tenants_;
  std::map<std::string, int> tenant_ids_;   // name → index into tenants_
  /// Last tenant granted work (shot affinity in pick_tenant); -1 = none.
  int affinity_tenant_ = -1;
  std::vector<Shot> shots_;                 // shot_id == index, base order
  std::map<std::int32_t, std::int32_t> task_shot_;  // task_id → shot_id
  /// Task ids that are speculation *clones* (uncharged): the pool the
  /// backlog preemption drains first.
  std::set<std::int32_t> spec_clone_tasks_;
  std::set<int> done_clients_;              // client ranks that sent done
  std::vector<ServiceAssignment> assignment_log_;

  MasterReport report_;
  FaultReport fault_report_;
};

}  // namespace now
