#include "src/par/partition.h"

#include <algorithm>

namespace now {

const char* to_string(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kSequenceDivision: return "sequence-division";
    case PartitionScheme::kFrameDivision: return "frame-division";
    case PartitionScheme::kHybrid: return "hybrid";
  }
  return "unknown";
}

std::vector<PixelRect> tile_rects(int width, int height, int block_size) {
  std::vector<PixelRect> out;
  for (int y = 0; y < height; y += block_size) {
    for (int x = 0; x < width; x += block_size) {
      out.push_back(PixelRect{x, y, std::min(block_size, width - x),
                              std::min(block_size, height - y)});
    }
  }
  return out;
}

std::vector<std::pair<int, int>> split_frames(int frames, int parts) {
  std::vector<std::pair<int, int>> out;
  const int base = frames / parts;
  const int extra = frames % parts;
  int start = 0;
  for (int i = 0; i < parts && start < frames; ++i) {
    const int count = base + (i < extra ? 1 : 0);
    if (count == 0) continue;
    out.emplace_back(start, count);
    start += count;
  }
  return out;
}

std::vector<std::pair<int, int>> split_frames_at_cuts(
    int frames, int parts, const std::vector<int>& cut_frames) {
  // Shot boundaries: 0, each valid cut (sorted, deduplicated), frames.
  std::vector<int> cuts = cut_frames;
  std::sort(cuts.begin(), cuts.end());
  std::vector<int> bounds{0};
  for (const int cut : cuts) {
    if (cut > 0 && cut < frames && cut > bounds.back()) bounds.push_back(cut);
  }
  bounds.push_back(frames);
  const int shots = static_cast<int>(bounds.size()) - 1;

  // Distribute `parts` across shots proportionally to shot length
  // (largest-remainder method), at least one part per shot.
  std::vector<int> alloc(static_cast<std::size_t>(shots), 1);
  int remaining = std::max(parts - shots, 0);
  std::vector<std::pair<double, int>> remainders;
  int assigned = 0;
  for (int s = 0; s < shots; ++s) {
    const double share =
        static_cast<double>(remaining) * (bounds[s + 1] - bounds[s]) / frames;
    const int whole = static_cast<int>(share);
    alloc[s] += whole;
    assigned += whole;
    remainders.emplace_back(share - whole, s);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (int i = 0; i < remaining - assigned; ++i) {
    ++alloc[remainders[static_cast<std::size_t>(i) % remainders.size()].second];
  }

  std::vector<std::pair<int, int>> out;
  for (int s = 0; s < shots; ++s) {
    const int shot_len = bounds[s + 1] - bounds[s];
    for (const auto& [first, count] : split_frames(shot_len, alloc[s])) {
      out.emplace_back(bounds[s] + first, count);
    }
  }
  return out;
}

std::vector<RenderTask> make_initial_tasks(const PartitionConfig& config,
                                           int width, int height, int frames,
                                           int workers) {
  std::vector<RenderTask> tasks;
  const PixelRect full{0, 0, width, height};
  switch (config.scheme) {
    case PartitionScheme::kSequenceDivision: {
      const auto ranges =
          config.sequence_cuts.empty()
              ? split_frames(frames, workers)
              : split_frames_at_cuts(frames, workers, config.sequence_cuts);
      for (const auto& [first, count] : ranges) {
        tasks.push_back({static_cast<std::int32_t>(tasks.size()), full, first,
                         count});
      }
      break;
    }
    case PartitionScheme::kFrameDivision: {
      for (const PixelRect& rect : tile_rects(width, height, config.block_size)) {
        tasks.push_back(
            {static_cast<std::int32_t>(tasks.size()), rect, 0, frames});
      }
      break;
    }
    case PartitionScheme::kHybrid: {
      const int chunk = std::max(1, config.hybrid_frames);
      for (int first = 0; first < frames; first += chunk) {
        const int count = std::min(chunk, frames - first);
        for (const PixelRect& rect :
             tile_rects(width, height, config.block_size)) {
          tasks.push_back(
              {static_cast<std::int32_t>(tasks.size()), rect, first, count});
        }
      }
      break;
    }
  }
  return tasks;
}

}  // namespace now
