#include "src/par/worker.h"

#include <algorithm>
#include <cassert>

namespace now {
namespace {

SendPipelineOptions pipeline_options(const WorkerConfig& config) {
  SendPipelineOptions opts;
  opts.codec = config.frame_codec;
  opts.threaded = config.pipeline;
  opts.tracer = config.tracer;
  opts.metrics = config.metrics;
  opts.shards = config.shards;
  return opts;
}

}  // namespace

RenderWorker::RenderWorker(const AnimatedScene& scene,
                           const WorkerConfig& config)
    : scene_(scene), config_(config), pipeline_(pipeline_options(config)) {
  scenes_.push_back(&scene_);
  for (const AnimatedScene* extra : config_.extra_scenes) {
    assert(extra != nullptr);
    scenes_.push_back(extra);
  }
  if (config_.tracer != nullptr && !config_.tracer->enabled()) {
    config_.tracer = nullptr;
  }
  if (config_.metrics != nullptr) {
    frame_seconds_hist_ = &config_.metrics->histogram(
        "worker.frame_seconds", Histogram::default_seconds_bounds());
    chunk_seconds_hist_ = &config_.metrics->histogram(
        "worker.chunk_seconds", Histogram::default_seconds_bounds());
  }
}

void RenderWorker::on_start(Context& ctx) {
  pipeline_.send_control(ctx, kTagHello, {});
}

void RenderWorker::on_shutdown(Context& ctx) {
  (void)ctx;
  // Joins the sender thread while the Context is still alive; anything left
  // in the queue is a duplicate by construction (the master only stops the
  // farm once every pixel is committed).
  pipeline_.shutdown();
}

void RenderWorker::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagTask: {
      RenderTask task;
      const bool ok = decode_task(&task, msg.payload);
      assert(ok);
      // A duplicated assignment of the current task is dropped, not
      // asserted: under fault injection the master's message can
      // legitimately arrive twice. A *different* task while busy means the
      // master's view of us is stale (e.g. a revived worker it had written
      // off) — NACK it so the task is requeued immediately instead of
      // sitting on a dead assignment until its lease expires.
      if (ok && !task_.has_value()) {
        start_task(ctx, task);
      } else if (ok && task_->task_id != task.task_id) {
        TaskNack nack;
        nack.task_id = task.task_id;
        pipeline_.send_control(ctx, kTagTaskNack, encode_task_nack(nack));
      }
      break;
    }
    case kTagContinue:
      if (task_.has_value()) render_next_frame(ctx);
      break;
    case kTagShrink: {
      ShrinkRequest req;
      const bool ok = decode_shrink(&req, msg.payload);
      assert(ok);
      if (ok) handle_shrink(ctx, req);
      break;
    }
    case kTagPing:
      pipeline_.send_control(ctx, kTagPong, {});
      break;
    case kTagStop:
      break;  // the runtime winds down after the master's stop()
    case kTagRejoin:
      // The runtime restarted this rank's process (elastic membership): all
      // in-memory state — current task, coherence grid, framebuffer, and the
      // old process's outbound queue — died with it. Drop anything still
      // pending in the pipeline (the real process's buffers are gone) and
      // announce ourselves like a fresh worker; the next task's first frame
      // is a dense key frame, as always.
      pipeline_.discard_pending();
      task_.reset();
      renderer_.reset();
      prev_region_.clear();
      pipeline_.send_control(ctx, kTagHello, {});
      break;
    default:
      assert(false && "worker received unexpected tag");
  }
}

void RenderWorker::start_task(Context& ctx, const RenderTask& task) {
  assert(!task_.has_value() && "worker already busy");
  assert(task.scene_id >= 0 &&
         task.scene_id < static_cast<std::int32_t>(scenes_.size()) &&
         "task names a scene this worker does not hold");
  task_ = task;
  next_frame_ = task.first_frame;
  end_frame_ = task.end_frame();
  const AnimatedScene& scene = *scenes_[static_cast<std::size_t>(
      task.scene_id < static_cast<std::int32_t>(scenes_.size()) ? task.scene_id
                                                                : 0)];
  // Fresh coherence state per task: the first frame of every task is a full
  // render (the cost that separates the partitioning schemes) and therefore
  // a dense key frame on the wire — reassigned, speculative, and
  // post-resume tasks never reference a predecessor they did not render.
  renderer_ = std::make_unique<CoherentRenderer>(scene, task.region,
                                                 config_.coherence);
  fb_ = Framebuffer(scene.width(), scene.height());
  prev_region_.clear();
  ctx.send(ctx.rank(), kTagContinue, {});
}

void RenderWorker::render_next_frame(Context& ctx) {
  assert(task_.has_value());
  if (next_frame_ >= end_frame_) {
    // Shrunk to nothing before we got here: the task's end was reached by a
    // shrink, not by rendering, so it is not a completed task — count it
    // separately (and still ask for more work).
    task_.reset();
    renderer_.reset();
    ++report_.tasks_shrunk_away;
    pipeline_.send_control(ctx, kTagRequest, {});
    return;
  }

  // The render span covers the real computation plus the charged virtual
  // time: in the sim the clock only moves at charge(), in the wall-clock
  // runtimes the render itself moves now().
  const double span_start = ctx.now();
  if (config_.tracer != nullptr) {
    config_.tracer->begin(ctx.rank(), "frame", "frame.render", span_start,
                          {{"frame", next_frame_},
                           {"task", task_->task_id}});
  }

  // Multi-tenant tasks address frames in the scheduler's concatenated global
  // space; the renderer wants the owning scene's own frame number. Classic
  // tasks carry delta 0 and the two coincide.
  const FrameRenderResult r =
      renderer_->render_frame(next_frame_ + task_->frame_delta, &fb_);
  const double cost = config_.cost.frame_compute_seconds(r);
  ctx.charge(cost);

  if (config_.tracer != nullptr) {
    config_.tracer->end(
        ctx.rank(), "frame", "frame.render", ctx.now(),
        {{"frame", next_frame_},
         {"pixels_recomputed", r.pixels_recomputed},
         {"pixels_total", static_cast<std::int64_t>(task_->region.area())},
         {"full", r.full_render ? 1 : 0},
         {"rays", static_cast<std::int64_t>(r.stats.total_rays())}});
  }
  if (frame_seconds_hist_ != nullptr) frame_seconds_hist_->observe(cost);
  if (config_.tracer != nullptr && task_->trace_ctx != 0) {
    // Step 1 of the frame's flow chain: render finished on this rank.
    config_.tracer->flow_step(
        ctx.rank(), trace_flow_id(task_->trace_ctx, next_frame_), ctx.now(),
        {{"task", task_->task_id}, {"frame", next_frame_}, {"step", 1}});
  }

  // Intra-node parallelism instrumentation: one complete (X) span and one
  // histogram sample per parallel render chunk. r.chunks is wall-clock data
  // and is empty when the frame rendered sequentially (threads = 1).
  for (const ChunkTiming& chunk : r.chunks) {
    if (chunk_seconds_hist_ != nullptr) {
      chunk_seconds_hist_->observe(chunk.seconds);
    }
    if (config_.tracer != nullptr) {
      config_.tracer->complete(ctx.rank(), "frame", "frame.render.chunk",
                               span_start + chunk.start_seconds, chunk.seconds,
                               {{"frame", next_frame_},
                                {"chunk", chunk.chunk},
                                {"thread", chunk.thread},
                                {"y0", chunk.y0},
                                {"rows", chunk.rows}});
    }
  }

  FrameResult out;
  out.task_id = task_->task_id;
  out.frame = next_frame_;
  out.trace_ctx = task_->trace_ctx;
  out.rays = r.stats.total_rays();
  out.shadow_rays = r.stats.shadow_rays;
  out.pixels_recomputed = r.pixels_recomputed;
  out.full_render = r.full_render ? 1 : 0;
  out.compute_seconds = cost;
  // Elapsed on this machine's clock: the sim's charge() already applied the
  // worker's speed factor and any slowdown window, so a slow machine reports
  // honestly slow frames here while compute_seconds stays machine-neutral.
  out.render_seconds = ctx.now() - span_start;
  const PixelRect& region = task_->region;
  // Ownership boundaries force a dense key frame: the next shard holds no
  // predecessor pixels for this region, so a sparse chain must never cross.
  const bool dense_return = r.full_render || !config_.sparse_returns ||
                            config_.shards.key_frame_boundary(next_frame_);
  const bool track_delta =
      config_.frame_codec == FrameCodec::kDelta && config_.sparse_returns;
  if (dense_return || !track_delta) {
    out.payload = dense_return
                      ? make_dense_payload(fb_, region)
                      : make_sparse_payload(fb_, region, r.recomputed);
    if (track_delta) prev_region_ = fb_.extract(region);
  } else {
    // The coherence mask is conservative: it marks every pixel that *might*
    // have changed, and many recomputed pixels land on the same color.
    // Diffing against the previous frame keeps only real changes on the
    // wire; the master rebuilds from its committed predecessor, so the
    // final image is byte-identical to the raw path.
    assert(static_cast<int>(prev_region_.size()) == region.area());
    PixelMask changed(fb_.width(), fb_.height());
    int idx = 0;
    for (int y = region.y0; y < region.y0 + region.height; ++y) {
      for (int x = region.x0; x < region.x0 + region.width; ++x, ++idx) {
        if (!r.recomputed.at(x, y)) continue;
        const Rgb8 c = fb_.at(x, y);
        if (c != prev_region_[idx]) {
          changed.set(x, y, true);
          prev_region_[idx] = c;
        }
      }
    }
    out.payload = make_sparse_payload(fb_, region, changed);
  }
  pipeline_.send_frame(ctx, std::move(out));

  ++report_.frames_rendered;
  report_.peak_mark_bytes = std::max(
      report_.peak_mark_bytes, renderer_->coherence_grid().stats().bytes());
  report_.rays += r.stats.total_rays();
  report_.pixels_recomputed += r.pixels_recomputed;
  report_.compute_seconds += cost;

  ++next_frame_;
  if (next_frame_ >= end_frame_) {
    task_.reset();
    renderer_.reset();
    ++report_.tasks_completed;
    pipeline_.send_control(ctx, kTagRequest, {});
  } else {
    ctx.send(ctx.rank(), kTagContinue, {});
  }
}

void RenderWorker::handle_shrink(Context& ctx, const ShrinkRequest& req) {
  ShrinkAck ack;
  ack.task_id = req.task_id;
  if (!task_.has_value() || task_->task_id != req.task_id) {
    // The task already completed (the ack crossed our final kTagRequest):
    // nothing left to steal.
    ack.honored_end_frame = -1;
  } else {
    // Honor the split as far as possible: we cannot give back frames that
    // are already rendered (next_frame_ and below).
    const std::int32_t honored =
        std::max(req.new_end_frame, next_frame_);
    end_frame_ = std::min(end_frame_, honored);
    ack.honored_end_frame = end_frame_;
  }
  pipeline_.send_control(ctx, kTagShrinkAck, encode_shrink_ack(ack));
}

}  // namespace now
