#include "src/par/serial.h"

#include <cmath>
#include <cstdio>

namespace now {

SerialResult render_serial(const AnimatedScene& scene,
                           const CoherenceOptions& coherence,
                           const CostModel& cost, double speed) {
  SerialResult result;
  const PixelRect full{0, 0, scene.width(), scene.height()};
  CoherentRenderer renderer(scene, full, coherence);
  Framebuffer fb(scene.width(), scene.height());
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    const FrameRenderResult r = renderer.render_frame(frame, &fb);
    const double seconds =
        (cost.frame_compute_seconds(r) + cost.master_frame_write_seconds) /
        speed;
    result.frames.push_back(fb);
    result.stats += r.stats;
    result.pixels_recomputed += r.pixels_recomputed;
    result.voxels_marked += r.voxels_marked;
    result.frame_seconds.push_back(seconds);
    result.virtual_seconds += seconds;
    if (frame == 0) result.first_frame_seconds = seconds;
  }
  return result;
}

std::string format_hms(double seconds) {
  const long total = std::lround(seconds);
  const long h = total / 3600;
  const long m = (total % 3600) / 60;
  const long s = total % 60;
  char buf[32];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%ld:%02ld:%02ld", h, m, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%ld:%02ld", m, s);
  }
  return buf;
}

}  // namespace now
