#include "src/par/jobqueue.h"

namespace now {
namespace {

bool get_phase(WireReader* r, ShotPhase* phase) {
  std::uint8_t raw = 0;
  if (!r->u8(&raw) || raw > static_cast<std::uint8_t>(ShotPhase::kCancelled)) {
    return false;
  }
  *phase = static_cast<ShotPhase>(raw);
  return true;
}

bool get_version(WireReader* r) {
  std::uint8_t version = 0;
  return r->u8(&version) && version == kJobQueueVersion;
}

}  // namespace

const char* to_string(ShotPhase phase) {
  switch (phase) {
    case ShotPhase::kActive: return "active";
    case ShotPhase::kDone: return "done";
    case ShotPhase::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string encode_shot_submit(const ShotSubmit& sub) {
  WireWriter w;
  w.u8(kJobQueueVersion);
  w.i32(sub.client_ref);
  w.str(sub.tenant);
  w.f64(sub.weight);
  w.i32(sub.quota);
  w.i32(sub.scene_id);
  w.i32(sub.first_frame);
  w.i32(sub.frame_count);
  w.str(sub.label);
  return w.take();
}

bool decode_shot_submit(ShotSubmit* sub, const std::string& payload) {
  WireReader r(payload);
  return get_version(&r) && r.i32(&sub->client_ref) && r.str(&sub->tenant) &&
         r.f64(&sub->weight) && r.i32(&sub->quota) && r.i32(&sub->scene_id) &&
         r.i32(&sub->first_frame) && r.i32(&sub->frame_count) &&
         r.str(&sub->label) && r.done();
}

std::string encode_shot_accept(const ShotAccept& acc) {
  WireWriter w;
  w.u8(kJobQueueVersion);
  w.i32(acc.client_ref);
  w.i32(acc.shot_id);
  w.i32(acc.base_frame);
  w.str(acc.error);
  return w.take();
}

bool decode_shot_accept(ShotAccept* acc, const std::string& payload) {
  WireReader r(payload);
  return get_version(&r) && r.i32(&acc->client_ref) && r.i32(&acc->shot_id) &&
         r.i32(&acc->base_frame) && r.str(&acc->error) && r.done();
}

std::string encode_shot_status_request(const ShotStatusRequest& req) {
  WireWriter w;
  w.u8(kJobQueueVersion);
  w.i32(req.shot_id);
  return w.take();
}

bool decode_shot_status_request(ShotStatusRequest* req,
                                const std::string& payload) {
  WireReader r(payload);
  return get_version(&r) && r.i32(&req->shot_id) && r.done();
}

std::string encode_shot_status_reply(const ShotStatusReply& reply) {
  WireWriter w;
  w.u8(kJobQueueVersion);
  w.i32(reply.shot_id);
  w.u8(reply.known);
  w.u8(static_cast<std::uint8_t>(reply.phase));
  w.i32(reply.frames_done);
  w.i32(reply.frame_count);
  return w.take();
}

bool decode_shot_status_reply(ShotStatusReply* reply,
                              const std::string& payload) {
  WireReader r(payload);
  return get_version(&r) && r.i32(&reply->shot_id) && r.u8(&reply->known) &&
         get_phase(&r, &reply->phase) && r.i32(&reply->frames_done) &&
         r.i32(&reply->frame_count) && r.done();
}

std::string encode_shot_cancel(const ShotCancel& cancel) {
  WireWriter w;
  w.u8(kJobQueueVersion);
  w.i32(cancel.shot_id);
  return w.take();
}

bool decode_shot_cancel(ShotCancel* cancel, const std::string& payload) {
  WireReader r(payload);
  return get_version(&r) && r.i32(&cancel->shot_id) && r.done();
}

std::string encode_shot_update(const ShotUpdate& update) {
  WireWriter w;
  w.u8(kJobQueueVersion);
  w.i32(update.shot_id);
  w.u8(static_cast<std::uint8_t>(update.phase));
  w.i32(update.frames_done);
  return w.take();
}

bool decode_shot_update(ShotUpdate* update, const std::string& payload) {
  WireReader r(payload);
  return get_version(&r) && r.i32(&update->shot_id) &&
         get_phase(&r, &update->phase) && r.i32(&update->frames_done) &&
         r.done();
}

}  // namespace now
