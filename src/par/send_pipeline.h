// SendPipeline: overlaps a worker's frame encoding + network send with the
// render of the next frame.
//
// Without it the worker loop serializes render → encode → send → render; on
// the wall-clock backends the encode (codec compression) and the TCP write
// happen while the render threads sit idle. The pipeline moves both onto a
// dedicated sender thread behind a bounded queue (double-buffered: at most
// `max_queued_frames` encoded-or-pending frames in flight, so a slow link
// applies back-pressure instead of unbounded memory).
//
// Ordering is a correctness invariant, not an optimization: the master
// relies on per-sender FIFO delivery (a gap in a task's frame chain triggers
// cancel-and-reclaim), so *every* master-bound message — frame results AND
// control traffic (hello, request, shrink-ack, pong, nack) — flows through
// the same single queue. Only self-sends (the render-loop continuation) stay
// on the actor thread.
//
// In synchronous mode (the sim backend, or --no-pipeline) the same calls
// encode and send inline on the actor thread, byte-for-byte and
// order-for-order identical to the pre-pipeline worker.
//
// Lifetime: the sender thread holds the actor's Context, which lives on the
// actor thread's stack until after Actor::on_shutdown — the worker must call
// shutdown() there. Items still queued at shutdown are dropped, which is
// safe by construction: the master only stops the runtime once every pixel
// is committed, so an unsent frame at shutdown is a duplicate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "src/net/codec.h"
#include "src/net/runtime.h"
#include "src/obs/event_trace.h"
#include "src/obs/metrics.h"
#include "src/par/protocol.h"
#include "src/shard/ownership.h"

namespace now {

struct SendPipelineOptions {
  FrameCodec codec = FrameCodec::kRaw;
  /// Encode + send on a dedicated sender thread. Requires a wall-clock
  /// runtime (the sim is sequential; its Context is not thread-safe).
  bool threaded = false;
  /// Frames admitted to the queue before send_frame blocks (>= 1).
  int max_queued_frames = 2;
  /// net.send_pipeline spans on the worker's timeline (threaded mode only;
  /// inline sends are already visible as runtime net.send events).
  EventTracer* tracer = nullptr;
  /// Sink for net.frame_bytes_raw / net.frame_bytes_wire /
  /// net.key_frames / net.delta_frames / net.pipeline_dropped.
  MetricsRegistry* metrics = nullptr;
  /// Frame ownership: each frame result is sent to owner_rank(frame) — the
  /// owning FrameShard in sharded mode, rank 0 otherwise. Control traffic
  /// always goes to the scheduler at rank 0. Per-destination FIFO is
  /// preserved (one sender, sequential sends).
  ShardMap shards;
};

class SendPipeline {
 public:
  explicit SendPipeline(const SendPipelineOptions& options);
  ~SendPipeline();

  SendPipeline(const SendPipeline&) = delete;
  SendPipeline& operator=(const SendPipeline&) = delete;

  /// Queue a control message to the master, FIFO with queued frames. Never
  /// blocks (control traffic is tiny and must not deadlock a full queue).
  void send_control(Context& ctx, int tag, std::string payload);

  /// Encode (versioned envelope, codec compression) and send one frame
  /// result to the master. Threaded mode enqueues and returns so the caller
  /// can start rendering the next frame; blocks only while
  /// max_queued_frames results are already pending.
  void send_frame(Context& ctx, FrameResult result);

  /// Drop everything queued but unsent. Models a worker process restart
  /// (elastic rejoin): the real process's outbound buffers died with it.
  void discard_pending();

  /// Stop and join the sender thread; queued items are dropped (see header
  /// comment for why that is safe). Must be called from Actor::on_shutdown
  /// in threaded mode. Idempotent.
  void shutdown();

 private:
  struct Item {
    int tag = 0;
    std::string payload;                // control messages
    std::optional<FrameResult> frame;   // frame jobs (encoded on dequeue)
  };

  void enqueue(Context& ctx, Item item, bool is_frame);
  void encode_and_send(Context& ctx, Item& item);
  void run();

  SendPipelineOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;          // sender: queue non-empty / stopping
  std::condition_variable space_cv_;    // producer: frame slots available
  std::deque<Item> queue_;
  int queued_frames_ = 0;
  bool stop_ = false;
  Context* ctx_ = nullptr;  // the actor's context; set on first send
  std::thread sender_;
  bool started_ = false;

  // Cached instruments (null when metrics are off).
  Counter* bytes_raw_ = nullptr;
  Counter* bytes_wire_ = nullptr;
  Counter* key_frames_ = nullptr;
  Counter* delta_frames_ = nullptr;
  Counter* dropped_ = nullptr;
  Histogram* result_bytes_ = nullptr;
};

}  // namespace now
