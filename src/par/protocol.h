// Wire protocol between the render master and its workers.
//
// Star topology, PVM-style: workers announce themselves, the master assigns
// RenderTasks (a pixel region × a frame range), workers stream back one
// FrameResult per rendered frame, and the master adaptively re-splits the
// task of a loaded worker when another goes idle (Section 3: "each sequence
// can be adaptively subdivided such that a faster processor can receive
// more work once it completes its sequence").
//
// The shrink handshake is two-phase because the victim may have rendered
// past the proposed split point by the time the message arrives: the master
// proposes a new end frame, the victim acknowledges with the end it can
// actually honor, and only then does the master hand the stolen range to the
// idle worker. Frames are never rendered twice and never lost.
#pragma once

#include <cstdint>
#include <string>

#include "src/image/pixel_codec.h"
#include "src/net/codec.h"
#include "src/net/message.h"
#include "src/trace/tracer.h"

namespace now {

enum MsgTag : int {
  kTagHello = 1,        // worker → master: ready for work
  kTagTask = 2,         // master → worker: RenderTask
  kTagShrink = 3,       // master → worker: task_id, proposed new end frame
  kTagShrinkAck = 4,    // worker → master: task_id, honored end frame (or -1)
  kTagFrameResult = 5,  // worker → master: pixels + stats for one frame
  kTagRequest = 6,      // worker → master: task finished, want more
  kTagStop = 7,         // master → worker: shut down
  kTagContinue = 8,     // worker → itself: render the next frame
  kTagPing = 9,         // master → worker: liveness probe
  kTagPong = 10,        // worker → master: liveness answer
  kTagLeaseCheck = 11,  // master → itself (timer): evaluate a worker's lease
  kTagRejoin = 12,      // runtime → worker: your process restarted; re-Hello
  kTagTaskNack = 13,    // worker → master: busy with another task, requeue
  kTagCommitDigest = 14,  // shard → scheduler: CommitDigest for one result
  kTagSampleTick = 15,  // master → itself (timer): take a telemetry sample
  kTagShardCheck = 16,  // master → itself (timer): evaluate a shard's lease
  kTagShardReset = 17,  // master → shard: rebuild from your journal, re-Hello
  // -- multi-tenant job queue (src/par/jobqueue.h) ----------------------
  kTagShotSubmit = 18,  // client → master: admit a shot (ShotSubmit)
  kTagShotAccept = 19,  // master → client: admission verdict (ShotAccept)
  kTagShotStatus = 20,  // client → master: poll a shot (ShotStatusRequest)
  kTagShotStatusReply = 21,  // master → client: ShotStatusReply
  kTagShotCancel = 22,  // client → master: cancel a shot (ShotCancel)
  kTagShotUpdate = 23,  // master → client: terminal phase change (ShotUpdate)
  kTagClientDone = 24,  // client → master: no further requests coming
  kTagClientTick = 25,  // client → itself (timer): run the next script action
};

struct RenderTask {
  std::int32_t task_id = -1;
  PixelRect region;
  std::int32_t first_frame = 0;
  std::int32_t frame_count = 0;
  /// Trace context minted by the scheduler at assignment (nonzero) and
  /// echoed in every FrameResult/CommitDigest the task produces, tying the
  /// frame's whole life into one cross-rank flow chain. Always on the wire
  /// — telemetry settings never change message bytes.
  std::uint64_t trace_ctx = 0;
  /// Multi-tenant service mode: which scene of the farm's scene table this
  /// task renders (0 = the primary scene) and the offset mapping the task's
  /// global frame numbers into that scene's own frames
  /// (scene_frame = global_frame + frame_delta). Classic runs leave both 0,
  /// which reproduces the old single-animation behavior exactly.
  std::int32_t scene_id = 0;
  std::int32_t frame_delta = 0;

  std::int32_t end_frame() const { return first_frame + frame_count; }
  bool operator==(const RenderTask&) const = default;
};

std::string encode_task(const RenderTask& task);
bool decode_task(RenderTask* task, const std::string& payload);

struct ShrinkRequest {
  std::int32_t task_id = -1;
  std::int32_t new_end_frame = 0;
};

std::string encode_shrink(const ShrinkRequest& req);
bool decode_shrink(ShrinkRequest* req, const std::string& payload);

struct ShrinkAck {
  std::int32_t task_id = -1;
  /// End frame the worker will actually stop at; -1 when the task was
  /// already complete (nothing left to steal).
  std::int32_t honored_end_frame = -1;
};

std::string encode_shrink_ack(const ShrinkAck& ack);
bool decode_shrink_ack(ShrinkAck* ack, const std::string& payload);

/// Deferred self-message the master schedules (Context::send_after) when it
/// assigns a task: fires at the lease deadline and names the worker and the
/// assignment it covers, so checks for superseded assignments are dropped.
/// Shard liveness leases (kTagShardCheck) reuse the same encoding with
/// `worker` holding the shard index and task_id unused (-1).
struct LeaseCheck {
  std::int32_t worker = -1;
  std::int32_t task_id = -1;
  /// 0 = first expiry (silent worker gets pinged), 1 = post-ping grace
  /// expired (declare the worker dead).
  std::uint8_t phase = 0;
};

std::string encode_lease_check(const LeaseCheck& check);
bool decode_lease_check(LeaseCheck* check, const std::string& payload);

/// Worker refuses an assignment because it is already busy with a different
/// task (a stale-state dispatch, e.g. right after a lease-expiry
/// reassignment raced with the worker's revival). The master requeues the
/// task immediately instead of waiting out the lease.
struct TaskNack {
  std::int32_t task_id = -1;
};

std::string encode_task_nack(const TaskNack& nack);
bool decode_task_nack(TaskNack* nack, const std::string& payload);

/// Version tag leading every encoded FrameResult. Bumped in PR 5 when the
/// pixel payload moved into the compressed key/delta frame envelope
/// (src/net/codec.h), and again in PR 7 when the trace context and the
/// worker's observed render time joined the header; a decoder refuses any
/// other version rather than misinterpreting bytes.
inline constexpr std::uint8_t kFrameResultVersion = 4;

struct FrameResult {
  std::int32_t task_id = -1;
  std::int32_t frame = 0;
  std::uint64_t trace_ctx = 0;  // echoed from the RenderTask
  PixelPayload payload;
  // accounting (summed into farm-level statistics by the master)
  std::uint64_t rays = 0;
  std::uint64_t shadow_rays = 0;
  std::int64_t pixels_recomputed = 0;
  std::uint8_t full_render = 0;
  double compute_seconds = 0.0;  // reference-machine cost the worker charged
  /// Seconds the frame actually took on the worker's own clock — virtual
  /// (speed- and slowdown-scaled) under sim, wall time elsewhere. This is
  /// what the scheduler's straggler detector observes: compute_seconds is
  /// machine-independent by construction and would never show slowness.
  double render_seconds = 0.0;

  /// A dense payload is a self-contained key frame; a sparse payload is a
  /// delta frame the master decodes against the task's committed
  /// predecessor. The wire kind tag must agree with the payload layout —
  /// decode_frame_result rejects a mismatch as corruption.
  bool key_frame() const { return payload.dense; }
};

/// `codec` controls the envelope body: kRaw stores the payload bytes
/// verbatim, kDelta compresses them. Decoding is transparent to the choice.
std::string encode_frame_result(const FrameResult& result,
                                FrameCodec codec = FrameCodec::kRaw);
/// Validates the version byte, the envelope CRC (computed over the decoded
/// payload bytes), the payload structure, and key/delta-vs-layout
/// consistency. False means the message must be treated as lost in transit.
bool decode_frame_result(FrameResult* result, const std::string& payload);

}  // namespace now
