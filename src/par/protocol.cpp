#include "src/par/protocol.h"

namespace now {
namespace {

void put_rect(WireWriter* w, const PixelRect& rect) {
  w->i32(rect.x0);
  w->i32(rect.y0);
  w->i32(rect.width);
  w->i32(rect.height);
}

bool get_rect(WireReader* r, PixelRect* rect) {
  return r->i32(&rect->x0) && r->i32(&rect->y0) && r->i32(&rect->width) &&
         r->i32(&rect->height);
}

}  // namespace

std::string encode_task(const RenderTask& task) {
  WireWriter w;
  w.i32(task.task_id);
  put_rect(&w, task.region);
  w.i32(task.first_frame);
  w.i32(task.frame_count);
  w.u64(task.trace_ctx);
  w.i32(task.scene_id);
  w.i32(task.frame_delta);
  return w.take();
}

bool decode_task(RenderTask* task, const std::string& payload) {
  WireReader r(payload);
  return r.i32(&task->task_id) && get_rect(&r, &task->region) &&
         r.i32(&task->first_frame) && r.i32(&task->frame_count) &&
         r.u64(&task->trace_ctx) && r.i32(&task->scene_id) &&
         r.i32(&task->frame_delta) && r.done();
}

std::string encode_shrink(const ShrinkRequest& req) {
  WireWriter w;
  w.i32(req.task_id);
  w.i32(req.new_end_frame);
  return w.take();
}

bool decode_shrink(ShrinkRequest* req, const std::string& payload) {
  WireReader r(payload);
  return r.i32(&req->task_id) && r.i32(&req->new_end_frame) && r.done();
}

std::string encode_shrink_ack(const ShrinkAck& ack) {
  WireWriter w;
  w.i32(ack.task_id);
  w.i32(ack.honored_end_frame);
  return w.take();
}

bool decode_shrink_ack(ShrinkAck* ack, const std::string& payload) {
  WireReader r(payload);
  return r.i32(&ack->task_id) && r.i32(&ack->honored_end_frame) && r.done();
}

std::string encode_lease_check(const LeaseCheck& check) {
  WireWriter w;
  w.i32(check.worker);
  w.i32(check.task_id);
  w.u8(check.phase);
  return w.take();
}

bool decode_lease_check(LeaseCheck* check, const std::string& payload) {
  WireReader r(payload);
  return r.i32(&check->worker) && r.i32(&check->task_id) &&
         r.u8(&check->phase) && r.done();
}

std::string encode_task_nack(const TaskNack& nack) {
  WireWriter w;
  w.i32(nack.task_id);
  return w.take();
}

bool decode_task_nack(TaskNack* nack, const std::string& payload) {
  WireReader r(payload);
  return r.i32(&nack->task_id) && r.done();
}

std::string encode_frame_result(const FrameResult& result, FrameCodec codec) {
  WireWriter w;
  w.u8(kFrameResultVersion);
  w.i32(result.task_id);
  w.i32(result.frame);
  w.u64(result.trace_ctx);
  w.u64(result.rays);
  w.u64(result.shadow_rays);
  w.i64(result.pixels_recomputed);
  w.u8(result.full_render);
  w.f64(result.compute_seconds);
  w.f64(result.render_seconds);
  w.str(encode_frame_payload(
      encode_payload(result.payload),
      result.payload.dense ? kFrameKindKey : kFrameKindDelta, codec));
  return w.take();
}

bool decode_frame_result(FrameResult* result, const std::string& payload) {
  WireReader r(payload);
  std::uint8_t version = 0;
  std::string envelope;
  if (!(r.u8(&version) && version == kFrameResultVersion &&
        r.i32(&result->task_id) && r.i32(&result->frame) &&
        r.u64(&result->trace_ctx) && r.u64(&result->rays) &&
        r.u64(&result->shadow_rays) &&
        r.i64(&result->pixels_recomputed) && r.u8(&result->full_render) &&
        r.f64(&result->compute_seconds) && r.f64(&result->render_seconds) &&
        r.str(&envelope) && r.done())) {
    return false;
  }
  std::string pixels;
  std::uint8_t kind = kFrameKindKey;
  if (!decode_frame_payload(&pixels, &kind, envelope)) return false;
  if (!decode_payload(&result->payload, pixels)) return false;
  // The envelope kind and the payload layout are redundant on purpose: a
  // disagreement means the bytes were tampered with or mis-assembled.
  return (kind == kFrameKindKey) == result->payload.dense;
}

}  // namespace now
