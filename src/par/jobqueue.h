// Job-queue front end of the multi-tenant render service: the messages
// clients use to submit, poll, and cancel *shots* — per-tenant animation
// segments, the unit of admission — against the scheduler's persistent
// listener. One version byte leads every message; a decoder refuses any
// other version, a truncated body, trailing bytes, or an out-of-range
// phase, so a malformed request is dropped (and counted) instead of
// misinterpreted.
//
// The message flow (tags in src/par/protocol.h):
//
//   client                         master
//     | -- kTagShotSubmit ---------> |   admit, partition, enqueue
//     | <-- kTagShotAccept --------- |   shot_id (or error)
//     | -- kTagShotStatus ---------> |
//     | <-- kTagShotStatusReply ---- |
//     | -- kTagShotCancel ---------> |   drop queue, shrink in-flight work
//     | <-- kTagShotUpdate --------- |   terminal phase (done / cancelled)
//     | -- kTagClientDone ---------> |   no further requests from this client
#pragma once

#include <cstdint>
#include <string>

#include "src/net/message.h"

namespace now {

inline constexpr std::uint8_t kJobQueueVersion = 1;

/// Lifecycle of an admitted shot, as the scheduler reports it to clients.
enum class ShotPhase : std::uint8_t {
  kActive = 0,     // admitted; tasks queued or in flight
  kDone = 1,       // every frame committed
  kCancelled = 2,  // cancelled before completion; remaining work dropped
};

const char* to_string(ShotPhase phase);

struct ShotSubmit {
  /// Client-side correlation id echoed in the ShotAccept: a client may have
  /// several submits in flight and replies carry no other handle yet.
  std::int32_t client_ref = 0;
  /// Tenant name ([A-Za-z0-9._-], non-empty). The first submit naming a
  /// tenant fixes its weight and quota for the run.
  std::string tenant;
  /// Weighted-fair share (stride scheduling): finite, > 0.
  double weight = 1.0;
  /// Max in-flight tasks for the tenant (0 = unlimited).
  std::int32_t quota = 0;
  /// Scene table index (0 = the primary scene) and the shot's frame range
  /// within that scene.
  std::int32_t scene_id = 0;
  std::int32_t first_frame = 0;
  std::int32_t frame_count = 0;
  /// Optional shot label ([A-Za-z0-9._-] or empty); feeds output file names.
  std::string label;

  bool operator==(const ShotSubmit&) const = default;
};

std::string encode_shot_submit(const ShotSubmit& sub);
bool decode_shot_submit(ShotSubmit* sub, const std::string& payload);

struct ShotAccept {
  std::int32_t client_ref = 0;
  /// Admitted shot id, or -1 when the submit was rejected.
  std::int32_t shot_id = -1;
  /// First global frame of the shot in the scheduler's concatenated frame
  /// space (informational; clients address shots by shot_id).
  std::int32_t base_frame = 0;
  /// Empty on admission; the rejection reason otherwise.
  std::string error;

  bool accepted() const { return shot_id >= 0; }
  bool operator==(const ShotAccept&) const = default;
};

std::string encode_shot_accept(const ShotAccept& acc);
bool decode_shot_accept(ShotAccept* acc, const std::string& payload);

struct ShotStatusRequest {
  std::int32_t shot_id = -1;

  bool operator==(const ShotStatusRequest&) const = default;
};

std::string encode_shot_status_request(const ShotStatusRequest& req);
bool decode_shot_status_request(ShotStatusRequest* req,
                                const std::string& payload);

struct ShotStatusReply {
  std::int32_t shot_id = -1;
  /// 0 when the shot id names nothing (the remaining fields are zero).
  std::uint8_t known = 0;
  ShotPhase phase = ShotPhase::kActive;
  std::int32_t frames_done = 0;
  std::int32_t frame_count = 0;

  bool operator==(const ShotStatusReply&) const = default;
};

std::string encode_shot_status_reply(const ShotStatusReply& reply);
bool decode_shot_status_reply(ShotStatusReply* reply,
                              const std::string& payload);

struct ShotCancel {
  std::int32_t shot_id = -1;

  bool operator==(const ShotCancel&) const = default;
};

std::string encode_shot_cancel(const ShotCancel& cancel);
bool decode_shot_cancel(ShotCancel* cancel, const std::string& payload);

/// Unsolicited terminal notification to the submitting client: the shot
/// completed or was cancelled. Also the direct reply to a kTagShotCancel.
struct ShotUpdate {
  std::int32_t shot_id = -1;
  ShotPhase phase = ShotPhase::kActive;
  std::int32_t frames_done = 0;

  bool operator==(const ShotUpdate&) const = default;
};

std::string encode_shot_update(const ShotUpdate& update);
bool decode_shot_update(ShotUpdate* update, const std::string& payload);

}  // namespace now
