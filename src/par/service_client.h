// ShotClient: a scripted tenant of the multi-tenant render service.
//
// Each client actor rides at a rank after the workers and replays a
// ClientScript against the master's job queue: timed submits, status polls,
// cancels, and (for protocol tests) deliberately malformed submits. Replies
// are recorded verbatim in the ClientReport so tests and benches can gate
// admission verdicts, observed progress, and terminal phases.
//
// A client declares itself done (kTagClientDone) once every scripted action
// has fired, every submit has its admission verdict, every status poll has
// its reply, and every admitted shot has reported a terminal phase. The
// master ends the run only after all clients are done, so the runtimes
// (which drop in-flight messages at stop) never cut off an answer a script
// is still owed.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/net/runtime.h"
#include "src/par/jobqueue.h"
#include "src/par/protocol.h"

namespace now {

enum class ClientActionKind {
  kSubmit,     // send `submit` as a ShotSubmit
  kStatus,     // poll the shot admitted for submit #submit_index
  kCancel,     // cancel the shot admitted for submit #submit_index
  kMalformed,  // send `raw` bytes as a kTagShotSubmit (decoder must reject)
};

struct ClientAction {
  /// Virtual seconds after start when the action fires (send_after timer,
  /// so scripts are deterministic under SimRuntime).
  double at_seconds = 0.0;
  ClientActionKind kind = ClientActionKind::kSubmit;
  ShotSubmit submit;
  /// For kStatus / kCancel: which of this client's submits (by script
  /// order) the request targets. Fired before the accept arrives, the
  /// request parks until it does; targeting a rejected submit drops it.
  int submit_index = 0;
  /// For kMalformed: the raw payload to send.
  std::string raw;
};

struct ClientScript {
  std::vector<ClientAction> actions;
};

struct ClientReport {
  /// Admitted shot id per kSubmit/kMalformed action in script order
  /// (-1 = rejected).
  std::vector<std::int32_t> shot_ids;
  /// Rejection reasons, aligned with shot_ids ("" = admitted).
  std::vector<std::string> errors;
  std::vector<ShotStatusReply> statuses;  // every status reply, in order
  std::vector<ShotUpdate> updates;        // every terminal update, in order
  int rejects = 0;                        // replies with shot_id == -1
  bool done_sent = false;
};

class ShotClient final : public Actor {
 public:
  explicit ShotClient(const ClientScript& script);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& msg) override;

  const ClientReport& report() const { return report_; }

 private:
  void run_action(Context& ctx, int index);
  void maybe_done(Context& ctx);
  /// Map a submit_index (over kSubmit/kMalformed actions) to its slot in
  /// report_.shot_ids, or -1 when the script never makes that many submits.
  int submit_slot(int submit_index) const;

  ClientScript script_;
  std::vector<int> submit_action_indices_;  // action index per submit slot
  std::vector<char> accept_seen_;           // per submit slot
  /// Actions (by index) parked until their target submit's accept arrives.
  std::vector<int> parked_;
  int ticks_fired_ = 0;
  int accepts_outstanding_ = 0;
  int statuses_outstanding_ = 0;
  /// Shots that reported a terminal ShotUpdate (done or cancelled).
  std::set<std::int32_t> terminal_seen_;
  ClientReport report_;
};

}  // namespace now
