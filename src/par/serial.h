// Single-processor rendering runs with virtual-time accounting — columns
// (1) and (2) of the paper's Table 1 (the fastest machine, with and without
// the frame-coherence algorithm).
#pragma once

#include <vector>

#include "src/core/coherent_renderer.h"
#include "src/par/cost_model.h"
#include "src/scene/animated_scene.h"

namespace now {

struct SerialResult {
  std::vector<Framebuffer> frames;
  TraceStats stats;
  std::int64_t pixels_recomputed = 0;
  std::int64_t voxels_marked = 0;
  double virtual_seconds = 0.0;        // on a machine of `speed`
  double first_frame_seconds = 0.0;
  std::vector<double> frame_seconds;   // per frame, on that machine
};

/// Render the whole animation on one (virtual) machine of the given relative
/// speed. File-writing cost is charged serially (no overlap — there is only
/// one processor).
SerialResult render_serial(const AnimatedScene& scene,
                           const CoherenceOptions& coherence = {},
                           const CostModel& cost = {}, double speed = 1.0);

/// H:MM:SS rendering of a duration in seconds (Table 1 formatting).
std::string format_hms(double seconds);

}  // namespace now
