#include "src/par/service_client.h"

#include <cassert>

namespace now {

ShotClient::ShotClient(const ClientScript& script) : script_(script) {
  for (int i = 0; i < static_cast<int>(script_.actions.size()); ++i) {
    const ClientActionKind kind = script_.actions[i].kind;
    if (kind == ClientActionKind::kSubmit ||
        kind == ClientActionKind::kMalformed) {
      submit_action_indices_.push_back(i);
    }
  }
  report_.shot_ids.assign(submit_action_indices_.size(), -1);
  report_.errors.assign(submit_action_indices_.size(), "");
  accept_seen_.assign(submit_action_indices_.size(), 0);
}

void ShotClient::on_start(Context& ctx) {
  for (int i = 0; i < static_cast<int>(script_.actions.size()); ++i) {
    WireWriter w;
    w.i32(i);
    ctx.send_after(script_.actions[i].at_seconds, kTagClientTick, w.take());
  }
  maybe_done(ctx);  // an empty script is done immediately
}

int ShotClient::submit_slot(int submit_index) const {
  if (submit_index < 0 ||
      submit_index >= static_cast<int>(submit_action_indices_.size())) {
    return -1;
  }
  return submit_index;
}

void ShotClient::run_action(Context& ctx, int index) {
  const ClientAction& action = script_.actions[index];
  switch (action.kind) {
    case ClientActionKind::kSubmit: {
      // client_ref carries the submit slot: the accept echoes it back and
      // resolves exactly this submit, even with several in flight.
      int slot = -1;
      for (int s = 0; s < static_cast<int>(submit_action_indices_.size());
           ++s) {
        if (submit_action_indices_[s] == index) slot = s;
      }
      assert(slot >= 0);
      ShotSubmit sub = action.submit;
      sub.client_ref = slot;
      ++accepts_outstanding_;
      ctx.send(0, kTagShotSubmit, encode_shot_submit(sub));
      break;
    }
    case ClientActionKind::kMalformed:
      // The master must reject this without crashing; its reply (ref -1)
      // still settles the outstanding-accept count.
      ++accepts_outstanding_;
      ctx.send(0, kTagShotSubmit, action.raw);
      break;
    case ClientActionKind::kStatus:
    case ClientActionKind::kCancel: {
      const int slot = submit_slot(action.submit_index);
      if (slot < 0) break;  // script bug: points past the last submit
      if (!accept_seen_[slot]) {
        // Fired before the admission verdict: park until it arrives.
        parked_.push_back(index);
        break;
      }
      const std::int32_t shot_id = report_.shot_ids[slot];
      if (shot_id < 0) break;  // the submit was rejected: nothing to address
      if (action.kind == ClientActionKind::kStatus) {
        ShotStatusRequest req;
        req.shot_id = shot_id;
        ++statuses_outstanding_;
        ctx.send(0, kTagShotStatus, encode_shot_status_request(req));
      } else {
        ShotCancel cancel;
        cancel.shot_id = shot_id;
        ctx.send(0, kTagShotCancel, encode_shot_cancel(cancel));
      }
      break;
    }
  }
}

void ShotClient::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagClientTick: {
      WireReader r(msg.payload);
      std::int32_t index = -1;
      const bool ok = r.i32(&index) && r.done() && index >= 0 &&
                      index < static_cast<int>(script_.actions.size());
      assert(ok);
      ++ticks_fired_;
      if (ok) run_action(ctx, index);
      maybe_done(ctx);
      break;
    }
    case kTagShotAccept: {
      ShotAccept acc;
      if (!decode_shot_accept(&acc, msg.payload)) break;
      int slot = submit_slot(acc.client_ref);
      if (slot < 0 || accept_seen_[slot]) {
        // A reply the master could not tie to a submit (ref -1: the
        // malformed-submit rejection). Settle it against the first
        // unresolved malformed slot — per-sender FIFO keeps that in order.
        slot = -1;
        for (int s = 0; s < static_cast<int>(submit_action_indices_.size());
             ++s) {
          if (!accept_seen_[s] &&
              script_.actions[submit_action_indices_[s]].kind ==
                  ClientActionKind::kMalformed) {
            slot = s;
            break;
          }
        }
      }
      if (slot >= 0) {
        accept_seen_[slot] = 1;
        report_.shot_ids[slot] = acc.shot_id;
        report_.errors[slot] = acc.error;
      }
      if (!acc.accepted()) ++report_.rejects;
      if (accepts_outstanding_ > 0) --accepts_outstanding_;
      // Flush anything parked on this verdict (rejected targets drop).
      if (slot >= 0) {
        std::vector<int> parked;
        parked.swap(parked_);
        for (const int index : parked) {
          const int target =
              submit_slot(script_.actions[index].submit_index);
          if (target == slot) {
            run_action(ctx, index);
          } else {
            parked_.push_back(index);
          }
        }
      }
      maybe_done(ctx);
      break;
    }
    case kTagShotStatusReply: {
      ShotStatusReply reply;
      if (decode_shot_status_reply(&reply, msg.payload)) {
        report_.statuses.push_back(reply);
      }
      if (statuses_outstanding_ > 0) --statuses_outstanding_;
      maybe_done(ctx);
      break;
    }
    case kTagShotUpdate: {
      ShotUpdate update;
      if (decode_shot_update(&update, msg.payload)) {
        report_.updates.push_back(update);
        if (update.phase != ShotPhase::kActive) {
          terminal_seen_.insert(update.shot_id);
        }
      }
      maybe_done(ctx);
      break;
    }
    case kTagStop:
      break;  // the runtime winds down after the master's stop()
    default:
      assert(false && "client received unexpected tag");
  }
}

void ShotClient::maybe_done(Context& ctx) {
  if (report_.done_sent) return;
  if (ticks_fired_ < static_cast<int>(script_.actions.size())) return;
  if (accepts_outstanding_ > 0 || statuses_outstanding_ > 0) return;
  if (!parked_.empty()) {
    // Parked actions whose verdict already landed rejected were dropped at
    // flush time; anything left is waiting on an accept that is still due.
    return;
  }
  // Every admitted shot must have reported done/cancelled: the runtimes
  // drop in-flight messages at stop, so declaring done while an update is
  // still owed would let the master cut it off.
  for (const std::int32_t shot_id : report_.shot_ids) {
    if (shot_id >= 0 && terminal_seen_.count(shot_id) == 0) return;
  }
  report_.done_sent = true;
  ctx.send(0, kTagClientDone, {});
}

}  // namespace now
