#include "src/par/master.h"

#include <algorithm>
#include <cassert>

#include "src/image/image_io.h"

namespace now {

RenderMaster::RenderMaster(const AnimatedScene& scene,
                           const MasterConfig& config)
    : scene_(scene), config_(config) {}

void RenderMaster::on_start(Context& ctx) {
  const int frames = scene_.frame_count();
  const int w = scene_.width();
  const int h = scene_.height();
  workers_.assign(static_cast<std::size_t>(ctx.world_size()), {});
  report_.frames_by_worker.assign(static_cast<std::size_t>(ctx.world_size()), 0);
  frames_.assign(static_cast<std::size_t>(frames), Framebuffer(w, h));
  frame_area_missing_.assign(static_cast<std::size_t>(frames),
                             std::int64_t{w} * h);
  area_frames_missing_ = std::int64_t{w} * h * frames;

  const int worker_count = ctx.world_size() - 1;
  assert(worker_count >= 1);
  // Sequence-division tasks should not straddle camera cuts: a shot change
  // forces a full re-render anyway, so cuts are free task boundaries
  // ("any camera movement logically separates one sequence from another").
  PartitionConfig partition = config_.partition;
  if (partition.scheme == PartitionScheme::kSequenceDivision &&
      partition.sequence_cuts.empty()) {
    for (const AnimatedScene::Shot& shot : scene_.split_shots()) {
      if (shot.first_frame > 0) {
        partition.sequence_cuts.push_back(shot.first_frame);
      }
    }
  }
  std::vector<RenderTask> tasks =
      make_initial_tasks(partition, w, h, frames, worker_count);
  std::int64_t covered = 0;
  for (RenderTask& task : tasks) {
    task.task_id = next_task_id_++;
    covered += static_cast<std::int64_t>(task.region.area()) * task.frame_count;
    pending_.push_back(task);
  }
  assert(covered == area_frames_missing_ && "tasks must tile area × frames");
}

void RenderMaster::on_message(Context& ctx, const Message& msg) {
  ctx.charge(config_.cost.master_per_message_seconds);
  switch (msg.tag) {
    case kTagHello:
    case kTagRequest:
      handle_idle(ctx, msg.source);
      break;
    case kTagFrameResult:
      handle_frame_result(ctx, msg);
      break;
    case kTagShrinkAck:
      handle_shrink_ack(ctx, msg);
      break;
    default:
      assert(false && "master received unexpected tag");
  }
}

void RenderMaster::handle_idle(Context& ctx, int worker) {
  WorkerState& state = workers_[worker];
  state.known = true;
  state.active = false;
  idle_.push_back(worker);
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::assign(Context& ctx, int worker, const RenderTask& task) {
  WorkerState& state = workers_[worker];
  state.active = true;
  state.task = task;
  state.next_expected = task.first_frame;
  state.end_frame = task.end_frame();
  ctx.send(worker, kTagTask, encode_task(task));
}

void RenderMaster::try_dispatch(Context& ctx) {
  while (!idle_.empty()) {
    if (!pending_.empty()) {
      const int worker = idle_.front();
      idle_.pop_front();
      assign(ctx, worker, pending_.front());
      pending_.pop_front();
      continue;
    }
    if (!config_.partition.adaptive || !try_adaptive_split(ctx)) break;
    // A split is in flight; idle workers wait for the ack.
    break;
  }
}

bool RenderMaster::try_adaptive_split(Context& ctx) {
  // Victim: the active worker with the most unreported frames remaining.
  int victim = -1;
  std::int32_t best_remaining = 0;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!s.active || s.awaiting_ack) continue;
    const std::int32_t remaining = s.end_frame - s.next_expected;
    if (remaining > best_remaining) {
      best_remaining = remaining;
      victim = w;
    }
  }
  if (victim < 0 || best_remaining < config_.partition.min_split_frames) {
    return false;
  }
  WorkerState& s = workers_[victim];
  ShrinkRequest req;
  req.task_id = s.task.task_id;
  req.new_end_frame = s.end_frame - best_remaining / 2;
  s.awaiting_ack = true;
  ctx.send(victim, kTagShrink, encode_shrink(req));
  return true;
}

void RenderMaster::handle_shrink_ack(Context& ctx, const Message& msg) {
  ShrinkAck ack;
  const bool ok = decode_shrink_ack(&ack, msg.payload);
  assert(ok);
  if (!ok) return;
  WorkerState& s = workers_[msg.source];
  s.awaiting_ack = false;
  if (ack.honored_end_frame >= 0 && s.active &&
      s.task.task_id == ack.task_id &&
      ack.honored_end_frame < s.end_frame) {
    // The stolen range becomes a fresh task for an idle worker.
    RenderTask stolen;
    stolen.task_id = next_task_id_++;
    stolen.region = s.task.region;
    stolen.first_frame = ack.honored_end_frame;
    stolen.frame_count = s.end_frame - ack.honored_end_frame;
    s.end_frame = ack.honored_end_frame;
    pending_.push_back(stolen);
    ++report_.adaptive_splits;
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::handle_frame_result(Context& ctx, const Message& msg) {
  FrameResult result;
  const bool ok = decode_frame_result(&result, msg.payload);
  assert(ok);
  if (!ok) return;

  const int frame = result.frame;
  const PixelRect& region = result.payload.rect;
  assert(frame >= 0 && frame < static_cast<int>(frames_.size()));

  // Sparse results carry only recomputed pixels; the rest of the region is
  // unchanged from the previous frame, which this worker already delivered.
  if (!result.payload.dense) {
    assert(frame > 0);
    frames_[frame].blit(region, frames_[frame - 1].extract(region));
  }
  apply_payload(&frames_[frame], result.payload);

  WorkerState& s = workers_[msg.source];
  if (s.active && s.task.task_id == result.task_id) {
    s.next_expected = frame + 1;
  }

  ++report_.frame_results;
  report_.rays_total += result.rays;
  report_.shadow_rays_total += result.shadow_rays;
  report_.pixels_recomputed_total += result.pixels_recomputed;
  report_.full_renders += result.full_render ? 1 : 0;
  report_.worker_compute_seconds += result.compute_seconds;
  ++report_.frames_by_worker[msg.source];

  frame_area_missing_[frame] -= region.area();
  area_frames_missing_ -= region.area();
  assert(frame_area_missing_[frame] >= 0);
  if (frame_area_missing_[frame] == 0) {
    ++report_.frames_completed;
    ctx.charge(config_.cost.master_frame_write_seconds);
    if (!config_.output_dir.empty()) {
      char name[64];
      std::snprintf(name, sizeof(name), "/%s_%04d.tga",
                    config_.output_prefix.c_str(), frame);
      write_tga(frames_[frame], config_.output_dir + name);
    }
  }
  maybe_finish(ctx);
}

void RenderMaster::maybe_finish(Context& ctx) {
  if (stopping_ || area_frames_missing_ != 0 || !pending_.empty()) return;
  stopping_ = true;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    ctx.send(w, kTagStop, {});
  }
  ctx.stop();
}

}  // namespace now
