#include "src/par/master.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace now {

RenderMaster::RenderMaster(const AnimatedScene& scene,
                           const MasterConfig& config)
    : scene_(scene),
      config_(config),
      straggler_(config.straggler),
      service_(config.service.enabled) {
  if (config_.tracer != nullptr && !config_.tracer->enabled()) {
    config_.tracer = nullptr;
  }
  if (config_.metrics != nullptr) {
    decode_failures_ = &config_.metrics->counter("net.frame_decode_failures");
    ep_frame_bytes_ = &config_.metrics->counter("endpoint.0.frame_bytes");
    ep_digest_bytes_ = &config_.metrics->counter("endpoint.0.digest_bytes");
    ep_decode_failures_ =
        &config_.metrics->counter("endpoint.0.frame_decode_failures");
    frames_committed_live_ =
        &config_.metrics->counter("sched.frames_committed");
    stragglers_flagged_ = &config_.metrics->counter("sched.stragglers");
    queue_depth_ = &config_.metrics->gauge("sched.queue_depth");
  }
}

void RenderMaster::on_start(Context& ctx) {
  // Service mode starts with an *empty* frame space: shots grow it at
  // admission time, so there is nothing to partition or restore here.
  const int frames = service_ ? 0 : scene_.frame_count();
  const int w = scene_.width();
  const int h = scene_.height();
  const bool sharded = config_.shards.sharded();
  // In sharded mode the trailing ranks are FrameShard actors, not workers:
  // every `w < workers_.size()` loop (dispatch, leases, speculation,
  // checkpoints, liveness) must exclude them, so the bookkeeping vector
  // stops at the last worker rank. In service mode the trailing ranks are
  // ShotClient actors instead, excluded the same way.
  const int worker_count =
      sharded ? config_.shards.worker_count
              : ctx.world_size() - 1 -
                    (service_ ? config_.service.client_count : 0);
  assert(worker_count >= 1);
  assert(!sharded || ctx.world_size() == config_.shards.world_size());
  assert(!service_ || (!sharded && config_.recovery == nullptr));
  workers_.assign(static_cast<std::size_t>(worker_count) + 1, {});
  report_.frames_by_worker.assign(static_cast<std::size_t>(worker_count) + 1,
                                  0);
  if (!sharded) {
    // Thin scheduler holds no pixels; frames_ stays empty and the shards
    // own the framebuffers. The area bookkeeping below still runs on
    // digests, so scheduling decisions are identical either way.
    frames_.assign(static_cast<std::size_t>(frames), Framebuffer(w, h));
  }
  frame_area_missing_.assign(static_cast<std::size_t>(frames),
                             std::int64_t{w} * h);
  area_frames_missing_ = std::int64_t{w} * h * frames;
  committed_rects_.assign(static_cast<std::size_t>(frames), {});

  // Resume: frames the previous run completed (journal record + verified
  // targa on disk) are restored wholesale and never re-enter scheduling.
  // The thin scheduler marks them complete without touching pixels — the
  // owning shard loads the images.
  std::vector<char> restored(static_cast<std::size_t>(frames), 0);
  if (config_.recovery != nullptr) {
    const RecoveryState& rec = *config_.recovery;
    for (int f = 0; f < frames; ++f) {
      if (f < static_cast<int>(rec.frames.size()) &&
          rec.frames[f].has_value()) {
        if (!sharded) frames_[f] = *rec.frames[f];
        frame_area_missing_[f] = 0;
        area_frames_missing_ -= std::int64_t{w} * h;
        restored[f] = 1;
        ++report_.frames_restored;
      }
    }
    if (config_.tracer != nullptr && report_.frames_restored > 0) {
      config_.tracer->instant(ctx.rank(), "sched", "resume.restore", ctx.now(),
                              {{"frames", report_.frames_restored}});
    }
  }
  // Sequence-division tasks should not straddle camera cuts: a shot change
  // forces a full re-render anyway, so cuts are free task boundaries
  // ("any camera movement logically separates one sequence from another").
  PartitionConfig partition = config_.partition;
  if (partition.scheme == PartitionScheme::kSequenceDivision &&
      partition.sequence_cuts.empty()) {
    for (const AnimatedScene::Shot& shot : scene_.split_shots()) {
      if (shot.first_frame > 0) {
        partition.sequence_cuts.push_back(shot.first_frame);
      }
    }
  }
  std::int64_t covered = 0;
  const auto enqueue = [&](std::vector<RenderTask> tasks, int frame_offset) {
    for (RenderTask& task : tasks) {
      task.task_id = next_task_id_++;
      task.first_frame += frame_offset;
      covered +=
          static_cast<std::int64_t>(task.region.area()) * task.frame_count;
      pending_.push_back(task);
    }
  };
  if (service_) {
    // Shots arrive over the job queue; each admission partitions its own
    // frame range into the shot's private queue (handle_shot_submit).
  } else if (config_.recovery != nullptr &&
             config_.recovery->last_checkpoint.has_value()) {
    // A scheduler checkpoint survived: resume the compacted task table
    // instead of re-partitioning. Its tasks cover the incomplete remainder
    // as a superset (reclaim overlap is gated away at commit), so the exact
    // tiling assertion below does not apply to this path.
    restore_from_checkpoint(ctx, restored);
  } else {
    if (report_.frames_restored == 0) {
      enqueue(make_initial_tasks(partition, w, h, frames, worker_count), 0);
    } else {
      // Partition each maximal run of incomplete frames independently; cuts
      // are shifted into run-local frame numbers. A task's first frame is a
      // dense render anyway, so restored frames are free task boundaries.
      int f = 0;
      while (f < frames) {
        if (restored[f]) {
          ++f;
          continue;
        }
        int b = f;
        while (b < frames && !restored[b]) ++b;
        PartitionConfig run = partition;
        run.sequence_cuts.clear();
        for (const int cut : partition.sequence_cuts) {
          if (cut > f && cut < b) run.sequence_cuts.push_back(cut - f);
        }
        enqueue(make_initial_tasks(run, w, h, b - f, worker_count), f);
        f = b;
      }
    }
    assert(covered == area_frames_missing_ &&
           "tasks must tile area × frames");
  }

  FrameSinkConfig sink;
  if (!sharded) {
    // Sharded runs write TGAs at the shards; the scheduler's sink is
    // journal-only (header + checkpoint records).
    sink.output_dir = config_.output_dir;
    sink.output_prefix = config_.output_prefix;
  }
  if (service_ && !config_.output_dir.empty()) {
    // Per-shot output namespacing: a tenant's frames land under its own
    // name, numbered in the shot's scene-local frame space.
    sink.frame_path = [this](std::int32_t frame) {
      return service_frame_path(frame);
    };
  }
  sink.journal_path = config_.journal_path;
  sink.journal_fsync = config_.journal_fsync;
  sink.header.width = w;
  sink.header.height = h;
  sink.header.frame_count = frames;
  sink.header.shard_count = sharded ? config_.shards.shard_count : 1;
  sink.header.shard_index = sharded ? -1 : 0;
  sink.resume = config_.recovery != nullptr;
  sink.resume_valid_bytes =
      config_.recovery != nullptr ? config_.recovery->journal_valid_bytes : 0;
  sink.metrics = config_.metrics;
  sink.endpoint_rank = 0;
  sink_ = std::make_unique<FrameSink>(sink);
  if (!config_.journal_path.empty()) {
    report_.journal_ok = sink_->journal_ok();
    sync_journal_stats();
  }
  // Shard liveness: shards are failure domains too. Each one holds a
  // rolling liveness lease (any message renews; silence draws a ping, then
  // a grace period, then death + rollback). Progress leases make no sense
  // for shards — one whose owned range is complete commits nothing forever.
  if (sharded && config_.fault.enabled) {
    shard_states_.assign(
        static_cast<std::size_t>(config_.shards.shard_count), {});
    for (int i = 0; i < config_.shards.shard_count; ++i) {
      shard_states_[i].last_heard = ctx.now();
      arm_shard_lease(ctx, i, config_.fault.lease_base_seconds, 0);
    }
  }
  // Everything restored: stop before any worker is put to work.
  maybe_finish(ctx);
  if (!stopping_ && config_.sample_interval_seconds > 0.0 &&
      (config_.sampler != nullptr || config_.status != nullptr)) {
    ctx.send_after(config_.sample_interval_seconds, kTagSampleTick, {});
  }
  if (queue_depth_ != nullptr) {
    queue_depth_->set(static_cast<double>(pending_.size()));
  }
}

void RenderMaster::on_message(Context& ctx, const Message& msg) {
  if (msg.tag == kTagSampleTick) {
    // Telemetry must be observably free: no compute charge, no heartbeat
    // bookkeeping, nothing sent across ranks — handled before everything.
    handle_sample_tick(ctx);
    return;
  }
  ctx.charge(config_.cost.master_per_message_seconds);
  // Every message a live worker sends doubles as a heartbeat.
  if (msg.source >= 1 && msg.source < static_cast<int>(workers_.size())) {
    WorkerState& s = workers_[msg.source];
    if (!s.dead) s.last_heard = ctx.now();
  } else if (!shard_states_.empty() &&
             msg.source >= static_cast<int>(workers_.size())) {
    // Same for shard ranks: any message (digest, pong, hello) renews the
    // shard's liveness lease. A declared-dead shard earns nothing until it
    // re-admits through handle_shard_hello.
    const int shard = msg.source - static_cast<int>(workers_.size());
    if (shard < static_cast<int>(shard_states_.size()) &&
        !shard_states_[shard].dead) {
      shard_states_[shard].last_heard = ctx.now();
    }
  }
  switch (msg.tag) {
    case kTagHello:
      if (config_.shards.sharded() &&
          msg.source >= static_cast<int>(workers_.size())) {
        // A shard rank announcing itself: failover re-admission, never an
        // idle worker (handle_idle would index workers_ out of range).
        handle_shard_hello(ctx, msg.source);
      } else {
        handle_idle(ctx, msg.source, /*hello=*/true);
      }
      break;
    case kTagRequest:
      handle_idle(ctx, msg.source, /*hello=*/false);
      break;
    case kTagFrameResult:
      handle_frame_result(ctx, msg);
      break;
    case kTagCommitDigest:
      handle_commit_digest(ctx, msg);
      break;
    case kTagShrinkAck:
      handle_shrink_ack(ctx, msg);
      break;
    case kTagTaskNack:
      handle_task_nack(ctx, msg);
      break;
    case kTagPong:
      break;  // the heartbeat update above is the whole point
    case kTagLeaseCheck:
      handle_lease_check(ctx, msg);
      break;
    case kTagShardCheck:
      handle_shard_check(ctx, msg);
      break;
    case kTagShotSubmit:
      handle_shot_submit(ctx, msg);
      break;
    case kTagShotStatus:
      handle_shot_status(ctx, msg);
      break;
    case kTagShotCancel:
      handle_shot_cancel(ctx, msg);
      break;
    case kTagClientDone:
      handle_client_done(ctx, msg.source);
      break;
    default:
      assert(false && "master received unexpected tag");
  }
}

void RenderMaster::handle_idle(Context& ctx, int worker, bool hello) {
  if (worker < 1 || worker >= static_cast<int>(workers_.size())) {
    return;  // not a worker rank (e.g. a confused service client)
  }
  WorkerState& state = workers_[worker];
  if (state.dead) {
    if (!hello) return;
    // Elastic membership: a Hello from a declared-dead rank means the
    // process restarted. Re-admit it with a clean slate — its old task was
    // already reclaimed at death, and its first new frame is a dense
    // coherence restart like any fresh assignment. A stale idle-queue entry
    // from before the death stays valid, so don't enqueue twice.
    const bool was_queued = state.queued;
    state = WorkerState{};
    state.queued = was_queued;
    state.last_heard = ctx.now();
    state.last_progress = ctx.now();
    ++fault_report_.workers_rejoined;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "worker.rejoin", ctx.now(),
                              {{"worker", worker}});
    }
  }
  state.known = true;
  if (state.active && !state.cancelled &&
      state.next_expected < state.end_frame) {
    if (config_.shards.sharded() && !hello) {
      // Sharded mode: the worker's results went to the shards and their
      // digests may still be in flight behind this request (different
      // senders, no cross-sender ordering). Park the idle transition; the
      // digest chain catching up — or the task being written off —
      // releases it. A genuine loss still surfaces through the lease.
      state.request_pending = true;
      return;
    }
    // The worker says its task is finished but results are missing. Sends
    // are per-sender FIFO, so anything still unseen was lost in transit
    // (e.g. the task's final frame result): write it off and re-enqueue.
    cancel_and_reclaim(ctx, worker);
  }
  release_assignment(worker);
  state.active = false;
  state.cancelled = false;
  state.request_pending = false;
  state.deferred_frames.clear();
  // A worker asking for work has no task left to shrink; a shrink ack still
  // in flight (e.g. the shrink reached a rank that crashed and rejoined)
  // will arrive with nothing to steal and is harmless.
  state.awaiting_ack = false;
  if (!state.queued) {
    state.queued = true;
    idle_.push_back(worker);
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::assign(Context& ctx, int worker, RenderTask task) {
  // Mint the trace context here — a deterministic nonzero function of the
  // task id — so a requeued task (nack, reclaim) restarts the same flow
  // chain and every result/digest can be tied back to this assignment.
  task.trace_ctx = static_cast<std::uint64_t>(task.task_id) + 1;
  WorkerState& state = workers_[worker];
  state.active = true;
  state.cancelled = false;
  state.task = task;
  state.next_expected = task.first_frame;
  state.end_frame = task.end_frame();
  if (config_.fault.enabled) {
    // Lease scaled by assigned task cost: a bigger frame range legitimately
    // keeps a worker silent for longer before its first result.
    state.last_heard = ctx.now();
    state.last_progress = ctx.now();
    state.ping_time = -1.0;
    state.lease_seconds =
        config_.fault.lease_base_seconds +
        config_.fault.lease_per_frame_seconds * task.frame_count;
    LeaseCheck check;
    check.worker = worker;
    check.task_id = task.task_id;
    check.phase = 0;
    ctx.send_after(state.lease_seconds, kTagLeaseCheck,
                   encode_lease_check(check));
  }
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.assign", ctx.now(),
                            {{"worker", worker},
                             {"task", task.task_id},
                             {"first_frame", task.first_frame},
                             {"frames", task.frame_count}});
    // One flow start per frame in the assignment: each frame's life is its
    // own chain (render → send → commit → ack), all anchored here.
    for (std::int32_t f = task.first_frame; f < task.end_frame(); ++f) {
      config_.tracer->flow_start(
          ctx.rank(), trace_flow_id(task.trace_ctx, f), ctx.now(),
          {{"worker", worker}, {"task", task.task_id}, {"frame", f},
           {"step", 0}});
    }
  }
  ctx.send(worker, kTagTask, encode_task(task));
}

bool RenderMaster::task_fully_committed(const RenderTask& task) const {
  for (std::int32_t f = task.first_frame; f < task.end_frame(); ++f) {
    if (frame_area_missing_[f] == 0) continue;
    if (committed_rects_[f].count(rect_key(task.region)) == 0) return false;
  }
  return true;
}

void RenderMaster::try_dispatch(Context& ctx) {
  if (service_) {
    service_dispatch(ctx);
    return;
  }
  while (!idle_.empty()) {
    const int worker = idle_.front();
    if (workers_[worker].dead) {
      idle_.pop_front();
      workers_[worker].queued = false;
      continue;
    }
    // Scan for the first dispatchable task. A speculation winner (or an
    // overlap from reclaim) may have covered a task entirely while it
    // waited: drop it instead of paying a worker to render duplicates. A
    // task touching a dead shard's frames stays queued — its results would
    // be lost — until the replacement shard re-admits.
    bool dispatched = false;
    bool held = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (task_fully_committed(*it)) {
        it = pending_.erase(it);
        continue;
      }
      if (task_blocked_by_dead_shard(*it)) {
        held = true;
        ++it;
        continue;
      }
      const RenderTask task = *it;
      pending_.erase(it);
      idle_.pop_front();
      workers_[worker].queued = false;
      assign(ctx, worker, task);
      dispatched = true;
      break;
    }
    if (dispatched) continue;
    if (held) break;  // work exists, but its shard is down: wait for rejoin
    if (config_.partition.adaptive && try_adaptive_split(ctx)) {
      // A split is in flight; idle workers wait for the ack.
      break;
    }
    if (config_.speculate && try_speculate(ctx)) continue;
    break;
  }
  if (queue_depth_ != nullptr) {
    queue_depth_->set(static_cast<double>(pending_.size()));
  }
}

bool RenderMaster::try_speculate(Context& ctx) {
  // End-game gate: nothing pending, and strictly more idle live workers
  // than tasks still running — duplicating the straggler costs capacity
  // that would otherwise sit idle until the last frame lands.
  int idle_live = 0;
  for (const int w : idle_) {
    if (!workers_[w].dead) ++idle_live;
  }
  int active_tasks = 0;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (s.active && !s.cancelled && !s.dead) ++active_tasks;
  }
  if (active_tasks == 0 || idle_live <= active_tasks) return false;

  // Victim: the active worker expected to hold the end-game longest, not
  // mid-shrink, and not already paired (one speculative copy per task).
  // Expected cost is remaining frames × the worker's EWMA per-frame render
  // time from the straggler detector, so a rank that has been consistently
  // slow is duplicated ahead of one that merely holds more frames. With no
  // samples yet every worker scores at the fleet mean and this reduces to
  // the old most-remaining rule.
  int victim = -1;
  std::int32_t best_remaining = 0;
  double best_score = 0.0;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!s.active || s.awaiting_ack || s.dead || s.cancelled) continue;
    if (spec_partner_.count(s.task.task_id) > 0) continue;
    const std::int32_t remaining = s.end_frame - s.next_expected;
    if (remaining < 1) continue;
    const double score = remaining * straggler_.expected_seconds(w);
    if (score > best_score) {
      best_score = score;
      best_remaining = remaining;
      victim = w;
    }
  }
  if (victim < 0 || best_remaining < 1) return false;

  const WorkerState& vs = workers_[victim];
  RenderTask clone;
  clone.task_id = next_task_id_++;
  clone.region = vs.task.region;
  clone.first_frame = vs.next_expected;
  clone.frame_count = vs.end_frame - vs.next_expected;
  clone.scene_id = vs.task.scene_id;
  clone.frame_delta = vs.task.frame_delta;
  if (service_) {
    // Clones are speculative, not admitted work: they stay uncharged
    // against the tenant's quota and are the first thing backlog
    // preemption dissolves.
    const auto shot_it = task_shot_.find(vs.task.task_id);
    if (shot_it != task_shot_.end()) {
      task_shot_[clone.task_id] = shot_it->second;
    }
    spec_clone_tasks_.insert(clone.task_id);
  }
  spec_partner_[clone.task_id] = vs.task.task_id;
  spec_partner_[vs.task.task_id] = clone.task_id;
  spec_tasks_.insert(clone.task_id);
  spec_tasks_.insert(vs.task.task_id);
  ++fault_report_.speculations_launched;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.speculate", ctx.now(),
                            {{"victim", victim},
                             {"task", clone.task_id},
                             {"first_frame", clone.first_frame},
                             {"frames", clone.frame_count}});
  }
  const int worker = idle_.front();
  idle_.pop_front();
  workers_[worker].queued = false;
  assign(ctx, worker, clone);
  return true;
}

void RenderMaster::finish_speculation(Context& ctx, std::int32_t winner_task,
                                      std::int32_t loser_task) {
  spec_partner_.erase(winner_task);
  spec_partner_.erase(loser_task);
  ++fault_report_.speculations_won;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "speculate.won", ctx.now(),
                            {{"winner", winner_task}, {"loser", loser_task}});
  }
  // Shrink the losing copy back to what it already delivered; its remaining
  // frames are committed, so the master's view of its task ends now.
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    WorkerState& s = workers_[w];
    if (!s.active || s.dead || s.cancelled || s.task.task_id != loser_task) {
      continue;
    }
    s.end_frame = std::min(s.end_frame, s.next_expected);
    if (!s.awaiting_ack) {
      ShrinkRequest req;
      req.task_id = loser_task;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(w, kTagShrink, encode_shrink(req));
    }
    break;
  }
}

bool RenderMaster::try_adaptive_split(Context& ctx) {
  // Victim: the active worker with the most unreported frames remaining.
  int victim = -1;
  std::int32_t best_remaining = 0;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!s.active || s.awaiting_ack || s.dead || s.cancelled) continue;
    // A paired task's remainder is already being rendered twice; splitting
    // it a third way only manufactures duplicates.
    if (spec_partner_.count(s.task.task_id) > 0) continue;
    const std::int32_t remaining = s.end_frame - s.next_expected;
    if (remaining > best_remaining) {
      best_remaining = remaining;
      victim = w;
    }
  }
  if (victim < 0 || best_remaining < config_.partition.min_split_frames) {
    return false;
  }
  WorkerState& s = workers_[victim];
  ShrinkRequest req;
  req.task_id = s.task.task_id;
  req.new_end_frame = s.end_frame - best_remaining / 2;
  s.awaiting_ack = true;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.shrink", ctx.now(),
                            {{"victim", victim},
                             {"task", req.task_id},
                             {"new_end_frame", req.new_end_frame}});
  }
  ctx.send(victim, kTagShrink, encode_shrink(req));
  return true;
}

void RenderMaster::handle_shrink_ack(Context& ctx, const Message& msg) {
  ShrinkAck ack;
  const bool ok = decode_shrink_ack(&ack, msg.payload);
  assert(ok);
  if (!ok) return;
  if (msg.source < 1 || msg.source >= static_cast<int>(workers_.size())) {
    return;
  }
  WorkerState& s = workers_[msg.source];
  if (s.dead) return;
  s.awaiting_ack = false;
  if (ack.honored_end_frame >= 0 && s.active && !s.cancelled &&
      cancelled_tasks_.count(ack.task_id) == 0 &&
      s.task.task_id == ack.task_id &&
      ack.honored_end_frame < s.end_frame) {
    // The stolen range becomes a fresh task for an idle worker.
    RenderTask stolen;
    stolen.task_id = next_task_id_++;
    stolen.region = s.task.region;
    stolen.first_frame = ack.honored_end_frame;
    stolen.frame_count = s.end_frame - ack.honored_end_frame;
    stolen.scene_id = s.task.scene_id;
    stolen.frame_delta = s.task.frame_delta;
    s.end_frame = ack.honored_end_frame;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "task.split", ctx.now(),
                              {{"victim", msg.source},
                               {"task", stolen.task_id},
                               {"first_frame", stolen.first_frame},
                               {"frames", stolen.frame_count}});
    }
    if (service_) {
      // Stolen work stays in its shot's queue; a shot cancelled while the
      // shrink was in flight drops the range (its area is written off).
      const auto shot_it = task_shot_.find(s.task.task_id);
      const int sid = shot_it != task_shot_.end() ? shot_it->second : -1;
      if (sid >= 0 && shots_[sid].phase == ShotPhase::kActive) {
        task_shot_[stolen.task_id] = sid;
        shots_[sid].queue.push_back(stolen);
        ++report_.adaptive_splits;
      }
    } else {
      pending_.push_back(stolen);
      ++report_.adaptive_splits;
    }
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::handle_task_nack(Context& ctx, const Message& msg) {
  TaskNack nack;
  const bool ok = decode_task_nack(&nack, msg.payload);
  assert(ok);
  if (!ok) return;
  if (msg.source < 1 || msg.source >= static_cast<int>(workers_.size())) {
    return;
  }
  WorkerState& s = workers_[msg.source];
  if (s.dead || !s.active || s.cancelled || s.task.task_id != nack.task_id) {
    return;  // stale refusal: the assignment it covers is already gone
  }
  // The worker is busy with a different task, so this assignment will never
  // run. Free the slot and requeue the task verbatim: the worker refused
  // before rendering any frame of it, so it keeps its id, owes no results,
  // and pays no coherence-restart accounting.
  release_assignment(msg.source);
  s.active = false;
  ++fault_report_.tasks_nacked;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.nack", ctx.now(),
                            {{"worker", msg.source},
                             {"task", nack.task_id}});
  }
  if (s.end_frame > s.task.first_frame) {
    RenderTask requeue = s.task;
    requeue.frame_count = s.end_frame - s.task.first_frame;
    if (service_) {
      const auto shot_it = task_shot_.find(requeue.task_id);
      const int sid = shot_it != task_shot_.end() ? shot_it->second : -1;
      if (sid >= 0 && shots_[sid].phase == ShotPhase::kActive) {
        shots_[sid].queue.push_back(requeue);
      }
    } else {
      pending_.push_back(requeue);
    }
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::discard_result(const FrameResult& result, bool wasted_work) {
  ++fault_report_.results_ignored;
  if (wasted_work) fault_report_.lost_work_seconds += result.compute_seconds;
}

void RenderMaster::handle_frame_result(Context& ctx, const Message& msg) {
  if (config_.shards.sharded()) {
    // Workers route pixels straight to the owning shard; the thin
    // scheduler holds no framebuffers to apply a result to. Reaching this
    // is a routing bug, not a runtime fault.
    assert(false && "frame result delivered to thin scheduler");
    ++fault_report_.results_ignored;
    return;
  }
  if (ep_frame_bytes_ != nullptr) {
    ep_frame_bytes_->inc(static_cast<std::int64_t>(msg.payload.size()));
  }
  FrameResult result;
  if (!decode_frame_result(&result, msg.payload)) {
    // The envelope failed to decode: CRC mismatch, bad version, or
    // malformed structure. Count it and treat the message as lost — the
    // per-sender chain now has a gap, which the next valid result from this
    // worker (or its lease) turns into a cancel-and-reclaim.
    if (decode_failures_ != nullptr) decode_failures_->inc();
    if (ep_decode_failures_ != nullptr) ep_decode_failures_->inc();
    ++fault_report_.results_ignored;
    return;
  }

  if (msg.source < 1 || msg.source >= static_cast<int>(workers_.size())) {
    ++fault_report_.results_ignored;
    return;
  }
  WorkerState& s = workers_[msg.source];
  if (s.dead || cancelled_tasks_.count(result.task_id) > 0) {
    // A falsely-declared-dead worker keeps rendering into the void, and a
    // cancelled task's results arrive with a broken sparse base: both are
    // work performed but thrown away.
    discard_result(result, /*wasted_work=*/true);
    return;
  }
  if (!s.active || s.task.task_id != result.task_id) {
    discard_result(result, /*wasted_work=*/true);
    return;
  }
  if (result.frame < s.next_expected) {
    // Duplicated delivery of a result we already applied.
    discard_result(result, /*wasted_work=*/false);
    return;
  }
  if (result.frame > s.next_expected) {
    // A result vanished in transit. The region's sparse chain is broken
    // from the gap onward, so everything undelivered is written off and
    // re-rendered from a dense restart by whoever picks up the reclaim.
    cancel_and_reclaim(ctx, msg.source);
    if (!s.awaiting_ack) {
      // Tell the worker to stop wasting time on the written-off range.
      ShrinkRequest req;
      req.task_id = result.task_id;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(msg.source, kTagShrink, encode_shrink(req));
    }
    discard_result(result, /*wasted_work=*/true);
    try_dispatch(ctx);
    maybe_finish(ctx);
    return;
  }

  const int frame = result.frame;
  const PixelRect& region = result.payload.rect;
  assert(frame >= 0 && frame < static_cast<int>(frames_.size()));

  if (!result.payload.dense && (frame == 0 || frame == s.task.first_frame)) {
    // A task's first frame is always a dense key frame (fresh renderer, full
    // render): a sparse payload here references a predecessor this
    // assignment never rendered and can only be corruption that slipped past
    // the CRC. Drop it like a lost message; the gap machinery recovers.
    if (decode_failures_ != nullptr) decode_failures_->inc();
    if (ep_decode_failures_ != nullptr) ep_decode_failures_->inc();
    discard_result(result, /*wasted_work=*/true);
    return;
  }

  // Idempotent-commit gate: a (region, frame) already committed — by a
  // speculation partner or an overlapping reclaim — is acknowledged for the
  // sender's progress but applied nowhere. Both copies render identical
  // pixels (the coherence guarantee), so skipping the apply also keeps the
  // sender's later sparse results valid against frames_[frame - 1].
  const bool fresh =
      committed_rects_[frame].insert(rect_key(region)).second;
  s.next_expected = frame + 1;
  s.last_progress = ctx.now();
  s.ping_time = -1.0;
  if (!fresh) {
    if (spec_tasks_.count(result.task_id) > 0) {
      ++fault_report_.speculation_frames_wasted;
      fault_report_.speculation_wasted_seconds += result.compute_seconds;
    } else {
      discard_result(result, /*wasted_work=*/true);
    }
    if (s.next_expected >= s.end_frame) {
      const auto it = spec_partner_.find(result.task_id);
      if (it != spec_partner_.end()) {
        finish_speculation(ctx, result.task_id, it->second);
      }
    }
    maybe_finish(ctx);
    return;
  }

  // Sparse results carry only recomputed pixels; the rest of the region is
  // unchanged from the previous frame, which this worker already delivered.
  if (!result.payload.dense) {
    assert(frame > 0);
    frames_[frame].blit(region, frames_[frame - 1].extract(region));
  }
  apply_payload(&frames_[frame], result.payload);
  // The sink's journal digest runs over *decoded* pixels (the assembled
  // frame), never wire bytes, so raw and delta transports produce identical
  // journal records and a run may resume under either codec.
  sink_->commit_region(result.task_id, region, frame, frames_[frame]);

  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "frame.result", ctx.now(),
                            {{"worker", msg.source},
                             {"frame", frame},
                             {"full", result.full_render ? 1 : 0}});
  }
  note_commit(ctx, msg.source, result.task_id, result.trace_ctx, frame,
              result.render_seconds);
  ++report_.frame_results;
  report_.rays_total += result.rays;
  report_.shadow_rays_total += result.shadow_rays;
  report_.pixels_recomputed_total += result.pixels_recomputed;
  report_.full_renders += result.full_render ? 1 : 0;
  report_.worker_compute_seconds += result.compute_seconds;
  ++report_.frames_by_worker[msg.source];
  if (result.full_render && reassigned_tasks_.count(result.task_id) > 0) {
    // The coherence-restart price of recovery: the replacement's dense
    // first frame re-renders pixels the dead worker had already paid for.
    fault_report_.restart_work_seconds += result.compute_seconds;
  }

  frame_area_missing_[frame] -= region.area();
  area_frames_missing_ -= region.area();
  assert(frame_area_missing_[frame] >= 0);
  if (frame_area_missing_[frame] == 0) {
    ++report_.frames_completed;
    ctx.charge(config_.cost.master_frame_write_seconds);
    // The sink enforces write-ahead order: the frame file is atomically in
    // place (temp file + rename) before the record that declares it
    // durable, so a resume never trusts a frame that isn't wholly on disk.
    sink_->complete_frame(frame, frames_[frame]);
    if (service_) {
      const int sid = shot_of_frame(frame);
      assert(sid >= 0 && "completed frame belongs to no shot");
      if (sid >= 0) {
        Shot& shot = shots_[sid];
        ++shot.frames_done;
        Tenant& tenant = tenants_[shot.tenant];
        ++tenant.frames_committed;
        if (tenant.frames_counter != nullptr) tenant.frames_counter->inc();
        if (shot.phase == ShotPhase::kActive &&
            shot.frames_done >= shot.frame_count) {
          finish_shot(ctx, shot);
        }
      }
    }
  }
  if (sink_->journaling() &&
      sink_->commits_since_checkpoint() >=
          std::max(1, config_.journal_checkpoint_every)) {
    write_checkpoint();
  }
  sync_journal_stats();

  if (s.next_expected >= s.end_frame) {
    const auto it = spec_partner_.find(result.task_id);
    if (it != spec_partner_.end()) {
      finish_speculation(ctx, result.task_id, it->second);
    }
  }
  maybe_finish(ctx);
}

void RenderMaster::release_pending_request(Context& ctx, int worker) {
  WorkerState& s = workers_[worker];
  if (!s.request_pending) return;
  // The parked kTagRequest finally has its digest chain complete: run the
  // idle transition it was waiting for.
  s.request_pending = false;
  s.active = false;
  s.cancelled = false;
  s.awaiting_ack = false;
  s.deferred_frames.clear();
  if (!s.queued) {
    s.queued = true;
    idle_.push_back(worker);
  }
  try_dispatch(ctx);
}

void RenderMaster::handle_commit_digest(Context& ctx, const Message& msg) {
  if (ep_digest_bytes_ != nullptr) {
    ep_digest_bytes_->inc(static_cast<std::int64_t>(msg.payload.size()));
  }
  CommitDigest d;
  if (!decode_commit_digest(&d, msg.payload)) {
    assert(false && "malformed commit digest from shard");
    return;
  }
  if (!shard_states_.empty()) {
    const int shard = msg.source - static_cast<int>(workers_.size());
    if (shard >= 0 && shard < static_cast<int>(shard_states_.size()) &&
        shard_states_[shard].dead) {
      // A declared-dead incarnation is still talking. Its commits were
      // rolled back here, so its digests mean nothing anymore — and its
      // in-memory chain state is poison for future results. Fence it: force
      // a rebuild from the journal segment, exactly once per death.
      ++fault_report_.results_ignored;
      if (!shard_states_[shard].reset_sent) {
        shard_states_[shard].reset_sent = true;
        ctx.send(msg.source, kTagShardReset, {});
      }
      return;
    }
  }
  // The digest vouches for a worker message the shard received: credit the
  // worker's heartbeat even though the bytes came from the shard's rank.
  const bool known_worker =
      d.worker >= 1 && d.worker < static_cast<int>(workers_.size());
  if (known_worker && !workers_[d.worker].dead) {
    workers_[d.worker].last_heard = ctx.now();
  }
  if (d.kind == CommitKind::kDecodeFail) {
    // The shard could not even decode the envelope, so there is no task to
    // tie the loss to. The sender's chain now has a gap; the shard rejects
    // everything after it and the reject digest (or the lease) reclaims.
    ++fault_report_.results_ignored;
    return;
  }

  // ---- Order-independent accounting ------------------------------------
  // Digest streams from different shards interleave arbitrarily, but a
  // fresh commit is authoritative no matter when its digest lands: the
  // shard validated the chain, so the pixels are correct by the coherence
  // guarantee. Commit totals, the committed-rect mirror, and the area
  // bookkeeping therefore apply immediately; only *worker progress* (which
  // drives leases, shrink targets, and reassignment) needs ordering.
  switch (d.kind) {
    case CommitKind::kFresh: {
      assert(d.frame >= 0 &&
             d.frame < static_cast<int>(frame_area_missing_.size()));
      committed_rects_[d.frame].insert(rect_key(d.rect));
      ++report_.frame_results;
      report_.rays_total += d.rays;
      report_.shadow_rays_total += d.shadow_rays;
      report_.pixels_recomputed_total += d.pixels_recomputed;
      report_.full_renders += d.full_render ? 1 : 0;
      report_.worker_compute_seconds += d.compute_seconds;
      if (known_worker) ++report_.frames_by_worker[d.worker];
      if (d.full_render && reassigned_tasks_.count(d.task_id) > 0) {
        fault_report_.restart_work_seconds += d.compute_seconds;
      }
      if (config_.tracer != nullptr) {
        config_.tracer->instant(ctx.rank(), "sched", "frame.digest", ctx.now(),
                                {{"worker", d.worker},
                                 {"frame", d.frame},
                                 {"full", d.full_render ? 1 : 0}});
      }
      note_commit(ctx, d.worker, d.task_id, d.trace_ctx, d.frame,
                  d.render_seconds);
      frame_area_missing_[d.frame] -= d.rect.area();
      area_frames_missing_ -= d.rect.area();
      assert(frame_area_missing_[d.frame] >= 0);
      if (frame_area_missing_[d.frame] == 0) ++report_.frames_completed;
      ++digests_since_checkpoint_;
      if (sink_->journaling() &&
          digests_since_checkpoint_ >=
              std::max(1, config_.journal_checkpoint_every)) {
        write_checkpoint();
      }
      sync_journal_stats();
      break;
    }
    case CommitKind::kDuplicate:
      // The shard's commit gate caught a (region, frame) already applied —
      // the speculation loser or an overlap from reclaim.
      if (spec_tasks_.count(d.task_id) > 0) {
        ++fault_report_.speculation_frames_wasted;
        fault_report_.speculation_wasted_seconds += d.compute_seconds;
      } else {
        ++fault_report_.results_ignored;
        fault_report_.lost_work_seconds += d.compute_seconds;
      }
      break;
    case CommitKind::kStale:
      // Redelivery behind the shard's chain: already accounted once.
      ++fault_report_.results_ignored;
      break;
    case CommitKind::kChainReject:
      ++fault_report_.results_ignored;
      fault_report_.lost_work_seconds += d.compute_seconds;
      break;
    case CommitKind::kDecodeFail:
      break;  // handled above
  }

  // ---- Worker progress (order-dependent) -------------------------------
  if (!known_worker) {
    maybe_finish(ctx);
    return;
  }
  WorkerState& s = workers_[d.worker];
  if (d.kind == CommitKind::kChainReject) {
    // The shard saw a gap (or an undecodable chain) in this worker's
    // stream: same recovery as the single master's gap branch — write the
    // task off, reclaim the remainder, tell the worker to stop.
    if (!s.dead && s.active && !s.cancelled && s.task.task_id == d.task_id &&
        cancelled_tasks_.count(d.task_id) == 0) {
      cancel_and_reclaim(ctx, d.worker);
      if (s.active && !s.awaiting_ack) {
        ShrinkRequest req;
        req.task_id = d.task_id;
        req.new_end_frame = s.next_expected;
        s.awaiting_ack = true;
        ctx.send(d.worker, kTagShrink, encode_shrink(req));
      }
      try_dispatch(ctx);
    }
    maybe_finish(ctx);
    return;
  }
  if (s.dead || cancelled_tasks_.count(d.task_id) > 0 || !s.active ||
      s.cancelled || s.task.task_id != d.task_id ||
      d.frame < s.next_expected) {
    // Progress for an assignment that no longer exists (or a frame the
    // chain already passed): the global accounting above was the whole
    // story.
    maybe_finish(ctx);
    return;
  }
  if (d.frame > s.next_expected) {
    if (config_.shards.shard_of(d.frame) ==
        config_.shards.shard_of(s.next_expected)) {
      // Gap within one shard's digest stream. Per-sender FIFO holds on the
      // worker→shard and shard→scheduler edges, so the missing frame was
      // genuinely lost: cancel and reclaim, as the single master would.
      cancel_and_reclaim(ctx, d.worker);
      if (s.active && !s.awaiting_ack) {
        ShrinkRequest req;
        req.task_id = d.task_id;
        req.new_end_frame = s.next_expected;
        s.awaiting_ack = true;
        ctx.send(d.worker, kTagShrink, encode_shrink(req));
      }
      try_dispatch(ctx);
      maybe_finish(ctx);
      return;
    }
    // Cross-shard reordering: a later-owned frame's digest overtook an
    // earlier shard's. Hold it; the chain drains it on catch-up.
    s.deferred_frames.insert(d.frame);
    maybe_finish(ctx);
    return;
  }
  // In-order progress: advance the chain and drain anything the reorder
  // buffer already holds.
  s.next_expected = d.frame + 1;
  s.last_progress = ctx.now();
  s.ping_time = -1.0;
  while (s.deferred_frames.count(s.next_expected) > 0) {
    s.deferred_frames.erase(s.next_expected);
    ++s.next_expected;
  }
  if (s.next_expected >= s.end_frame) {
    const auto it = spec_partner_.find(d.task_id);
    if (it != spec_partner_.end()) {
      finish_speculation(ctx, d.task_id, it->second);
    }
    release_pending_request(ctx, d.worker);
  }
  maybe_finish(ctx);
}

void RenderMaster::write_checkpoint() {
  if (sink_ == nullptr || !sink_->journaling()) return;
  CheckpointRecord cp;
  cp.completed.assign(frame_area_missing_.size(), false);
  for (std::size_t f = 0; f < frame_area_missing_.size(); ++f) {
    cp.completed[f] = frame_area_missing_[f] == 0;
  }
  for (const RenderTask& t : pending_) {
    CheckpointRecord::Task task;
    task.task_id = t.task_id;
    task.rect = t.region;
    task.first_frame = t.first_frame;
    task.frame_count = t.frame_count;
    cp.pending.push_back(task);
  }
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!s.active || s.cancelled || s.dead) continue;
    CheckpointRecord::WorkerView view;
    view.worker = w;
    view.task_id = s.task.task_id;
    view.rect = s.task.region;
    view.next_expected = s.next_expected;
    view.end_frame = s.end_frame;
    cp.in_flight.push_back(view);
  }
  // v2 trailer: enough to make a restarted scheduler byte-identical in its
  // decisions — fresh task ids never collide with pre-crash ones, and the
  // straggler EWMAs (which steer speculation victims) survive the restart.
  cp.next_task_id = next_task_id_;
  for (const StragglerDetector::Snapshot& s : straggler_.snapshot()) {
    CheckpointRecord::StragglerStat stat;
    stat.worker = s.worker;
    stat.ewma = s.ewma;
    stat.dev = s.dev;
    stat.n = s.n;
    stat.flagged = s.flagged;
    cp.stragglers.push_back(stat);
  }
  sink_->checkpoint(cp);
  digests_since_checkpoint_ = 0;
}

void RenderMaster::sync_journal_stats() {
  if (sink_ == nullptr || !sink_->journaling()) return;
  report_.journal_records = sink_->journal_records();
  report_.journal_bytes = sink_->journal_bytes();
  report_.journal_checkpoints = sink_->journal_checkpoints();
  report_.journal_ok = sink_->journal_ok();
}

void RenderMaster::cancel_and_reclaim(Context& ctx, int worker) {
  WorkerState& s = workers_[worker];
  if (!s.active || s.cancelled) return;
  release_assignment(worker);
  s.cancelled = true;
  cancelled_tasks_.insert(s.task.task_id);
  // A cancelled half of a speculated pair just dissolves the pair: the
  // survivor keeps rendering, the reclaim below double-covers the range,
  // and the idempotent-commit gate keeps whichever copy lands first.
  const auto it = spec_partner_.find(s.task.task_id);
  if (it != spec_partner_.end()) {
    spec_partner_.erase(it->second);
    spec_partner_.erase(s.task.task_id);
  }
  if (s.end_frame > s.next_expected) {
    // Service mode: a reclaim belongs to the owning shot's queue, and a
    // shot already past kActive has had its remaining area written off —
    // reclaiming it would enqueue work nobody is waiting for.
    int sid = -1;
    if (service_) {
      const auto shot_it = task_shot_.find(s.task.task_id);
      sid = shot_it != task_shot_.end() ? shot_it->second : -1;
      if (sid >= 0 && shots_[sid].phase != ShotPhase::kActive) sid = -1;
    }
    if (!service_ || sid >= 0) {
      RenderTask reclaim;
      reclaim.task_id = next_task_id_++;
      reclaim.region = s.task.region;
      reclaim.first_frame = s.next_expected;
      reclaim.frame_count = s.end_frame - s.next_expected;
      reclaim.scene_id = s.task.scene_id;
      reclaim.frame_delta = s.task.frame_delta;
      reassigned_tasks_.insert(reclaim.task_id);
      if (config_.tracer != nullptr) {
        config_.tracer->instant(ctx.rank(), "sched", "task.reclaim",
                                ctx.now(),
                                {{"worker", worker},
                                 {"task", reclaim.task_id},
                                 {"first_frame", reclaim.first_frame},
                                 {"frames", reclaim.frame_count}});
      }
      if (service_) {
        task_shot_[reclaim.task_id] = sid;
        shots_[sid].queue.push_back(reclaim);
      } else {
        pending_.push_back(reclaim);
      }
      ++fault_report_.tasks_reassigned;
      fault_report_.frames_reassigned += reclaim.frame_count;
    }
  }
  // Digests for the written-off range are moot; a parked request completes
  // its idle transition now (every caller follows with try_dispatch, and a
  // rank declared dead right after this is skipped by the dispatch loop).
  s.deferred_frames.clear();
  if (s.request_pending) {
    s.request_pending = false;
    s.active = false;
    s.cancelled = false;
    s.awaiting_ack = false;
    if (!s.queued) {
      s.queued = true;
      idle_.push_back(worker);
    }
  }
  (void)ctx;
}

void RenderMaster::declare_dead(Context& ctx, int worker) {
  WorkerState& s = workers_[worker];
  if (s.dead) return;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "worker.dead", ctx.now(),
                            {{"worker", worker}});
  }
  ++fault_report_.deaths_detected;
  fault_report_.detection_latency_seconds += ctx.now() - s.last_heard;
  cancel_and_reclaim(ctx, worker);
  s.dead = true;
  s.active = false;
  s.awaiting_ack = false;
  bool any_alive = false;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    if (!workers_[w].dead) any_alive = true;
  }
  if (!any_alive && !stopping_) {
    // Nobody left to render the reclaimed work: stop with what we have
    // rather than waiting on leases that can never be renewed.
    stopping_ = true;
    ctx.stop();
    return;
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::handle_lease_check(Context& ctx, const Message& msg) {
  LeaseCheck check;
  const bool ok = decode_lease_check(&check, msg.payload);
  assert(ok);
  if (!ok || !config_.fault.enabled || stopping_) return;
  if (check.worker < 1 || check.worker >= static_cast<int>(workers_.size())) {
    return;
  }
  WorkerState& s = workers_[check.worker];
  // Stale check: the assignment it covered is gone or already written off.
  if (s.dead || !s.active || s.cancelled || s.task.task_id != check.task_id) {
    return;
  }

  const double now = ctx.now();
  // The lease demands *progress* (accepted frame results), not mere
  // liveness: a worker whose assignment was lost in transit answers pings
  // happily while rendering nothing, and a liveness lease would renew that
  // forever.
  const double expiry = s.last_progress + s.lease_seconds;
  if (now < expiry) {
    // Progress since this check was scheduled: renew.
    LeaseCheck renew = check;
    renew.phase = 0;
    s.ping_time = -1.0;
    ctx.send_after(expiry - now, kTagLeaseCheck, encode_lease_check(renew));
    return;
  }
  if (check.phase == 0 || s.ping_time < 0.0) {
    // Lease expired. One explicit ping, one grace period, then judgment.
    s.ping_time = now;
    ++fault_report_.pings_sent;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "lease.ping", now,
                              {{"worker", check.worker},
                               {"task", check.task_id}});
    }
    ctx.send(check.worker, kTagPing, {});
    LeaseCheck grace = check;
    grace.phase = 1;
    ctx.send_after(config_.fault.ping_grace_seconds, kTagLeaseCheck,
                   encode_lease_check(grace));
    return;
  }
  if (s.last_heard >= s.ping_time) {
    // Answered the ping but made no progress: alive but stuck. Write the
    // task off — it will be re-rendered from a dense restart — and tell the
    // worker to abandon any rendering it is silently doing. If it is truly
    // idle (the assignment itself was lost) it rejoins on its next request.
    cancel_and_reclaim(ctx, check.worker);
    if (!s.awaiting_ack) {
      ShrinkRequest req;
      req.task_id = check.task_id;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(check.worker, kTagShrink, encode_shrink(req));
    }
    try_dispatch(ctx);
    maybe_finish(ctx);
    return;
  }
  declare_dead(ctx, check.worker);
}

void RenderMaster::arm_shard_lease(Context& ctx, int shard, double delay,
                                   int phase) {
  LeaseCheck check;
  check.worker = shard;  // shard index, not a worker rank
  check.task_id = -1;
  check.phase = static_cast<std::uint8_t>(phase);
  ctx.send_after(delay, kTagShardCheck, encode_lease_check(check));
}

void RenderMaster::handle_shard_check(Context& ctx, const Message& msg) {
  LeaseCheck check;
  const bool ok = decode_lease_check(&check, msg.payload);
  assert(ok);
  if (!ok || stopping_ || shard_states_.empty()) return;
  const int shard = check.worker;
  if (shard < 0 || shard >= static_cast<int>(shard_states_.size())) return;
  ShardState& s = shard_states_[shard];
  if (s.dead) return;  // chain ends at death; re-admission restarts it

  const double now = ctx.now();
  // Liveness, not progress: a shard whose owned range is complete commits
  // nothing forever, so any message at all renews its lease.
  const double expiry = s.last_heard + config_.fault.lease_base_seconds;
  if (now < expiry) {
    s.ping_time = -1.0;
    arm_shard_lease(ctx, shard, expiry - now, 0);
    return;
  }
  if (check.phase == 0 || s.ping_time < 0.0) {
    s.ping_time = now;
    ++fault_report_.pings_sent;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "shard.ping", now,
                              {{"shard", shard}});
    }
    ctx.send(static_cast<int>(workers_.size()) + shard, kTagPing, {});
    arm_shard_lease(ctx, shard, config_.fault.ping_grace_seconds, 1);
    return;
  }
  if (s.last_heard >= s.ping_time) {
    // Answered the ping: alive. Back to a normal lease.
    s.ping_time = -1.0;
    arm_shard_lease(ctx, shard, config_.fault.lease_base_seconds, 0);
    return;
  }
  declare_shard_dead(ctx, shard);
}

void RenderMaster::declare_shard_dead(Context& ctx, int shard) {
  ShardState& st = shard_states_[shard];
  if (st.dead) return;
  st.dead = true;
  st.reset_sent = false;
  st.ping_time = -1.0;
  ++fault_report_.shards_failed;
  fault_report_.detection_latency_seconds += ctx.now() - st.last_heard;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "shard.dead", ctx.now(),
                            {{"shard", shard}});
  }
  rollback_dead_shard(ctx, shard);
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::rollback_dead_shard(Context& ctx, int shard) {
  const auto range = config_.shards.range_of(shard);
  const std::int64_t full = std::int64_t{scene_.width()} * scene_.height();
  // Completed frames are durable (TGA renamed into place before the
  // kFrameComplete record, which precedes the digest that completed our
  // area count): the replacement reloads them from disk. Everything else
  // the shard held was memory, and memory is gone — the mirror's committed
  // cells for those frames revert to missing and come back as reclaim
  // tasks, one per (rect, contiguous frame run).
  std::map<std::uint64_t, std::pair<PixelRect, std::set<int>>> lost;
  std::int64_t rolled = 0;
  for (int f = range.first; f < range.second; ++f) {
    if (frame_area_missing_[f] == 0) continue;
    for (const std::uint64_t key : committed_rects_[f]) {
      auto& entry = lost[key];
      entry.first = rect_from_key(key);
      entry.second.insert(f);
      ++rolled;
    }
    area_frames_missing_ += full - frame_area_missing_[f];
    frame_area_missing_[f] = full;
    committed_rects_[f].clear();
  }
  fault_report_.shard_commits_rolled_back += rolled;
  enqueue_lost_cells(ctx, lost);
  // Workers mid-task on the dead range are rendering into the void: write
  // their tasks off now instead of waiting out progress leases that can
  // only expire.
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    WorkerState& s = workers_[w];
    if (s.dead || !s.active || s.cancelled) continue;
    if (s.next_expected < range.second && s.end_frame > range.first) {
      cancel_and_reclaim(ctx, w);
      if (s.active && !s.awaiting_ack) {
        ShrinkRequest req;
        req.task_id = s.task.task_id;
        req.new_end_frame = s.next_expected;
        s.awaiting_ack = true;
        ctx.send(w, kTagShrink, encode_shrink(req));
      }
    }
  }
}

void RenderMaster::enqueue_lost_cells(
    Context& ctx,
    const std::map<std::uint64_t, std::pair<PixelRect, std::set<int>>>&
        lost) {
  for (const auto& kv : lost) {
    const PixelRect& rect = kv.second.first;
    const std::set<int>& frames = kv.second.second;
    auto it = frames.begin();
    while (it != frames.end()) {
      const int first = *it;
      int last = first;
      auto run_end = it;
      ++run_end;
      while (run_end != frames.end() && *run_end == last + 1) {
        last = *run_end;
        ++run_end;
      }
      RenderTask reclaim;
      reclaim.task_id = next_task_id_++;
      reclaim.region = rect;
      reclaim.first_frame = first;
      reclaim.frame_count = last - first + 1;
      reassigned_tasks_.insert(reclaim.task_id);
      if (config_.tracer != nullptr) {
        config_.tracer->instant(ctx.rank(), "sched", "task.reclaim",
                                ctx.now(),
                                {{"task", reclaim.task_id},
                                 {"first_frame", reclaim.first_frame},
                                 {"frames", reclaim.frame_count}});
      }
      pending_.push_back(reclaim);
      ++fault_report_.tasks_reassigned;
      fault_report_.frames_reassigned += reclaim.frame_count;
      it = run_end;
    }
  }
}

bool RenderMaster::task_blocked_by_dead_shard(const RenderTask& task) const {
  if (shard_states_.empty()) return false;
  for (std::size_t i = 0; i < shard_states_.size(); ++i) {
    if (!shard_states_[i].dead) continue;
    const auto range = config_.shards.range_of(static_cast<int>(i));
    if (task.first_frame < range.second && task.end_frame() > range.first) {
      return true;
    }
  }
  return false;
}

void RenderMaster::handle_shard_hello(Context& ctx, int source) {
  if (shard_states_.empty()) return;  // liveness off: nothing to re-admit
  const int shard = source - static_cast<int>(workers_.size());
  if (shard < 0 || shard >= static_cast<int>(shard_states_.size())) return;
  ShardState& st = shard_states_[shard];
  const bool was_dead = st.dead;
  if (!was_dead) {
    // The shard restarted before its lease even expired (revival raced
    // detection). Its partial frames died with its memory all the same, so
    // the death rollback runs now — the mirror and the rebuilt shard agree
    // again before any new work dispatches.
    rollback_dead_shard(ctx, shard);
  }
  st.dead = false;
  st.reset_sent = false;
  st.ping_time = -1.0;
  st.last_heard = ctx.now();
  ++fault_report_.shards_rejoined;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "shard.rejoin", ctx.now(),
                            {{"shard", shard}});
  }
  if (was_dead) {
    // Death ended the lease chain; re-admission restarts it. (A shard never
    // declared dead still has its chain running — don't stack a second.)
    arm_shard_lease(ctx, shard, config_.fault.lease_base_seconds, 0);
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::restore_from_checkpoint(Context& ctx,
                                           const std::vector<char>& restored) {
  const RecoveryState& rec = *config_.recovery;
  const CheckpointRecord& ck = *rec.last_checkpoint;
  const int frames = scene_.frame_count();
  // Fresh ids start above everything the dead scheduler ever minted, so a
  // late journal record can never be confused with new work.
  if (ck.next_task_id > next_task_id_) next_task_id_ = ck.next_task_id;
  std::vector<StragglerDetector::Snapshot> snaps;
  for (const CheckpointRecord::StragglerStat& s : ck.stragglers) {
    StragglerDetector::Snapshot snap;
    snap.worker = s.worker;
    snap.ewma = s.ewma;
    snap.dev = s.dev;
    snap.n = s.n;
    snap.flagged = s.flagged;
    snaps.push_back(snap);
  }
  straggler_.restore(snaps);

  // What will cover each incomplete frame: checkpoint tasks (pending plus
  // in-flight remainders), trimmed around frames that completed after the
  // checkpoint, plus reclaims rebuilt from the journal's own commit records
  // — cells that were committed when the checkpoint was written lost their
  // pixels with the process and no table task covers them. Every rect
  // descends from the one partition tiling, so distinct rects never
  // partially overlap and a frame's covered area is the sum of its distinct
  // rect areas. A frame whose reconstruction falls short of the full image
  // (a shard's journal segment vanished, or was torn past what the
  // checkpoint had already seen) cannot be patched cell by cell: it
  // re-renders wholesale. Over-coverage is gated at commit; under-coverage
  // would hang the run one cell short of completion.
  const std::int64_t full_area =
      std::int64_t{scene_.width()} * scene_.height();
  std::vector<std::set<std::uint64_t>> cover(
      static_cast<std::size_t>(frames));
  const auto cover_range = [&](const PixelRect& rect, int first, int end) {
    const std::uint64_t key = rect_key(rect);
    for (int f = std::max(first, 0); f < std::min(end, frames); ++f) {
      if (!restored[f]) cover[f].insert(key);
    }
  };
  for (const CheckpointRecord::Task& t : ck.pending) {
    cover_range(t.rect, t.first_frame, t.first_frame + t.frame_count);
  }
  for (const CheckpointRecord::WorkerView& v : ck.in_flight) {
    cover_range(v.rect, v.next_expected, v.end_frame);
  }
  for (int f = 0; f < frames; ++f) {
    if (restored[f] || f >= static_cast<int>(rec.frame_commits.size())) {
      continue;
    }
    for (const RegionCommitRecord& c : rec.frame_commits[f]) {
      cover[f].insert(rect_key(c.rect));
    }
  }
  std::vector<char> wholesale(static_cast<std::size_t>(frames), 0);
  for (int f = 0; f < frames; ++f) {
    if (restored[f]) continue;
    std::int64_t area = 0;
    for (const std::uint64_t key : cover[f]) {
      area += rect_from_key(key).area();
    }
    if (area < full_area) wholesale[f] = 1;
  }

  int tasks_restored = 0;
  const auto enqueue_trimmed = [&](const PixelRect& rect, int first, int end,
                                   bool recovery_restart) {
    int f = std::max(first, 0);
    end = std::min(end, frames);
    while (f < end) {
      if (restored[f] || wholesale[f]) {
        ++f;
        continue;
      }
      int b = f;
      while (b < end && !restored[b] && !wholesale[b]) ++b;
      RenderTask task;
      task.task_id = next_task_id_++;
      task.region = rect;
      task.first_frame = f;
      task.frame_count = b - f;
      if (recovery_restart) reassigned_tasks_.insert(task.task_id);
      pending_.push_back(task);
      ++tasks_restored;
      f = b;
    }
  };
  for (const CheckpointRecord::Task& t : ck.pending) {
    enqueue_trimmed(t.rect, t.first_frame, t.first_frame + t.frame_count,
                    /*recovery_restart=*/false);
  }
  for (const CheckpointRecord::WorkerView& v : ck.in_flight) {
    enqueue_trimmed(v.rect, v.next_expected, v.end_frame,
                    /*recovery_restart=*/true);
  }
  std::map<std::uint64_t, std::pair<PixelRect, std::set<int>>> lost;
  for (int f = 0; f < frames; ++f) {
    if (restored[f] || wholesale[f] ||
        f >= static_cast<int>(rec.frame_commits.size())) {
      continue;
    }
    for (const RegionCommitRecord& c : rec.frame_commits[f]) {
      auto& entry = lost[rect_key(c.rect)];
      entry.first = c.rect;
      entry.second.insert(f);
    }
  }
  enqueue_lost_cells(ctx, lost);
  // Wholesale frames re-render as full-image tasks over contiguous runs;
  // their first frame is a dense coherence restart like any fresh task.
  PixelRect whole;
  whole.x0 = 0;
  whole.y0 = 0;
  whole.width = scene_.width();
  whole.height = scene_.height();
  int wf = 0;
  while (wf < frames) {
    if (!wholesale[wf]) {
      ++wf;
      continue;
    }
    int b = wf;
    while (b < frames && wholesale[b]) ++b;
    RenderTask task;
    task.task_id = next_task_id_++;
    task.region = whole;
    task.first_frame = wf;
    task.frame_count = b - wf;
    reassigned_tasks_.insert(task.task_id);
    pending_.push_back(task);
    ++tasks_restored;
    wf = b;
  }
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "resume.checkpoint",
                            ctx.now(),
                            {{"tasks", tasks_restored},
                             {"next_task_id", next_task_id_}});
  }
}

void RenderMaster::handle_sample_tick(Context& ctx) {
  // A tick racing the shutdown broadcast is dropped and not re-armed; the
  // runtime abandons anything still queued once the scheduler stops.
  if (stopping_) return;
  ++report_.telemetry_samples;
  if (config_.sampler != nullptr && config_.metrics != nullptr) {
    config_.sampler->sample(ctx.now(), config_.metrics->snapshot());
  }
  if (config_.status != nullptr) {
    config_.status->publish(render_status_json(ctx));
  }
  ctx.send_after(config_.sample_interval_seconds, kTagSampleTick, {});
}

namespace {

void append_json_double(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("0");  // JSON cannot carry inf/nan
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

std::string RenderMaster::render_status_json(Context& ctx) const {
  std::string j = "{";
  j += "\"now\": ";
  append_json_double(&j, ctx.now());
  j += ", \"stopping\": ";
  j += stopping_ ? "true" : "false";
  j += ", \"pending_tasks\": " + std::to_string(pending_.size());
  j += ", \"frames_completed\": " + std::to_string(report_.frames_completed);
  j += ", \"frame_results\": " + std::to_string(report_.frame_results);
  j += ", \"straggler_flags\": " + std::to_string(report_.straggler_flags);
  j += ", \"telemetry_samples\": " + std::to_string(report_.telemetry_samples);
  j += ", \"throughput_fps\": ";
  append_json_double(&j, config_.sampler != nullptr
                             ? config_.sampler->rate_per_second(
                                   "sched.frames_committed")
                             : 0.0);
  j += ", \"workers\": [";
  bool first = true;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!first) j += ", ";
    first = false;
    const char* state = s.dead        ? "dead"
                        : !s.known    ? "unknown"
                        : s.cancelled ? "cancelled"
                        : s.active    ? "active"
                                      : "idle";
    j += "{\"rank\": " + std::to_string(w);
    j += ", \"state\": \"" + std::string(state) + "\"";
    j += ", \"task\": " + std::to_string(s.active ? s.task.task_id : -1);
    j += ", \"next_expected\": " + std::to_string(s.next_expected);
    j += ", \"end_frame\": " + std::to_string(s.end_frame);
    j += ", \"last_heard\": ";
    append_json_double(&j, s.last_heard);
    j += ", \"straggler\": ";
    j += straggler_.is_straggler(w) ? "true" : "false";
    j += "}";
  }
  j += "], \"stragglers\": [";
  first = true;
  for (const int w : straggler_.stragglers()) {
    if (!first) j += ", ";
    first = false;
    j += std::to_string(w);
  }
  j += "]";
  if (config_.shards.sharded()) {
    j += ", \"shards\": [";
    for (int i = 0; i < config_.shards.shard_count; ++i) {
      if (i > 0) j += ", ";
      const auto range = config_.shards.range_of(i);
      std::int64_t done = 0;
      for (int f = range.first; f < range.second; ++f) {
        if (frame_area_missing_[f] == 0) ++done;
      }
      j += "{\"shard\": " + std::to_string(i);
      j += ", \"rank\": " + std::to_string(config_.shards.rank_of_shard(i));
      j += ", \"first_frame\": " + std::to_string(range.first);
      j += ", \"end_frame\": " + std::to_string(range.second);
      j += ", \"frames_done\": " + std::to_string(done);
      j += ", \"dead\": ";
      j += (!shard_states_.empty() && shard_states_[i].dead) ? "true"
                                                             : "false";
      j += "}";
    }
    j += "]";
  }
  if (service_) {
    j += ", \"tenants\": [";
    first = true;
    for (const Tenant& t : tenants_) {
      if (!first) j += ", ";
      first = false;
      j += "{\"name\": \"" + t.name + "\"";
      j += ", \"weight\": ";
      append_json_double(&j, t.weight);
      j += ", \"quota\": " + std::to_string(t.quota);
      j += ", \"inflight\": " + std::to_string(t.inflight);
      j += ", \"tasks_assigned\": " + std::to_string(t.tasks_assigned);
      j += ", \"units_assigned\": " + std::to_string(t.units_assigned);
      j += ", \"frames_committed\": " + std::to_string(t.frames_committed);
      j += "}";
    }
    j += "], \"shots\": [";
    first = true;
    for (const Shot& s : shots_) {
      if (!first) j += ", ";
      first = false;
      j += "{\"shot\": " + std::to_string(s.shot_id);
      j += ", \"tenant\": \"" + tenants_[s.tenant].name + "\"";
      j += ", \"phase\": \"" + std::string(to_string(s.phase)) + "\"";
      j += ", \"frames_done\": " + std::to_string(s.frames_done);
      j += ", \"frame_count\": " + std::to_string(s.frame_count);
      j += ", \"queued_tasks\": " + std::to_string(s.queue.size());
      j += "}";
    }
    j += "]";
  }
  j += "}\n";
  return j;
}

void RenderMaster::note_commit(Context& ctx, int worker, std::int32_t task_id,
                               std::uint64_t trace_ctx, std::int32_t frame,
                               double render_seconds) {
  if (frames_committed_live_ != nullptr) frames_committed_live_->inc();
  if (config_.tracer != nullptr && trace_ctx != 0) {
    // Close the frame's flow chain: assignment → render → send → commit all
    // bind to this id, so the ack renders as one connected arc in the trace.
    config_.tracer->flow_end(
        ctx.rank(), trace_flow_id(trace_ctx, frame), ctx.now(),
        {{"worker", worker}, {"task", task_id}, {"frame", frame},
         {"step", 4}});
  }
  if (worker < 1 || worker >= static_cast<int>(workers_.size())) return;
  if (straggler_.observe(worker, render_seconds)) {
    ++report_.straggler_flags;
    if (stragglers_flagged_ != nullptr) stragglers_flagged_->inc();
    if (config_.tracer != nullptr) {
      config_.tracer->instant(
          ctx.rank(), "sched", "worker.straggler", ctx.now(),
          {{"worker", worker}, {"task", task_id}, {"frame", frame}});
    }
  }
}

void RenderMaster::maybe_finish(Context& ctx) {
  if (service_) {
    if (stopping_) return;
    // The service run ends only when every client has declared itself done
    // (no further submits can arrive), every admitted pixel is committed or
    // written off, and no active shot still queues real work.
    if (static_cast<int>(done_clients_.size()) <
        config_.service.client_count) {
      return;
    }
    if (area_frames_missing_ != 0) return;
    for (Shot& shot : shots_) {
      if (shot.phase != ShotPhase::kActive) continue;
      while (!shot.queue.empty() &&
             task_fully_committed(shot.queue.front())) {
        shot.queue.pop_front();
      }
      if (!shot.queue.empty()) return;
    }
    stopping_ = true;
    for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
      if (!workers_[w].dead) ctx.send(w, kTagStop, {});
    }
    for (int c = 0; c < config_.service.client_count; ++c) {
      ctx.send(static_cast<int>(workers_.size()) + c, kTagStop, {});
    }
    ctx.stop();
    return;
  }
  if (stopping_ || area_frames_missing_ != 0) return;
  // Every pixel is committed, so anything still pending (speculation
  // leftovers, reclaim overlap) is duplicate work by definition.
  while (!pending_.empty() && task_fully_committed(pending_.front())) {
    pending_.pop_front();
  }
  if (queue_depth_ != nullptr) {
    queue_depth_->set(static_cast<double>(pending_.size()));
  }
  if (!pending_.empty()) return;
  stopping_ = true;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    if (!workers_[w].dead) ctx.send(w, kTagStop, {});
  }
  if (config_.shards.sharded()) {
    for (int i = 0; i < config_.shards.shard_count; ++i) {
      ctx.send(config_.shards.rank_of_shard(i), kTagStop, {});
    }
  }
  ctx.stop();
}

// ---- Multi-tenant service ----------------------------------------------

namespace {

/// Shared charset rule for tenant and label names: path-safe, so they can
/// feed output file names verbatim.
bool valid_service_name(const std::string& s) {
  for (const char c : s) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Stride-scheduling scale: pass advances by units * kStrideScale / weight
/// per grant, so a tenant with twice the weight accrues pass half as fast
/// and receives twice the units over any contended window.
constexpr double kStrideScale = 65536.0;

}  // namespace

bool RenderMaster::is_client_rank(Context& ctx, int rank) const {
  (void)ctx;
  const int first = static_cast<int>(workers_.size());
  return rank >= first && rank < first + config_.service.client_count;
}

int RenderMaster::tenant_for(const std::string& name, double weight,
                             std::int32_t quota) {
  const auto it = tenant_ids_.find(name);
  if (it != tenant_ids_.end()) return it->second;
  Tenant t;
  t.name = name;
  t.weight = weight;
  t.quota = quota;
  // A late-arriving tenant starts at the minimum live pass: stride fairness
  // is forward-looking, never a back-payment that would let a newcomer
  // monopolize the farm to "catch up" on time before it existed.
  bool any = false;
  double min_pass = 0.0;
  for (const Tenant& other : tenants_) {
    if (!any || other.pass < min_pass) min_pass = other.pass;
    any = true;
  }
  t.pass = any ? min_pass : 0.0;
  if (config_.metrics != nullptr) {
    t.frames_counter =
        &config_.metrics->counter("tenant." + name + ".frames_committed");
    t.assigns_counter =
        &config_.metrics->counter("tenant." + name + ".tasks_assigned");
  }
  const int id = static_cast<int>(tenants_.size());
  tenants_.push_back(std::move(t));
  tenant_ids_[name] = id;
  return id;
}

void RenderMaster::handle_shot_submit(Context& ctx, const Message& msg) {
  if (!service_ || !is_client_rank(ctx, msg.source) || stopping_) return;
  const auto reject = [&](std::int32_t ref, const std::string& why) {
    ++report_.shots_rejected;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "shot.reject", ctx.now(),
                              {{"client", msg.source}});
    }
    ShotAccept acc;
    acc.client_ref = ref;
    acc.shot_id = -1;
    acc.error = why;
    ctx.send(msg.source, kTagShotAccept, encode_shot_accept(acc));
  };
  ShotSubmit sub;
  if (!decode_shot_submit(&sub, msg.payload)) {
    reject(-1, "malformed ShotSubmit");
    return;
  }
  if (sub.tenant.empty() || sub.tenant.size() > 64 ||
      !valid_service_name(sub.tenant)) {
    reject(sub.client_ref, "invalid tenant name");
    return;
  }
  if (sub.label.size() > 64 || !valid_service_name(sub.label)) {
    reject(sub.client_ref, "invalid shot label");
    return;
  }
  if (!std::isfinite(sub.weight) || sub.weight <= 0.0) {
    reject(sub.client_ref, "weight must be finite and > 0");
    return;
  }
  if (sub.quota < 0) {
    reject(sub.client_ref, "quota must be >= 0");
    return;
  }
  const int scene_count = config_.service.scenes.empty()
                              ? 1
                              : static_cast<int>(config_.service.scenes.size());
  if (sub.scene_id < 0 || sub.scene_id >= scene_count) {
    reject(sub.client_ref, "unknown scene_id");
    return;
  }
  const AnimatedScene& scene = config_.service.scenes.empty()
                                   ? scene_
                                   : *config_.service.scenes[sub.scene_id];
  if (sub.first_frame < 0 || sub.frame_count < 1 ||
      static_cast<std::int64_t>(sub.first_frame) + sub.frame_count >
          scene.frame_count()) {
    reject(sub.client_ref, "frame range outside scene");
    return;
  }

  const int w = scene_.width();
  const int h = scene_.height();
  const int shot_id = static_cast<int>(shots_.size());
  const std::int32_t base =
      static_cast<std::int32_t>(frame_area_missing_.size());
  Shot shot;
  shot.shot_id = shot_id;
  shot.tenant = tenant_for(sub.tenant, sub.weight, sub.quota);
  shot.client_rank = msg.source;
  shot.label = sub.label;
  shot.scene_id = sub.scene_id;
  shot.scene_first_frame = sub.first_frame;
  shot.frame_count = sub.frame_count;
  shot.base_frame = base;

  // Grow the global frame space: the shot's frames live at
  // [base, base + frame_count) and map back to the scene through
  // frame_delta (scene_frame = global_frame + frame_delta).
  frames_.resize(frames_.size() + static_cast<std::size_t>(sub.frame_count),
                 Framebuffer(w, h));
  frame_area_missing_.resize(
      frame_area_missing_.size() + static_cast<std::size_t>(sub.frame_count),
      std::int64_t{w} * h);
  committed_rects_.resize(committed_rects_.size() +
                          static_cast<std::size_t>(sub.frame_count));
  area_frames_missing_ += std::int64_t{w} * h * sub.frame_count;

  // Partition the shot on its own: camera cuts inside the shot's range are
  // free task boundaries, shifted into shot-local frame numbers.
  PartitionConfig partition = config_.partition;
  if (partition.scheme == PartitionScheme::kSequenceDivision &&
      partition.sequence_cuts.empty()) {
    for (const AnimatedScene::Shot& cut : scene.split_shots()) {
      if (cut.first_frame > sub.first_frame &&
          cut.first_frame < sub.first_frame + sub.frame_count) {
        partition.sequence_cuts.push_back(cut.first_frame - sub.first_frame);
      }
    }
  }
  const int worker_count = static_cast<int>(workers_.size()) - 1;
  std::int64_t covered = 0;
  for (RenderTask& task :
       make_initial_tasks(partition, w, h, sub.frame_count, worker_count)) {
    task.task_id = next_task_id_++;
    task.first_frame += base;
    task.scene_id = sub.scene_id;
    task.frame_delta = sub.first_frame - base;
    covered +=
        static_cast<std::int64_t>(task.region.area()) * task.frame_count;
    task_shot_[task.task_id] = shot_id;
    shot.queue.push_back(task);
  }
  assert(covered == std::int64_t{w} * h * sub.frame_count &&
         "shot tasks must tile area × frames");
  shot.units_total = covered;
  shots_.push_back(std::move(shot));
  ++report_.shots_submitted;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "shot.admit", ctx.now(),
                            {{"shot", shot_id},
                             {"client", msg.source},
                             {"base_frame", base},
                             {"frames", sub.frame_count}});
  }
  ShotAccept acc;
  acc.client_ref = sub.client_ref;
  acc.shot_id = shot_id;
  acc.base_frame = base;
  ctx.send(msg.source, kTagShotAccept, encode_shot_accept(acc));
  try_dispatch(ctx);
}

void RenderMaster::handle_shot_status(Context& ctx, const Message& msg) {
  if (!service_ || !is_client_rank(ctx, msg.source)) return;
  ShotStatusRequest req;
  if (!decode_shot_status_request(&req, msg.payload)) return;
  ShotStatusReply reply;
  reply.shot_id = req.shot_id;
  if (req.shot_id >= 0 && req.shot_id < static_cast<int>(shots_.size())) {
    const Shot& shot = shots_[req.shot_id];
    reply.known = 1;
    reply.phase = shot.phase;
    reply.frames_done = shot.frames_done;
    reply.frame_count = shot.frame_count;
  }
  ctx.send(msg.source, kTagShotStatusReply, encode_shot_status_reply(reply));
}

void RenderMaster::handle_shot_cancel(Context& ctx, const Message& msg) {
  if (!service_ || !is_client_rank(ctx, msg.source)) return;
  ShotCancel cancel;
  if (!decode_shot_cancel(&cancel, msg.payload)) return;
  if (cancel.shot_id < 0 ||
      cancel.shot_id >= static_cast<int>(shots_.size())) {
    return;  // unknown id: nothing to cancel, nothing to report
  }
  Shot& shot = shots_[cancel.shot_id];
  if (shot.client_rank != msg.source) return;  // only the submitter
  if (shot.phase != ShotPhase::kActive) {
    // Idempotent: a repeated cancel (or one racing completion) reports the
    // terminal phase the shot already reached.
    ShotUpdate update;
    update.shot_id = shot.shot_id;
    update.phase = shot.phase;
    update.frames_done = shot.frames_done;
    ctx.send(msg.source, kTagShotUpdate, encode_shot_update(update));
    return;
  }
  shot.phase = ShotPhase::kCancelled;
  ++report_.shots_cancelled;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "shot.cancel", ctx.now(),
                            {{"shot", shot.shot_id},
                             {"frames_done", shot.frames_done}});
  }
  // Queued tasks just vanish; in-flight ones are written off like a lease
  // expiry — results are discarded and the worker is told to stop.
  for (const RenderTask& task : shot.queue) {
    cancelled_tasks_.insert(task.task_id);
    task_shot_.erase(task.task_id);
  }
  shot.queue.clear();
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    WorkerState& s = workers_[w];
    if (s.dead || !s.active || s.cancelled) continue;
    const auto it = task_shot_.find(s.task.task_id);
    if (it == task_shot_.end() || it->second != cancel.shot_id) continue;
    release_assignment(w);
    s.cancelled = true;
    cancelled_tasks_.insert(s.task.task_id);
    const auto sp = spec_partner_.find(s.task.task_id);
    if (sp != spec_partner_.end()) {
      spec_partner_.erase(sp->second);
      spec_partner_.erase(s.task.task_id);
    }
    if (!s.awaiting_ack) {
      ShrinkRequest req;
      req.task_id = s.task.task_id;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(w, kTagShrink, encode_shrink(req));
    }
  }
  // The dropped pixels will never arrive: write their area off so the run
  // can finish without them. Not counted as completed frames.
  for (std::int32_t f = shot.base_frame;
       f < shot.base_frame + shot.frame_count; ++f) {
    area_frames_missing_ -= frame_area_missing_[f];
    frame_area_missing_[f] = 0;
  }
  ShotUpdate update;
  update.shot_id = shot.shot_id;
  update.phase = ShotPhase::kCancelled;
  update.frames_done = shot.frames_done;
  ctx.send(msg.source, kTagShotUpdate, encode_shot_update(update));
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::handle_client_done(Context& ctx, int source) {
  if (!service_ || !is_client_rank(ctx, source)) return;
  done_clients_.insert(source);
  maybe_finish(ctx);
}

int RenderMaster::runnable_shot(int tenant) {
  for (int sid = 0; sid < static_cast<int>(shots_.size()); ++sid) {
    Shot& shot = shots_[sid];
    if (shot.tenant != tenant || shot.phase != ShotPhase::kActive) continue;
    // A speculation winner (or reclaim overlap) may have fully covered the
    // queue head while it waited: prune rather than pay for duplicates.
    while (!shot.queue.empty() &&
           task_fully_committed(shot.queue.front())) {
      shot.queue.pop_front();
    }
    if (!shot.queue.empty()) return sid;
  }
  return -1;
}

int RenderMaster::pick_tenant() {
  int best = -1;
  for (int t = 0; t < static_cast<int>(tenants_.size()); ++t) {
    Tenant& tenant = tenants_[t];
    if (tenant.quota > 0 && tenant.inflight >= tenant.quota) continue;
    if (runnable_shot(t) < 0) continue;
    // Strict < keeps ties on the lowest tenant id: deterministic scan order.
    if (best < 0 || tenant.pass < tenants_[best].pass) best = t;
  }
  // Shot affinity (deficit-round-robin quantum on top of the stride queue):
  // keep serving the last-served tenant while its pass lead over the
  // lowest-pass contender stays under one shot's units. Bounded unfairness
  // — at most one shot's worth of work — in exchange for a shot's tiles
  // finishing together, so frames complete steadily instead of in waves
  // that stall dispatch behind the master's frame writes.
  if (best >= 0 && affinity_tenant_ >= 0 && affinity_tenant_ != best) {
    Tenant& held = tenants_[affinity_tenant_];
    if (held.quota <= 0 || held.inflight < held.quota) {
      const int sid = runnable_shot(affinity_tenant_);
      if (sid >= 0) {
        const double lead_cap =
            static_cast<double>(shots_[sid].units_total) * kStrideScale /
            held.weight;
        if (held.pass - tenants_[best].pass < lead_cap) {
          return affinity_tenant_;
        }
      }
    }
  }
  return best;
}

void RenderMaster::charge_tenant(Context& ctx, int worker, int tenant,
                                 const RenderTask& task) {
  Tenant& t = tenants_[tenant];
  ++t.inflight;
  t.peak_inflight = std::max(t.peak_inflight, t.inflight);
  ++t.tasks_assigned;
  const std::int64_t units =
      static_cast<std::int64_t>(task.region.area()) * task.frame_count;
  t.units_assigned += units;
  t.pass += units * kStrideScale / t.weight;
  affinity_tenant_ = tenant;
  if (t.assigns_counter != nullptr) t.assigns_counter->inc();
  workers_[worker].charged_tenant = tenant;
  const auto shot_it = task_shot_.find(task.task_id);
  ServiceAssignment grant;
  grant.tenant = tenant;
  grant.shot_id = shot_it != task_shot_.end() ? shot_it->second : -1;
  grant.units = units;
  assignment_log_.push_back(grant);
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "tenant.grant", ctx.now(),
                            {{"tenant", tenant},
                             {"worker", worker},
                             {"task", task.task_id}});
  }
}

void RenderMaster::release_assignment(int worker) {
  WorkerState& s = workers_[worker];
  if (s.charged_tenant < 0) return;
  Tenant& t = tenants_[s.charged_tenant];
  --t.inflight;
  assert(t.inflight >= 0);
  s.charged_tenant = -1;
}

void RenderMaster::service_dispatch(Context& ctx) {
  while (!idle_.empty()) {
    const int worker = idle_.front();
    if (workers_[worker].dead) {
      idle_.pop_front();
      workers_[worker].queued = false;
      continue;
    }
    const int tenant = pick_tenant();
    if (tenant >= 0) {
      const int sid = runnable_shot(tenant);
      assert(sid >= 0);
      Shot& shot = shots_[sid];
      const RenderTask task = shot.queue.front();
      shot.queue.pop_front();
      idle_.pop_front();
      workers_[worker].queued = false;
      charge_tenant(ctx, worker, tenant, task);
      assign(ctx, worker, task);
      continue;
    }
    // No admitted work is runnable (empty queues or every tenant at quota):
    // fall back to the classic end-game moves.
    if (config_.partition.adaptive && try_adaptive_split(ctx)) break;
    if (config_.speculate && try_speculate(ctx)) continue;
    break;
  }
  service_preempt_if_backlogged(ctx);
  if (queue_depth_ != nullptr) {
    std::int64_t depth = 0;
    for (const Shot& shot : shots_) {
      depth += static_cast<std::int64_t>(shot.queue.size());
    }
    queue_depth_->set(static_cast<double>(depth));
  }
}

void RenderMaster::service_preempt_if_backlogged(Context& ctx) {
  if (!service_ || !config_.speculate || spec_partner_.empty()) return;
  // Admitted work is waiting and every live worker is busy: speculation
  // clones are the lowest-value occupants, so dissolve one pair and shrink
  // the clone away — its worker comes back for the real backlog.
  if (pick_tenant() < 0) return;
  for (const int w : idle_) {
    if (!workers_[w].dead) return;  // an idle worker will take the backlog
  }
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    WorkerState& s = workers_[w];
    if (s.dead || !s.active || s.cancelled) continue;
    if (spec_clone_tasks_.count(s.task.task_id) == 0) continue;
    const auto it = spec_partner_.find(s.task.task_id);
    if (it == spec_partner_.end()) continue;  // pair already dissolved
    spec_partner_.erase(it->second);
    spec_partner_.erase(s.task.task_id);
    ++report_.preemptions;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "task.preempt", ctx.now(),
                              {{"worker", w}, {"task", s.task.task_id}});
    }
    s.end_frame = std::min(s.end_frame, s.next_expected);
    if (!s.awaiting_ack) {
      ShrinkRequest req;
      req.task_id = s.task.task_id;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(w, kTagShrink, encode_shrink(req));
    }
    break;  // one preemption per backlog check
  }
}

void RenderMaster::finish_shot(Context& ctx, Shot& shot) {
  shot.phase = ShotPhase::kDone;
  ++report_.shots_completed;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "shot.done", ctx.now(),
                            {{"shot", shot.shot_id},
                             {"frames", shot.frame_count}});
  }
  ShotUpdate update;
  update.shot_id = shot.shot_id;
  update.phase = ShotPhase::kDone;
  update.frames_done = shot.frames_done;
  ctx.send(shot.client_rank, kTagShotUpdate, encode_shot_update(update));
}

int RenderMaster::shot_of_frame(std::int32_t frame) const {
  for (const Shot& shot : shots_) {
    if (frame >= shot.base_frame &&
        frame < shot.base_frame + shot.frame_count) {
      return shot.shot_id;
    }
  }
  return -1;
}

std::string RenderMaster::service_frame_path(std::int32_t frame) const {
  const int sid = shot_of_frame(frame);
  if (sid < 0) {
    return frame_file_path(config_.output_dir, config_.output_prefix, frame);
  }
  const Shot& shot = shots_[sid];
  const std::int32_t local =
      frame - shot.base_frame + shot.scene_first_frame;
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "_%04d.tga", local);
  std::string name = config_.output_prefix + "-" +
                     tenants_[shot.tenant].name + "-shot" +
                     std::to_string(shot.shot_id);
  if (!shot.label.empty()) name += "-" + shot.label;
  return config_.output_dir + "/" + name + suffix;
}

std::vector<TenantSummary> RenderMaster::tenant_summaries() const {
  std::vector<TenantSummary> out;
  for (const Tenant& t : tenants_) {
    TenantSummary s;
    s.name = t.name;
    s.weight = t.weight;
    s.quota = t.quota;
    s.tasks_assigned = t.tasks_assigned;
    s.units_assigned = t.units_assigned;
    s.frames_committed = t.frames_committed;
    s.peak_inflight = t.peak_inflight;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ShotSummary> RenderMaster::shot_summaries() const {
  std::vector<ShotSummary> out;
  for (const Shot& shot : shots_) {
    ShotSummary s;
    s.shot_id = shot.shot_id;
    s.tenant = tenants_[shot.tenant].name;
    s.label = shot.label;
    s.scene_id = shot.scene_id;
    s.scene_first_frame = shot.scene_first_frame;
    s.frame_count = shot.frame_count;
    s.base_frame = shot.base_frame;
    s.phase = shot.phase;
    s.frames_done = shot.frames_done;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace now
