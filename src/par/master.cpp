#include "src/par/master.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace now {

RenderMaster::RenderMaster(const AnimatedScene& scene,
                           const MasterConfig& config)
    : scene_(scene), config_(config), straggler_(config.straggler) {
  if (config_.tracer != nullptr && !config_.tracer->enabled()) {
    config_.tracer = nullptr;
  }
  if (config_.metrics != nullptr) {
    decode_failures_ = &config_.metrics->counter("net.frame_decode_failures");
    ep_frame_bytes_ = &config_.metrics->counter("endpoint.0.frame_bytes");
    ep_digest_bytes_ = &config_.metrics->counter("endpoint.0.digest_bytes");
    ep_decode_failures_ =
        &config_.metrics->counter("endpoint.0.frame_decode_failures");
    frames_committed_live_ =
        &config_.metrics->counter("sched.frames_committed");
    stragglers_flagged_ = &config_.metrics->counter("sched.stragglers");
    queue_depth_ = &config_.metrics->gauge("sched.queue_depth");
  }
}

void RenderMaster::on_start(Context& ctx) {
  const int frames = scene_.frame_count();
  const int w = scene_.width();
  const int h = scene_.height();
  const bool sharded = config_.shards.sharded();
  // In sharded mode the trailing ranks are FrameShard actors, not workers:
  // every `w < workers_.size()` loop (dispatch, leases, speculation,
  // checkpoints, liveness) must exclude them, so the bookkeeping vector
  // stops at the last worker rank.
  const int worker_count =
      sharded ? config_.shards.worker_count : ctx.world_size() - 1;
  assert(worker_count >= 1);
  assert(!sharded || ctx.world_size() == config_.shards.world_size());
  workers_.assign(static_cast<std::size_t>(worker_count) + 1, {});
  report_.frames_by_worker.assign(static_cast<std::size_t>(worker_count) + 1,
                                  0);
  if (!sharded) {
    // Thin scheduler holds no pixels; frames_ stays empty and the shards
    // own the framebuffers. The area bookkeeping below still runs on
    // digests, so scheduling decisions are identical either way.
    frames_.assign(static_cast<std::size_t>(frames), Framebuffer(w, h));
  }
  frame_area_missing_.assign(static_cast<std::size_t>(frames),
                             std::int64_t{w} * h);
  area_frames_missing_ = std::int64_t{w} * h * frames;
  committed_rects_.assign(static_cast<std::size_t>(frames), {});

  // Resume: frames the previous run completed (journal record + verified
  // targa on disk) are restored wholesale and never re-enter scheduling.
  // The thin scheduler marks them complete without touching pixels — the
  // owning shard loads the images.
  std::vector<char> restored(static_cast<std::size_t>(frames), 0);
  if (config_.recovery != nullptr) {
    const RecoveryState& rec = *config_.recovery;
    for (int f = 0; f < frames; ++f) {
      if (f < static_cast<int>(rec.frames.size()) &&
          rec.frames[f].has_value()) {
        if (!sharded) frames_[f] = *rec.frames[f];
        frame_area_missing_[f] = 0;
        area_frames_missing_ -= std::int64_t{w} * h;
        restored[f] = 1;
        ++report_.frames_restored;
      }
    }
    if (config_.tracer != nullptr && report_.frames_restored > 0) {
      config_.tracer->instant(ctx.rank(), "sched", "resume.restore", ctx.now(),
                              {{"frames", report_.frames_restored}});
    }
  }
  // Sequence-division tasks should not straddle camera cuts: a shot change
  // forces a full re-render anyway, so cuts are free task boundaries
  // ("any camera movement logically separates one sequence from another").
  PartitionConfig partition = config_.partition;
  if (partition.scheme == PartitionScheme::kSequenceDivision &&
      partition.sequence_cuts.empty()) {
    for (const AnimatedScene::Shot& shot : scene_.split_shots()) {
      if (shot.first_frame > 0) {
        partition.sequence_cuts.push_back(shot.first_frame);
      }
    }
  }
  std::int64_t covered = 0;
  const auto enqueue = [&](std::vector<RenderTask> tasks, int frame_offset) {
    for (RenderTask& task : tasks) {
      task.task_id = next_task_id_++;
      task.first_frame += frame_offset;
      covered +=
          static_cast<std::int64_t>(task.region.area()) * task.frame_count;
      pending_.push_back(task);
    }
  };
  if (config_.recovery != nullptr &&
      config_.recovery->last_checkpoint.has_value()) {
    // A scheduler checkpoint survived: resume the compacted task table
    // instead of re-partitioning. Its tasks cover the incomplete remainder
    // as a superset (reclaim overlap is gated away at commit), so the exact
    // tiling assertion below does not apply to this path.
    restore_from_checkpoint(ctx, restored);
  } else {
    if (report_.frames_restored == 0) {
      enqueue(make_initial_tasks(partition, w, h, frames, worker_count), 0);
    } else {
      // Partition each maximal run of incomplete frames independently; cuts
      // are shifted into run-local frame numbers. A task's first frame is a
      // dense render anyway, so restored frames are free task boundaries.
      int f = 0;
      while (f < frames) {
        if (restored[f]) {
          ++f;
          continue;
        }
        int b = f;
        while (b < frames && !restored[b]) ++b;
        PartitionConfig run = partition;
        run.sequence_cuts.clear();
        for (const int cut : partition.sequence_cuts) {
          if (cut > f && cut < b) run.sequence_cuts.push_back(cut - f);
        }
        enqueue(make_initial_tasks(run, w, h, b - f, worker_count), f);
        f = b;
      }
    }
    assert(covered == area_frames_missing_ &&
           "tasks must tile area × frames");
  }

  FrameSinkConfig sink;
  if (!sharded) {
    // Sharded runs write TGAs at the shards; the scheduler's sink is
    // journal-only (header + checkpoint records).
    sink.output_dir = config_.output_dir;
    sink.output_prefix = config_.output_prefix;
  }
  sink.journal_path = config_.journal_path;
  sink.journal_fsync = config_.journal_fsync;
  sink.header.width = w;
  sink.header.height = h;
  sink.header.frame_count = frames;
  sink.header.shard_count = sharded ? config_.shards.shard_count : 1;
  sink.header.shard_index = sharded ? -1 : 0;
  sink.resume = config_.recovery != nullptr;
  sink.resume_valid_bytes =
      config_.recovery != nullptr ? config_.recovery->journal_valid_bytes : 0;
  sink.metrics = config_.metrics;
  sink.endpoint_rank = 0;
  sink_ = std::make_unique<FrameSink>(sink);
  if (!config_.journal_path.empty()) {
    report_.journal_ok = sink_->journal_ok();
    sync_journal_stats();
  }
  // Shard liveness: shards are failure domains too. Each one holds a
  // rolling liveness lease (any message renews; silence draws a ping, then
  // a grace period, then death + rollback). Progress leases make no sense
  // for shards — one whose owned range is complete commits nothing forever.
  if (sharded && config_.fault.enabled) {
    shard_states_.assign(
        static_cast<std::size_t>(config_.shards.shard_count), {});
    for (int i = 0; i < config_.shards.shard_count; ++i) {
      shard_states_[i].last_heard = ctx.now();
      arm_shard_lease(ctx, i, config_.fault.lease_base_seconds, 0);
    }
  }
  // Everything restored: stop before any worker is put to work.
  maybe_finish(ctx);
  if (!stopping_ && config_.sample_interval_seconds > 0.0 &&
      (config_.sampler != nullptr || config_.status != nullptr)) {
    ctx.send_after(config_.sample_interval_seconds, kTagSampleTick, {});
  }
  if (queue_depth_ != nullptr) {
    queue_depth_->set(static_cast<double>(pending_.size()));
  }
}

void RenderMaster::on_message(Context& ctx, const Message& msg) {
  if (msg.tag == kTagSampleTick) {
    // Telemetry must be observably free: no compute charge, no heartbeat
    // bookkeeping, nothing sent across ranks — handled before everything.
    handle_sample_tick(ctx);
    return;
  }
  ctx.charge(config_.cost.master_per_message_seconds);
  // Every message a live worker sends doubles as a heartbeat.
  if (msg.source >= 1 && msg.source < static_cast<int>(workers_.size())) {
    WorkerState& s = workers_[msg.source];
    if (!s.dead) s.last_heard = ctx.now();
  } else if (!shard_states_.empty() &&
             msg.source >= static_cast<int>(workers_.size())) {
    // Same for shard ranks: any message (digest, pong, hello) renews the
    // shard's liveness lease. A declared-dead shard earns nothing until it
    // re-admits through handle_shard_hello.
    const int shard = msg.source - static_cast<int>(workers_.size());
    if (shard < static_cast<int>(shard_states_.size()) &&
        !shard_states_[shard].dead) {
      shard_states_[shard].last_heard = ctx.now();
    }
  }
  switch (msg.tag) {
    case kTagHello:
      if (config_.shards.sharded() &&
          msg.source >= static_cast<int>(workers_.size())) {
        // A shard rank announcing itself: failover re-admission, never an
        // idle worker (handle_idle would index workers_ out of range).
        handle_shard_hello(ctx, msg.source);
      } else {
        handle_idle(ctx, msg.source, /*hello=*/true);
      }
      break;
    case kTagRequest:
      handle_idle(ctx, msg.source, /*hello=*/false);
      break;
    case kTagFrameResult:
      handle_frame_result(ctx, msg);
      break;
    case kTagCommitDigest:
      handle_commit_digest(ctx, msg);
      break;
    case kTagShrinkAck:
      handle_shrink_ack(ctx, msg);
      break;
    case kTagTaskNack:
      handle_task_nack(ctx, msg);
      break;
    case kTagPong:
      break;  // the heartbeat update above is the whole point
    case kTagLeaseCheck:
      handle_lease_check(ctx, msg);
      break;
    case kTagShardCheck:
      handle_shard_check(ctx, msg);
      break;
    default:
      assert(false && "master received unexpected tag");
  }
}

void RenderMaster::handle_idle(Context& ctx, int worker, bool hello) {
  WorkerState& state = workers_[worker];
  if (state.dead) {
    if (!hello) return;
    // Elastic membership: a Hello from a declared-dead rank means the
    // process restarted. Re-admit it with a clean slate — its old task was
    // already reclaimed at death, and its first new frame is a dense
    // coherence restart like any fresh assignment. A stale idle-queue entry
    // from before the death stays valid, so don't enqueue twice.
    const bool was_queued = state.queued;
    state = WorkerState{};
    state.queued = was_queued;
    state.last_heard = ctx.now();
    state.last_progress = ctx.now();
    ++fault_report_.workers_rejoined;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "worker.rejoin", ctx.now(),
                              {{"worker", worker}});
    }
  }
  state.known = true;
  if (state.active && !state.cancelled &&
      state.next_expected < state.end_frame) {
    if (config_.shards.sharded() && !hello) {
      // Sharded mode: the worker's results went to the shards and their
      // digests may still be in flight behind this request (different
      // senders, no cross-sender ordering). Park the idle transition; the
      // digest chain catching up — or the task being written off —
      // releases it. A genuine loss still surfaces through the lease.
      state.request_pending = true;
      return;
    }
    // The worker says its task is finished but results are missing. Sends
    // are per-sender FIFO, so anything still unseen was lost in transit
    // (e.g. the task's final frame result): write it off and re-enqueue.
    cancel_and_reclaim(ctx, worker);
  }
  state.active = false;
  state.cancelled = false;
  state.request_pending = false;
  state.deferred_frames.clear();
  // A worker asking for work has no task left to shrink; a shrink ack still
  // in flight (e.g. the shrink reached a rank that crashed and rejoined)
  // will arrive with nothing to steal and is harmless.
  state.awaiting_ack = false;
  if (!state.queued) {
    state.queued = true;
    idle_.push_back(worker);
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::assign(Context& ctx, int worker, RenderTask task) {
  // Mint the trace context here — a deterministic nonzero function of the
  // task id — so a requeued task (nack, reclaim) restarts the same flow
  // chain and every result/digest can be tied back to this assignment.
  task.trace_ctx = static_cast<std::uint64_t>(task.task_id) + 1;
  WorkerState& state = workers_[worker];
  state.active = true;
  state.cancelled = false;
  state.task = task;
  state.next_expected = task.first_frame;
  state.end_frame = task.end_frame();
  if (config_.fault.enabled) {
    // Lease scaled by assigned task cost: a bigger frame range legitimately
    // keeps a worker silent for longer before its first result.
    state.last_heard = ctx.now();
    state.last_progress = ctx.now();
    state.ping_time = -1.0;
    state.lease_seconds =
        config_.fault.lease_base_seconds +
        config_.fault.lease_per_frame_seconds * task.frame_count;
    LeaseCheck check;
    check.worker = worker;
    check.task_id = task.task_id;
    check.phase = 0;
    ctx.send_after(state.lease_seconds, kTagLeaseCheck,
                   encode_lease_check(check));
  }
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.assign", ctx.now(),
                            {{"worker", worker},
                             {"task", task.task_id},
                             {"first_frame", task.first_frame},
                             {"frames", task.frame_count}});
    // One flow start per frame in the assignment: each frame's life is its
    // own chain (render → send → commit → ack), all anchored here.
    for (std::int32_t f = task.first_frame; f < task.end_frame(); ++f) {
      config_.tracer->flow_start(
          ctx.rank(), trace_flow_id(task.trace_ctx, f), ctx.now(),
          {{"worker", worker}, {"task", task.task_id}, {"frame", f},
           {"step", 0}});
    }
  }
  ctx.send(worker, kTagTask, encode_task(task));
}

bool RenderMaster::task_fully_committed(const RenderTask& task) const {
  for (std::int32_t f = task.first_frame; f < task.end_frame(); ++f) {
    if (frame_area_missing_[f] == 0) continue;
    if (committed_rects_[f].count(rect_key(task.region)) == 0) return false;
  }
  return true;
}

void RenderMaster::try_dispatch(Context& ctx) {
  while (!idle_.empty()) {
    const int worker = idle_.front();
    if (workers_[worker].dead) {
      idle_.pop_front();
      workers_[worker].queued = false;
      continue;
    }
    // Scan for the first dispatchable task. A speculation winner (or an
    // overlap from reclaim) may have covered a task entirely while it
    // waited: drop it instead of paying a worker to render duplicates. A
    // task touching a dead shard's frames stays queued — its results would
    // be lost — until the replacement shard re-admits.
    bool dispatched = false;
    bool held = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (task_fully_committed(*it)) {
        it = pending_.erase(it);
        continue;
      }
      if (task_blocked_by_dead_shard(*it)) {
        held = true;
        ++it;
        continue;
      }
      const RenderTask task = *it;
      pending_.erase(it);
      idle_.pop_front();
      workers_[worker].queued = false;
      assign(ctx, worker, task);
      dispatched = true;
      break;
    }
    if (dispatched) continue;
    if (held) break;  // work exists, but its shard is down: wait for rejoin
    if (config_.partition.adaptive && try_adaptive_split(ctx)) {
      // A split is in flight; idle workers wait for the ack.
      break;
    }
    if (config_.speculate && try_speculate(ctx)) continue;
    break;
  }
  if (queue_depth_ != nullptr) {
    queue_depth_->set(static_cast<double>(pending_.size()));
  }
}

bool RenderMaster::try_speculate(Context& ctx) {
  // End-game gate: nothing pending, and strictly more idle live workers
  // than tasks still running — duplicating the straggler costs capacity
  // that would otherwise sit idle until the last frame lands.
  int idle_live = 0;
  for (const int w : idle_) {
    if (!workers_[w].dead) ++idle_live;
  }
  int active_tasks = 0;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (s.active && !s.cancelled && !s.dead) ++active_tasks;
  }
  if (active_tasks == 0 || idle_live <= active_tasks) return false;

  // Victim: the active worker expected to hold the end-game longest, not
  // mid-shrink, and not already paired (one speculative copy per task).
  // Expected cost is remaining frames × the worker's EWMA per-frame render
  // time from the straggler detector, so a rank that has been consistently
  // slow is duplicated ahead of one that merely holds more frames. With no
  // samples yet every worker scores at the fleet mean and this reduces to
  // the old most-remaining rule.
  int victim = -1;
  std::int32_t best_remaining = 0;
  double best_score = 0.0;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!s.active || s.awaiting_ack || s.dead || s.cancelled) continue;
    if (spec_partner_.count(s.task.task_id) > 0) continue;
    const std::int32_t remaining = s.end_frame - s.next_expected;
    if (remaining < 1) continue;
    const double score = remaining * straggler_.expected_seconds(w);
    if (score > best_score) {
      best_score = score;
      best_remaining = remaining;
      victim = w;
    }
  }
  if (victim < 0 || best_remaining < 1) return false;

  const WorkerState& vs = workers_[victim];
  RenderTask clone;
  clone.task_id = next_task_id_++;
  clone.region = vs.task.region;
  clone.first_frame = vs.next_expected;
  clone.frame_count = vs.end_frame - vs.next_expected;
  spec_partner_[clone.task_id] = vs.task.task_id;
  spec_partner_[vs.task.task_id] = clone.task_id;
  spec_tasks_.insert(clone.task_id);
  spec_tasks_.insert(vs.task.task_id);
  ++fault_report_.speculations_launched;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.speculate", ctx.now(),
                            {{"victim", victim},
                             {"task", clone.task_id},
                             {"first_frame", clone.first_frame},
                             {"frames", clone.frame_count}});
  }
  const int worker = idle_.front();
  idle_.pop_front();
  workers_[worker].queued = false;
  assign(ctx, worker, clone);
  return true;
}

void RenderMaster::finish_speculation(Context& ctx, std::int32_t winner_task,
                                      std::int32_t loser_task) {
  spec_partner_.erase(winner_task);
  spec_partner_.erase(loser_task);
  ++fault_report_.speculations_won;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "speculate.won", ctx.now(),
                            {{"winner", winner_task}, {"loser", loser_task}});
  }
  // Shrink the losing copy back to what it already delivered; its remaining
  // frames are committed, so the master's view of its task ends now.
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    WorkerState& s = workers_[w];
    if (!s.active || s.dead || s.cancelled || s.task.task_id != loser_task) {
      continue;
    }
    s.end_frame = std::min(s.end_frame, s.next_expected);
    if (!s.awaiting_ack) {
      ShrinkRequest req;
      req.task_id = loser_task;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(w, kTagShrink, encode_shrink(req));
    }
    break;
  }
}

bool RenderMaster::try_adaptive_split(Context& ctx) {
  // Victim: the active worker with the most unreported frames remaining.
  int victim = -1;
  std::int32_t best_remaining = 0;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!s.active || s.awaiting_ack || s.dead || s.cancelled) continue;
    // A paired task's remainder is already being rendered twice; splitting
    // it a third way only manufactures duplicates.
    if (spec_partner_.count(s.task.task_id) > 0) continue;
    const std::int32_t remaining = s.end_frame - s.next_expected;
    if (remaining > best_remaining) {
      best_remaining = remaining;
      victim = w;
    }
  }
  if (victim < 0 || best_remaining < config_.partition.min_split_frames) {
    return false;
  }
  WorkerState& s = workers_[victim];
  ShrinkRequest req;
  req.task_id = s.task.task_id;
  req.new_end_frame = s.end_frame - best_remaining / 2;
  s.awaiting_ack = true;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.shrink", ctx.now(),
                            {{"victim", victim},
                             {"task", req.task_id},
                             {"new_end_frame", req.new_end_frame}});
  }
  ctx.send(victim, kTagShrink, encode_shrink(req));
  return true;
}

void RenderMaster::handle_shrink_ack(Context& ctx, const Message& msg) {
  ShrinkAck ack;
  const bool ok = decode_shrink_ack(&ack, msg.payload);
  assert(ok);
  if (!ok) return;
  WorkerState& s = workers_[msg.source];
  if (s.dead) return;
  s.awaiting_ack = false;
  if (ack.honored_end_frame >= 0 && s.active && !s.cancelled &&
      cancelled_tasks_.count(ack.task_id) == 0 &&
      s.task.task_id == ack.task_id &&
      ack.honored_end_frame < s.end_frame) {
    // The stolen range becomes a fresh task for an idle worker.
    RenderTask stolen;
    stolen.task_id = next_task_id_++;
    stolen.region = s.task.region;
    stolen.first_frame = ack.honored_end_frame;
    stolen.frame_count = s.end_frame - ack.honored_end_frame;
    s.end_frame = ack.honored_end_frame;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "task.split", ctx.now(),
                              {{"victim", msg.source},
                               {"task", stolen.task_id},
                               {"first_frame", stolen.first_frame},
                               {"frames", stolen.frame_count}});
    }
    pending_.push_back(stolen);
    ++report_.adaptive_splits;
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::handle_task_nack(Context& ctx, const Message& msg) {
  TaskNack nack;
  const bool ok = decode_task_nack(&nack, msg.payload);
  assert(ok);
  if (!ok) return;
  WorkerState& s = workers_[msg.source];
  if (s.dead || !s.active || s.cancelled || s.task.task_id != nack.task_id) {
    return;  // stale refusal: the assignment it covers is already gone
  }
  // The worker is busy with a different task, so this assignment will never
  // run. Free the slot and requeue the task verbatim: the worker refused
  // before rendering any frame of it, so it keeps its id, owes no results,
  // and pays no coherence-restart accounting.
  s.active = false;
  ++fault_report_.tasks_nacked;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "task.nack", ctx.now(),
                            {{"worker", msg.source},
                             {"task", nack.task_id}});
  }
  if (s.end_frame > s.task.first_frame) {
    RenderTask requeue = s.task;
    requeue.frame_count = s.end_frame - s.task.first_frame;
    pending_.push_back(requeue);
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::discard_result(const FrameResult& result, bool wasted_work) {
  ++fault_report_.results_ignored;
  if (wasted_work) fault_report_.lost_work_seconds += result.compute_seconds;
}

void RenderMaster::handle_frame_result(Context& ctx, const Message& msg) {
  if (config_.shards.sharded()) {
    // Workers route pixels straight to the owning shard; the thin
    // scheduler holds no framebuffers to apply a result to. Reaching this
    // is a routing bug, not a runtime fault.
    assert(false && "frame result delivered to thin scheduler");
    ++fault_report_.results_ignored;
    return;
  }
  if (ep_frame_bytes_ != nullptr) {
    ep_frame_bytes_->inc(static_cast<std::int64_t>(msg.payload.size()));
  }
  FrameResult result;
  if (!decode_frame_result(&result, msg.payload)) {
    // The envelope failed to decode: CRC mismatch, bad version, or
    // malformed structure. Count it and treat the message as lost — the
    // per-sender chain now has a gap, which the next valid result from this
    // worker (or its lease) turns into a cancel-and-reclaim.
    if (decode_failures_ != nullptr) decode_failures_->inc();
    if (ep_decode_failures_ != nullptr) ep_decode_failures_->inc();
    ++fault_report_.results_ignored;
    return;
  }

  WorkerState& s = workers_[msg.source];
  if (s.dead || cancelled_tasks_.count(result.task_id) > 0) {
    // A falsely-declared-dead worker keeps rendering into the void, and a
    // cancelled task's results arrive with a broken sparse base: both are
    // work performed but thrown away.
    discard_result(result, /*wasted_work=*/true);
    return;
  }
  if (!s.active || s.task.task_id != result.task_id) {
    discard_result(result, /*wasted_work=*/true);
    return;
  }
  if (result.frame < s.next_expected) {
    // Duplicated delivery of a result we already applied.
    discard_result(result, /*wasted_work=*/false);
    return;
  }
  if (result.frame > s.next_expected) {
    // A result vanished in transit. The region's sparse chain is broken
    // from the gap onward, so everything undelivered is written off and
    // re-rendered from a dense restart by whoever picks up the reclaim.
    cancel_and_reclaim(ctx, msg.source);
    if (!s.awaiting_ack) {
      // Tell the worker to stop wasting time on the written-off range.
      ShrinkRequest req;
      req.task_id = result.task_id;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(msg.source, kTagShrink, encode_shrink(req));
    }
    discard_result(result, /*wasted_work=*/true);
    try_dispatch(ctx);
    maybe_finish(ctx);
    return;
  }

  const int frame = result.frame;
  const PixelRect& region = result.payload.rect;
  assert(frame >= 0 && frame < static_cast<int>(frames_.size()));

  if (!result.payload.dense && (frame == 0 || frame == s.task.first_frame)) {
    // A task's first frame is always a dense key frame (fresh renderer, full
    // render): a sparse payload here references a predecessor this
    // assignment never rendered and can only be corruption that slipped past
    // the CRC. Drop it like a lost message; the gap machinery recovers.
    if (decode_failures_ != nullptr) decode_failures_->inc();
    if (ep_decode_failures_ != nullptr) ep_decode_failures_->inc();
    discard_result(result, /*wasted_work=*/true);
    return;
  }

  // Idempotent-commit gate: a (region, frame) already committed — by a
  // speculation partner or an overlapping reclaim — is acknowledged for the
  // sender's progress but applied nowhere. Both copies render identical
  // pixels (the coherence guarantee), so skipping the apply also keeps the
  // sender's later sparse results valid against frames_[frame - 1].
  const bool fresh =
      committed_rects_[frame].insert(rect_key(region)).second;
  s.next_expected = frame + 1;
  s.last_progress = ctx.now();
  s.ping_time = -1.0;
  if (!fresh) {
    if (spec_tasks_.count(result.task_id) > 0) {
      ++fault_report_.speculation_frames_wasted;
      fault_report_.speculation_wasted_seconds += result.compute_seconds;
    } else {
      discard_result(result, /*wasted_work=*/true);
    }
    if (s.next_expected >= s.end_frame) {
      const auto it = spec_partner_.find(result.task_id);
      if (it != spec_partner_.end()) {
        finish_speculation(ctx, result.task_id, it->second);
      }
    }
    maybe_finish(ctx);
    return;
  }

  // Sparse results carry only recomputed pixels; the rest of the region is
  // unchanged from the previous frame, which this worker already delivered.
  if (!result.payload.dense) {
    assert(frame > 0);
    frames_[frame].blit(region, frames_[frame - 1].extract(region));
  }
  apply_payload(&frames_[frame], result.payload);
  // The sink's journal digest runs over *decoded* pixels (the assembled
  // frame), never wire bytes, so raw and delta transports produce identical
  // journal records and a run may resume under either codec.
  sink_->commit_region(result.task_id, region, frame, frames_[frame]);

  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "frame.result", ctx.now(),
                            {{"worker", msg.source},
                             {"frame", frame},
                             {"full", result.full_render ? 1 : 0}});
  }
  note_commit(ctx, msg.source, result.task_id, result.trace_ctx, frame,
              result.render_seconds);
  ++report_.frame_results;
  report_.rays_total += result.rays;
  report_.shadow_rays_total += result.shadow_rays;
  report_.pixels_recomputed_total += result.pixels_recomputed;
  report_.full_renders += result.full_render ? 1 : 0;
  report_.worker_compute_seconds += result.compute_seconds;
  ++report_.frames_by_worker[msg.source];
  if (result.full_render && reassigned_tasks_.count(result.task_id) > 0) {
    // The coherence-restart price of recovery: the replacement's dense
    // first frame re-renders pixels the dead worker had already paid for.
    fault_report_.restart_work_seconds += result.compute_seconds;
  }

  frame_area_missing_[frame] -= region.area();
  area_frames_missing_ -= region.area();
  assert(frame_area_missing_[frame] >= 0);
  if (frame_area_missing_[frame] == 0) {
    ++report_.frames_completed;
    ctx.charge(config_.cost.master_frame_write_seconds);
    // The sink enforces write-ahead order: the frame file is atomically in
    // place (temp file + rename) before the record that declares it
    // durable, so a resume never trusts a frame that isn't wholly on disk.
    sink_->complete_frame(frame, frames_[frame]);
  }
  if (sink_->journaling() &&
      sink_->commits_since_checkpoint() >=
          std::max(1, config_.journal_checkpoint_every)) {
    write_checkpoint();
  }
  sync_journal_stats();

  if (s.next_expected >= s.end_frame) {
    const auto it = spec_partner_.find(result.task_id);
    if (it != spec_partner_.end()) {
      finish_speculation(ctx, result.task_id, it->second);
    }
  }
  maybe_finish(ctx);
}

void RenderMaster::release_pending_request(Context& ctx, int worker) {
  WorkerState& s = workers_[worker];
  if (!s.request_pending) return;
  // The parked kTagRequest finally has its digest chain complete: run the
  // idle transition it was waiting for.
  s.request_pending = false;
  s.active = false;
  s.cancelled = false;
  s.awaiting_ack = false;
  s.deferred_frames.clear();
  if (!s.queued) {
    s.queued = true;
    idle_.push_back(worker);
  }
  try_dispatch(ctx);
}

void RenderMaster::handle_commit_digest(Context& ctx, const Message& msg) {
  if (ep_digest_bytes_ != nullptr) {
    ep_digest_bytes_->inc(static_cast<std::int64_t>(msg.payload.size()));
  }
  CommitDigest d;
  if (!decode_commit_digest(&d, msg.payload)) {
    assert(false && "malformed commit digest from shard");
    return;
  }
  if (!shard_states_.empty()) {
    const int shard = msg.source - static_cast<int>(workers_.size());
    if (shard >= 0 && shard < static_cast<int>(shard_states_.size()) &&
        shard_states_[shard].dead) {
      // A declared-dead incarnation is still talking. Its commits were
      // rolled back here, so its digests mean nothing anymore — and its
      // in-memory chain state is poison for future results. Fence it: force
      // a rebuild from the journal segment, exactly once per death.
      ++fault_report_.results_ignored;
      if (!shard_states_[shard].reset_sent) {
        shard_states_[shard].reset_sent = true;
        ctx.send(msg.source, kTagShardReset, {});
      }
      return;
    }
  }
  // The digest vouches for a worker message the shard received: credit the
  // worker's heartbeat even though the bytes came from the shard's rank.
  const bool known_worker =
      d.worker >= 1 && d.worker < static_cast<int>(workers_.size());
  if (known_worker && !workers_[d.worker].dead) {
    workers_[d.worker].last_heard = ctx.now();
  }
  if (d.kind == CommitKind::kDecodeFail) {
    // The shard could not even decode the envelope, so there is no task to
    // tie the loss to. The sender's chain now has a gap; the shard rejects
    // everything after it and the reject digest (or the lease) reclaims.
    ++fault_report_.results_ignored;
    return;
  }

  // ---- Order-independent accounting ------------------------------------
  // Digest streams from different shards interleave arbitrarily, but a
  // fresh commit is authoritative no matter when its digest lands: the
  // shard validated the chain, so the pixels are correct by the coherence
  // guarantee. Commit totals, the committed-rect mirror, and the area
  // bookkeeping therefore apply immediately; only *worker progress* (which
  // drives leases, shrink targets, and reassignment) needs ordering.
  switch (d.kind) {
    case CommitKind::kFresh: {
      assert(d.frame >= 0 &&
             d.frame < static_cast<int>(frame_area_missing_.size()));
      committed_rects_[d.frame].insert(rect_key(d.rect));
      ++report_.frame_results;
      report_.rays_total += d.rays;
      report_.shadow_rays_total += d.shadow_rays;
      report_.pixels_recomputed_total += d.pixels_recomputed;
      report_.full_renders += d.full_render ? 1 : 0;
      report_.worker_compute_seconds += d.compute_seconds;
      if (known_worker) ++report_.frames_by_worker[d.worker];
      if (d.full_render && reassigned_tasks_.count(d.task_id) > 0) {
        fault_report_.restart_work_seconds += d.compute_seconds;
      }
      if (config_.tracer != nullptr) {
        config_.tracer->instant(ctx.rank(), "sched", "frame.digest", ctx.now(),
                                {{"worker", d.worker},
                                 {"frame", d.frame},
                                 {"full", d.full_render ? 1 : 0}});
      }
      note_commit(ctx, d.worker, d.task_id, d.trace_ctx, d.frame,
                  d.render_seconds);
      frame_area_missing_[d.frame] -= d.rect.area();
      area_frames_missing_ -= d.rect.area();
      assert(frame_area_missing_[d.frame] >= 0);
      if (frame_area_missing_[d.frame] == 0) ++report_.frames_completed;
      ++digests_since_checkpoint_;
      if (sink_->journaling() &&
          digests_since_checkpoint_ >=
              std::max(1, config_.journal_checkpoint_every)) {
        write_checkpoint();
      }
      sync_journal_stats();
      break;
    }
    case CommitKind::kDuplicate:
      // The shard's commit gate caught a (region, frame) already applied —
      // the speculation loser or an overlap from reclaim.
      if (spec_tasks_.count(d.task_id) > 0) {
        ++fault_report_.speculation_frames_wasted;
        fault_report_.speculation_wasted_seconds += d.compute_seconds;
      } else {
        ++fault_report_.results_ignored;
        fault_report_.lost_work_seconds += d.compute_seconds;
      }
      break;
    case CommitKind::kStale:
      // Redelivery behind the shard's chain: already accounted once.
      ++fault_report_.results_ignored;
      break;
    case CommitKind::kChainReject:
      ++fault_report_.results_ignored;
      fault_report_.lost_work_seconds += d.compute_seconds;
      break;
    case CommitKind::kDecodeFail:
      break;  // handled above
  }

  // ---- Worker progress (order-dependent) -------------------------------
  if (!known_worker) {
    maybe_finish(ctx);
    return;
  }
  WorkerState& s = workers_[d.worker];
  if (d.kind == CommitKind::kChainReject) {
    // The shard saw a gap (or an undecodable chain) in this worker's
    // stream: same recovery as the single master's gap branch — write the
    // task off, reclaim the remainder, tell the worker to stop.
    if (!s.dead && s.active && !s.cancelled && s.task.task_id == d.task_id &&
        cancelled_tasks_.count(d.task_id) == 0) {
      cancel_and_reclaim(ctx, d.worker);
      if (s.active && !s.awaiting_ack) {
        ShrinkRequest req;
        req.task_id = d.task_id;
        req.new_end_frame = s.next_expected;
        s.awaiting_ack = true;
        ctx.send(d.worker, kTagShrink, encode_shrink(req));
      }
      try_dispatch(ctx);
    }
    maybe_finish(ctx);
    return;
  }
  if (s.dead || cancelled_tasks_.count(d.task_id) > 0 || !s.active ||
      s.cancelled || s.task.task_id != d.task_id ||
      d.frame < s.next_expected) {
    // Progress for an assignment that no longer exists (or a frame the
    // chain already passed): the global accounting above was the whole
    // story.
    maybe_finish(ctx);
    return;
  }
  if (d.frame > s.next_expected) {
    if (config_.shards.shard_of(d.frame) ==
        config_.shards.shard_of(s.next_expected)) {
      // Gap within one shard's digest stream. Per-sender FIFO holds on the
      // worker→shard and shard→scheduler edges, so the missing frame was
      // genuinely lost: cancel and reclaim, as the single master would.
      cancel_and_reclaim(ctx, d.worker);
      if (s.active && !s.awaiting_ack) {
        ShrinkRequest req;
        req.task_id = d.task_id;
        req.new_end_frame = s.next_expected;
        s.awaiting_ack = true;
        ctx.send(d.worker, kTagShrink, encode_shrink(req));
      }
      try_dispatch(ctx);
      maybe_finish(ctx);
      return;
    }
    // Cross-shard reordering: a later-owned frame's digest overtook an
    // earlier shard's. Hold it; the chain drains it on catch-up.
    s.deferred_frames.insert(d.frame);
    maybe_finish(ctx);
    return;
  }
  // In-order progress: advance the chain and drain anything the reorder
  // buffer already holds.
  s.next_expected = d.frame + 1;
  s.last_progress = ctx.now();
  s.ping_time = -1.0;
  while (s.deferred_frames.count(s.next_expected) > 0) {
    s.deferred_frames.erase(s.next_expected);
    ++s.next_expected;
  }
  if (s.next_expected >= s.end_frame) {
    const auto it = spec_partner_.find(d.task_id);
    if (it != spec_partner_.end()) {
      finish_speculation(ctx, d.task_id, it->second);
    }
    release_pending_request(ctx, d.worker);
  }
  maybe_finish(ctx);
}

void RenderMaster::write_checkpoint() {
  if (sink_ == nullptr || !sink_->journaling()) return;
  CheckpointRecord cp;
  cp.completed.assign(frame_area_missing_.size(), false);
  for (std::size_t f = 0; f < frame_area_missing_.size(); ++f) {
    cp.completed[f] = frame_area_missing_[f] == 0;
  }
  for (const RenderTask& t : pending_) {
    CheckpointRecord::Task task;
    task.task_id = t.task_id;
    task.rect = t.region;
    task.first_frame = t.first_frame;
    task.frame_count = t.frame_count;
    cp.pending.push_back(task);
  }
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!s.active || s.cancelled || s.dead) continue;
    CheckpointRecord::WorkerView view;
    view.worker = w;
    view.task_id = s.task.task_id;
    view.rect = s.task.region;
    view.next_expected = s.next_expected;
    view.end_frame = s.end_frame;
    cp.in_flight.push_back(view);
  }
  // v2 trailer: enough to make a restarted scheduler byte-identical in its
  // decisions — fresh task ids never collide with pre-crash ones, and the
  // straggler EWMAs (which steer speculation victims) survive the restart.
  cp.next_task_id = next_task_id_;
  for (const StragglerDetector::Snapshot& s : straggler_.snapshot()) {
    CheckpointRecord::StragglerStat stat;
    stat.worker = s.worker;
    stat.ewma = s.ewma;
    stat.dev = s.dev;
    stat.n = s.n;
    stat.flagged = s.flagged;
    cp.stragglers.push_back(stat);
  }
  sink_->checkpoint(cp);
  digests_since_checkpoint_ = 0;
}

void RenderMaster::sync_journal_stats() {
  if (sink_ == nullptr || !sink_->journaling()) return;
  report_.journal_records = sink_->journal_records();
  report_.journal_bytes = sink_->journal_bytes();
  report_.journal_checkpoints = sink_->journal_checkpoints();
  report_.journal_ok = sink_->journal_ok();
}

void RenderMaster::cancel_and_reclaim(Context& ctx, int worker) {
  WorkerState& s = workers_[worker];
  if (!s.active || s.cancelled) return;
  s.cancelled = true;
  cancelled_tasks_.insert(s.task.task_id);
  // A cancelled half of a speculated pair just dissolves the pair: the
  // survivor keeps rendering, the reclaim below double-covers the range,
  // and the idempotent-commit gate keeps whichever copy lands first.
  const auto it = spec_partner_.find(s.task.task_id);
  if (it != spec_partner_.end()) {
    spec_partner_.erase(it->second);
    spec_partner_.erase(s.task.task_id);
  }
  if (s.end_frame > s.next_expected) {
    RenderTask reclaim;
    reclaim.task_id = next_task_id_++;
    reclaim.region = s.task.region;
    reclaim.first_frame = s.next_expected;
    reclaim.frame_count = s.end_frame - s.next_expected;
    reassigned_tasks_.insert(reclaim.task_id);
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "task.reclaim", ctx.now(),
                              {{"worker", worker},
                               {"task", reclaim.task_id},
                               {"first_frame", reclaim.first_frame},
                               {"frames", reclaim.frame_count}});
    }
    pending_.push_back(reclaim);
    ++fault_report_.tasks_reassigned;
    fault_report_.frames_reassigned += reclaim.frame_count;
  }
  // Digests for the written-off range are moot; a parked request completes
  // its idle transition now (every caller follows with try_dispatch, and a
  // rank declared dead right after this is skipped by the dispatch loop).
  s.deferred_frames.clear();
  if (s.request_pending) {
    s.request_pending = false;
    s.active = false;
    s.cancelled = false;
    s.awaiting_ack = false;
    if (!s.queued) {
      s.queued = true;
      idle_.push_back(worker);
    }
  }
  (void)ctx;
}

void RenderMaster::declare_dead(Context& ctx, int worker) {
  WorkerState& s = workers_[worker];
  if (s.dead) return;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "worker.dead", ctx.now(),
                            {{"worker", worker}});
  }
  ++fault_report_.deaths_detected;
  fault_report_.detection_latency_seconds += ctx.now() - s.last_heard;
  cancel_and_reclaim(ctx, worker);
  s.dead = true;
  s.active = false;
  s.awaiting_ack = false;
  bool any_alive = false;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    if (!workers_[w].dead) any_alive = true;
  }
  if (!any_alive && !stopping_) {
    // Nobody left to render the reclaimed work: stop with what we have
    // rather than waiting on leases that can never be renewed.
    stopping_ = true;
    ctx.stop();
    return;
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::handle_lease_check(Context& ctx, const Message& msg) {
  LeaseCheck check;
  const bool ok = decode_lease_check(&check, msg.payload);
  assert(ok);
  if (!ok || !config_.fault.enabled || stopping_) return;
  if (check.worker < 1 || check.worker >= static_cast<int>(workers_.size())) {
    return;
  }
  WorkerState& s = workers_[check.worker];
  // Stale check: the assignment it covered is gone or already written off.
  if (s.dead || !s.active || s.cancelled || s.task.task_id != check.task_id) {
    return;
  }

  const double now = ctx.now();
  // The lease demands *progress* (accepted frame results), not mere
  // liveness: a worker whose assignment was lost in transit answers pings
  // happily while rendering nothing, and a liveness lease would renew that
  // forever.
  const double expiry = s.last_progress + s.lease_seconds;
  if (now < expiry) {
    // Progress since this check was scheduled: renew.
    LeaseCheck renew = check;
    renew.phase = 0;
    s.ping_time = -1.0;
    ctx.send_after(expiry - now, kTagLeaseCheck, encode_lease_check(renew));
    return;
  }
  if (check.phase == 0 || s.ping_time < 0.0) {
    // Lease expired. One explicit ping, one grace period, then judgment.
    s.ping_time = now;
    ++fault_report_.pings_sent;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "lease.ping", now,
                              {{"worker", check.worker},
                               {"task", check.task_id}});
    }
    ctx.send(check.worker, kTagPing, {});
    LeaseCheck grace = check;
    grace.phase = 1;
    ctx.send_after(config_.fault.ping_grace_seconds, kTagLeaseCheck,
                   encode_lease_check(grace));
    return;
  }
  if (s.last_heard >= s.ping_time) {
    // Answered the ping but made no progress: alive but stuck. Write the
    // task off — it will be re-rendered from a dense restart — and tell the
    // worker to abandon any rendering it is silently doing. If it is truly
    // idle (the assignment itself was lost) it rejoins on its next request.
    cancel_and_reclaim(ctx, check.worker);
    if (!s.awaiting_ack) {
      ShrinkRequest req;
      req.task_id = check.task_id;
      req.new_end_frame = s.next_expected;
      s.awaiting_ack = true;
      ctx.send(check.worker, kTagShrink, encode_shrink(req));
    }
    try_dispatch(ctx);
    maybe_finish(ctx);
    return;
  }
  declare_dead(ctx, check.worker);
}

void RenderMaster::arm_shard_lease(Context& ctx, int shard, double delay,
                                   int phase) {
  LeaseCheck check;
  check.worker = shard;  // shard index, not a worker rank
  check.task_id = -1;
  check.phase = static_cast<std::uint8_t>(phase);
  ctx.send_after(delay, kTagShardCheck, encode_lease_check(check));
}

void RenderMaster::handle_shard_check(Context& ctx, const Message& msg) {
  LeaseCheck check;
  const bool ok = decode_lease_check(&check, msg.payload);
  assert(ok);
  if (!ok || stopping_ || shard_states_.empty()) return;
  const int shard = check.worker;
  if (shard < 0 || shard >= static_cast<int>(shard_states_.size())) return;
  ShardState& s = shard_states_[shard];
  if (s.dead) return;  // chain ends at death; re-admission restarts it

  const double now = ctx.now();
  // Liveness, not progress: a shard whose owned range is complete commits
  // nothing forever, so any message at all renews its lease.
  const double expiry = s.last_heard + config_.fault.lease_base_seconds;
  if (now < expiry) {
    s.ping_time = -1.0;
    arm_shard_lease(ctx, shard, expiry - now, 0);
    return;
  }
  if (check.phase == 0 || s.ping_time < 0.0) {
    s.ping_time = now;
    ++fault_report_.pings_sent;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(ctx.rank(), "sched", "shard.ping", now,
                              {{"shard", shard}});
    }
    ctx.send(static_cast<int>(workers_.size()) + shard, kTagPing, {});
    arm_shard_lease(ctx, shard, config_.fault.ping_grace_seconds, 1);
    return;
  }
  if (s.last_heard >= s.ping_time) {
    // Answered the ping: alive. Back to a normal lease.
    s.ping_time = -1.0;
    arm_shard_lease(ctx, shard, config_.fault.lease_base_seconds, 0);
    return;
  }
  declare_shard_dead(ctx, shard);
}

void RenderMaster::declare_shard_dead(Context& ctx, int shard) {
  ShardState& st = shard_states_[shard];
  if (st.dead) return;
  st.dead = true;
  st.reset_sent = false;
  st.ping_time = -1.0;
  ++fault_report_.shards_failed;
  fault_report_.detection_latency_seconds += ctx.now() - st.last_heard;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "shard.dead", ctx.now(),
                            {{"shard", shard}});
  }
  rollback_dead_shard(ctx, shard);
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::rollback_dead_shard(Context& ctx, int shard) {
  const auto range = config_.shards.range_of(shard);
  const std::int64_t full = std::int64_t{scene_.width()} * scene_.height();
  // Completed frames are durable (TGA renamed into place before the
  // kFrameComplete record, which precedes the digest that completed our
  // area count): the replacement reloads them from disk. Everything else
  // the shard held was memory, and memory is gone — the mirror's committed
  // cells for those frames revert to missing and come back as reclaim
  // tasks, one per (rect, contiguous frame run).
  std::map<std::uint64_t, std::pair<PixelRect, std::set<int>>> lost;
  std::int64_t rolled = 0;
  for (int f = range.first; f < range.second; ++f) {
    if (frame_area_missing_[f] == 0) continue;
    for (const std::uint64_t key : committed_rects_[f]) {
      auto& entry = lost[key];
      entry.first = rect_from_key(key);
      entry.second.insert(f);
      ++rolled;
    }
    area_frames_missing_ += full - frame_area_missing_[f];
    frame_area_missing_[f] = full;
    committed_rects_[f].clear();
  }
  fault_report_.shard_commits_rolled_back += rolled;
  enqueue_lost_cells(ctx, lost);
  // Workers mid-task on the dead range are rendering into the void: write
  // their tasks off now instead of waiting out progress leases that can
  // only expire.
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    WorkerState& s = workers_[w];
    if (s.dead || !s.active || s.cancelled) continue;
    if (s.next_expected < range.second && s.end_frame > range.first) {
      cancel_and_reclaim(ctx, w);
      if (s.active && !s.awaiting_ack) {
        ShrinkRequest req;
        req.task_id = s.task.task_id;
        req.new_end_frame = s.next_expected;
        s.awaiting_ack = true;
        ctx.send(w, kTagShrink, encode_shrink(req));
      }
    }
  }
}

void RenderMaster::enqueue_lost_cells(
    Context& ctx,
    const std::map<std::uint64_t, std::pair<PixelRect, std::set<int>>>&
        lost) {
  for (const auto& kv : lost) {
    const PixelRect& rect = kv.second.first;
    const std::set<int>& frames = kv.second.second;
    auto it = frames.begin();
    while (it != frames.end()) {
      const int first = *it;
      int last = first;
      auto run_end = it;
      ++run_end;
      while (run_end != frames.end() && *run_end == last + 1) {
        last = *run_end;
        ++run_end;
      }
      RenderTask reclaim;
      reclaim.task_id = next_task_id_++;
      reclaim.region = rect;
      reclaim.first_frame = first;
      reclaim.frame_count = last - first + 1;
      reassigned_tasks_.insert(reclaim.task_id);
      if (config_.tracer != nullptr) {
        config_.tracer->instant(ctx.rank(), "sched", "task.reclaim",
                                ctx.now(),
                                {{"task", reclaim.task_id},
                                 {"first_frame", reclaim.first_frame},
                                 {"frames", reclaim.frame_count}});
      }
      pending_.push_back(reclaim);
      ++fault_report_.tasks_reassigned;
      fault_report_.frames_reassigned += reclaim.frame_count;
      it = run_end;
    }
  }
}

bool RenderMaster::task_blocked_by_dead_shard(const RenderTask& task) const {
  if (shard_states_.empty()) return false;
  for (std::size_t i = 0; i < shard_states_.size(); ++i) {
    if (!shard_states_[i].dead) continue;
    const auto range = config_.shards.range_of(static_cast<int>(i));
    if (task.first_frame < range.second && task.end_frame() > range.first) {
      return true;
    }
  }
  return false;
}

void RenderMaster::handle_shard_hello(Context& ctx, int source) {
  if (shard_states_.empty()) return;  // liveness off: nothing to re-admit
  const int shard = source - static_cast<int>(workers_.size());
  if (shard < 0 || shard >= static_cast<int>(shard_states_.size())) return;
  ShardState& st = shard_states_[shard];
  const bool was_dead = st.dead;
  if (!was_dead) {
    // The shard restarted before its lease even expired (revival raced
    // detection). Its partial frames died with its memory all the same, so
    // the death rollback runs now — the mirror and the rebuilt shard agree
    // again before any new work dispatches.
    rollback_dead_shard(ctx, shard);
  }
  st.dead = false;
  st.reset_sent = false;
  st.ping_time = -1.0;
  st.last_heard = ctx.now();
  ++fault_report_.shards_rejoined;
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "shard.rejoin", ctx.now(),
                            {{"shard", shard}});
  }
  if (was_dead) {
    // Death ended the lease chain; re-admission restarts it. (A shard never
    // declared dead still has its chain running — don't stack a second.)
    arm_shard_lease(ctx, shard, config_.fault.lease_base_seconds, 0);
  }
  try_dispatch(ctx);
  maybe_finish(ctx);
}

void RenderMaster::restore_from_checkpoint(Context& ctx,
                                           const std::vector<char>& restored) {
  const RecoveryState& rec = *config_.recovery;
  const CheckpointRecord& ck = *rec.last_checkpoint;
  const int frames = scene_.frame_count();
  // Fresh ids start above everything the dead scheduler ever minted, so a
  // late journal record can never be confused with new work.
  if (ck.next_task_id > next_task_id_) next_task_id_ = ck.next_task_id;
  std::vector<StragglerDetector::Snapshot> snaps;
  for (const CheckpointRecord::StragglerStat& s : ck.stragglers) {
    StragglerDetector::Snapshot snap;
    snap.worker = s.worker;
    snap.ewma = s.ewma;
    snap.dev = s.dev;
    snap.n = s.n;
    snap.flagged = s.flagged;
    snaps.push_back(snap);
  }
  straggler_.restore(snaps);

  // What will cover each incomplete frame: checkpoint tasks (pending plus
  // in-flight remainders), trimmed around frames that completed after the
  // checkpoint, plus reclaims rebuilt from the journal's own commit records
  // — cells that were committed when the checkpoint was written lost their
  // pixels with the process and no table task covers them. Every rect
  // descends from the one partition tiling, so distinct rects never
  // partially overlap and a frame's covered area is the sum of its distinct
  // rect areas. A frame whose reconstruction falls short of the full image
  // (a shard's journal segment vanished, or was torn past what the
  // checkpoint had already seen) cannot be patched cell by cell: it
  // re-renders wholesale. Over-coverage is gated at commit; under-coverage
  // would hang the run one cell short of completion.
  const std::int64_t full_area =
      std::int64_t{scene_.width()} * scene_.height();
  std::vector<std::set<std::uint64_t>> cover(
      static_cast<std::size_t>(frames));
  const auto cover_range = [&](const PixelRect& rect, int first, int end) {
    const std::uint64_t key = rect_key(rect);
    for (int f = std::max(first, 0); f < std::min(end, frames); ++f) {
      if (!restored[f]) cover[f].insert(key);
    }
  };
  for (const CheckpointRecord::Task& t : ck.pending) {
    cover_range(t.rect, t.first_frame, t.first_frame + t.frame_count);
  }
  for (const CheckpointRecord::WorkerView& v : ck.in_flight) {
    cover_range(v.rect, v.next_expected, v.end_frame);
  }
  for (int f = 0; f < frames; ++f) {
    if (restored[f] || f >= static_cast<int>(rec.frame_commits.size())) {
      continue;
    }
    for (const RegionCommitRecord& c : rec.frame_commits[f]) {
      cover[f].insert(rect_key(c.rect));
    }
  }
  std::vector<char> wholesale(static_cast<std::size_t>(frames), 0);
  for (int f = 0; f < frames; ++f) {
    if (restored[f]) continue;
    std::int64_t area = 0;
    for (const std::uint64_t key : cover[f]) {
      area += rect_from_key(key).area();
    }
    if (area < full_area) wholesale[f] = 1;
  }

  int tasks_restored = 0;
  const auto enqueue_trimmed = [&](const PixelRect& rect, int first, int end,
                                   bool recovery_restart) {
    int f = std::max(first, 0);
    end = std::min(end, frames);
    while (f < end) {
      if (restored[f] || wholesale[f]) {
        ++f;
        continue;
      }
      int b = f;
      while (b < end && !restored[b] && !wholesale[b]) ++b;
      RenderTask task;
      task.task_id = next_task_id_++;
      task.region = rect;
      task.first_frame = f;
      task.frame_count = b - f;
      if (recovery_restart) reassigned_tasks_.insert(task.task_id);
      pending_.push_back(task);
      ++tasks_restored;
      f = b;
    }
  };
  for (const CheckpointRecord::Task& t : ck.pending) {
    enqueue_trimmed(t.rect, t.first_frame, t.first_frame + t.frame_count,
                    /*recovery_restart=*/false);
  }
  for (const CheckpointRecord::WorkerView& v : ck.in_flight) {
    enqueue_trimmed(v.rect, v.next_expected, v.end_frame,
                    /*recovery_restart=*/true);
  }
  std::map<std::uint64_t, std::pair<PixelRect, std::set<int>>> lost;
  for (int f = 0; f < frames; ++f) {
    if (restored[f] || wholesale[f] ||
        f >= static_cast<int>(rec.frame_commits.size())) {
      continue;
    }
    for (const RegionCommitRecord& c : rec.frame_commits[f]) {
      auto& entry = lost[rect_key(c.rect)];
      entry.first = c.rect;
      entry.second.insert(f);
    }
  }
  enqueue_lost_cells(ctx, lost);
  // Wholesale frames re-render as full-image tasks over contiguous runs;
  // their first frame is a dense coherence restart like any fresh task.
  PixelRect whole;
  whole.x0 = 0;
  whole.y0 = 0;
  whole.width = scene_.width();
  whole.height = scene_.height();
  int wf = 0;
  while (wf < frames) {
    if (!wholesale[wf]) {
      ++wf;
      continue;
    }
    int b = wf;
    while (b < frames && wholesale[b]) ++b;
    RenderTask task;
    task.task_id = next_task_id_++;
    task.region = whole;
    task.first_frame = wf;
    task.frame_count = b - wf;
    reassigned_tasks_.insert(task.task_id);
    pending_.push_back(task);
    ++tasks_restored;
    wf = b;
  }
  if (config_.tracer != nullptr) {
    config_.tracer->instant(ctx.rank(), "sched", "resume.checkpoint",
                            ctx.now(),
                            {{"tasks", tasks_restored},
                             {"next_task_id", next_task_id_}});
  }
}

void RenderMaster::handle_sample_tick(Context& ctx) {
  // A tick racing the shutdown broadcast is dropped and not re-armed; the
  // runtime abandons anything still queued once the scheduler stops.
  if (stopping_) return;
  ++report_.telemetry_samples;
  if (config_.sampler != nullptr && config_.metrics != nullptr) {
    config_.sampler->sample(ctx.now(), config_.metrics->snapshot());
  }
  if (config_.status != nullptr) {
    config_.status->publish(render_status_json(ctx));
  }
  ctx.send_after(config_.sample_interval_seconds, kTagSampleTick, {});
}

namespace {

void append_json_double(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("0");  // JSON cannot carry inf/nan
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

std::string RenderMaster::render_status_json(Context& ctx) const {
  std::string j = "{";
  j += "\"now\": ";
  append_json_double(&j, ctx.now());
  j += ", \"stopping\": ";
  j += stopping_ ? "true" : "false";
  j += ", \"pending_tasks\": " + std::to_string(pending_.size());
  j += ", \"frames_completed\": " + std::to_string(report_.frames_completed);
  j += ", \"frame_results\": " + std::to_string(report_.frame_results);
  j += ", \"straggler_flags\": " + std::to_string(report_.straggler_flags);
  j += ", \"telemetry_samples\": " + std::to_string(report_.telemetry_samples);
  j += ", \"throughput_fps\": ";
  append_json_double(&j, config_.sampler != nullptr
                             ? config_.sampler->rate_per_second(
                                   "sched.frames_committed")
                             : 0.0);
  j += ", \"workers\": [";
  bool first = true;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    const WorkerState& s = workers_[w];
    if (!first) j += ", ";
    first = false;
    const char* state = s.dead        ? "dead"
                        : !s.known    ? "unknown"
                        : s.cancelled ? "cancelled"
                        : s.active    ? "active"
                                      : "idle";
    j += "{\"rank\": " + std::to_string(w);
    j += ", \"state\": \"" + std::string(state) + "\"";
    j += ", \"task\": " + std::to_string(s.active ? s.task.task_id : -1);
    j += ", \"next_expected\": " + std::to_string(s.next_expected);
    j += ", \"end_frame\": " + std::to_string(s.end_frame);
    j += ", \"last_heard\": ";
    append_json_double(&j, s.last_heard);
    j += ", \"straggler\": ";
    j += straggler_.is_straggler(w) ? "true" : "false";
    j += "}";
  }
  j += "], \"stragglers\": [";
  first = true;
  for (const int w : straggler_.stragglers()) {
    if (!first) j += ", ";
    first = false;
    j += std::to_string(w);
  }
  j += "]";
  if (config_.shards.sharded()) {
    j += ", \"shards\": [";
    for (int i = 0; i < config_.shards.shard_count; ++i) {
      if (i > 0) j += ", ";
      const auto range = config_.shards.range_of(i);
      std::int64_t done = 0;
      for (int f = range.first; f < range.second; ++f) {
        if (frame_area_missing_[f] == 0) ++done;
      }
      j += "{\"shard\": " + std::to_string(i);
      j += ", \"rank\": " + std::to_string(config_.shards.rank_of_shard(i));
      j += ", \"first_frame\": " + std::to_string(range.first);
      j += ", \"end_frame\": " + std::to_string(range.second);
      j += ", \"frames_done\": " + std::to_string(done);
      j += ", \"dead\": ";
      j += (!shard_states_.empty() && shard_states_[i].dead) ? "true"
                                                             : "false";
      j += "}";
    }
    j += "]";
  }
  j += "}\n";
  return j;
}

void RenderMaster::note_commit(Context& ctx, int worker, std::int32_t task_id,
                               std::uint64_t trace_ctx, std::int32_t frame,
                               double render_seconds) {
  if (frames_committed_live_ != nullptr) frames_committed_live_->inc();
  if (config_.tracer != nullptr && trace_ctx != 0) {
    // Close the frame's flow chain: assignment → render → send → commit all
    // bind to this id, so the ack renders as one connected arc in the trace.
    config_.tracer->flow_end(
        ctx.rank(), trace_flow_id(trace_ctx, frame), ctx.now(),
        {{"worker", worker}, {"task", task_id}, {"frame", frame},
         {"step", 4}});
  }
  if (worker < 1 || worker >= static_cast<int>(workers_.size())) return;
  if (straggler_.observe(worker, render_seconds)) {
    ++report_.straggler_flags;
    if (stragglers_flagged_ != nullptr) stragglers_flagged_->inc();
    if (config_.tracer != nullptr) {
      config_.tracer->instant(
          ctx.rank(), "sched", "worker.straggler", ctx.now(),
          {{"worker", worker}, {"task", task_id}, {"frame", frame}});
    }
  }
}

void RenderMaster::maybe_finish(Context& ctx) {
  if (stopping_ || area_frames_missing_ != 0) return;
  // Every pixel is committed, so anything still pending (speculation
  // leftovers, reclaim overlap) is duplicate work by definition.
  while (!pending_.empty() && task_fully_committed(pending_.front())) {
    pending_.pop_front();
  }
  if (queue_depth_ != nullptr) {
    queue_depth_->set(static_cast<double>(pending_.size()));
  }
  if (!pending_.empty()) return;
  stopping_ = true;
  for (int w = 1; w < static_cast<int>(workers_.size()); ++w) {
    if (!workers_[w].dead) ctx.send(w, kTagStop, {});
  }
  if (config_.shards.sharded()) {
    for (int i = 0; i < config_.shards.shard_count; ++i) {
      ctx.send(config_.shards.rank_of_shard(i), kTagStop, {});
    }
  }
  ctx.stop();
}

}  // namespace now
