// Frame-payload codec: makes frame delivery proportional to *change*, not
// image size.
//
// The paper's cluster shares one 10 Mb/s Ethernet, so shipping every frame
// densely back to the master is the scaling ceiling. Frame coherence already
// tells the worker exactly which pixels changed; this codec layers on top:
//
//   * a cheap general byte compressor (RLE and byte-delta+RLE, with a
//     stored-raw fallback so the worst case is raw + a 5-byte header), and
//   * a versioned frame envelope tagging each payload as a key frame
//     (self-contained, where coherence restarts) or a delta frame (sparse
//     runs decoded against the master's committed predecessor), carrying a
//     CRC over the *decoded* payload bytes so corruption detection — and the
//     checkpoint journal's pixel digests — are unchanged by compression.
//
// Byte-level only: this layer never interprets pixels, so it sits in net/
// under the runtimes and above the framing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace now {

/// Frame transport selection (FarmConfig / --frame-codec).
///   kRaw   — legacy transport: payload bytes go on the wire stored
///            uncompressed (still inside the versioned envelope).
///   kDelta — payloads are value-diffed against the previous frame, and the
///            envelope body is compressed (best of RLE / delta+RLE / stored).
enum class FrameCodec {
  kRaw,
  kDelta,
};

const char* to_string(FrameCodec codec);
bool parse_frame_codec(const std::string& name, FrameCodec* out);

// -- general byte compressor ------------------------------------------------
//
// Output layout: u8 method, u32le raw_size, body.
//   method 0 — stored (body = input verbatim)
//   method 1 — RLE: control byte c < 128 → c+1 literal bytes follow;
//              c >= 129 → the next byte repeats c-126 times (3..129).
//   method 2 — byte-delta (d[i] = raw[i] - raw[i-1]) then RLE; smooth
//              gradients become long zero runs.
// compress_bytes picks the smallest encoding, so the worst case is
// raw + 5 bytes (stored).

/// Header bytes prepended to every compressed block.
inline constexpr std::size_t kCompressHeaderBytes = 5;

std::string compress_bytes(const std::string& raw);
/// Stored-only encoding (no compression scans): the kRaw fast path.
std::string store_bytes(const std::string& raw);
/// Strict inverse: validates the method tag, the declared size, and every
/// control byte; never reads out of bounds. False on malformed input.
bool decompress_bytes(std::string* raw, const char* packed, std::size_t len);
bool decompress_bytes(std::string* raw, const std::string& packed);

// -- versioned frame envelope -----------------------------------------------
//
// Layout: u8 version, u8 kind, u32le crc32(payload bytes), compressed body.
// The CRC covers the *decoded* payload (the pixel-structure bytes), so a
// receiver detects corruption after decompression exactly as it would have
// detected it on an uncompressed wire.

inline constexpr std::uint8_t kFramePayloadVersion = 1;
/// Self-contained frame: a dense payload that needs no predecessor. Every
/// task's first frame — fresh assignments, reclaims, speculative clones,
/// post-resume remainders — is a key frame, because the worker's coherence
/// state restarts there.
inline constexpr std::uint8_t kFrameKindKey = 0;
/// Sparse frame decoded against the master's committed predecessor frame of
/// the same task region.
inline constexpr std::uint8_t kFrameKindDelta = 1;

std::string encode_frame_payload(const std::string& payload_bytes,
                                 std::uint8_t kind, FrameCodec codec);
/// False on: short input, unknown version or kind, undecodable body, or a
/// CRC mismatch between the envelope and the decoded bytes.
bool decode_frame_payload(std::string* payload_bytes, std::uint8_t* kind,
                          const std::string& wire);

}  // namespace now
