// Message and wire-format primitives for the PVM-like message-passing layer.
//
// Payloads are endian-safe byte strings assembled with Writer and consumed
// with Reader (pack/unpack in PVM terms). Reader validates every access and
// never reads out of bounds — a malformed message yields a false return, not
// undefined behavior.
#pragma once

#include <cstdint>
#include <string>

namespace now {

struct Message {
  int source = -1;
  int tag = 0;
  std::string payload;
};

class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);

  std::string take() { return std::move(out_); }
  const std::string& data() const { return out_; }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(const std::string& bytes) : data_(bytes) {}

  bool u8(std::uint8_t* v);
  bool u32(std::uint32_t* v);
  bool u64(std::uint64_t* v);
  bool i32(std::int32_t* v);
  bool i64(std::int64_t* v);
  bool f64(double* v);
  bool str(std::string* s);

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace now
