// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320): the one checksum
// shared by the wire layer (TCP frame payload integrity) and the render
// journal (record framing and pixel digests). Table-driven, no dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace now {

/// CRC-32 of `len` bytes. Chain blocks by passing the previous return value
/// as `seed` (the seed of an independent checksum is 0).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

inline std::uint32_t crc32(const std::string& bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace now
