#include "src/net/tcp_runtime.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/net/crc32.h"
#include "src/net/thread_runtime.h"

namespace now {
namespace {

// Frames larger than this cannot be legitimate (the largest real payload is
// one dense frame of pixels); a bigger length means the stream desynced.
constexpr std::uint32_t kMaxFrameLength = 1u << 30;

// MSG_NOSIGNAL: a peer whose socket was severed (crash injection, real
// death) must surface as a failed write, not a SIGPIPE killing the process.
bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Reads exactly `size` bytes. A receive timeout (SO_RCVTIMEO) consults
// `keep_going` and keeps waiting while it allows — partial frames survive
// timeouts because the buffer position is preserved across retries. EOF or
// a hard error returns false immediately: a vanished peer is an error, not
// a hang.
bool read_all(int fd, void* data, std::size_t size,
              const std::function<bool()>& keep_going) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      if (keep_going && !keep_going()) return false;
      continue;
    }
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

struct FrameHeader {
  std::int32_t source;
  std::int32_t tag;
  std::uint32_t length;
  std::uint32_t crc;  // crc32 of the payload bytes
};

void set_receive_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

int make_listener(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *port = ntohs(addr.sin_port);
  return fd;
}

int connect_loopback(std::uint16_t port, const TcpOptions& options, int rank,
                     Counter* retries) {
  int last_errno = 0;
  for (int attempt = 0; attempt < std::max(1, options.connect_attempts);
       ++attempt) {
    if (attempt > 0) {
      if (retries != nullptr) retries->inc();
      std::this_thread::sleep_for(std::chrono::duration<double>(
          connect_backoff_seconds(options, rank, attempt - 1)));
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  throw std::runtime_error(std::string("connect failed after retries: ") +
                           std::strerror(last_errno));
}

/// kReorderMessage parking shared by every sender thread: at most one held
/// message per (src, dest) edge, released behind the edge's next send.
struct HeldFrames {
  std::mutex mu;
  std::map<std::pair<int, int>, Message> held;
};

class TcpContext final : public Context {
 public:
  TcpContext(int rank, int world_size, Mailbox* own_mailbox,
             std::vector<std::atomic<int>>* socket_of_rank,
             std::mutex* send_mu, std::atomic<bool>* stop_flag,
             std::vector<Mailbox>* all_mailboxes,
             std::atomic<std::int64_t>* messages,
             std::atomic<std::int64_t>* bytes,
             std::chrono::steady_clock::time_point epoch,
             FaultInjector* injector, TimerQueue* timers,
             const std::function<void(int)>* kill_rank, EventTracer* tracer,
             const std::vector<int>* endpoint_index,
             std::vector<std::atomic<int>>* peer_sockets, int num_endpoints,
             HeldFrames* held)
      : rank_(rank),
        world_size_(world_size),
        own_mailbox_(own_mailbox),
        socket_of_rank_(socket_of_rank),
        send_mu_(send_mu),
        stop_flag_(stop_flag),
        all_mailboxes_(all_mailboxes),
        messages_(messages),
        bytes_(bytes),
        epoch_(epoch),
        injector_(injector),
        timers_(timers),
        kill_rank_(kill_rank),
        tracer_(tracer),
        endpoint_index_(endpoint_index),
        peer_sockets_(peer_sockets),
        num_endpoints_(num_endpoints),
        held_(held) {}

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }

  void send(int dest, int tag, std::string payload) override {
    const double t = now();
    if (injector_ != nullptr && injector_->crashed(rank_, t)) {
      (*kill_rank_)(rank_);  // sever the socket the first time we notice
      return;
    }
    if (dest == rank_) {  // continuation self-send: stays local
      own_mailbox_->push(Message{rank_, tag, std::move(payload)});
      return;
    }
    assert((rank_ == 0 || dest == 0 ||
            (endpoint_index_ != nullptr && (*endpoint_index_)[dest] >= 0)) &&
           "star + endpoints: slaves talk to the master or a declared "
           "endpoint");
    int copies = 1;
    if (injector_ != nullptr) {
      const FaultInjector::SendFaults f =
          injector_->on_send(rank_, dest, tag, t);
      if (f.drop) {
        copies = 0;
      } else if (f.hold && held_ != nullptr) {
        // Reorder: park the frame; the edge's next send releases it below.
        std::lock_guard<std::mutex> lock(held_->mu);
        held_->held[{rank_, dest}] = Message{rank_, tag, std::move(payload)};
        copies = 0;
      } else if (f.duplicate) {
        copies = 2;
      }
    }
    if (copies > 0) {
      // Master: socket to `dest`. Worker → master: its own socket to the
      // master. Worker → endpoint: its dialed peer socket to that endpoint.
      // Table entries are atomic because a rejoin replaces them mid-run.
      int fd;
      if (rank_ == 0) {
        fd = (*socket_of_rank_)[dest].load(std::memory_order_acquire);
      } else if (dest == 0) {
        fd = (*socket_of_rank_)[rank_].load(std::memory_order_acquire);
      } else {
        const int ep = (*endpoint_index_)[dest];
        fd = (*peer_sockets_)[static_cast<std::size_t>(rank_) *
                                  static_cast<std::size_t>(num_endpoints_) +
                              static_cast<std::size_t>(ep)]
                 .load(std::memory_order_acquire);
      }
      // A parked reorder victim for this edge rides out right behind the
      // frame being sent, under the same writer lock so nothing interleaves.
      Message parked;
      bool have_parked = false;
      if (held_ != nullptr) {
        std::lock_guard<std::mutex> lock(held_->mu);
        const auto it = held_->held.find({rank_, dest});
        if (it != held_->held.end()) {
          parked = std::move(it->second);
          held_->held.erase(it);
          have_parked = true;
        }
      }
      messages_->fetch_add(copies + (have_parked ? 1 : 0),
                           std::memory_order_relaxed);
      bytes_->fetch_add(
          copies * static_cast<std::int64_t>(payload.size()) +
              (have_parked ? static_cast<std::int64_t>(parked.payload.size())
                           : 0),
          std::memory_order_relaxed);
      const Message msg{rank_, tag, std::move(payload)};
      const std::int64_t frame_bytes =
          static_cast<std::int64_t>(msg.payload.size());
      {
        // One writer lock per rank keeps frames from interleaving when the
        // master's handler and shutdown race. A failed write (severed peer)
        // is deliberately ignored: the lease protocol owns recovery.
        std::lock_guard<std::mutex> lock(*send_mu_);
        for (int c = 0; c < copies; ++c) tcp_write_message(fd, msg);
        if (have_parked) tcp_write_message(fd, parked);
      }
      if (tracer_ != nullptr) {
        // Duration = time spent in the locked write path (queueing behind
        // the lock + kernel copy), measured on the sender's timeline.
        tracer_->complete(rank_, "net", "net.send", t, now() - t,
                          {{"dest", dest}, {"tag", tag},
                           {"bytes", frame_bytes}});
      }
    }
    // An after_frames crash triggers on the send that delivered the N-th
    // frame result: that message goes out, then the rank dies.
    if (injector_ != nullptr && injector_->crashed(rank_, t)) {
      (*kill_rank_)(rank_);
    }
  }

  void send_after(double delay_seconds, int tag, std::string payload) override {
    timers_->schedule(delay_seconds, rank_,
                      Message{rank_, tag, std::move(payload)});
  }

  void charge(double) override {}

  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void stop() override {
    stop_flag_->store(true, std::memory_order_release);
    for (auto& mb : *all_mailboxes_) mb.shutdown();
  }

 private:
  int rank_;
  int world_size_;
  Mailbox* own_mailbox_;
  std::vector<std::atomic<int>>* socket_of_rank_;
  std::mutex* send_mu_;
  std::atomic<bool>* stop_flag_;
  std::vector<Mailbox>* all_mailboxes_;
  std::atomic<std::int64_t>* messages_;
  std::atomic<std::int64_t>* bytes_;
  std::chrono::steady_clock::time_point epoch_;
  FaultInjector* injector_;
  TimerQueue* timers_;
  const std::function<void(int)>* kill_rank_;
  EventTracer* tracer_;
  const std::vector<int>* endpoint_index_;       // rank → endpoint slot or -1
  std::vector<std::atomic<int>>* peer_sockets_;  // [rank * E + slot] → fd
  int num_endpoints_;
  HeldFrames* held_;
};

}  // namespace

double connect_backoff_seconds(const TcpOptions& options, int rank,
                               int attempt) {
  double delay = options.connect_backoff_base_seconds *
                 std::ldexp(1.0, std::min(attempt, 30));
  delay = std::min(delay, options.connect_backoff_max_seconds);
  // splitmix64-style hash of (rank, attempt) → jitter factor in [0.5, 1):
  // deterministic (same schedule every run) but decorrelated across ranks.
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         rank))
                     << 32) ^
                    static_cast<std::uint32_t>(attempt) ^
                    0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  const double unit =
      static_cast<double>(x >> 11) / 9007199254740992.0;  // [0, 1)
  return delay * (0.5 + 0.5 * unit);
}

std::string tcp_encode_frame(const Message& msg) {
  FrameHeader header{msg.source, msg.tag,
                     static_cast<std::uint32_t>(msg.payload.size()),
                     crc32(msg.payload.data(), msg.payload.size())};
  std::string out(reinterpret_cast<const char*>(&header), sizeof(header));
  out += msg.payload;
  return out;
}

bool tcp_write_message(int fd, const Message& msg) {
  const std::string frame = tcp_encode_frame(msg);
  return write_all(fd, frame.data(), frame.size());
}

TcpReadStatus tcp_read_frame(int fd, Message* msg,
                             const std::function<bool()>& keep_going) {
  FrameHeader header;
  if (!read_all(fd, &header, sizeof(header), keep_going)) {
    return TcpReadStatus::kClosed;
  }
  if (header.length > kMaxFrameLength) return TcpReadStatus::kClosed;
  msg->source = header.source;
  msg->tag = header.tag;
  msg->payload.resize(header.length);
  if (header.length != 0 &&
      !read_all(fd, msg->payload.data(), header.length, keep_going)) {
    return TcpReadStatus::kClosed;
  }
  if (crc32(msg->payload.data(), msg->payload.size()) != header.crc) {
    // The frame structure was intact (we consumed exactly `length` bytes,
    // the stream stays aligned) but the payload was damaged in flight:
    // surface it as corruption so the caller can count and drop it.
    return TcpReadStatus::kCorrupt;
  }
  return TcpReadStatus::kOk;
}

bool tcp_read_message(int fd, Message* msg,
                      const std::function<bool()>& keep_going) {
  for (;;) {
    switch (tcp_read_frame(fd, msg, keep_going)) {
      case TcpReadStatus::kOk: return true;
      case TcpReadStatus::kClosed: return false;
      case TcpReadStatus::kCorrupt: continue;  // dropped message
    }
  }
}

bool tcp_read_message(int fd, Message* msg) {
  return tcp_read_message(fd, msg, nullptr);
}

RuntimeStats TcpRuntime::run(const std::vector<Actor*>& actors) {
  const int n = static_cast<int>(actors.size());
  assert(n >= 1);

  std::uint16_t port = 0;
  const int listener = make_listener(&port);
  // The accept loop must notice shutdown (and keep the listener open for
  // mid-run rejoins), so it wakes on the same timeout as the data sockets.
  set_receive_timeout(listener, options_.receive_timeout_seconds);

  // Extra endpoints (framebuffer shards): each gets its own listener that
  // every non-endpoint worker dials, so pixel traffic bypasses rank 0.
  const int num_endpoints = static_cast<int>(options_.extra_endpoints.size());
  std::vector<int> endpoint_index(static_cast<std::size_t>(n), -1);
  for (int e = 0; e < num_endpoints; ++e) {
    const int rank = options_.extra_endpoints[static_cast<std::size_t>(e)];
    if (rank < 1 || rank >= n || endpoint_index[rank] >= 0) {
      ::close(listener);
      throw std::invalid_argument(
          "TcpOptions::extra_endpoints must name distinct non-zero ranks");
    }
    endpoint_index[rank] = e;
  }
  std::vector<int> endpoint_listeners(static_cast<std::size_t>(num_endpoints),
                                      -1);
  std::vector<std::uint16_t> endpoint_ports(
      static_cast<std::size_t>(num_endpoints), 0);
  for (int e = 0; e < num_endpoints; ++e) {
    endpoint_listeners[e] = make_listener(&endpoint_ports[e]);
    set_receive_timeout(endpoint_listeners[e],
                        options_.receive_timeout_seconds);
  }
  // Ranks that dial the endpoints: every non-zero rank that is not itself an
  // endpoint (endpoints never message each other, and rank 0 reaches them
  // over the star like any other dialed-in rank).
  int num_dialers = 0;
  for (int r = 1; r < n; ++r) {
    if (endpoint_index[r] < 0) ++num_dialers;
  }

  // Socket tables, atomic because a rejoin swaps entries mid-run:
  // master_sockets[w] = master's socket to worker w; worker_sockets[w] =
  // worker w's socket to the master.
  std::vector<std::atomic<int>> master_sockets(static_cast<std::size_t>(n));
  std::vector<std::atomic<int>> worker_sockets(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    master_sockets[i].store(-1);
    worker_sockets[i].store(-1);
  }
  // peer_sockets[w * E + e] = worker w's dialed socket to endpoint slot e;
  // endpoint_accept_fds[e * n + w] = endpoint e's accepted socket from w.
  // Both sides are tracked so a crash can sever the full duplex pair.
  std::vector<std::atomic<int>> peer_sockets(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(num_endpoints));
  std::vector<std::atomic<int>> endpoint_accept_fds(
      static_cast<std::size_t>(num_endpoints) * static_cast<std::size_t>(n));
  for (auto& s : peer_sockets) s.store(-1);
  for (auto& s : endpoint_accept_fds) s.store(-1);
  // Sockets replaced by a rejoin are parked here and closed at shutdown —
  // their reader pumps may still hold the fd until they notice the close.
  std::mutex retired_mu;
  std::vector<int> retired_fds;
  const auto retire_fd = [&](int fd) {
    if (fd < 0) return;
    std::lock_guard<std::mutex> lock(retired_mu);
    retired_fds.push_back(fd);
  };

  std::vector<Mailbox> mailboxes(n);
  std::atomic<bool> stop_flag{false};
  std::atomic<std::int64_t> messages{0};
  std::atomic<std::int64_t> bytes{0};
  const auto epoch = std::chrono::steady_clock::now();
  const auto wall_now = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };

  EventTracer* tracer = obs_.tracer;
  if (tracer != nullptr && !tracer->enabled()) tracer = nullptr;
  Counter* corrupt_frames =
      obs_.metrics != nullptr ? &obs_.metrics->counter("net.corrupt_frames")
                              : nullptr;
  Counter* connect_retries =
      obs_.metrics != nullptr ? &obs_.metrics->counter("net.connect_retries")
                              : nullptr;

  std::unique_ptr<FaultInjector> injector;
  if (!plan_.empty()) {
    injector = std::make_unique<FaultInjector>(plan_, n, tracer);
  }

  // Crash realization: sever both ends of the rank's connection. The
  // per-rank membership mutex serializes this against a rejoin replacing the
  // sockets — a stale kill (observed the crash just before the revive) must
  // not sever the fresh connection, hence the crashed() re-check under the
  // lock.
  std::vector<std::mutex> membership_mus(static_cast<std::size_t>(n));
  std::vector<std::atomic<bool>> rank_killed(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rank_killed[i].store(false);
  const std::function<void(int)> kill_rank = [&](int rank) {
    if (rank < 1 || rank >= n) return;
    std::lock_guard<std::mutex> lock(membership_mus[rank]);
    if (injector != nullptr && !injector->crashed(rank, wall_now())) return;
    if (rank_killed[rank].exchange(true)) return;
    ::shutdown(master_sockets[rank].load(), SHUT_RDWR);
    ::shutdown(worker_sockets[rank].load(), SHUT_RDWR);
    // A dead worker's endpoint connections die with it: sever its dialed
    // peer sockets and the endpoint-side accepted ends.
    for (int e = 0; e < num_endpoints; ++e) {
      ::shutdown(peer_sockets[static_cast<std::size_t>(rank) *
                                  static_cast<std::size_t>(num_endpoints) +
                              static_cast<std::size_t>(e)]
                     .load(),
                 SHUT_RDWR);
      ::shutdown(endpoint_accept_fds[static_cast<std::size_t>(e) *
                                         static_cast<std::size_t>(n) +
                                     static_cast<std::size_t>(rank)]
                     .load(),
                 SHUT_RDWR);
    }
  };

  // Reader pumps are spawned at startup AND mid-run (rejoins, late
  // accepts); the vector is locked for spawning and joined after every
  // spawner has stopped.
  std::mutex readers_mu;
  std::vector<std::thread> readers;
  TimerQueue* timers_ptr = nullptr;  // set right after construction below

  // Pump for one master-side connection to worker w: reads w's frames into
  // the master's mailbox until the socket dies.
  const auto spawn_master_pump = [&](int w, int fd) {
    std::lock_guard<std::mutex> lock(readers_mu);
    readers.emplace_back([&, w, fd] {
      const auto keep_going = [&] {
        if (injector != nullptr && injector->crashed(w, wall_now())) {
          kill_rank(w);
          return false;
        }
        return !stop_flag.load(std::memory_order_acquire);
      };
      Message msg;
      for (;;) {
        const TcpReadStatus st = tcp_read_frame(fd, &msg, keep_going);
        if (st == TcpReadStatus::kClosed) break;
        if (st == TcpReadStatus::kCorrupt) {
          if (corrupt_frames != nullptr) corrupt_frames->inc();
          continue;  // CRC mismatch == dropped message
        }
        const double delay =
            injector != nullptr ? injector->delivery_delay(0, wall_now()) : 0.0;
        if (delay > 0.0) {
          timers_ptr->schedule(delay, 0, std::move(msg));
        } else {
          mailboxes[0].push(std::move(msg));
        }
      }
    });
  };
  // Pump for worker w's own connection: reads the master's frames into w's
  // mailbox.
  const auto spawn_worker_pump = [&](int w, int fd) {
    std::lock_guard<std::mutex> lock(readers_mu);
    readers.emplace_back([&, w, fd] {
      const auto keep_going = [&] {
        if (injector != nullptr && injector->crashed(w, wall_now())) {
          kill_rank(w);
          return false;
        }
        return !stop_flag.load(std::memory_order_acquire);
      };
      Message msg;
      for (;;) {
        const TcpReadStatus st = tcp_read_frame(fd, &msg, keep_going);
        if (st == TcpReadStatus::kClosed) break;
        if (st == TcpReadStatus::kCorrupt) {
          if (corrupt_frames != nullptr) corrupt_frames->inc();
          continue;
        }
        if (injector != nullptr && injector->crashed(w, wall_now())) {
          kill_rank(w);
          break;
        }
        const double delay =
            injector != nullptr ? injector->delivery_delay(w, wall_now()) : 0.0;
        if (delay > 0.0) {
          timers_ptr->schedule(delay, w, std::move(msg));
        } else {
          mailboxes[w].push(std::move(msg));
        }
      }
    });
  };
  // Pump for one endpoint-side accepted connection from worker w: reads w's
  // frames into endpoint rank e's mailbox until the socket dies.
  const auto spawn_endpoint_pump = [&](int e, int w, int fd) {
    std::lock_guard<std::mutex> lock(readers_mu);
    readers.emplace_back([&, e, w, fd] {
      const auto keep_going = [&] {
        if (injector != nullptr && injector->crashed(w, wall_now())) {
          kill_rank(w);
          return false;
        }
        return !stop_flag.load(std::memory_order_acquire);
      };
      Message msg;
      for (;;) {
        const TcpReadStatus st = tcp_read_frame(fd, &msg, keep_going);
        if (st == TcpReadStatus::kClosed) break;
        if (st == TcpReadStatus::kCorrupt) {
          if (corrupt_frames != nullptr) corrupt_frames->inc();
          continue;
        }
        const double delay =
            injector != nullptr ? injector->delivery_delay(e, wall_now()) : 0.0;
        if (delay > 0.0) {
          timers_ptr->schedule(delay, e, std::move(msg));
        } else {
          mailboxes[e].push(std::move(msg));
        }
      }
    });
  };

  // A rejoining worker dials a brand-new connection (its old one was
  // severed at crash time), re-handshakes its rank — the accept loop
  // installs the master side — and is marked alive again. With endpoints it
  // also re-dials every endpoint listener, replacing its peer sockets. Runs
  // on the timer thread when the kRejoin event fires.
  const auto rejoin_rank = [&](int rank) -> bool {
    std::unique_lock<std::mutex> lock(membership_mus[rank]);
    injector->revive(rank, wall_now());
    int fd = -1;
    try {
      fd = connect_loopback(port, options_, rank, connect_retries);
    } catch (const std::runtime_error&) {
      return false;  // listener gone: the run is already shutting down
    }
    const std::int32_t r = rank;
    if (!write_all(fd, &r, sizeof(r))) {
      ::close(fd);
      return false;
    }
    set_receive_timeout(fd, options_.receive_timeout_seconds);
    if (endpoint_index[rank] < 0) {
      for (int e = 0; e < num_endpoints; ++e) {
        int pfd = -1;
        try {
          pfd = connect_loopback(endpoint_ports[e], options_, rank,
                                 connect_retries);
        } catch (const std::runtime_error&) {
          ::close(fd);
          return false;  // endpoint listener gone: shutdown in progress
        }
        if (!write_all(pfd, &r, sizeof(r))) {
          ::close(pfd);
          ::close(fd);
          return false;
        }
        retire_fd(peer_sockets[static_cast<std::size_t>(rank) *
                                   static_cast<std::size_t>(num_endpoints) +
                               static_cast<std::size_t>(e)]
                      .exchange(pfd));
      }
    }
    retire_fd(worker_sockets[rank].exchange(fd));
    rank_killed[rank].store(false);
    lock.unlock();
    spawn_worker_pump(rank, fd);
    return true;
  };

  TimerQueue timers([&](int dest, Message msg) {
    if (dest < 0 || dest >= n) return;
    if (injector != nullptr && plan_.rejoin_tag >= 0 &&
        msg.tag == plan_.rejoin_tag && msg.source == dest) {
      // Reconnect first so the worker's re-Hello has a live socket to ride.
      if (rejoin_rank(dest)) mailboxes[dest].push(std::move(msg));
      return;
    }
    if (injector != nullptr && injector->crashed(dest, wall_now())) return;
    mailboxes[dest].push(std::move(msg));
  });
  timers_ptr = &timers;
  if (injector != nullptr && plan_.rejoin_tag >= 0) {
    for (const FaultEvent& e : plan_.events) {
      if (e.kind != FaultKind::kRejoin || e.at_time < 0.0) continue;
      timers.schedule(e.at_time, e.rank, Message{e.rank, plan_.rejoin_tag, {}});
    }
    // Relative rejoins (after_crash_seconds) are resolved by the injector
    // the moment the crash fires and handed to us here to ride the timer.
    injector->set_rejoin_hook([&](int rank, double at) {
      timers.schedule(std::max(0.0, at - wall_now()), rank,
                      Message{rank, plan_.rejoin_tag, {}});
    });
  }

  // Persistent accept loop: initial connections and mid-run rejoins both
  // land here. Each accepted socket handshakes its rank, replaces the
  // rank's master-side slot, and gets its own reader pump.
  std::atomic<int> accepted_initial{0};
  std::thread acceptor([&] {
    while (!stop_flag.load(std::memory_order_acquire)) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;  // timeout tick: re-check stop
        }
        break;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::int32_t rank = -1;
      if (!read_all(fd, &rank, sizeof(rank), nullptr) || rank < 1 ||
          rank >= n) {
        ::close(fd);
        continue;
      }
      set_receive_timeout(fd, options_.receive_timeout_seconds);
      retire_fd(master_sockets[rank].exchange(fd));
      spawn_master_pump(rank, fd);
      accepted_initial.fetch_add(1, std::memory_order_release);
    }
  });

  // One persistent accept loop per endpoint: initial worker dials and
  // post-rejoin re-dials both land here. Same handshake as rank 0's loop.
  std::vector<std::atomic<int>> endpoint_accepted(
      static_cast<std::size_t>(num_endpoints));
  for (auto& c : endpoint_accepted) c.store(0);
  std::vector<std::thread> endpoint_acceptors;
  for (int e = 0; e < num_endpoints; ++e) {
    endpoint_acceptors.emplace_back([&, e] {
      const int lfd = endpoint_listeners[e];
      while (!stop_flag.load(std::memory_order_acquire)) {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
            continue;  // timeout tick: re-check stop
          }
          break;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::int32_t rank = -1;
        if (!read_all(fd, &rank, sizeof(rank), nullptr) || rank < 1 ||
            rank >= n || endpoint_index[rank] >= 0) {
          ::close(fd);
          continue;
        }
        set_receive_timeout(fd, options_.receive_timeout_seconds);
        retire_fd(endpoint_accept_fds[static_cast<std::size_t>(e) *
                                          static_cast<std::size_t>(n) +
                                      static_cast<std::size_t>(rank)]
                      .exchange(fd));
        spawn_endpoint_pump(options_.extra_endpoints[e], rank, fd);
        endpoint_accepted[e].fetch_add(1, std::memory_order_release);
      }
    });
  }

  // Workers connect and announce their rank before their actor threads
  // start (a worker's first act is a Hello through its socket). Non-endpoint
  // workers additionally dial every endpoint listener.
  std::vector<std::thread> connectors;
  for (int rank = 1; rank < n; ++rank) {
    connectors.emplace_back([&, rank] {
      const int fd = connect_loopback(port, options_, rank, connect_retries);
      const std::int32_t r = rank;
      write_all(fd, &r, sizeof(r));
      set_receive_timeout(fd, options_.receive_timeout_seconds);
      worker_sockets[rank].store(fd, std::memory_order_release);
      spawn_worker_pump(rank, fd);
      if (endpoint_index[rank] < 0) {
        for (int e = 0; e < num_endpoints; ++e) {
          const int pfd =
              connect_loopback(endpoint_ports[e], options_, rank,
                               connect_retries);
          write_all(pfd, &r, sizeof(r));
          peer_sockets[static_cast<std::size_t>(rank) *
                           static_cast<std::size_t>(num_endpoints) +
                       static_cast<std::size_t>(e)]
              .store(pfd, std::memory_order_release);
        }
      }
    });
  }
  for (auto& t : connectors) t.join();
  // Wait for the receiving side of every initial connection: the first
  // send over any link must not race its handshake.
  while (accepted_initial.load(std::memory_order_acquire) < n - 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int e = 0; e < num_endpoints; ++e) {
    while (endpoint_accepted[e].load(std::memory_order_acquire) <
           num_dialers) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::vector<std::mutex> send_mus(n);
  HeldFrames held;
  std::vector<std::thread> threads;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      std::vector<std::atomic<int>>& table =
          rank == 0 ? master_sockets : worker_sockets;
      TcpContext ctx(rank, n, &mailboxes[rank], &table, &send_mus[rank],
                     &stop_flag, &mailboxes, &messages, &bytes, epoch,
                     injector.get(), &timers, &kill_rank, tracer,
                     &endpoint_index, &peer_sockets, num_endpoints, &held);
      actors[rank]->on_start(ctx);
      Message msg;
      while (mailboxes[rank].pop(&msg)) {
        if (injector != nullptr && injector->crashed(rank, ctx.now())) continue;
        if (tracer != nullptr && msg.source != rank) {
          tracer->instant(
              rank, "net", "net.recv", ctx.now(),
              {{"src", msg.source},
               {"tag", msg.tag},
               {"bytes", static_cast<std::int64_t>(msg.payload.size())}});
        }
        actors[rank]->on_message(ctx, msg);
      }
      actors[rank]->on_shutdown(ctx);
    });
  }
  for (auto& t : threads) t.join();
  timers.shutdown();
  stop_flag.store(true, std::memory_order_release);
  acceptor.join();
  ::close(listener);
  for (auto& t : endpoint_acceptors) t.join();
  for (const int lfd : endpoint_listeners) ::close(lfd);

  // Sever the live sockets to unblock the reader pumps, then join and close
  // everything (including connections retired by rejoins).
  for (int w = 1; w < n; ++w) {
    ::shutdown(master_sockets[w].load(), SHUT_RDWR);
    ::shutdown(worker_sockets[w].load(), SHUT_RDWR);
  }
  for (auto& s : peer_sockets) ::shutdown(s.load(), SHUT_RDWR);
  for (auto& s : endpoint_accept_fds) ::shutdown(s.load(), SHUT_RDWR);
  {
    // No spawner is alive (timers, acceptors all joined above), so the
    // vector is stable now.
    std::lock_guard<std::mutex> lock(readers_mu);
    for (auto& t : readers) t.join();
  }
  for (int w = 1; w < n; ++w) {
    if (master_sockets[w].load() >= 0) ::close(master_sockets[w].load());
    if (worker_sockets[w].load() >= 0) ::close(worker_sockets[w].load());
  }
  for (auto& s : peer_sockets) {
    if (s.load() >= 0) ::close(s.load());
  }
  for (auto& s : endpoint_accept_fds) {
    if (s.load() >= 0) ::close(s.load());
  }
  for (const int fd : retired_fds) ::close(fd);

  RuntimeStats stats;
  stats.elapsed_seconds = wall_now();
  stats.messages = messages.load();
  stats.bytes = bytes.load();
  if (injector != nullptr) injector->export_metrics(obs_.metrics);
  return stats;
}

}  // namespace now
