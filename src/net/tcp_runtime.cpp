#include "src/net/tcp_runtime.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/net/thread_runtime.h"

namespace now {
namespace {

// MSG_NOSIGNAL: a peer whose socket was severed (crash injection, real
// death) must surface as a failed write, not a SIGPIPE killing the process.
bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Reads exactly `size` bytes. A receive timeout (SO_RCVTIMEO) consults
// `keep_going` and keeps waiting while it allows — partial frames survive
// timeouts because the buffer position is preserved across retries. EOF or
// a hard error returns false immediately: a vanished peer is an error, not
// a hang.
bool read_all(int fd, void* data, std::size_t size,
              const std::function<bool()>& keep_going) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      if (keep_going && !keep_going()) return false;
      continue;
    }
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

struct FrameHeader {
  std::int32_t source;
  std::int32_t tag;
  std::uint32_t length;
};

void set_receive_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

int make_listener(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *port = ntohs(addr.sin_port);
  return fd;
}

int connect_loopback(std::uint16_t port, const TcpOptions& options) {
  int last_errno = 0;
  for (int attempt = 0; attempt < std::max(1, options.connect_attempts);
       ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    last_errno = errno;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options.connect_retry_delay_seconds));
  }
  throw std::runtime_error(std::string("connect failed after retries: ") +
                           std::strerror(last_errno));
}

class TcpContext final : public Context {
 public:
  TcpContext(int rank, int world_size, Mailbox* own_mailbox,
             std::vector<int>* socket_of_rank, std::mutex* send_mu,
             std::atomic<bool>* stop_flag,
             std::vector<Mailbox>* all_mailboxes,
             std::atomic<std::int64_t>* messages,
             std::atomic<std::int64_t>* bytes,
             std::chrono::steady_clock::time_point epoch,
             FaultInjector* injector, TimerQueue* timers,
             const std::function<void(int)>* kill_rank, EventTracer* tracer)
      : rank_(rank),
        world_size_(world_size),
        own_mailbox_(own_mailbox),
        socket_of_rank_(socket_of_rank),
        send_mu_(send_mu),
        stop_flag_(stop_flag),
        all_mailboxes_(all_mailboxes),
        messages_(messages),
        bytes_(bytes),
        epoch_(epoch),
        injector_(injector),
        timers_(timers),
        kill_rank_(kill_rank),
        tracer_(tracer) {}

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }

  void send(int dest, int tag, std::string payload) override {
    const double t = now();
    if (injector_ != nullptr && injector_->crashed(rank_, t)) {
      (*kill_rank_)(rank_);  // sever the socket the first time we notice
      return;
    }
    if (dest == rank_) {  // continuation self-send: stays local
      own_mailbox_->push(Message{rank_, tag, std::move(payload)});
      return;
    }
    assert((rank_ == 0 || dest == 0) &&
           "star topology: slaves only talk to the master");
    int copies = 1;
    if (injector_ != nullptr) {
      const FaultInjector::SendFaults f =
          injector_->on_send(rank_, dest, tag, t);
      if (!f.drop) {
        if (f.duplicate) copies = 2;
      } else {
        copies = 0;
      }
    }
    if (copies > 0) {
      messages_->fetch_add(copies, std::memory_order_relaxed);
      bytes_->fetch_add(copies * static_cast<std::int64_t>(payload.size()),
                        std::memory_order_relaxed);
      // Master: socket to `dest`. Worker: its own socket to the master.
      const int fd =
          rank_ == 0 ? (*socket_of_rank_)[dest] : (*socket_of_rank_)[rank_];
      const Message msg{rank_, tag, std::move(payload)};
      const std::int64_t frame_bytes =
          static_cast<std::int64_t>(msg.payload.size());
      {
        // One writer lock per rank keeps frames from interleaving when the
        // master's handler and shutdown race. A failed write (severed peer)
        // is deliberately ignored: the lease protocol owns recovery.
        std::lock_guard<std::mutex> lock(*send_mu_);
        for (int c = 0; c < copies; ++c) tcp_write_message(fd, msg);
      }
      if (tracer_ != nullptr) {
        // Duration = time spent in the locked write path (queueing behind
        // the lock + kernel copy), measured on the sender's timeline.
        tracer_->complete(rank_, "net", "net.send", t, now() - t,
                          {{"dest", dest}, {"tag", tag},
                           {"bytes", frame_bytes}});
      }
    }
    // An after_frames crash triggers on the send that delivered the N-th
    // frame result: that message goes out, then the rank dies.
    if (injector_ != nullptr && injector_->crashed(rank_, t)) {
      (*kill_rank_)(rank_);
    }
  }

  void send_after(double delay_seconds, int tag, std::string payload) override {
    timers_->schedule(delay_seconds, rank_,
                      Message{rank_, tag, std::move(payload)});
  }

  void charge(double) override {}

  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void stop() override {
    stop_flag_->store(true, std::memory_order_release);
    for (auto& mb : *all_mailboxes_) mb.shutdown();
  }

 private:
  int rank_;
  int world_size_;
  Mailbox* own_mailbox_;
  std::vector<int>* socket_of_rank_;
  std::mutex* send_mu_;
  std::atomic<bool>* stop_flag_;
  std::vector<Mailbox>* all_mailboxes_;
  std::atomic<std::int64_t>* messages_;
  std::atomic<std::int64_t>* bytes_;
  std::chrono::steady_clock::time_point epoch_;
  FaultInjector* injector_;
  TimerQueue* timers_;
  const std::function<void(int)>* kill_rank_;
  EventTracer* tracer_;
};

}  // namespace

bool tcp_write_message(int fd, const Message& msg) {
  FrameHeader header{msg.source, msg.tag,
                     static_cast<std::uint32_t>(msg.payload.size())};
  if (!write_all(fd, &header, sizeof(header))) return false;
  return msg.payload.empty() ||
         write_all(fd, msg.payload.data(), msg.payload.size());
}

bool tcp_read_message(int fd, Message* msg,
                      const std::function<bool()>& keep_going) {
  FrameHeader header;
  if (!read_all(fd, &header, sizeof(header), keep_going)) return false;
  msg->source = header.source;
  msg->tag = header.tag;
  msg->payload.resize(header.length);
  return header.length == 0 ||
         read_all(fd, msg->payload.data(), header.length, keep_going);
}

bool tcp_read_message(int fd, Message* msg) {
  return tcp_read_message(fd, msg, nullptr);
}

RuntimeStats TcpRuntime::run(const std::vector<Actor*>& actors) {
  const int n = static_cast<int>(actors.size());
  assert(n >= 1);

  std::uint16_t port = 0;
  const int listener = make_listener(&port);

  // socket_of_rank: for the master (rank 0), index w = socket to worker w;
  // for workers, index 0 = socket to the master.
  std::vector<int> sockets(static_cast<std::size_t>(n), -1);

  // Workers connect and announce their rank; the master accepts n-1 times.
  std::vector<std::thread> connectors;
  for (int rank = 1; rank < n; ++rank) {
    connectors.emplace_back([&, rank] {
      const int fd = connect_loopback(port, options_);
      const std::int32_t r = rank;
      write_all(fd, &r, sizeof(r));
      sockets[rank] = fd;  // each worker writes only its own slot
    });
  }
  std::vector<int> master_sockets(static_cast<std::size_t>(n), -1);
  for (int i = 1; i < n; ++i) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) throw std::runtime_error("accept failed");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::int32_t rank = -1;
    if (!read_all(fd, &rank, sizeof(rank), nullptr) || rank < 1 || rank >= n) {
      ::close(fd);
      throw std::runtime_error("bad rank handshake");
    }
    master_sockets[rank] = fd;
  }
  for (auto& t : connectors) t.join();
  ::close(listener);
  for (int w = 1; w < n; ++w) {
    set_receive_timeout(master_sockets[w], options_.receive_timeout_seconds);
    set_receive_timeout(sockets[w], options_.receive_timeout_seconds);
  }

  std::vector<Mailbox> mailboxes(n);
  std::atomic<bool> stop_flag{false};
  std::atomic<std::int64_t> messages{0};
  std::atomic<std::int64_t> bytes{0};
  const auto epoch = std::chrono::steady_clock::now();
  const auto wall_now = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };

  EventTracer* tracer = obs_.tracer;
  if (tracer != nullptr && !tracer->enabled()) tracer = nullptr;

  std::unique_ptr<FaultInjector> injector;
  if (!plan_.empty()) {
    injector = std::make_unique<FaultInjector>(plan_, n, tracer);
  }

  // Crash realization: sever both ends of the rank's connection, once.
  std::vector<std::once_flag> kill_once(static_cast<std::size_t>(n));
  const std::function<void(int)> kill_rank = [&](int rank) {
    if (rank < 1 || rank >= n) return;
    std::call_once(kill_once[rank], [&, rank] {
      ::shutdown(master_sockets[rank], SHUT_RDWR);
      ::shutdown(sockets[rank], SHUT_RDWR);
    });
  };

  TimerQueue timers([&](int dest, Message msg) {
    if (dest < 0 || dest >= n) return;
    if (injector != nullptr && injector->crashed(dest, wall_now())) return;
    mailboxes[dest].push(std::move(msg));
  });

  // Reader pumps: master gets one per worker socket; each worker gets one.
  // SO_RCVTIMEO wakes them periodically to notice stop or a timed crash.
  std::vector<std::thread> readers;
  for (int w = 1; w < n; ++w) {
    readers.emplace_back([&, w] {
      const auto keep_going = [&] {
        if (injector != nullptr && injector->crashed(w, wall_now())) {
          kill_rank(w);
          return false;
        }
        return !stop_flag.load(std::memory_order_acquire);
      };
      Message msg;
      while (tcp_read_message(master_sockets[w], &msg, keep_going)) {
        const double delay =
            injector != nullptr ? injector->delivery_delay(0, wall_now()) : 0.0;
        if (delay > 0.0) {
          timers.schedule(delay, 0, std::move(msg));
        } else {
          mailboxes[0].push(std::move(msg));
        }
      }
    });
    readers.emplace_back([&, w] {
      const auto keep_going = [&] {
        if (injector != nullptr && injector->crashed(w, wall_now())) {
          kill_rank(w);
          return false;
        }
        return !stop_flag.load(std::memory_order_acquire);
      };
      Message msg;
      while (tcp_read_message(sockets[w], &msg, keep_going)) {
        if (injector != nullptr && injector->crashed(w, wall_now())) {
          kill_rank(w);
          break;
        }
        const double delay =
            injector != nullptr ? injector->delivery_delay(w, wall_now()) : 0.0;
        if (delay > 0.0) {
          timers.schedule(delay, w, std::move(msg));
        } else {
          mailboxes[w].push(std::move(msg));
        }
      }
    });
  }

  std::vector<std::mutex> send_mus(n);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      std::vector<int>& table = rank == 0 ? master_sockets : sockets;
      TcpContext ctx(rank, n, &mailboxes[rank], &table, &send_mus[rank],
                     &stop_flag, &mailboxes, &messages, &bytes, epoch,
                     injector.get(), &timers, &kill_rank, tracer);
      actors[rank]->on_start(ctx);
      Message msg;
      while (mailboxes[rank].pop(&msg)) {
        if (injector != nullptr && injector->crashed(rank, ctx.now())) continue;
        if (tracer != nullptr && msg.source != rank) {
          tracer->instant(
              rank, "net", "net.recv", ctx.now(),
              {{"src", msg.source},
               {"tag", msg.tag},
               {"bytes", static_cast<std::int64_t>(msg.payload.size())}});
        }
        actors[rank]->on_message(ctx, msg);
      }
    });
  }
  for (auto& t : threads) t.join();
  timers.shutdown();

  // Close sockets to unblock the reader pumps, then join them.
  for (int w = 1; w < n; ++w) {
    ::shutdown(master_sockets[w], SHUT_RDWR);
    ::shutdown(sockets[w], SHUT_RDWR);
  }
  for (auto& t : readers) t.join();
  for (int w = 1; w < n; ++w) {
    ::close(master_sockets[w]);
    ::close(sockets[w]);
  }

  RuntimeStats stats;
  stats.elapsed_seconds = wall_now();
  stats.messages = messages.load();
  stats.bytes = bytes.load();
  if (injector != nullptr) injector->export_metrics(obs_.metrics);
  return stats;
}

}  // namespace now
