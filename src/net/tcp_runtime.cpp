#include "src/net/tcp_runtime.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "src/net/thread_runtime.h"

namespace now {
namespace {

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

struct FrameHeader {
  std::int32_t source;
  std::int32_t tag;
  std::uint32_t length;
};

int make_listener(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *port = ntohs(addr.sin_port);
  return fd;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("connect failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

class TcpContext final : public Context {
 public:
  TcpContext(int rank, int world_size, Mailbox* own_mailbox,
             std::vector<int>* socket_of_rank, std::mutex* send_mu,
             std::atomic<bool>* stop_flag,
             std::vector<Mailbox>* all_mailboxes,
             std::atomic<std::int64_t>* messages,
             std::atomic<std::int64_t>* bytes,
             std::chrono::steady_clock::time_point epoch)
      : rank_(rank),
        world_size_(world_size),
        own_mailbox_(own_mailbox),
        socket_of_rank_(socket_of_rank),
        send_mu_(send_mu),
        stop_flag_(stop_flag),
        all_mailboxes_(all_mailboxes),
        messages_(messages),
        bytes_(bytes),
        epoch_(epoch) {}

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }

  void send(int dest, int tag, std::string payload) override {
    if (dest == rank_) {  // continuation self-send: stays local
      own_mailbox_->push(Message{rank_, tag, std::move(payload)});
      return;
    }
    assert((rank_ == 0 || dest == 0) &&
           "star topology: slaves only talk to the master");
    messages_->fetch_add(1, std::memory_order_relaxed);
    bytes_->fetch_add(static_cast<std::int64_t>(payload.size()),
                      std::memory_order_relaxed);
    // Master: socket to `dest`. Worker: its own socket to the master.
    const int fd =
        rank_ == 0 ? (*socket_of_rank_)[dest] : (*socket_of_rank_)[rank_];
    const Message msg{rank_, tag, std::move(payload)};
    // One writer lock per rank keeps frames from interleaving when the
    // master's handler and shutdown race.
    std::lock_guard<std::mutex> lock(*send_mu_);
    tcp_write_message(fd, msg);
  }

  void charge(double) override {}

  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void stop() override {
    stop_flag_->store(true, std::memory_order_release);
    for (auto& mb : *all_mailboxes_) mb.shutdown();
  }

 private:
  int rank_;
  int world_size_;
  Mailbox* own_mailbox_;
  std::vector<int>* socket_of_rank_;
  std::mutex* send_mu_;
  std::atomic<bool>* stop_flag_;
  std::vector<Mailbox>* all_mailboxes_;
  std::atomic<std::int64_t>* messages_;
  std::atomic<std::int64_t>* bytes_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace

bool tcp_write_message(int fd, const Message& msg) {
  FrameHeader header{msg.source, msg.tag,
                     static_cast<std::uint32_t>(msg.payload.size())};
  if (!write_all(fd, &header, sizeof(header))) return false;
  return msg.payload.empty() ||
         write_all(fd, msg.payload.data(), msg.payload.size());
}

bool tcp_read_message(int fd, Message* msg) {
  FrameHeader header;
  if (!read_all(fd, &header, sizeof(header))) return false;
  msg->source = header.source;
  msg->tag = header.tag;
  msg->payload.resize(header.length);
  return header.length == 0 ||
         read_all(fd, msg->payload.data(), header.length);
}

RuntimeStats TcpRuntime::run(const std::vector<Actor*>& actors) {
  const int n = static_cast<int>(actors.size());
  assert(n >= 1);

  std::uint16_t port = 0;
  const int listener = make_listener(&port);

  // socket_of_rank: for the master (rank 0), index w = socket to worker w;
  // for workers, index 0 = socket to the master.
  std::vector<int> sockets(static_cast<std::size_t>(n), -1);

  // Workers connect and announce their rank; the master accepts n-1 times.
  std::vector<std::thread> connectors;
  for (int rank = 1; rank < n; ++rank) {
    connectors.emplace_back([&, rank] {
      const int fd = connect_loopback(port);
      const std::int32_t r = rank;
      write_all(fd, &r, sizeof(r));
      sockets[rank] = fd;  // each worker writes only its own slot
    });
  }
  std::vector<int> master_sockets(static_cast<std::size_t>(n), -1);
  for (int i = 1; i < n; ++i) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) throw std::runtime_error("accept failed");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::int32_t rank = -1;
    if (!read_all(fd, &rank, sizeof(rank)) || rank < 1 || rank >= n) {
      ::close(fd);
      throw std::runtime_error("bad rank handshake");
    }
    master_sockets[rank] = fd;
  }
  for (auto& t : connectors) t.join();
  ::close(listener);

  std::vector<Mailbox> mailboxes(n);
  std::atomic<bool> stop_flag{false};
  std::atomic<std::int64_t> messages{0};
  std::atomic<std::int64_t> bytes{0};
  const auto epoch = std::chrono::steady_clock::now();

  // Reader pumps: master gets one per worker socket; each worker gets one.
  std::vector<std::thread> readers;
  for (int w = 1; w < n; ++w) {
    readers.emplace_back([&, w] {
      Message msg;
      while (tcp_read_message(master_sockets[w], &msg)) mailboxes[0].push(msg);
    });
    readers.emplace_back([&, w] {
      Message msg;
      while (tcp_read_message(sockets[w], &msg)) mailboxes[w].push(msg);
    });
  }

  std::vector<std::mutex> send_mus(n);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      std::vector<int>& table = rank == 0 ? master_sockets : sockets;
      TcpContext ctx(rank, n, &mailboxes[rank], &table, &send_mus[rank],
                     &stop_flag, &mailboxes, &messages, &bytes, epoch);
      actors[rank]->on_start(ctx);
      Message msg;
      while (mailboxes[rank].pop(&msg)) actors[rank]->on_message(ctx, msg);
    });
  }
  for (auto& t : threads) t.join();

  // Close sockets to unblock the reader pumps, then join them.
  for (int w = 1; w < n; ++w) {
    ::shutdown(master_sockets[w], SHUT_RDWR);
    ::shutdown(sockets[w], SHUT_RDWR);
  }
  for (auto& t : readers) t.join();
  for (int w = 1; w < n; ++w) {
    ::close(master_sockets[w]);
    ::close(sockets[w]);
  }

  RuntimeStats stats;
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
          .count();
  stats.messages = messages.load();
  stats.bytes = bytes.load();
  return stats;
}

}  // namespace now
