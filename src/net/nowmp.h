// nowmp — a small PVM-style blocking message-passing API.
//
// The paper's implementation used PVM 3.1 ("message-passing systems, such
// as PVM and MPI, are robust, easy to use, and available without cost").
// The render farm itself uses the event-driven Actor runtime (so the same
// code runs on the discrete-event simulator), but nowmp provides the
// familiar blocking pack/send/recv/probe programming model for users who
// want to write PVM-shaped programs against this library:
//
//   nowmp::run(4, [](nowmp::Task& t) {            // task 0 = master
//     for (int w = 1; w < t.ntasks(); ++w) {
//       t.init_send();
//       t.pack_i32(w * 100);
//       t.send(w, kTagWork);
//     }
//     ...
//   }, [](nowmp::Task& t) {                        // tasks 1.. = slaves
//     t.recv(0, kTagWork);
//     int value = t.unpack_i32();
//     ...
//   });
//
// Tasks run on real threads; send/recv use typed, endian-safe buffers
// (WireWriter/WireReader). recv(-1, -1) matches any source / any tag,
// exactly like pvm_recv(-1, -1).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/net/message.h"

namespace now::nowmp {

class Router;

/// Handle a task uses to communicate. Valid only inside run().
class Task {
 public:
  Task(Router* router, int tid, int ntasks)
      : router_(router), tid_(tid), ntasks_(ntasks) {}

  int mytid() const { return tid_; }
  int ntasks() const { return ntasks_; }

  // -- sending -------------------------------------------------------------
  /// Clear the send buffer (pvm_initsend).
  void init_send();
  void pack_i32(std::int32_t v);
  void pack_i64(std::int64_t v);
  void pack_u64(std::uint64_t v);
  void pack_f64(double v);
  void pack_str(const std::string& s);
  /// Ship the send buffer to `dest` with `tag` (pvm_send).
  void send(int dest, int tag);

  // -- receiving -----------------------------------------------------------
  /// Block until a message from `source` (-1 = any) with `tag` (-1 = any)
  /// arrives, and load it into the receive buffer (pvm_recv).
  void recv(int source = -1, int tag = -1);
  /// Non-blocking variant (pvm_nrecv): returns false if nothing matches.
  bool try_recv(int source = -1, int tag = -1);
  /// Is a matching message waiting? Does not consume it (pvm_probe).
  bool probe(int source = -1, int tag = -1);

  /// Metadata of the last received message.
  int recv_source() const { return recv_source_; }
  int recv_tag() const { return recv_tag_; }

  std::int32_t unpack_i32();
  std::int64_t unpack_i64();
  std::uint64_t unpack_u64();
  double unpack_f64();
  std::string unpack_str();

 private:
  void load(Message msg);

  Router* router_;
  int tid_;
  int ntasks_;
  WireWriter send_buffer_;
  std::string recv_payload_;
  std::unique_ptr<WireReader> reader_;
  int recv_source_ = -1;
  int recv_tag_ = -1;
};

/// Unpack errors (reading past the end of a message) throw this.
struct UnpackError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Run task 0 as `master` and tasks 1..ntasks-1 as `slave`, each on its own
/// thread; returns when every task function has returned.
void run(int ntasks, const std::function<void(Task&)>& master,
         const std::function<void(Task&)>& slave);

/// Run with a distinct function per task.
void run(const std::vector<std::function<void(Task&)>>& tasks);

}  // namespace now::nowmp
