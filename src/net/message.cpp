#include "src/net/message.h"

#include <cstring>

namespace now {

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

bool WireReader::u8(std::uint8_t* v) {
  if (pos_ + 1 > data_.size()) return false;
  *v = static_cast<std::uint8_t>(data_[pos_++]);
  return true;
}

bool WireReader::u32(std::uint32_t* v) {
  if (pos_ + 4 > data_.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  *v = std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
       (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
  pos_ += 4;
  return true;
}

bool WireReader::u64(std::uint64_t* v) {
  if (pos_ + 8 > data_.size()) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  *v = 0;
  for (int i = 7; i >= 0; --i) *v = (*v << 8) | p[i];
  pos_ += 8;
  return true;
}

bool WireReader::i32(std::int32_t* v) {
  std::uint32_t u;
  if (!u32(&u)) return false;
  *v = static_cast<std::int32_t>(u);
  return true;
}

bool WireReader::i64(std::int64_t* v) {
  std::uint64_t u;
  if (!u64(&u)) return false;
  *v = static_cast<std::int64_t>(u);
  return true;
}

bool WireReader::f64(double* v) {
  std::uint64_t bits;
  if (!u64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::str(std::string* s) {
  std::uint32_t len;
  if (!u32(&len)) return false;
  if (pos_ + len > data_.size()) return false;
  s->assign(data_, pos_, len);
  pos_ += len;
  return true;
}

}  // namespace now
