#include "src/net/codec.h"

#include <algorithm>

#include "src/net/crc32.h"

namespace now {
namespace {

constexpr std::uint8_t kMethodStored = 0;
constexpr std::uint8_t kMethodRle = 1;
constexpr std::uint8_t kMethodDeltaRle = 2;

// Refuse to allocate for absurd declared sizes: the largest legitimate frame
// payload is a dense full image, far below this.
constexpr std::size_t kMaxRawSize = std::size_t{1} << 30;

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

// Control byte c < 128: c+1 literal bytes follow. c >= 129: the next byte is
// repeated c-126 times (runs of 3..129). 128 is never produced.
std::string rle_compress(const std::string& raw) {
  std::string out;
  const std::size_t n = raw.size();
  std::size_t lit_start = 0;
  const auto flush_literals = [&](std::size_t end) {
    std::size_t s = lit_start;
    while (s < end) {
      const std::size_t len = std::min<std::size_t>(128, end - s);
      out.push_back(static_cast<char>(len - 1));
      out.append(raw, s, len);
      s += len;
    }
  };
  std::size_t i = 0;
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && raw[i + run] == raw[i] && run < 129) ++run;
    if (run >= 3) {
      flush_literals(i);
      out.push_back(static_cast<char>(128 + run - 2));
      out.push_back(raw[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(n);
  return out;
}

bool rle_decompress(std::string* out, const char* p, std::size_t len,
                    std::size_t raw_size) {
  out->clear();
  out->reserve(raw_size);
  std::size_t i = 0;
  while (i < len) {
    const unsigned c = static_cast<unsigned char>(p[i++]);
    if (c < 128) {
      const std::size_t take = c + 1;
      if (i + take > len || out->size() + take > raw_size) return false;
      out->append(p + i, take);
      i += take;
    } else {
      if (c == 128 || i >= len) return false;
      const std::size_t repeat = c - 126;
      if (out->size() + repeat > raw_size) return false;
      out->append(repeat, p[i++]);
    }
  }
  return out->size() == raw_size;
}

std::string delta_transform(const std::string& raw) {
  std::string out;
  out.resize(raw.size());
  unsigned char prev = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const unsigned char b = static_cast<unsigned char>(raw[i]);
    out[i] = static_cast<char>(static_cast<unsigned char>(b - prev));
    prev = b;
  }
  return out;
}

void undelta_in_place(std::string* raw) {
  unsigned char prev = 0;
  for (char& c : *raw) {
    prev = static_cast<unsigned char>(static_cast<unsigned char>(c) + prev);
    c = static_cast<char>(prev);
  }
}

std::string with_header(std::uint8_t method, std::size_t raw_size,
                        std::string body) {
  std::string out;
  out.reserve(kCompressHeaderBytes + body.size());
  out.push_back(static_cast<char>(method));
  put_u32(&out, static_cast<std::uint32_t>(raw_size));
  out += body;
  return out;
}

}  // namespace

const char* to_string(FrameCodec codec) {
  switch (codec) {
    case FrameCodec::kRaw: return "raw";
    case FrameCodec::kDelta: return "delta";
  }
  return "unknown";
}

bool parse_frame_codec(const std::string& name, FrameCodec* out) {
  if (name == "raw") {
    *out = FrameCodec::kRaw;
    return true;
  }
  if (name == "delta") {
    *out = FrameCodec::kDelta;
    return true;
  }
  return false;
}

std::string store_bytes(const std::string& raw) {
  return with_header(kMethodStored, raw.size(), raw);
}

std::string compress_bytes(const std::string& raw) {
  std::string rle = rle_compress(raw);
  std::string delta_rle = rle_compress(delta_transform(raw));
  if (rle.size() < raw.size() && rle.size() <= delta_rle.size()) {
    return with_header(kMethodRle, raw.size(), std::move(rle));
  }
  if (delta_rle.size() < raw.size()) {
    return with_header(kMethodDeltaRle, raw.size(), std::move(delta_rle));
  }
  return store_bytes(raw);
}

bool decompress_bytes(std::string* raw, const char* packed, std::size_t len) {
  if (len < kCompressHeaderBytes) return false;
  const auto method = static_cast<std::uint8_t>(packed[0]);
  const std::size_t raw_size =
      get_u32(reinterpret_cast<const unsigned char*>(packed) + 1);
  if (raw_size > kMaxRawSize) return false;
  const char* body = packed + kCompressHeaderBytes;
  const std::size_t body_len = len - kCompressHeaderBytes;
  switch (method) {
    case kMethodStored:
      if (body_len != raw_size) return false;
      raw->assign(body, body_len);
      return true;
    case kMethodRle:
      return rle_decompress(raw, body, body_len, raw_size);
    case kMethodDeltaRle:
      if (!rle_decompress(raw, body, body_len, raw_size)) return false;
      undelta_in_place(raw);
      return true;
    default:
      return false;
  }
}

bool decompress_bytes(std::string* raw, const std::string& packed) {
  return decompress_bytes(raw, packed.data(), packed.size());
}

std::string encode_frame_payload(const std::string& payload_bytes,
                                 std::uint8_t kind, FrameCodec codec) {
  std::string out;
  out.push_back(static_cast<char>(kFramePayloadVersion));
  out.push_back(static_cast<char>(kind));
  put_u32(&out, crc32(payload_bytes));
  out += codec == FrameCodec::kDelta ? compress_bytes(payload_bytes)
                                     : store_bytes(payload_bytes);
  return out;
}

bool decode_frame_payload(std::string* payload_bytes, std::uint8_t* kind,
                          const std::string& wire) {
  if (wire.size() < 6) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(wire.data());
  if (p[0] != kFramePayloadVersion) return false;
  if (p[1] != kFrameKindKey && p[1] != kFrameKindDelta) return false;
  *kind = p[1];
  const std::uint32_t crc = get_u32(p + 2);
  if (!decompress_bytes(payload_bytes, wire.data() + 6, wire.size() - 6)) {
    return false;
  }
  return crc32(*payload_bytes) == crc;
}

}  // namespace now
