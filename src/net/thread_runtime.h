// ThreadRuntime: each actor on its own std::thread with a blocking mailbox.
// This is the "real parallel" backend — wall-clock time, true concurrency.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "src/net/runtime.h"

namespace now {

/// Thread-safe blocking FIFO used as a per-rank mailbox.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a message or shutdown. Returns false on shutdown with an
  /// empty queue (pending messages are always drained first).
  bool pop(Message* msg);
  void shutdown();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool shutdown_ = false;
};

class ThreadRuntime final : public Runtime {
 public:
  RuntimeStats run(const std::vector<Actor*>& actors) override;
};

}  // namespace now
