// ThreadRuntime: each actor on its own std::thread with a blocking mailbox.
// This is the "real parallel" backend — wall-clock time, true concurrency.
//
// An optional FaultPlan turns on injection hooks in the send path: a crashed
// rank becomes fail-stop inert (its sends — including self-continuations —
// and its incoming deliveries are all swallowed), specific messages can be
// dropped or duplicated, and delay-spike windows route deliveries through
// the timer. The TimerQueue also backs Context::send_after, the deferred
// self-message primitive the master's failure-detection leases rely on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "src/fault/fault_injector.h"
#include "src/net/runtime.h"

namespace now {

/// Thread-safe blocking FIFO used as a per-rank mailbox.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a message or shutdown. Returns false on shutdown with an
  /// empty queue (pending messages are always drained first).
  bool pop(Message* msg);
  void shutdown();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool shutdown_ = false;
};

/// One background thread delivering messages at wall-clock deadlines.
/// Backs send_after and delay-spike injection for the wall-clock runtimes.
class TimerQueue {
 public:
  using Deliver = std::function<void(int dest, Message msg)>;

  explicit TimerQueue(Deliver deliver);
  ~TimerQueue();

  void schedule(double delay_seconds, int dest, Message msg);
  /// Stop the thread; entries not yet due are discarded.
  void shutdown();

 private:
  struct Entry {
    std::chrono::steady_clock::time_point due;
    std::int64_t seq;  // FIFO tie-break
    int dest;
    Message msg;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void run();

  Deliver deliver_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> pending_;
  std::int64_t next_seq_ = 0;
  bool shutdown_ = false;
  std::thread thread_;
};

class ThreadRuntime final : public Runtime {
 public:
  ThreadRuntime() = default;
  explicit ThreadRuntime(FaultPlan plan, RuntimeObs obs = {})
      : plan_(std::move(plan)), obs_(obs) {}

  RuntimeStats run(const std::vector<Actor*>& actors) override;

 private:
  FaultPlan plan_;
  RuntimeObs obs_;
};

}  // namespace now
