// Actor/Runtime abstraction: the same master/worker rendering code runs on
// three interchangeable backends —
//   ThreadRuntime  real std::thread workers, in-process queues (wall clock)
//   TcpRuntime     real std::thread workers, loopback TCP sockets (wall clock)
//   SimRuntime     sequential discrete-event simulation (virtual clock with
//                  per-machine speed factors and a shared-Ethernet model)
//
// Actors are event-driven: they receive messages one at a time and may send
// messages, charge compute cost, and request shutdown. Long computations
// must be split into per-frame steps (send yourself a continuation message)
// so control messages — e.g. the master shrinking an adaptively re-split
// task — interleave between frames, exactly as a PVM worker polling between
// frames would behave.
#pragma once

#include <string>
#include <vector>

#include "src/net/message.h"
#include "src/obs/event_trace.h"
#include "src/obs/metrics.h"

namespace now {

/// Optional observability sinks a runtime records into: cross-rank message
/// send/recv events (with byte counts) go to `tracer`, and end-of-run
/// runtime statistics (net.*, rank.*, fault.*) go to `metrics`. Null
/// pointers disable the corresponding instrumentation entirely.
struct RuntimeObs {
  EventTracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

class Context {
 public:
  virtual ~Context() = default;

  virtual int rank() const = 0;
  virtual int world_size() const = 0;

  /// Enqueue a message. Self-sends are allowed (continuation pattern) and do
  /// not traverse the network model.
  virtual void send(int dest, int tag, std::string payload) = 0;

  /// Account `seconds` of compute on the *reference* machine; the simulated
  /// runtime scales it by this rank's speed factor and advances the virtual
  /// clock. Wall-clock runtimes ignore it (real time already passed).
  virtual void charge(double seconds) = 0;

  /// Current time in seconds: virtual on SimRuntime, wall-clock elsewhere.
  virtual double now() const = 0;

  /// Deliver a self-message after `delay_seconds` (virtual or wall time).
  /// This is the timer primitive behind the master's failure-detection
  /// leases. All three runtimes implement real deferred delivery; the
  /// default (for test doubles that never arm timers) delivers immediately.
  virtual void send_after(double delay_seconds, int tag, std::string payload) {
    (void)delay_seconds;
    send(rank(), tag, std::move(payload));
  }

  /// Request global shutdown once all queued messages drain.
  virtual void stop() = 0;
};

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_start(Context& ctx) = 0;
  virtual void on_message(Context& ctx, const Message& msg) = 0;
  /// Called exactly once per actor after its message loop ends and before
  /// its Context dies — the only safe place to join helper threads that
  /// still hold the Context (e.g. a worker's send pipeline). Note the loop
  /// can end without any preceding callback on this actor, so cleanup must
  /// not live in a message handler. Default: nothing.
  virtual void on_shutdown(Context& ctx) { (void)ctx; }
};

struct RuntimeStats {
  double elapsed_seconds = 0.0;   // virtual or wall
  std::int64_t messages = 0;      // cross-rank messages delivered
  std::int64_t bytes = 0;         // cross-rank payload bytes
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Drive `actors` (rank = index) until an actor calls stop() and all
  /// in-flight messages drain.
  virtual RuntimeStats run(const std::vector<Actor*>& actors) = 0;
};

}  // namespace now
