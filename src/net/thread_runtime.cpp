#include "src/net/thread_runtime.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

namespace now {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

bool Mailbox::pop(Message* msg) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
  if (queue_.empty()) return false;
  *msg = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Mailbox::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

TimerQueue::TimerQueue(Deliver deliver)
    : deliver_(std::move(deliver)), thread_([this] { run(); }) {}

TimerQueue::~TimerQueue() { shutdown(); }

void TimerQueue::schedule(double delay_seconds, int dest, Message msg) {
  const auto due = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(delay_seconds));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    pending_.push(Entry{due, next_seq_++, dest, std::move(msg)});
  }
  cv_.notify_one();
}

void TimerQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimerQueue::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    if (pending_.empty()) {
      cv_.wait(lock, [&] { return shutdown_ || !pending_.empty(); });
      continue;
    }
    const auto due = pending_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    Entry entry = pending_.top();
    pending_.pop();
    lock.unlock();
    deliver_(entry.dest, std::move(entry.msg));
    lock.lock();
  }
}

namespace {

/// kReorderMessage parking shared by every sender thread: at most one held
/// message per (src, dest) edge, released behind the edge's next send.
struct HeldMessages {
  std::mutex mu;
  std::map<std::pair<int, int>, Message> held;
};

class ThreadContext final : public Context {
 public:
  ThreadContext(int rank, int world_size, std::vector<Mailbox>* mailboxes,
                std::atomic<bool>* stop_flag, std::atomic<std::int64_t>* messages,
                std::atomic<std::int64_t>* bytes,
                std::chrono::steady_clock::time_point epoch,
                FaultInjector* injector, TimerQueue* timers,
                EventTracer* tracer, HeldMessages* held)
      : rank_(rank),
        world_size_(world_size),
        mailboxes_(mailboxes),
        stop_flag_(stop_flag),
        messages_(messages),
        bytes_(bytes),
        epoch_(epoch),
        injector_(injector),
        timers_(timers),
        tracer_(tracer),
        held_(held) {}

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }

  void send(int dest, int tag, std::string payload) override {
    const double t = now();
    if (injector_ != nullptr && injector_->crashed(rank_, t)) return;
    int copies = 1;
    if (injector_ != nullptr && dest != rank_) {
      const FaultInjector::SendFaults f =
          injector_->on_send(rank_, dest, tag, t);
      if (f.drop) return;
      if (f.hold && held_ != nullptr) {
        std::lock_guard<std::mutex> lock(held_->mu);
        held_->held[{rank_, dest}] = Message{rank_, tag, std::move(payload)};
        return;
      }
      if (f.duplicate) copies = 2;
      if (injector_->crashed(dest, t)) return;  // deliveries to the dead die
    }
    if (dest != rank_) {
      messages_->fetch_add(copies, std::memory_order_relaxed);
      bytes_->fetch_add(copies * static_cast<std::int64_t>(payload.size()),
                        std::memory_order_relaxed);
      if (tracer_ != nullptr) {
        // In-process queues transfer instantly; an instant event still
        // records who talked to whom, and how much.
        tracer_->instant(rank_, "net", "net.send", t,
                         {{"dest", dest},
                          {"tag", tag},
                          {"bytes",
                           static_cast<std::int64_t>(payload.size())}});
      }
    }
    const double delay =
        injector_ != nullptr ? injector_->delivery_delay(dest, t) : 0.0;
    for (int c = 0; c < copies; ++c) {
      Message msg{rank_, tag, payload};
      if (delay > 0.0 && timers_ != nullptr) {
        timers_->schedule(delay, dest, std::move(msg));
      } else {
        (*mailboxes_)[dest].push(std::move(msg));
      }
    }
    if (held_ != nullptr && dest != rank_) {
      // Release a parked reorder victim behind the message just sent.
      Message parked;
      bool have = false;
      {
        std::lock_guard<std::mutex> lock(held_->mu);
        const auto it = held_->held.find({rank_, dest});
        if (it != held_->held.end()) {
          parked = std::move(it->second);
          held_->held.erase(it);
          have = true;
        }
      }
      if (have) {
        messages_->fetch_add(1, std::memory_order_relaxed);
        bytes_->fetch_add(static_cast<std::int64_t>(parked.payload.size()),
                          std::memory_order_relaxed);
        (*mailboxes_)[dest].push(std::move(parked));
      }
    }
  }

  void send_after(double delay_seconds, int tag, std::string payload) override {
    timers_->schedule(delay_seconds, rank_,
                      Message{rank_, tag, std::move(payload)});
  }

  void charge(double) override {}  // real time already elapsed

  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void stop() override {
    stop_flag_->store(true, std::memory_order_release);
    for (auto& mb : *mailboxes_) mb.shutdown();
  }

 private:
  int rank_;
  int world_size_;
  std::vector<Mailbox>* mailboxes_;
  std::atomic<bool>* stop_flag_;
  std::atomic<std::int64_t>* messages_;
  std::atomic<std::int64_t>* bytes_;
  std::chrono::steady_clock::time_point epoch_;
  FaultInjector* injector_;
  TimerQueue* timers_;
  EventTracer* tracer_;
  HeldMessages* held_;
};

}  // namespace

RuntimeStats ThreadRuntime::run(const std::vector<Actor*>& actors) {
  const int n = static_cast<int>(actors.size());
  std::vector<Mailbox> mailboxes(n);
  std::atomic<bool> stop_flag{false};
  std::atomic<std::int64_t> messages{0};
  std::atomic<std::int64_t> bytes{0};
  const auto epoch = std::chrono::steady_clock::now();

  EventTracer* tracer = obs_.tracer;
  if (tracer != nullptr && !tracer->enabled()) tracer = nullptr;

  std::unique_ptr<FaultInjector> injector;
  if (!plan_.empty()) {
    injector = std::make_unique<FaultInjector>(plan_, n, tracer);
  }

  TimerQueue timers([&](int dest, Message msg) {
    if (dest < 0 || dest >= n) return;
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - epoch)
                         .count();
    if (injector != nullptr) {
      if (plan_.rejoin_tag >= 0 && msg.tag == plan_.rejoin_tag &&
          msg.source == dest) {
        // The restart signal must reach the dead rank: revive first, then
        // let the delivery through.
        injector->revive(dest, t);
      } else if (injector->crashed(dest, t)) {
        return;
      }
    }
    mailboxes[dest].push(std::move(msg));
  });
  // Rejoin events ride the timer: at their scheduled wall time the rank is
  // revived and handed the rejoin tag so it re-announces itself. Relative
  // rejoins (after_crash_seconds) are scheduled by the injector's hook the
  // moment the crash fires.
  if (injector != nullptr && plan_.rejoin_tag >= 0) {
    for (const FaultEvent& e : plan_.events) {
      if (e.kind != FaultKind::kRejoin || e.at_time < 0.0) continue;
      timers.schedule(e.at_time, e.rank, Message{e.rank, plan_.rejoin_tag, {}});
    }
    injector->set_rejoin_hook([&, epoch](int rank, double at) {
      const double t = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - epoch)
                           .count();
      timers.schedule(std::max(0.0, at - t), rank,
                      Message{rank, plan_.rejoin_tag, {}});
    });
  }
  HeldMessages held;

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      ThreadContext ctx(rank, n, &mailboxes, &stop_flag, &messages, &bytes,
                        epoch, injector.get(), &timers, tracer, &held);
      actors[rank]->on_start(ctx);
      Message msg;
      while (mailboxes[rank].pop(&msg)) {
        const double t = ctx.now();
        if (injector != nullptr && injector->crashed(rank, t)) continue;
        if (tracer != nullptr && msg.source != rank) {
          tracer->instant(
              rank, "net", "net.recv", t,
              {{"src", msg.source},
               {"tag", msg.tag},
               {"bytes", static_cast<std::int64_t>(msg.payload.size())}});
        }
        actors[rank]->on_message(ctx, msg);
      }
      actors[rank]->on_shutdown(ctx);
    });
  }
  for (auto& t : threads) t.join();
  timers.shutdown();

  RuntimeStats stats;
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
          .count();
  stats.messages = messages.load();
  stats.bytes = bytes.load();
  if (injector != nullptr) injector->export_metrics(obs_.metrics);
  return stats;
}

}  // namespace now
