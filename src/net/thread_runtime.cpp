#include "src/net/thread_runtime.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace now {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

bool Mailbox::pop(Message* msg) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
  if (queue_.empty()) return false;
  *msg = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Mailbox::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

namespace {

class ThreadContext final : public Context {
 public:
  ThreadContext(int rank, int world_size, std::vector<Mailbox>* mailboxes,
                std::atomic<bool>* stop_flag, std::atomic<std::int64_t>* messages,
                std::atomic<std::int64_t>* bytes,
                std::chrono::steady_clock::time_point epoch)
      : rank_(rank),
        world_size_(world_size),
        mailboxes_(mailboxes),
        stop_flag_(stop_flag),
        messages_(messages),
        bytes_(bytes),
        epoch_(epoch) {}

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }

  void send(int dest, int tag, std::string payload) override {
    if (dest != rank_) {
      messages_->fetch_add(1, std::memory_order_relaxed);
      bytes_->fetch_add(static_cast<std::int64_t>(payload.size()),
                        std::memory_order_relaxed);
    }
    (*mailboxes_)[dest].push(Message{rank_, tag, std::move(payload)});
  }

  void charge(double) override {}  // real time already elapsed

  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void stop() override {
    stop_flag_->store(true, std::memory_order_release);
    for (auto& mb : *mailboxes_) mb.shutdown();
  }

 private:
  int rank_;
  int world_size_;
  std::vector<Mailbox>* mailboxes_;
  std::atomic<bool>* stop_flag_;
  std::atomic<std::int64_t>* messages_;
  std::atomic<std::int64_t>* bytes_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace

RuntimeStats ThreadRuntime::run(const std::vector<Actor*>& actors) {
  const int n = static_cast<int>(actors.size());
  std::vector<Mailbox> mailboxes(n);
  std::atomic<bool> stop_flag{false};
  std::atomic<std::int64_t> messages{0};
  std::atomic<std::int64_t> bytes{0};
  const auto epoch = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      ThreadContext ctx(rank, n, &mailboxes, &stop_flag, &messages, &bytes,
                        epoch);
      actors[rank]->on_start(ctx);
      Message msg;
      while (mailboxes[rank].pop(&msg)) {
        actors[rank]->on_message(ctx, msg);
      }
    });
  }
  for (auto& t : threads) t.join();

  RuntimeStats stats;
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
          .count();
  stats.messages = messages.load();
  stats.bytes = bytes.load();
  return stats;
}

}  // namespace now
