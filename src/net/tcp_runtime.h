// TcpRuntime: the same actor protocol carried over real loopback TCP
// sockets, one connection per worker (star topology, exactly the paper's
// communication pattern — "the only interprocessor communication occurs
// between the master and each of the slaves").
//
// Actors still run on threads of this process, but every cross-rank message
// is serialized, framed, written to a socket and read back on the far side,
// exercising the full wire path a multi-host PVM/MPI deployment would use.
// Worker-to-worker sends are rejected (the paper's slaves never communicate)
// unless the destination is a declared extra endpoint (a framebuffer shard):
// TcpOptions::extra_endpoints gives those ranks their own listener that
// every worker dials, so pixel traffic can bypass the master.
//
// Robustness: every data socket carries a receive timeout (SO_RCVTIMEO), so
// the reader pumps wake periodically instead of blocking forever on a
// vanished peer; connect() retries with exponential backoff and
// deterministic per-rank jitter (net.connect_retries counts the retries);
// and every frame carries a CRC-32 over its payload — a corrupt frame is
// counted (net.corrupt_frames) and treated as a dropped message, never
// delivered. A FaultPlan makes crashes real at the socket level: when a
// worker's crash triggers, both ends of its connection are shut down — the
// master stops hearing from it exactly as if the process died. The listener
// stays open for the whole run, so a kRejoin event can reconnect the rank
// mid-run: the worker dials in again, re-handshakes, and re-announces
// itself to the master (elastic membership).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/net/runtime.h"

namespace now {

struct TcpOptions {
  /// SO_RCVTIMEO on every data socket (and the listener); bounds how long a
  /// reader pump or the accept loop can sleep before noticing shutdown, a
  /// triggered crash, or a pending rejoin.
  double receive_timeout_seconds = 0.25;
  /// Bounded connect-retry loop (ECONNREFUSED/EINTR) before giving up.
  int connect_attempts = 20;
  /// Exponential backoff between connect attempts: the delay before retry
  /// k is min(base · 2^k, max), scaled by a deterministic jitter in
  /// [0.5, 1) derived from (rank, attempt) — concurrent retries from
  /// different ranks desynchronize without any shared RNG, and the same
  /// rank backs off identically on every run.
  double connect_backoff_base_seconds = 0.01;
  double connect_backoff_max_seconds = 0.5;
  /// Ranks that get their own listening socket in addition to rank 0's
  /// (framebuffer shards). Every other non-zero rank dials every endpoint at
  /// startup, extending the star into a partial mesh: a send between two
  /// non-zero ranks is legal only from such a dialer to an endpoint.
  /// Endpoint ranks still dial rank 0 like workers, so endpoint↔master
  /// traffic rides the existing star. Empty = classic star topology.
  std::vector<int> extra_endpoints;
};

/// The backoff schedule itself, exposed pure for tests: delay in seconds
/// before attempt `attempt` (0-based) of `rank`'s connect loop.
double connect_backoff_seconds(const TcpOptions& options, int rank,
                               int attempt);

class TcpRuntime final : public Runtime {
 public:
  TcpRuntime() = default;
  explicit TcpRuntime(TcpOptions options) : options_(options) {}
  explicit TcpRuntime(FaultPlan plan, TcpOptions options = {},
                      RuntimeObs obs = {})
      : options_(options), plan_(std::move(plan)), obs_(obs) {}

  RuntimeStats run(const std::vector<Actor*>& actors) override;

 private:
  TcpOptions options_;
  FaultPlan plan_;
  RuntimeObs obs_;
};

// -- frame helpers, shared with the tests -----------------------------------
// On-wire frame: [i32 source][i32 tag][u32 len][u32 crc32(payload)][bytes].

enum class TcpReadStatus {
  kOk,       // a frame arrived and its payload CRC checked out
  kCorrupt,  // a well-framed message whose payload failed its CRC; the
             // stream stays aligned — callers count it and read on
  kClosed,   // EOF, hard error, or keep_going said stop
};

/// Serialize `msg` into its on-wire frame (header + payload). Exposed so
/// tests can craft deliberately corrupted frames.
std::string tcp_encode_frame(const Message& msg);

bool tcp_write_message(int fd, const Message& msg);

/// Read one frame. On a receive timeout consults `keep_going` and aborts
/// (kClosed) once it says stop; null = wait forever.
TcpReadStatus tcp_read_frame(int fd, Message* msg,
                             const std::function<bool()>& keep_going);

/// As tcp_read_frame, but corrupt frames are silently skipped (dropped):
/// returns true on the next intact message, false when the stream ends.
bool tcp_read_message(int fd, Message* msg);
bool tcp_read_message(int fd, Message* msg,
                      const std::function<bool()>& keep_going);

}  // namespace now
