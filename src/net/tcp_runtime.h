// TcpRuntime: the same actor protocol carried over real loopback TCP
// sockets, one connection per worker (star topology, exactly the paper's
// communication pattern — "the only interprocessor communication occurs
// between the master and each of the slaves").
//
// Actors still run on threads of this process, but every cross-rank message
// is serialized, framed, written to a socket and read back on the far side,
// exercising the full wire path a multi-host PVM/MPI deployment would use.
// Worker-to-worker sends are rejected (the paper's slaves never communicate).
//
// Robustness: every data socket carries a receive timeout (SO_RCVTIMEO), so
// the reader pumps wake periodically instead of blocking forever on a
// vanished peer, and connect() retries a bounded number of times before
// surfacing an error. A FaultPlan makes crashes real at the socket level:
// when a worker's crash triggers, both ends of its connection are shut
// down — the master stops hearing from it exactly as if the process died.
#pragma once

#include <functional>

#include "src/fault/fault_injector.h"
#include "src/net/runtime.h"

namespace now {

struct TcpOptions {
  /// SO_RCVTIMEO on every data socket; bounds how long a reader pump can
  /// sleep before noticing shutdown or a triggered crash.
  double receive_timeout_seconds = 0.25;
  /// Bounded connect-retry loop (ECONNREFUSED/EINTR) before giving up.
  int connect_attempts = 20;
  double connect_retry_delay_seconds = 0.05;
};

class TcpRuntime final : public Runtime {
 public:
  TcpRuntime() = default;
  explicit TcpRuntime(TcpOptions options) : options_(options) {}
  explicit TcpRuntime(FaultPlan plan, TcpOptions options = {},
                      RuntimeObs obs = {})
      : options_(options), plan_(std::move(plan)), obs_(obs) {}

  RuntimeStats run(const std::vector<Actor*>& actors) override;

 private:
  TcpOptions options_;
  FaultPlan plan_;
  RuntimeObs obs_;
};

/// Frame helpers shared with the tests: [i32 source][i32 tag][u32 len][bytes].
bool tcp_write_message(int fd, const Message& msg);
bool tcp_read_message(int fd, Message* msg);
/// As tcp_read_message, but on a receive timeout consults `keep_going` and
/// aborts (returning false) once it says stop. Null = wait forever.
bool tcp_read_message(int fd, Message* msg,
                      const std::function<bool()>& keep_going);

}  // namespace now
