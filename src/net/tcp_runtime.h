// TcpRuntime: the same actor protocol carried over real loopback TCP
// sockets, one connection per worker (star topology, exactly the paper's
// communication pattern — "the only interprocessor communication occurs
// between the master and each of the slaves").
//
// Actors still run on threads of this process, but every cross-rank message
// is serialized, framed, written to a socket and read back on the far side,
// exercising the full wire path a multi-host PVM/MPI deployment would use.
// Worker-to-worker sends are rejected (the paper's slaves never communicate).
#pragma once

#include "src/net/runtime.h"

namespace now {

class TcpRuntime final : public Runtime {
 public:
  RuntimeStats run(const std::vector<Actor*>& actors) override;
};

/// Frame helpers shared with the tests: [i32 source][i32 tag][u32 len][bytes].
bool tcp_write_message(int fd, const Message& msg);
bool tcp_read_message(int fd, Message* msg);

}  // namespace now
