#include "src/net/nowmp.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace now::nowmp {

namespace {

/// Per-task inbox supporting selective (source, tag) receive.
class Inbox {
 public:
  void push(Message msg) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Blocking selective receive.
  Message pop(int source, int tag) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (auto msg = take_locked(source, tag)) return std::move(*msg);
      cv_.wait(lock);
    }
  }

  std::optional<Message> try_pop(int source, int tag) {
    std::lock_guard<std::mutex> lock(mu_);
    return take_locked(source, tag);
  }

  bool probe(int source, int tag) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Message& m : queue_) {
      if (matches(m, source, tag)) return true;
    }
    return false;
  }

 private:
  static bool matches(const Message& m, int source, int tag) {
    return (source < 0 || m.source == source) && (tag < 0 || m.tag == tag);
  }

  std::optional<Message> take_locked(int source, int tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    return std::nullopt;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace

/// Routes messages between the tasks of one run().
class Router {
 public:
  explicit Router(int ntasks) : inboxes_(static_cast<std::size_t>(ntasks)) {}

  void deliver(int source, int dest, int tag, std::string payload) {
    if (dest < 0 || dest >= static_cast<int>(inboxes_.size())) {
      throw std::out_of_range("nowmp: send to unknown task id");
    }
    inboxes_[dest].push(Message{source, tag, std::move(payload)});
  }

  Inbox& inbox(int tid) { return inboxes_[tid]; }

 private:
  std::vector<Inbox> inboxes_;
};

void Task::init_send() { send_buffer_ = WireWriter(); }

void Task::pack_i32(std::int32_t v) { send_buffer_.i32(v); }
void Task::pack_i64(std::int64_t v) { send_buffer_.i64(v); }
void Task::pack_u64(std::uint64_t v) { send_buffer_.u64(v); }
void Task::pack_f64(double v) { send_buffer_.f64(v); }
void Task::pack_str(const std::string& s) { send_buffer_.str(s); }

void Task::send(int dest, int tag) {
  router_->deliver(tid_, dest, tag, send_buffer_.take());
  send_buffer_ = WireWriter();
}

void Task::load(Message msg) {
  recv_source_ = msg.source;
  recv_tag_ = msg.tag;
  recv_payload_ = std::move(msg.payload);
  reader_ = std::make_unique<WireReader>(recv_payload_);
}

void Task::recv(int source, int tag) {
  load(router_->inbox(tid_).pop(source, tag));
}

bool Task::try_recv(int source, int tag) {
  auto msg = router_->inbox(tid_).try_pop(source, tag);
  if (!msg.has_value()) return false;
  load(std::move(*msg));
  return true;
}

bool Task::probe(int source, int tag) {
  return router_->inbox(tid_).probe(source, tag);
}

namespace {

[[noreturn]] void unpack_fail(const char* what) {
  throw UnpackError(std::string("nowmp: unpack past end of message (") +
                    what + ")");
}

}  // namespace

std::int32_t Task::unpack_i32() {
  std::int32_t v;
  if (reader_ == nullptr || !reader_->i32(&v)) unpack_fail("i32");
  return v;
}

std::int64_t Task::unpack_i64() {
  std::int64_t v;
  if (reader_ == nullptr || !reader_->i64(&v)) unpack_fail("i64");
  return v;
}

std::uint64_t Task::unpack_u64() {
  std::uint64_t v;
  if (reader_ == nullptr || !reader_->u64(&v)) unpack_fail("u64");
  return v;
}

double Task::unpack_f64() {
  double v;
  if (reader_ == nullptr || !reader_->f64(&v)) unpack_fail("f64");
  return v;
}

std::string Task::unpack_str() {
  std::string v;
  if (reader_ == nullptr || !reader_->str(&v)) unpack_fail("str");
  return v;
}

void run(const std::vector<std::function<void(Task&)>>& tasks) {
  const int n = static_cast<int>(tasks.size());
  Router router(n);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      Task task(&router, tid, n);
      tasks[static_cast<std::size_t>(tid)](task);
    });
  }
  for (auto& t : threads) t.join();
}

void run(int ntasks, const std::function<void(Task&)>& master,
         const std::function<void(Task&)>& slave) {
  std::vector<std::function<void(Task&)>> tasks;
  tasks.push_back(master);
  for (int i = 1; i < ntasks; ++i) tasks.push_back(slave);
  run(tasks);
}

}  // namespace now::nowmp
