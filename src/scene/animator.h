// Animators: time → rigid transform for one scene object.
//
// The coherence change detector decides whether an object moved between two
// frames by comparing the transforms its animator produces; animators must
// therefore be deterministic pure functions of time, and objects at rest
// must reproduce bit-identical transforms (a pendulum hanging at angle 0
// yields exactly the identity every frame it rests).
#pragma once

#include <functional>
#include <memory>

#include "src/math/spline.h"
#include "src/math/transform.h"

namespace now {

class Animator {
 public:
  virtual ~Animator() = default;
  virtual Transform at(double time) const = 0;
  virtual std::unique_ptr<Animator> clone() const = 0;
};

/// No motion ever.
class StaticAnimator final : public Animator {
 public:
  Transform at(double) const override { return Transform::identity(); }
  std::unique_ptr<Animator> clone() const override {
    return std::make_unique<StaticAnimator>();
  }
};

/// Translation along a keyframed position curve. The object's local-space
/// geometry is translated by spline(t) (so geometry is authored around the
/// origin, or around wherever position 0,0,0 should map from).
class KeyframeAnimator final : public Animator {
 public:
  explicit KeyframeAnimator(Spline position) : position_(std::move(position)) {}

  Transform at(double time) const override {
    return Transform::translate(position_.evaluate(time));
  }
  std::unique_ptr<Animator> clone() const override {
    return std::make_unique<KeyframeAnimator>(position_);
  }
  const Spline& position() const { return position_; }

 private:
  Spline position_;
};

/// Rotation about an axis through a pivot point, with the angle supplied by
/// an arbitrary deterministic function of time. Used for every moving part
/// of the Newton cradle (marbles and their strings pivot rigidly).
class PivotRotationAnimator final : public Animator {
 public:
  using AngleFn = std::function<double(double)>;

  PivotRotationAnimator(const Vec3& pivot, const Vec3& unit_axis, AngleFn angle)
      : pivot_(pivot), axis_(unit_axis), angle_(std::move(angle)) {}

  Transform at(double time) const override {
    const double theta = angle_(time);
    if (theta == 0.0) return Transform::identity();
    const Transform rotate = Transform::rotate(Mat3::axis_angle(axis_, theta));
    return Transform::translate(pivot_)
        .compose(rotate)
        .compose(Transform::translate(-pivot_));
  }
  std::unique_ptr<Animator> clone() const override {
    return std::make_unique<PivotRotationAnimator>(pivot_, axis_, angle_);
  }

 private:
  Vec3 pivot_;
  Vec3 axis_;
  AngleFn angle_;
};

/// Uniform circular motion in a plane (used by stress-test scenes).
class OrbitAnimator final : public Animator {
 public:
  OrbitAnimator(const Vec3& center, const Vec3& unit_axis, double period)
      : center_(center), axis_(unit_axis), period_(period) {}

  Transform at(double time) const override {
    const double theta = kTwoPi * time / period_;
    const Transform rotate = Transform::rotate(Mat3::axis_angle(axis_, theta));
    return Transform::translate(center_)
        .compose(rotate)
        .compose(Transform::translate(-center_));
  }
  std::unique_ptr<Animator> clone() const override {
    return std::make_unique<OrbitAnimator>(center_, axis_, period_);
  }

 private:
  Vec3 center_;
  Vec3 axis_;
  double period_;
};

}  // namespace now
