#include "src/scene/animated_scene.h"

#include <cassert>

namespace now {

AnimatedScene AnimatedScene::clone() const {
  AnimatedScene out;
  out.materials_ = materials_;
  for (const SceneLight& light : lights_) {
    out.lights_.push_back(
        {light.base, light.animator ? light.animator->clone() : nullptr});
  }
  out.cuts_ = cuts_;
  out.frame_count_ = frame_count_;
  out.fps_ = fps_;
  out.width_ = width_;
  out.height_ = height_;
  out.background_ = background_;
  out.objects_.reserve(objects_.size());
  for (const SceneObject& obj : objects_) {
    out.objects_.push_back({obj.name, obj.local->clone(), obj.material_id,
                            obj.animator ? obj.animator->clone() : nullptr});
  }
  return out;
}

int AnimatedScene::add_material(const Material& m) {
  materials_.push_back(m);
  return static_cast<int>(materials_.size()) - 1;
}

int AnimatedScene::add_object(std::string name,
                              std::unique_ptr<Primitive> local,
                              int material_id,
                              std::unique_ptr<Animator> animator) {
  objects_.push_back(
      {std::move(name), std::move(local), material_id, std::move(animator)});
  return static_cast<int>(objects_.size()) - 1;
}

void AnimatedScene::add_light(const Light& light,
                              std::unique_ptr<Animator> animator) {
  lights_.push_back({light, std::move(animator)});
}

Light AnimatedScene::light_at(int i, int frame) const {
  const SceneLight& sl = lights_[i];
  if (!sl.animator) return sl.base;
  const Transform t = sl.animator->at(frame_time(frame));
  Light out = sl.base;
  out.position = t.apply_point(sl.base.position);
  out.direction = t.apply_direction(sl.base.direction);
  return out;
}

bool AnimatedScene::lights_changed(int frame_a, int frame_b) const {
  for (const SceneLight& sl : lights_) {
    if (!sl.animator) continue;
    if (!(sl.animator->at(frame_time(frame_a)) ==
          sl.animator->at(frame_time(frame_b)))) {
      return true;
    }
  }
  return false;
}

void AnimatedScene::set_camera(const Camera& c) { cuts_ = {{0, c}}; }

void AnimatedScene::add_camera_cut(int first_frame, const Camera& c) {
  assert(cuts_.empty() || first_frame > cuts_.back().first_frame);
  cuts_.push_back({first_frame, c});
}

void AnimatedScene::set_frames(int count, double fps) {
  frame_count_ = count;
  fps_ = fps;
}

void AnimatedScene::set_background(const Color& c) { background_ = c; }

void AnimatedScene::set_resolution(int width, int height) {
  width_ = width;
  height_ = height;
}

Transform AnimatedScene::object_transform(int id, int frame) const {
  const SceneObject& obj = objects_[id];
  if (!obj.animator) return Transform::identity();
  return obj.animator->at(frame_time(frame));
}

bool AnimatedScene::object_changed(int id, int frame_a, int frame_b) const {
  if (!objects_[id].animator) return false;
  return object_transform(id, frame_a) != object_transform(id, frame_b);
}

std::vector<int> AnimatedScene::changed_objects(int frame_a,
                                                int frame_b) const {
  std::vector<int> out;
  for (int id = 0; id < object_count(); ++id) {
    if (object_changed(id, frame_a, frame_b)) out.push_back(id);
  }
  return out;
}

const Camera& AnimatedScene::camera_at(int frame) const {
  const CameraCut* active = &cuts_.front();
  for (const CameraCut& cut : cuts_) {
    if (cut.first_frame <= frame) active = &cut;
  }
  return active->camera;
}

bool AnimatedScene::camera_changed(int frame_a, int frame_b) const {
  return camera_at(frame_a) != camera_at(frame_b);
}

World AnimatedScene::world_at(int frame) const {
  World world;
  for (int m = 0; m < material_count(); ++m) world.add_material(materials_[m]);
  for (int i = 0; i < light_count(); ++i) world.add_light(light_at(i, frame));
  world.set_camera(camera_at(frame));
  world.set_background(background_);
  for (int id = 0; id < object_count(); ++id) {
    const SceneObject& obj = objects_[id];
    std::unique_ptr<Primitive> prim =
        obj.animator ? obj.local->transformed(object_transform(id, frame))
                     : obj.local->clone();
    world.add_object(std::move(prim), obj.material_id, id);
  }
  return world;
}

std::vector<AnimatedScene::Shot> AnimatedScene::split_shots() const {
  std::vector<Shot> shots;
  int shot_start = 0;
  for (int frame = 1; frame < frame_count_; ++frame) {
    if (camera_changed(frame - 1, frame)) {
      shots.push_back({shot_start, frame - shot_start});
      shot_start = frame;
    }
  }
  shots.push_back({shot_start, frame_count_ - shot_start});
  return shots;
}

}  // namespace now
