#include "src/scene/scene_parser.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/geom/box.h"
#include "src/geom/cylinder.h"
#include "src/geom/disc.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/geom/triangle.h"

namespace now {
namespace {

struct Token {
  enum Kind { kIdent, kNumber, kString, kLBrace, kRBrace, kEnd } kind;
  std::string text;
  double number = 0.0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space();
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_ = {Token::kEnd, "", 0.0, line_};
      return;
    }
    const char c = src_[pos_];
    if (c == '{') {
      ++pos_;
      current_ = {Token::kLBrace, "{", 0.0, line_};
    } else if (c == '}') {
      ++pos_;
      current_ = {Token::kRBrace, "}", 0.0, line_};
    } else if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < src_.size() && src_[pos_] != '"') s.push_back(src_[pos_++]);
      if (pos_ < src_.size()) ++pos_;  // closing quote
      current_ = {Token::kString, s, 0.0, line_};
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+' || c == '.') {
      std::size_t end = pos_;
      while (end < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '.' || src_[end] == '-' || src_[end] == '+' ||
              src_[end] == 'e' || src_[end] == 'E')) {
        ++end;
      }
      const std::string text = src_.substr(pos_, end - pos_);
      current_ = {Token::kNumber, text, std::stod(text), line_};
      pos_ = end;
    } else {
      std::size_t end = pos_;
      while (end < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[end])) ||
              src_[end] == '_')) {
        ++end;
      }
      if (end == pos_) {
        throw std::runtime_error("line " + std::to_string(line_) +
                                 ": unexpected character '" + c + "'");
      }
      current_ = {Token::kIdent, src_.substr(pos_, end - pos_), 0.0, line_};
      pos_ = end;
    }
  }

  void skip_space() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

[[noreturn]] void fail(const Token& t, const std::string& msg) {
  throw std::runtime_error("line " + std::to_string(t.line) + ": " + msg);
}

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  AnimatedScene parse() {
    expect_ident("scene");
    expect(Token::kLBrace);
    while (lex_.peek().kind != Token::kRBrace) parse_top_item();
    expect(Token::kRBrace);
    if (lex_.peek().kind != Token::kEnd) fail(lex_.peek(), "trailing input");
    return std::move(scene_);
  }

 private:
  void parse_top_item() {
    const Token t = expect(Token::kIdent);
    if (t.text == "resolution") {
      const int w = static_cast<int>(number());
      const int h = static_cast<int>(number());
      scene_.set_resolution(w, h);
      aspect_ = static_cast<double>(w) / h;
    } else if (t.text == "frames") {
      frames_ = static_cast<int>(number());
      scene_.set_frames(frames_, fps_);
    } else if (t.text == "fps") {
      fps_ = number();
      scene_.set_frames(frames_, fps_);
    } else if (t.text == "background") {
      scene_.set_background(color3());
    } else if (t.text == "camera") {
      parse_camera();
    } else if (t.text == "material") {
      parse_material();
    } else if (t.text == "object") {
      parse_object();
    } else if (t.text == "light") {
      parse_light();
    } else {
      fail(t, "unknown scene item '" + t.text + "'");
    }
  }

  void parse_camera() {
    expect(Token::kLBrace);
    Vec3 from{0, 0, 5};
    Vec3 at{0, 0, 0};
    Vec3 up{0, 1, 0};
    double fov = 50.0;
    int cut = -1;
    while (lex_.peek().kind != Token::kRBrace) {
      const Token t = expect(Token::kIdent);
      if (t.text == "from") {
        from = vec3();
      } else if (t.text == "at") {
        at = vec3();
      } else if (t.text == "up") {
        up = vec3();
      } else if (t.text == "fov") {
        fov = number();
      } else if (t.text == "cut") {
        cut = static_cast<int>(number());
      } else {
        fail(t, "unknown camera field '" + t.text + "'");
      }
    }
    expect(Token::kRBrace);
    const Camera cam(from, at, up, fov, aspect_);
    if (cut < 0 && !saw_camera_) {
      scene_.set_camera(cam);
      saw_camera_ = true;
    } else {
      scene_.add_camera_cut(cut < 0 ? 0 : cut, cam);
    }
  }

  void parse_material() {
    const std::string name = expect(Token::kString).text;
    expect(Token::kLBrace);
    std::string type = "matte";
    Color color = Color::gray(0.8);
    Color color2 = Color::gray(0.2);
    double ior = 1.5;
    double cell = 1.0;
    double bw = 0.6, bh = 0.25, mortar = 0.03;
    double reflectivity = -1.0, transmittance = -1.0;
    double ambient = -1.0, diffuse = -1.0, specular = -1.0, shininess = -1.0;
    double frequency = 3.0, turbulence_amt = 1.5;
    while (lex_.peek().kind != Token::kRBrace) {
      const Token t = expect(Token::kIdent);
      if (t.text == "type") {
        type = expect(Token::kIdent).text;
      } else if (t.text == "color") {
        color = color3();
      } else if (t.text == "color2") {
        color2 = color3();
      } else if (t.text == "ior") {
        ior = number();
      } else if (t.text == "cell") {
        cell = number();
      } else if (t.text == "brick_size") {
        bw = number();
        bh = number();
      } else if (t.text == "mortar") {
        mortar = number();
      } else if (t.text == "reflectivity") {
        reflectivity = number();
      } else if (t.text == "transmittance") {
        transmittance = number();
      } else if (t.text == "ambient") {
        ambient = number();
      } else if (t.text == "diffuse") {
        diffuse = number();
      } else if (t.text == "specular") {
        specular = number();
      } else if (t.text == "shininess") {
        shininess = number();
      } else if (t.text == "frequency") {
        frequency = number();
      } else if (t.text == "turbulence") {
        turbulence_amt = number();
      } else {
        fail(t, "unknown material field '" + t.text + "'");
      }
    }
    expect(Token::kRBrace);

    Material m;
    if (type == "matte") {
      m = Material::matte(color);
    } else if (type == "chrome") {
      m = Material::chrome();
    } else if (type == "glass") {
      m = Material::glass(ior);
    } else if (type == "mirror") {
      m = Material::mirror(color, reflectivity < 0 ? 0.7 : reflectivity);
    } else if (type == "checker") {
      m = Material::textured(
          std::make_shared<CheckerTexture>(color, color2, cell));
    } else if (type == "brick") {
      m = Material::textured(
          std::make_shared<BrickTexture>(color, color2, bw, bh, mortar));
    } else if (type == "marble") {
      m = Material::textured(std::make_shared<MarbleTexture>(
          color, color2, frequency, turbulence_amt));
    } else {
      fail(lex_.peek(), "unknown material type '" + type + "'");
    }
    if (reflectivity >= 0) m.reflectivity = reflectivity;
    if (transmittance >= 0) m.transmittance = transmittance;
    if (ambient >= 0) m.ambient = ambient;
    if (diffuse >= 0) m.diffuse = diffuse;
    if (specular >= 0) m.specular = specular;
    if (shininess >= 0) m.shininess = shininess;
    materials_[name] = scene_.add_material(m);
  }

  std::unique_ptr<Primitive> parse_shape(const Token& t) {
    expect(Token::kLBrace);
    std::map<std::string, Vec3> vecs;
    std::map<std::string, double> nums;
    while (lex_.peek().kind != Token::kRBrace) {
      const Token f = expect(Token::kIdent);
      if (f.text == "radius" || f.text == "d") {
        nums[f.text] = number();
      } else {
        vecs[f.text] = vec3();
      }
    }
    expect(Token::kRBrace);

    const auto vec = [&](const std::string& key, const Vec3& dflt = {}) {
      const auto it = vecs.find(key);
      return it == vecs.end() ? dflt : it->second;
    };
    const auto num = [&](const std::string& key, double dflt) {
      const auto it = nums.find(key);
      return it == nums.end() ? dflt : it->second;
    };

    if (t.text == "sphere") {
      return std::make_unique<Sphere>(vec("center"), num("radius", 1.0));
    }
    if (t.text == "plane") {
      if (vecs.count("point") != 0) {
        return std::make_unique<Plane>(
            Plane::through(vec("point"), vec("normal", {0, 1, 0})));
      }
      return std::make_unique<Plane>(vec("normal", {0, 1, 0}).normalized(),
                                     num("d", 0.0));
    }
    if (t.text == "box") {
      if (vecs.count("min") != 0) {
        return std::make_unique<Box>(Box::from_corners(vec("min"), vec("max")));
      }
      return std::make_unique<Box>(vec("center"), vec("half", {1, 1, 1}));
    }
    if (t.text == "cylinder") {
      return std::make_unique<Cylinder>(vec("p0"), vec("p1", {0, 1, 0}),
                                        num("radius", 0.5));
    }
    if (t.text == "disc") {
      return std::make_unique<Disc>(vec("center"),
                                    vec("normal", {0, 1, 0}).normalized(),
                                    num("radius", 1.0));
    }
    if (t.text == "triangle") {
      return std::make_unique<Triangle>(vec("v0"), vec("v1"), vec("v2"));
    }
    fail(t, "unknown shape '" + t.text + "'");
  }

  std::unique_ptr<Animator> parse_animate() {
    expect(Token::kLBrace);
    const Token first = expect(Token::kIdent);
    std::unique_ptr<Animator> out;
    if (first.text == "mode" || first.text == "key") {
      InterpMode mode = InterpMode::kLinear;
      Spline spline(mode);
      bool pending_first_key = (first.text == "key");
      if (first.text == "mode") {
        const std::string m = expect(Token::kIdent).text;
        if (m == "linear") {
          mode = InterpMode::kLinear;
        } else if (m == "step") {
          mode = InterpMode::kStep;
        } else if (m == "catmullrom") {
          mode = InterpMode::kCatmullRom;
        } else {
          fail(first, "unknown interpolation mode '" + m + "'");
        }
        spline = Spline(mode);
      }
      const auto read_key = [&]() {
        const double frame = number();
        spline.add_key(frame / fps_, vec3());
      };
      if (pending_first_key) read_key();
      while (lex_.peek().kind != Token::kRBrace) {
        const Token t = expect(Token::kIdent);
        if (t.text != "key") fail(t, "expected 'key'");
        read_key();
      }
      out = std::make_unique<KeyframeAnimator>(std::move(spline));
    } else if (first.text == "orbit") {
      Vec3 center, axis{0, 1, 0};
      double period = 2.0;
      while (lex_.peek().kind != Token::kRBrace) {
        const Token t = expect(Token::kIdent);
        if (t.text == "center") {
          center = vec3();
        } else if (t.text == "axis") {
          axis = vec3().normalized();
        } else if (t.text == "period") {
          period = number();
        } else {
          fail(t, "unknown orbit field '" + t.text + "'");
        }
      }
      out = std::make_unique<OrbitAnimator>(center, axis, period);
    } else if (first.text == "pendulum") {
      Vec3 pivot, axis{0, 0, 1};
      double amplitude = 30.0, period = 2.0, phase = 0.0;
      while (lex_.peek().kind != Token::kRBrace) {
        const Token t = expect(Token::kIdent);
        if (t.text == "pivot") {
          pivot = vec3();
        } else if (t.text == "axis") {
          axis = vec3().normalized();
        } else if (t.text == "amplitude") {
          amplitude = number();
        } else if (t.text == "period") {
          period = number();
        } else if (t.text == "phase") {
          phase = number();
        } else {
          fail(t, "unknown pendulum field '" + t.text + "'");
        }
      }
      const double amp_rad = degrees_to_radians(amplitude);
      out = std::make_unique<PivotRotationAnimator>(
          pivot, axis, [amp_rad, period, phase](double time) {
            return amp_rad * std::cos(kTwoPi * time / period + phase);
          });
    } else {
      fail(first, "unknown animate directive '" + first.text + "'");
    }
    expect(Token::kRBrace);
    return out;
  }

  void parse_object() {
    const std::string name = expect(Token::kString).text;
    expect(Token::kLBrace);
    std::unique_ptr<Primitive> prim;
    std::unique_ptr<Animator> anim;
    int material_id = 0;
    bool saw_material = false;
    while (lex_.peek().kind != Token::kRBrace) {
      const Token t = expect(Token::kIdent);
      if (t.text == "material") {
        const std::string mat_name = expect(Token::kString).text;
        const auto it = materials_.find(mat_name);
        if (it == materials_.end()) fail(t, "unknown material '" + mat_name + "'");
        material_id = it->second;
        saw_material = true;
      } else if (t.text == "animate") {
        anim = parse_animate();
      } else {
        prim = parse_shape(t);
      }
    }
    expect(Token::kRBrace);
    if (!prim) fail(lex_.peek(), "object '" + name + "' has no shape");
    if (!saw_material) fail(lex_.peek(), "object '" + name + "' has no material");
    scene_.add_object(name, std::move(prim), material_id, std::move(anim));
  }

  void parse_light() {
    expect(Token::kLBrace);
    std::string type = "point";
    Vec3 position{0, 5, 0};
    Vec3 direction{0, -1, 0};
    Color color = Color::white();
    double intensity = 1.0;
    std::unique_ptr<Animator> animator;
    while (lex_.peek().kind != Token::kRBrace) {
      const Token t = expect(Token::kIdent);
      if (t.text == "type") {
        type = expect(Token::kIdent).text;
      } else if (t.text == "position") {
        position = vec3();
      } else if (t.text == "direction") {
        direction = vec3();
      } else if (t.text == "color") {
        color = color3();
      } else if (t.text == "intensity") {
        intensity = number();
      } else if (t.text == "animate") {
        animator = parse_animate();
      } else {
        fail(t, "unknown light field '" + t.text + "'");
      }
    }
    expect(Token::kRBrace);
    if (type == "point") {
      scene_.add_light(Light::point(position, color, intensity),
                       std::move(animator));
    } else if (type == "directional") {
      scene_.add_light(Light::directional(direction, color, intensity),
                       std::move(animator));
    } else {
      fail(lex_.peek(), "unknown light type '" + type + "'");
    }
  }

  Token expect(Token::Kind kind) {
    Token t = lex_.take();
    if (t.kind != kind) fail(t, "unexpected token '" + t.text + "'");
    return t;
  }

  void expect_ident(const std::string& word) {
    const Token t = expect(Token::kIdent);
    if (t.text != word) fail(t, "expected '" + word + "'");
  }

  double number() { return expect(Token::kNumber).number; }
  Vec3 vec3() {
    const double x = number();
    const double y = number();
    const double z = number();
    return {x, y, z};
  }
  Color color3() {
    const double r = number();
    const double g = number();
    const double b = number();
    return {r, g, b};
  }

  Lexer lex_;
  AnimatedScene scene_;
  std::map<std::string, int> materials_;
  double fps_ = 15.0;
  int frames_ = 1;
  double aspect_ = 320.0 / 240.0;
  bool saw_camera_ = false;
};

}  // namespace

ParseResult parse_scene(const std::string& source) {
  ParseResult result;
  try {
    Parser parser(source);
    result.scene = parser.parse();
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

ParseResult parse_scene_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.error = path + ": cannot open";
    return result;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ParseResult result = parse_scene(ss.str());
  if (!result.ok) result.error = path + ": " + result.error;
  return result;
}

}  // namespace now
