// AnimatedScene: the full animation description — objects with animators,
// materials, lights, per-shot cameras, frame count and frame rate.
//
// A World (one frame of world-space geometry) is instantiated per frame;
// object ids are stable across frames, which is what lets the coherence
// change detector match moving objects between consecutive frames.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/scene/animator.h"
#include "src/trace/world.h"

namespace now {

struct SceneObject {
  std::string name;
  std::unique_ptr<Primitive> local;      // local-space geometry
  int material_id = 0;
  std::unique_ptr<Animator> animator;    // nullptr means static
};

/// A light with an optional motion track. A moving light invalidates every
/// pixel (any shadow or shading term can change), so the coherent renderer
/// falls back to a full render across frames where a light moved — correct
/// and conservative, matching the voxel algorithm's scope (it tracks object
/// motion only).
struct SceneLight {
  Light base;
  std::unique_ptr<Animator> animator;  // nullptr means static
};

/// A camera cut: `camera` applies from `first_frame` until the next cut.
struct CameraCut {
  int first_frame = 0;
  Camera camera;
};

class AnimatedScene {
 public:
  AnimatedScene() = default;
  AnimatedScene(AnimatedScene&&) = default;
  AnimatedScene& operator=(AnimatedScene&&) = default;

  AnimatedScene clone() const;

  // -- authoring -----------------------------------------------------------
  int add_material(const Material& m);
  int add_object(std::string name, std::unique_ptr<Primitive> local,
                 int material_id, std::unique_ptr<Animator> animator = nullptr);
  void add_light(const Light& light,
                 std::unique_ptr<Animator> animator = nullptr);
  void set_camera(const Camera& c);             // single shot
  void add_camera_cut(int first_frame, const Camera& c);
  void set_frames(int count, double fps);
  void set_background(const Color& c);
  void set_resolution(int width, int height);

  // -- queries -------------------------------------------------------------
  int frame_count() const { return frame_count_; }
  double fps() const { return fps_; }
  double frame_time(int frame) const { return frame / fps_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int object_count() const { return static_cast<int>(objects_.size()); }
  const SceneObject& object(int id) const { return objects_[id]; }
  int material_count() const { return static_cast<int>(materials_.size()); }
  const Material& material(int id) const { return materials_[id]; }
  int light_count() const { return static_cast<int>(lights_.size()); }
  /// Light `i` evaluated at `frame` (animator applied).
  Light light_at(int i, int frame) const;
  const Color& background() const { return background_; }

  /// Transform of object `id` at `frame`.
  Transform object_transform(int id, int frame) const;

  /// Did the object's transform change between the two frames?
  bool object_changed(int id, int frame_a, int frame_b) const;

  /// Object ids whose transform differs between the two frames.
  std::vector<int> changed_objects(int frame_a, int frame_b) const;

  const Camera& camera_at(int frame) const;
  bool camera_changed(int frame_a, int frame_b) const;

  /// Did any light move between the two frames?
  bool lights_changed(int frame_a, int frame_b) const;

  /// Instantiate the world-space geometry of `frame`.
  World world_at(int frame) const;

  /// Frame ranges [first, last] with a constant camera — the independent
  /// shots the paper parallelizes over (camera movement "logically separates
  /// one sequence from another").
  struct Shot {
    int first_frame = 0;
    int frame_count = 0;
  };
  std::vector<Shot> split_shots() const;

 private:
  std::vector<SceneObject> objects_;
  std::vector<Material> materials_;
  std::vector<SceneLight> lights_;
  std::vector<CameraCut> cuts_{{0, Camera{}}};
  int frame_count_ = 1;
  double fps_ = 15.0;
  int width_ = 320;
  int height_ = 240;
  Color background_{0.05, 0.05, 0.08};
};

}  // namespace now
