// Text scene format parser.
//
// A small, POV-inspired description language so animations can be authored
// without recompiling. Grammar (informal):
//
//   scene {
//     resolution 320 240
//     frames 45
//     fps 15
//     background 0.05 0.05 0.08
//     camera { from 0 2 8  at 0 1 0  up 0 1 0  fov 40 }
//     camera { cut 20  from 4 2 4  at 0 1 0  up 0 1 0  fov 40 }   # camera cut
//     material "red"   { type matte  color 0.8 0.2 0.2 }
//     material "chrome"{ type chrome }
//     material "glass" { type glass  ior 1.5 }
//     material "floor" { type checker  color 0.6 0.6 0.6  color2 0.2 0.2 0.2  cell 0.8 }
//     material "wall"  { type brick  color 0.55 0.22 0.16  color2 0.6 0.6 0.55
//                        brick_size 0.6 0.25  mortar 0.03 }
//     object "ball" {
//       sphere { center 0 1 0  radius 0.5 }
//       material "glass"
//       animate { mode linear  key 0 0 0 0  key 44 3 0 0 }        # frame x y z
//     }
//     object "post" {
//       cylinder { p0 0 0 0  p1 0 2 0  radius 0.1 }
//       material "red"
//       animate { pendulum  pivot 0 2 0  axis 0 0 1  amplitude 30  period 2 }
//     }
//     light { type point  position 0 5 0  color 1 1 1  intensity 1 }
//   }
//
// `#` starts a comment to end of line. Numbers are decimal; names are quoted.
#pragma once

#include <string>

#include "src/scene/animated_scene.h"

namespace now {

struct ParseResult {
  bool ok = false;
  std::string error;     // "line N: message" when !ok
  AnimatedScene scene;
};

ParseResult parse_scene(const std::string& source);

/// Parse from a file (adds the path to error messages).
ParseResult parse_scene_file(const std::string& path);

}  // namespace now
