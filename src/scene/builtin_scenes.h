// Built-in animation scenes.
//
// `newton_cradle_scene` reproduces the paper's test workload: "a set of
// suspended chrome marbles, which when set into motion by raising the marble
// on either end, illustrates the law of the conservation of energy",
// modelled with exactly the paper's inventory — one plane, five spheres and
// sixteen cylinders (6 frame members + 2 strings per marble).
//
// `bouncing_ball_scene` reproduces the Figure 1/2 animation: a glass ball
// bouncing around a brick room.
#pragma once

#include "src/math/rng.h"
#include "src/scene/animated_scene.h"

namespace now {

struct CradleParams {
  int frames = 45;
  double fps = 15.0;
  int width = 320;
  int height = 240;
  double amplitude_degrees = 45.0;  // release angle of the end marble
  double period_seconds = 2.0;      // full pendulum period
};

AnimatedScene newton_cradle_scene(const CradleParams& params = {});

struct BounceParams {
  int frames = 30;
  double fps = 15.0;
  int width = 320;
  int height = 240;
  double restitution = 0.85;
  std::uint64_t seed = 7;  // perturbs the initial velocity
};

AnimatedScene bouncing_ball_scene(const BounceParams& params = {});

/// Stress scene: `sphere_count` spheres orbiting a center plus a textured
/// floor; exercises many simultaneously-moving objects.
AnimatedScene orbit_scene(int sphere_count, int frames, int width = 160,
                          int height = 120);

/// Randomized animated scene for property tests: a mix of static and
/// linearly-moving primitives of random types, sizes and materials.
/// Deterministic in `rng`'s state.
AnimatedScene random_scene(Rng* rng, int object_count, int frames,
                           int width = 64, int height = 48);

/// Two-shot scene (camera cut at `cut_frame`) for shot-splitting tests.
AnimatedScene two_shot_scene(int frames, int cut_frame);

/// Geodesic sphere mesh: an icosahedron subdivided `subdivisions` times and
/// projected onto a sphere of the given radius.
std::unique_ptr<Primitive> make_icosphere(const Vec3& center, double radius,
                                          int subdivisions);

/// Gallery scene: one moving instance of every primitive type (sphere, box,
/// cylinder, disc, triangle, icosphere mesh) over a plane — exercises the
/// change detector's footprint test for every shape.
AnimatedScene gallery_scene(int frames, int width = 96, int height = 72);

}  // namespace now
