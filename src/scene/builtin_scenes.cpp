#include "src/scene/builtin_scenes.h"

#include <cmath>

#include "src/geom/box.h"
#include "src/geom/cylinder.h"
#include "src/geom/disc.h"
#include "src/geom/triangle.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"

namespace now {
namespace {

/// Angle schedule of an ideal Newton cradle: the left end marble is released
/// from -A, reaches bottom after a quarter period, then the impact energy
/// alternates between the right marble (out and back, half a period) and the
/// left (same). All angles are exactly 0 while a marble rests, so resting
/// marbles produce identity transforms and stay coherent.
struct CradleSchedule {
  double amplitude;  // radians
  double period;     // seconds

  double omega() const { return kTwoPi / period; }

  double left_angle(double t) const {
    const double t0 = period / 4.0;
    if (t < t0) return -amplitude * std::cos(omega() * t);
    const double v = std::fmod(t - t0, period);
    if (v < period / 2.0) return 0.0;  // right marble is swinging
    return -amplitude * std::sin(omega() * (v - period / 2.0));
  }

  double right_angle(double t) const {
    const double t0 = period / 4.0;
    if (t < t0) return 0.0;
    const double v = std::fmod(t - t0, period);
    if (v < period / 2.0) return amplitude * std::sin(omega() * v);
    return 0.0;
  }
};

}  // namespace

AnimatedScene newton_cradle_scene(const CradleParams& params) {
  AnimatedScene scene;
  scene.set_frames(params.frames, params.fps);
  scene.set_resolution(params.width, params.height);
  scene.set_background(Color{0.04, 0.045, 0.07});

  // Geometry layout (meters).
  constexpr double kBallRadius = 0.28;
  constexpr double kBallY = 1.2;       // resting marble center height
  constexpr double kRailY = 2.4;       // string attachment height
  constexpr double kRailZ = 0.5;       // rail half separation
  constexpr double kFrameX = 1.9;      // leg x position
  constexpr int kBallCount = 5;

  const CradleSchedule schedule{degrees_to_radians(params.amplitude_degrees),
                                params.period_seconds};

  // Materials.
  const int chrome = scene.add_material(Material::chrome());
  Material wood = Material::textured(std::make_shared<MarbleTexture>(
      Color{0.45, 0.26, 0.12}, Color{0.3, 0.16, 0.07}, 3.0, 1.5));
  wood.specular = 0.15;
  const int frame_mat = scene.add_material(wood);
  Material string_m = Material::matte(Color{0.75, 0.75, 0.7});
  const int string_mat = scene.add_material(string_m);
  Material floor_m = Material::textured(std::make_shared<CheckerTexture>(
      Color{0.55, 0.55, 0.6}, Color{0.2, 0.2, 0.25}, 0.8));
  floor_m.reflectivity = 0.15;  // glossy floor multiplies reflective load
  const int floor_mat = scene.add_material(floor_m);

  // The single plane: the floor.
  scene.add_object("floor", std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0),
                   floor_mat);

  // Frame: 4 legs + 2 rails (6 cylinders).
  for (const double sx : {-1.0, 1.0}) {
    for (const double sz : {-1.0, 1.0}) {
      scene.add_object(
          "leg", std::make_unique<Cylinder>(Vec3{sx * kFrameX, 0, sz * kRailZ},
                                            Vec3{sx * kFrameX, kRailY, sz * kRailZ},
                                            0.06),
          frame_mat);
    }
  }
  for (const double sz : {-1.0, 1.0}) {
    scene.add_object(
        "rail", std::make_unique<Cylinder>(Vec3{-kFrameX, kRailY, sz * kRailZ},
                                           Vec3{kFrameX, kRailY, sz * kRailZ},
                                           0.05),
        frame_mat);
  }

  // Marbles and strings (5 spheres + 10 cylinders).
  for (int i = 0; i < kBallCount; ++i) {
    const double x = (i - (kBallCount - 1) / 2.0) * 2.0 * kBallRadius;
    const bool is_left = (i == 0);
    const bool is_right = (i == kBallCount - 1);

    PivotRotationAnimator::AngleFn angle;
    if (is_left) {
      angle = [schedule](double t) { return schedule.left_angle(t); };
    } else if (is_right) {
      angle = [schedule](double t) { return schedule.right_angle(t); };
    }

    const Vec3 rest_center{x, kBallY, 0};
    std::unique_ptr<Animator> ball_anim;
    if (angle) {
      ball_anim = std::make_unique<PivotRotationAnimator>(
          Vec3{x, kRailY, 0}, Vec3{0, 0, 1}, angle);
    }
    scene.add_object("marble" + std::to_string(i),
                     std::make_unique<Sphere>(rest_center, kBallRadius),
                     chrome, std::move(ball_anim));

    for (const double sz : {-1.0, 1.0}) {
      const Vec3 attach{x, kRailY, sz * kRailZ};
      std::unique_ptr<Animator> string_anim;
      if (angle) {
        // Strings pivot rigidly about their own rail attachment; the
        // rotation is the same z-axis rotation as the marble's.
        string_anim = std::make_unique<PivotRotationAnimator>(
            attach, Vec3{0, 0, 1}, angle);
      }
      scene.add_object("string" + std::to_string(i),
                       std::make_unique<Cylinder>(attach, rest_center, 0.012),
                       string_mat, std::move(string_anim));
    }
  }

  // Lights: a key and a fill so the chrome marbles carry strong highlights
  // and the floor carries shadows (expensive pixels, per Section 4).
  scene.add_light(Light::point({3.0, 4.5, 3.5}, Color{1.0, 0.97, 0.9}, 0.85));
  scene.add_light(Light::point({-2.5, 3.5, 2.0}, Color{0.5, 0.55, 0.7}, 0.5));

  scene.set_camera(Camera{{0.0, 2.0, 5.2},
                          {0.0, 1.35, 0.0},
                          {0, 1, 0},
                          36.0,
                          static_cast<double>(params.width) / params.height});
  return scene;
}

AnimatedScene bouncing_ball_scene(const BounceParams& params) {
  AnimatedScene scene;
  scene.set_frames(params.frames, params.fps);
  scene.set_resolution(params.width, params.height);
  scene.set_background(Color{0.02, 0.02, 0.03});

  // Room: brick walls, checker floor, plain ceiling. Camera looks down the
  // room from near the (open) front face.
  constexpr double kHalfX = 2.5;
  constexpr double kBackZ = -2.5;
  constexpr double kCeilY = 4.0;
  constexpr double kBallR = 0.45;

  Material brick = Material::textured(std::make_shared<BrickTexture>(
      Color{0.55, 0.22, 0.16}, Color{0.65, 0.63, 0.58}, 0.6, 0.25, 0.03));
  const int brick_mat = scene.add_material(brick);
  Material floor_m = Material::textured(std::make_shared<CheckerTexture>(
      Color{0.6, 0.58, 0.5}, Color{0.3, 0.28, 0.25}, 0.7));
  const int floor_mat = scene.add_material(floor_m);
  const int ceil_mat = scene.add_material(Material::matte(Color{0.7, 0.7, 0.68}));
  const int glass_mat = scene.add_material(Material::glass(1.5));

  scene.add_object("floor", std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0),
                   floor_mat);
  scene.add_object("ceiling", std::make_unique<Plane>(Vec3{0, -1, 0}, -kCeilY),
                   ceil_mat);
  scene.add_object("back", std::make_unique<Plane>(Vec3{0, 0, 1}, kBackZ),
                   brick_mat);
  scene.add_object("left", std::make_unique<Plane>(Vec3{1, 0, 0}, -kHalfX),
                   brick_mat);
  scene.add_object("right", std::make_unique<Plane>(Vec3{-1, 0, 0}, -kHalfX),
                   brick_mat);

  // Simulate the bounce at fine timesteps and keyframe every frame. The
  // sphere is authored at the origin; the keyframe animator translates it.
  Spline path(InterpMode::kLinear);
  {
    Rng rng(params.seed);
    Vec3 pos{-1.2, 2.6, -0.8};
    Vec3 vel{1.4 + rng.uniform(-0.2, 0.2), 0.0, 1.1 + rng.uniform(-0.2, 0.2)};
    constexpr double kG = 9.81;
    const double frame_dt = 1.0 / params.fps;
    constexpr int kSubsteps = 40;
    for (int frame = 0; frame < params.frames; ++frame) {
      path.add_key(frame * frame_dt, pos);
      for (int s = 0; s < kSubsteps; ++s) {
        const double dt = frame_dt / kSubsteps;
        vel.y -= kG * dt;
        pos += vel * dt;
        if (pos.y < kBallR) {
          pos.y = kBallR + (kBallR - pos.y);
          vel.y = -vel.y * params.restitution;
        }
        if (pos.x < -kHalfX + kBallR) {
          pos.x = 2 * (-kHalfX + kBallR) - pos.x;
          vel.x = -vel.x * params.restitution;
        }
        if (pos.x > kHalfX - kBallR) {
          pos.x = 2 * (kHalfX - kBallR) - pos.x;
          vel.x = -vel.x * params.restitution;
        }
        if (pos.z < kBackZ + kBallR) {
          pos.z = 2 * (kBackZ + kBallR) - pos.z;
          vel.z = -vel.z * params.restitution;
        }
        if (pos.z > 1.5 - kBallR) {  // invisible front wall keeps it in view
          pos.z = 2 * (1.5 - kBallR) - pos.z;
          vel.z = -vel.z * params.restitution;
        }
      }
    }
  }
  scene.add_object("ball", std::make_unique<Sphere>(Vec3{0, 0, 0}, kBallR),
                   glass_mat, std::make_unique<KeyframeAnimator>(std::move(path)));

  scene.add_light(Light::point({1.5, 3.6, 1.0}, Color{1.0, 0.98, 0.92}, 0.95));
  scene.add_light(Light::point({-1.8, 3.0, 0.5}, Color{0.45, 0.5, 0.65}, 0.45));

  scene.set_camera(Camera{{0.0, 1.9, 4.6},
                          {0.0, 1.1, -1.0},
                          {0, 1, 0},
                          46.0,
                          static_cast<double>(params.width) / params.height});
  return scene;
}

AnimatedScene orbit_scene(int sphere_count, int frames, int width,
                          int height) {
  AnimatedScene scene;
  scene.set_frames(frames, 15.0);
  scene.set_resolution(width, height);
  scene.set_background(Color{0.03, 0.03, 0.05});

  Material floor_m = Material::textured(std::make_shared<CheckerTexture>(
      Color{0.5, 0.5, 0.55}, Color{0.22, 0.22, 0.26}, 1.0));
  const int floor_mat = scene.add_material(floor_m);
  scene.add_object("floor", std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0),
                   floor_mat);

  Rng rng(42);
  for (int i = 0; i < sphere_count; ++i) {
    Material m = Material::matte(Color{rng.uniform(0.3, 0.9),
                                       rng.uniform(0.3, 0.9),
                                       rng.uniform(0.3, 0.9)});
    m.reflectivity = rng.uniform(0.0, 0.4);
    const int mat = scene.add_material(m);
    const double orbit_r = rng.uniform(0.8, 2.5);
    const double angle0 = rng.uniform(0.0, kTwoPi);
    const double y = rng.uniform(0.4, 2.0);
    const Vec3 start{orbit_r * std::cos(angle0), y, orbit_r * std::sin(angle0)};
    scene.add_object(
        "orb" + std::to_string(i),
        std::make_unique<Sphere>(start, rng.uniform(0.15, 0.35)), mat,
        std::make_unique<OrbitAnimator>(Vec3{0, y, 0}, Vec3{0, 1, 0},
                                        rng.uniform(2.0, 6.0)));
  }

  scene.add_light(Light::point({3, 5, 3}, Color::white(), 0.9));
  scene.set_camera(Camera{{0, 3.2, 6.0},
                          {0, 1.0, 0},
                          {0, 1, 0},
                          42.0,
                          static_cast<double>(width) / height});
  return scene;
}

AnimatedScene random_scene(Rng* rng, int object_count, int frames, int width,
                           int height) {
  AnimatedScene scene;
  scene.set_frames(frames, 15.0);
  scene.set_resolution(width, height);
  scene.set_background(Color{0.05, 0.05, 0.08});

  const int floor_mat = scene.add_material(Material::matte(Color::gray(0.6)));
  scene.add_object("floor", std::make_unique<Plane>(Vec3{0, 1, 0}, -1.0),
                   floor_mat);

  for (int i = 0; i < object_count; ++i) {
    Material m = Material::matte(Color{rng->uniform(0.2, 0.95),
                                       rng->uniform(0.2, 0.95),
                                       rng->uniform(0.2, 0.95)});
    // Sprinkle in reflective and transmissive surfaces so secondary rays
    // participate in the coherence property tests.
    const double roll = rng->next_double();
    if (roll < 0.25) {
      m.reflectivity = rng->uniform(0.2, 0.7);
    } else if (roll < 0.4) {
      m.transmittance = rng->uniform(0.3, 0.8);
      m.ior = rng->uniform(1.1, 1.8);
    }
    const int mat = scene.add_material(m);

    const Vec3 pos = rng->point_in_box({-2.5, -0.8, -3.5}, {2.5, 2.0, -0.5});
    std::unique_ptr<Primitive> prim;
    switch (rng->next_below(3)) {
      case 0:
        prim = std::make_unique<Sphere>(pos, rng->uniform(0.2, 0.6));
        break;
      case 1:
        prim = std::make_unique<Box>(
            pos, rng->point_in_box({0.15, 0.15, 0.15}, {0.5, 0.5, 0.5}),
            Mat3::rotation_y(rng->uniform(0.0, kTwoPi)));
        break;
      default:
        prim = std::make_unique<Cylinder>(
            pos, pos + rng->unit_vector() * rng->uniform(0.4, 1.0),
            rng->uniform(0.08, 0.25));
        break;
    }

    std::unique_ptr<Animator> anim;
    const double motion_roll = rng->next_double();
    if (motion_roll < 0.35) {  // translating
      Spline s(InterpMode::kLinear);
      const Vec3 delta = rng->unit_vector() * rng->uniform(0.3, 1.5);
      s.add_key(0.0, Vec3{0, 0, 0});
      s.add_key((frames - 1) / 15.0 + 1e-9, delta);
      anim = std::make_unique<KeyframeAnimator>(std::move(s));
    } else if (motion_roll < 0.45) {  // rotating about a random pivot
      const Vec3 pivot = pos + rng->unit_vector() * rng->uniform(0.0, 0.5);
      const Vec3 axis = rng->unit_vector();
      const double rate = rng->uniform(0.5, 3.0);
      anim = std::make_unique<PivotRotationAnimator>(
          pivot, axis, [rate](double t) { return rate * t; });
    } else if (motion_roll < 0.55) {  // orbiting
      anim = std::make_unique<OrbitAnimator>(
          Vec3{0, pos.y, -2.0}, Vec3{0, 1, 0}, rng->uniform(2.0, 6.0));
    }
    scene.add_object("obj" + std::to_string(i), std::move(prim), mat,
                     std::move(anim));
  }

  scene.add_light(Light::point({2, 4, 2}, Color::white(), 0.9));
  if (rng->next_double() < 0.5) {
    scene.add_light(
        Light::directional({-0.4, -1.0, -0.3}, Color{0.6, 0.6, 0.7}, 0.4));
  }
  scene.set_camera(Camera{{0, 1.0, 3.0},
                          {0, 0.4, -2.0},
                          {0, 1, 0},
                          50.0,
                          static_cast<double>(width) / height});
  return scene;
}

std::unique_ptr<Primitive> make_icosphere(const Vec3& center, double radius,
                                          int subdivisions) {
  // Icosahedron vertices from the three orthogonal golden rectangles.
  const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
  std::vector<Vec3> verts = {
      {-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
      {0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
      {phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1}};
  std::vector<int> faces = {
      0, 11, 5,  0, 5, 1,   0, 1, 7,   0, 7, 10,  0, 10, 11,
      1, 5, 9,   5, 11, 4,  11, 10, 2, 10, 7, 6,  7, 1, 8,
      3, 9, 4,   3, 4, 2,   3, 2, 6,   3, 6, 8,   3, 8, 9,
      4, 9, 5,   2, 4, 11,  6, 2, 10,  8, 6, 7,   9, 8, 1};

  for (int pass = 0; pass < subdivisions; ++pass) {
    std::vector<int> next;
    next.reserve(faces.size() * 4);
    for (std::size_t f = 0; f + 2 < faces.size(); f += 3) {
      const int a = faces[f], b = faces[f + 1], c = faces[f + 2];
      const auto midpoint = [&](int i, int j) {
        verts.push_back((verts[i] + verts[j]) * 0.5);
        return static_cast<int>(verts.size()) - 1;
      };
      const int ab = midpoint(a, b);
      const int bc = midpoint(b, c);
      const int ca = midpoint(c, a);
      const int tri[12] = {a, ab, ca, b, bc, ab, c, ca, bc, ab, bc, ca};
      next.insert(next.end(), tri, tri + 12);
    }
    faces = std::move(next);
  }
  for (Vec3& v : verts) v = center + v.normalized() * radius;
  return std::make_unique<Mesh>(std::move(verts), std::move(faces));
}

AnimatedScene gallery_scene(int frames, int width, int height) {
  AnimatedScene scene;
  scene.set_frames(frames, 15.0);
  scene.set_resolution(width, height);
  scene.set_background(Color{0.05, 0.05, 0.08});

  const int floor_mat = scene.add_material(Material::textured(
      std::make_shared<CheckerTexture>(Color::gray(0.6), Color::gray(0.25), 0.8)));
  scene.add_object("floor", std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0),
                   floor_mat);

  const auto slide = [&](double dx, double dz) {
    Spline s(InterpMode::kLinear);
    s.add_key(0.0, {0, 0, 0});
    s.add_key((frames - 1) / 15.0 + 1e-9, {dx, 0.0, dz});
    return std::make_unique<KeyframeAnimator>(std::move(s));
  };

  Material red = Material::matte({0.85, 0.2, 0.15});
  red.reflectivity = 0.2;
  const int m0 = scene.add_material(red);
  const int m1 = scene.add_material(Material::matte({0.2, 0.7, 0.3}));
  const int m2 = scene.add_material(Material::matte({0.25, 0.4, 0.85}));
  const int m3 = scene.add_material(Material::glass(1.4));
  const int m4 = scene.add_material(Material::matte({0.85, 0.75, 0.2}));
  const int m5 = scene.add_material(Material::chrome());

  scene.add_object("sphere", std::make_unique<Sphere>(Vec3{-2.2, 0.5, 0}, 0.5),
                   m0, slide(0.8, 0.3));
  scene.add_object("box",
                   std::make_unique<Box>(Vec3{-1.0, 0.4, -0.6},
                                         Vec3{0.35, 0.4, 0.35},
                                         Mat3::rotation_y(0.5)),
                   m1, slide(-0.5, 0.6));
  scene.add_object("cylinder",
                   std::make_unique<Cylinder>(Vec3{0.2, 0, -0.2},
                                              Vec3{0.2, 1.1, -0.2}, 0.25),
                   m2, slide(0.4, -0.5));
  scene.add_object("disc",
                   std::make_unique<Disc>(Vec3{1.2, 0.8, 0.2},
                                          Vec3(0.3, 0.2, 1).normalized(), 0.5),
                   m3, slide(-0.6, 0.4));
  scene.add_object("triangle",
                   std::make_unique<Triangle>(Vec3{1.8, 0.05, -0.8},
                                              Vec3{2.6, 0.05, -0.4},
                                              Vec3{2.1, 1.1, -0.6}),
                   m4, slide(0.3, 0.7));
  scene.add_object("icosphere", make_icosphere({2.6, 0.45, 0.8}, 0.45, 1),
                   m5, slide(-0.7, -0.3));

  scene.add_light(Light::point({2, 4.5, 3}, Color{1.0, 0.96, 0.9}, 0.9));
  scene.add_light(Light::directional({-0.3, -1.0, -0.4}, Color{0.4, 0.45, 0.6}, 0.35));
  scene.set_camera(Camera{{0.2, 1.8, 5.0},
                          {0.2, 0.6, 0.0},
                          {0, 1, 0},
                          42.0,
                          static_cast<double>(width) / height});
  return scene;
}

AnimatedScene two_shot_scene(int frames, int cut_frame) {
  AnimatedScene scene = orbit_scene(4, frames);
  const Camera second{{4.0, 2.5, 4.0},
                      {0, 1.0, 0},
                      {0, 1, 0},
                      42.0,
                      scene.width() / static_cast<double>(scene.height())};
  scene.add_camera_cut(cut_frame, second);
  return scene;
}

}  // namespace now
