// Rigid-plus-uniform-scale transforms.
//
// Animated objects carry a Transform per frame. Primitives are stored in
// local space and instantiated into world space each frame (a transformed
// sphere is still a sphere, a transformed cylinder still a cylinder), so the
// intersection routines and the voxel footprint tests always run in world
// space — no inverse-ray transforms and no distorted normals.
#pragma once

#include "src/math/vec3.h"

namespace now {

/// Column-major 3x3 matrix restricted in practice to rotations.
struct Mat3 {
  // m[col][row]
  double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  static Mat3 identity() { return {}; }
  static Mat3 rotation_x(double radians);
  static Mat3 rotation_y(double radians);
  static Mat3 rotation_z(double radians);
  static Mat3 axis_angle(const Vec3& unit_axis, double radians);

  Vec3 col(int c) const { return {m[c][0], m[c][1], m[c][2]}; }

  Vec3 operator*(const Vec3& v) const;
  Mat3 operator*(const Mat3& o) const;

  Mat3 transposed() const;
  double determinant() const;

  /// True when columns are orthonormal and determinant is +1.
  bool is_rotation(double eps = 1e-9) const;
};

bool operator==(const Mat3& a, const Mat3& b);

/// world_point = rotation * (scale * local_point) + translation
struct Transform {
  Mat3 rotation;
  Vec3 translation;
  double scale = 1.0;

  static Transform identity() { return {}; }
  static Transform translate(const Vec3& t) { return {Mat3::identity(), t, 1.0}; }
  static Transform rotate(const Mat3& r) { return {r, {}, 1.0}; }
  static Transform scaling(double s) { return {Mat3::identity(), {}, s}; }

  Vec3 apply_point(const Vec3& p) const { return rotation * (p * scale) + translation; }
  Vec3 apply_direction(const Vec3& d) const { return rotation * d; }
  Vec3 apply_vector(const Vec3& v) const { return rotation * (v * scale); }

  /// this ∘ other  (apply `other` first, then `this`).
  Transform compose(const Transform& other) const;
  Transform inverse() const;
};

bool operator==(const Transform& a, const Transform& b);
inline bool operator!=(const Transform& a, const Transform& b) { return !(a == b); }

}  // namespace now
