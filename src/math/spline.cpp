#include "src/math/spline.h"

#include <algorithm>
#include <cassert>

namespace now {

void Spline::add_key(double time, const Vec3& value) {
  assert(keys_.empty() || time > keys_.back().time);
  keys_.push_back({time, value});
}

Vec3 Spline::evaluate(double time) const {
  if (keys_.empty()) return {};
  if (time <= keys_.front().time) return keys_.front().value;
  if (time >= keys_.back().time) return keys_.back().value;

  // Find the segment [i, i+1] containing `time`.
  const auto it = std::upper_bound(
      keys_.begin(), keys_.end(), time,
      [](double t, const Keyframe& k) { return t < k.time; });
  const int i = static_cast<int>(it - keys_.begin()) - 1;
  const Keyframe& a = keys_[i];
  const Keyframe& b = keys_[i + 1];
  const double u = (time - a.time) / (b.time - a.time);

  switch (mode_) {
    case InterpMode::kStep:
      return a.value;
    case InterpMode::kLinear:
      return lerp(a.value, b.value, u);
    case InterpMode::kCatmullRom:
      return eval_catmull_rom(i, u);
  }
  return a.value;
}

Vec3 Spline::eval_catmull_rom(int seg, double t) const {
  const int n = key_count();
  const auto key = [&](int i) -> const Keyframe& {
    return keys_[std::clamp(i, 0, n - 1)];
  };
  const Vec3 p0 = key(seg - 1).value;
  const Vec3 p1 = key(seg).value;
  const Vec3 p2 = key(seg + 1).value;
  const Vec3 p3 = key(seg + 2).value;
  // Uniform Catmull-Rom tangents.
  const Vec3 m1 = (p2 - p0) * 0.5;
  const Vec3 m2 = (p3 - p1) * 0.5;
  Vec3 out;
  for (int c = 0; c < 3; ++c) {
    out[c] = hermite(p1[c], m1[c], p2[c], m2[c], t);
  }
  return out;
}

double hermite(double p0, double m0, double p1, double m1, double t) {
  const double t2 = t * t;
  const double t3 = t2 * t;
  return (2 * t3 - 3 * t2 + 1) * p0 + (t3 - 2 * t2 + t) * m0 +
         (-2 * t3 + 3 * t2) * p1 + (t3 - t2) * m1;
}

}  // namespace now
