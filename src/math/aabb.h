// Axis-aligned bounding boxes.
//
// Used both by the uniform-grid ray accelerator and by the change detector,
// which rasterizes per-frame object footprints into coherence-grid voxels.
#pragma once

#include "src/math/ray.h"
#include "src/math/vec3.h"

namespace now {

struct Aabb {
  Vec3 lo{kRayInfinity, kRayInfinity, kRayInfinity};
  Vec3 hi{-kRayInfinity, -kRayInfinity, -kRayInfinity};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& lo_, const Vec3& hi_) : lo(lo_), hi(hi_) {}

  /// An empty box absorbs nothing and contains nothing.
  bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

  Vec3 extent() const { return hi - lo; }
  Vec3 center() const { return (lo + hi) * 0.5; }
  double surface_area() const;
  double volume() const;

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  bool overlaps(const Aabb& o) const {
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
           hi.y >= o.lo.y && lo.z <= o.hi.z && hi.z >= o.lo.z;
  }

  /// Grow to include a point / another box.
  void absorb(const Vec3& p);
  void absorb(const Aabb& o);

  /// Uniformly expanded copy (negative pad shrinks).
  Aabb padded(double pad) const;

  /// Slab test. On hit returns true and writes the entry/exit parameters,
  /// clipped to [t_min, t_max]. Handles rays starting inside the box.
  bool intersect(const Ray& ray, double t_min, double t_max,
                 double* t_enter, double* t_exit) const;

  static Aabb united(const Aabb& a, const Aabb& b);
  static Aabb of_points(const Vec3* points, int count);
};

bool operator==(const Aabb& a, const Aabb& b);

}  // namespace now
