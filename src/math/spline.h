// Keyframe interpolation for animation channels.
//
// Object motion between keyframes uses either piecewise-linear or Catmull-Rom
// interpolation; the change detector only needs positions at frame times, so
// exact arc parameterization is unnecessary.
#pragma once

#include <vector>

#include "src/math/vec3.h"

namespace now {

enum class InterpMode : std::uint8_t {
  kStep = 0,      // hold previous key
  kLinear = 1,    // piecewise linear
  kCatmullRom = 2 // C1 cubic through the keys
};

struct Keyframe {
  double time = 0.0;
  Vec3 value;
};

/// A sampled Vec3-valued animation curve. Keys must be added in strictly
/// increasing time order. Evaluation clamps outside the key range.
class Spline {
 public:
  Spline() = default;
  explicit Spline(InterpMode mode) : mode_(mode) {}

  void add_key(double time, const Vec3& value);
  Vec3 evaluate(double time) const;

  bool empty() const { return keys_.empty(); }
  int key_count() const { return static_cast<int>(keys_.size()); }
  const std::vector<Keyframe>& keys() const { return keys_; }
  InterpMode mode() const { return mode_; }

  double start_time() const { return keys_.empty() ? 0.0 : keys_.front().time; }
  double end_time() const { return keys_.empty() ? 0.0 : keys_.back().time; }

 private:
  Vec3 eval_catmull_rom(int seg, double t) const;

  InterpMode mode_ = InterpMode::kLinear;
  std::vector<Keyframe> keys_;
};

/// Scalar cubic Hermite helper exposed for tests and the cradle animator.
double hermite(double p0, double m0, double p1, double m1, double t);

}  // namespace now
