// Ray type shared by the tracer, the accelerator and the coherence recorder.
#pragma once

#include "src/math/vec3.h"

namespace now {

/// Why a ray was fired. The frame-coherence recorder stores this so shadow
/// marking can be toggled independently (the paper treats shadow-ray
/// coherence as its own feature).
enum class RayKind : std::uint8_t {
  kCamera = 0,
  kReflection = 1,
  kRefraction = 2,
  kShadow = 3,
};

const char* to_string(RayKind kind);

struct Ray {
  Vec3 origin;
  Vec3 direction;  // not required to be unit length for shadow span rays

  Vec3 at(double t) const { return origin + direction * t; }
};

/// Offset applied when spawning secondary rays to escape the parent surface.
constexpr double kRayEpsilon = 1e-6;

/// Upper bound used for "infinite" rays.
constexpr double kRayInfinity = 1e30;

}  // namespace now
