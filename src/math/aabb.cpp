#include "src/math/aabb.h"

#include <algorithm>

namespace now {

double Aabb::surface_area() const {
  if (empty()) return 0.0;
  const Vec3 e = extent();
  return 2.0 * (e.x * e.y + e.y * e.z + e.z * e.x);
}

double Aabb::volume() const {
  if (empty()) return 0.0;
  const Vec3 e = extent();
  return e.x * e.y * e.z;
}

void Aabb::absorb(const Vec3& p) {
  lo = min(lo, p);
  hi = max(hi, p);
}

void Aabb::absorb(const Aabb& o) {
  if (o.empty()) return;
  lo = min(lo, o.lo);
  hi = max(hi, o.hi);
}

Aabb Aabb::padded(double pad) const {
  const Vec3 d{pad, pad, pad};
  return {lo - d, hi + d};
}

bool Aabb::intersect(const Ray& ray, double t_min, double t_max,
                     double* t_enter, double* t_exit) const {
  double t0 = t_min;
  double t1 = t_max;
  for (int axis = 0; axis < 3; ++axis) {
    const double inv = 1.0 / ray.direction[axis];
    double near = (lo[axis] - ray.origin[axis]) * inv;
    double far = (hi[axis] - ray.origin[axis]) * inv;
    if (inv < 0.0) std::swap(near, far);
    t0 = near > t0 ? near : t0;
    t1 = far < t1 ? far : t1;
    if (t0 > t1) return false;
  }
  if (t_enter != nullptr) *t_enter = t0;
  if (t_exit != nullptr) *t_exit = t1;
  return true;
}

Aabb Aabb::united(const Aabb& a, const Aabb& b) {
  Aabb out = a;
  out.absorb(b);
  return out;
}

Aabb Aabb::of_points(const Vec3* points, int count) {
  Aabb out;
  for (int i = 0; i < count; ++i) out.absorb(points[i]);
  return out;
}

bool operator==(const Aabb& a, const Aabb& b) {
  return a.lo == b.lo && a.hi == b.hi;
}

}  // namespace now
