#include "src/math/transform.h"

#include <cmath>

namespace now {

Mat3 Mat3::rotation_x(double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  Mat3 r;
  r.m[1][1] = c; r.m[1][2] = s;
  r.m[2][1] = -s; r.m[2][2] = c;
  return r;
}

Mat3 Mat3::rotation_y(double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  Mat3 r;
  r.m[0][0] = c; r.m[0][2] = -s;
  r.m[2][0] = s; r.m[2][2] = c;
  return r;
}

Mat3 Mat3::rotation_z(double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  Mat3 r;
  r.m[0][0] = c; r.m[0][1] = s;
  r.m[1][0] = -s; r.m[1][1] = c;
  return r;
}

Mat3 Mat3::axis_angle(const Vec3& axis, double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  const double t = 1.0 - c;
  const Vec3& a = axis;
  Mat3 r;
  r.m[0][0] = c + a.x * a.x * t;
  r.m[0][1] = a.y * a.x * t + a.z * s;
  r.m[0][2] = a.z * a.x * t - a.y * s;
  r.m[1][0] = a.x * a.y * t - a.z * s;
  r.m[1][1] = c + a.y * a.y * t;
  r.m[1][2] = a.z * a.y * t + a.x * s;
  r.m[2][0] = a.x * a.z * t + a.y * s;
  r.m[2][1] = a.y * a.z * t - a.x * s;
  r.m[2][2] = c + a.z * a.z * t;
  return r;
}

Vec3 Mat3::operator*(const Vec3& v) const {
  return col(0) * v.x + col(1) * v.y + col(2) * v.z;
}

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 out;
  for (int c = 0; c < 3; ++c) {
    const Vec3 v = (*this) * o.col(c);
    out.m[c][0] = v.x; out.m[c][1] = v.y; out.m[c][2] = v.z;
  }
  return out;
}

Mat3 Mat3::transposed() const {
  Mat3 out;
  for (int c = 0; c < 3; ++c)
    for (int r = 0; r < 3; ++r) out.m[c][r] = m[r][c];
  return out;
}

double Mat3::determinant() const {
  return dot(col(0), cross(col(1), col(2)));
}

bool Mat3::is_rotation(double eps) const {
  for (int i = 0; i < 3; ++i) {
    if (std::fabs(col(i).length() - 1.0) > eps) return false;
    for (int j = i + 1; j < 3; ++j) {
      if (std::fabs(dot(col(i), col(j))) > eps) return false;
    }
  }
  return std::fabs(determinant() - 1.0) <= eps * 10.0;
}

bool operator==(const Mat3& a, const Mat3& b) {
  for (int c = 0; c < 3; ++c)
    for (int r = 0; r < 3; ++r)
      if (a.m[c][r] != b.m[c][r]) return false;
  return true;
}

Transform Transform::compose(const Transform& other) const {
  Transform out;
  out.rotation = rotation * other.rotation;
  out.scale = scale * other.scale;
  out.translation = apply_point(other.translation);
  return out;
}

Transform Transform::inverse() const {
  Transform out;
  out.rotation = rotation.transposed();
  out.scale = 1.0 / scale;
  out.translation = (out.rotation * (-translation)) * out.scale;
  return out;
}

bool operator==(const Transform& a, const Transform& b) {
  return a.rotation == b.rotation && a.translation == b.translation &&
         a.scale == b.scale;
}

}  // namespace now
