// Deterministic random number generation.
//
// The renderer must produce byte-identical images across runs and across
// execution backends (threads / sockets / discrete-event simulation), so all
// randomness flows through this explicitly seeded generator — never through
// global state. The core generator is xoshiro256**.
#pragma once

#include <cstdint>

#include "src/math/vec3.h"

namespace now {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint32_t next_below(std::uint32_t n);

  /// Uniform point in the axis-aligned box [lo, hi).
  Vec3 point_in_box(const Vec3& lo, const Vec3& hi);

  /// Uniform direction on the unit sphere.
  Vec3 unit_vector();

  /// Derive an independent stream (for per-worker determinism).
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t state_[4];
};

/// SplitMix64 step; used for seeding and fast hashing of ids to seeds.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace now
