#include "src/math/vec3.h"

#include <ostream>

namespace now {

bool refract(const Vec3& v, const Vec3& n, double eta, Vec3* out) {
  const double cos_i = -dot(v, n);
  const double sin2_t = eta * eta * (1.0 - cos_i * cos_i);
  if (sin2_t > 1.0) return false;  // total internal reflection
  const double cos_t = std::sqrt(1.0 - sin2_t);
  *out = eta * v + (eta * cos_i - cos_t) * n;
  return true;
}

std::uint8_t to_byte(double channel) {
  const double c = clamp01(channel);
  return static_cast<std::uint8_t>(c * 255.0 + 0.5);
}

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

std::ostream& operator<<(std::ostream& os, const Color& c) {
  return os << "rgb(" << c.r << ", " << c.g << ", " << c.b << ")";
}

}  // namespace now
