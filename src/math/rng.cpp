#include "src/math/rng.h"

namespace now {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint32_t Rng::next_below(std::uint32_t n) {
  return static_cast<std::uint32_t>(next_u64() % n);
}

Vec3 Rng::point_in_box(const Vec3& lo, const Vec3& hi) {
  return {uniform(lo.x, hi.x), uniform(lo.y, hi.y), uniform(lo.z, hi.z)};
}

Vec3 Rng::unit_vector() {
  // Rejection sampling in the unit cube; expected < 2 iterations.
  for (;;) {
    const Vec3 v = point_in_box({-1, -1, -1}, {1, 1, 1});
    const double len2 = v.length_squared();
    if (len2 > 1e-12 && len2 <= 1.0) return v / std::sqrt(len2);
  }
}

Rng Rng::fork(std::uint64_t stream_id) const {
  std::uint64_t sm = state_[0] ^ (stream_id * 0xda942042e4dd58b5ULL + 1);
  return Rng(splitmix64(sm));
}

}  // namespace now
