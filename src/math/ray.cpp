#include "src/math/ray.h"

namespace now {

const char* to_string(RayKind kind) {
  switch (kind) {
    case RayKind::kCamera: return "camera";
    case RayKind::kReflection: return "reflection";
    case RayKind::kRefraction: return "refraction";
    case RayKind::kShadow: return "shadow";
  }
  return "unknown";
}

}  // namespace now
