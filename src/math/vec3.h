// Core 3-vector and color types for the NOW renderer.
//
// Everything in the renderer is double precision: the coherence grid walks
// long ray segments through voxel space and single precision DDA stepping
// accumulates enough error to mis-mark voxels on grazing rays.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>

namespace now {

/// A 3-component vector used for points, directions and offsets.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator*(const Vec3& o) const { return {x * o.x, y * o.y, z * o.z}; }

  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  Vec3& operator/=(double s) { x /= s; y /= s; z /= s; return *this; }

  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }
  constexpr bool operator!=(const Vec3& o) const { return !(*this == o); }

  double length() const { return std::sqrt(x * x + y * y + z * z); }
  constexpr double length_squared() const { return x * x + y * y + z * z; }

  /// Unit-length copy. Undefined for the zero vector.
  Vec3 normalized() const { return *this / length(); }

  /// True when every component is finite (no NaN/inf).
  bool is_finite() const {
    return std::isfinite(x) && std::isfinite(y) && std::isfinite(z);
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a * (1.0 - t) + b * t;
}

constexpr Vec3 min(const Vec3& a, const Vec3& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}

constexpr Vec3 max(const Vec3& a, const Vec3& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

/// Reflect direction `v` about unit normal `n` (v points toward the surface).
inline Vec3 reflect(const Vec3& v, const Vec3& n) { return v - 2.0 * dot(v, n) * n; }

/// Refract unit direction `v` across unit normal `n` with relative index
/// `eta` (n_from / n_to). Returns false on total internal reflection.
bool refract(const Vec3& v, const Vec3& n, double eta, Vec3* out);

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// Linear-light RGB color. Components are nominally in [0,1] but may exceed 1
/// before tone clamping at framebuffer write time.
struct Color {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;

  constexpr Color() = default;
  constexpr Color(double r_, double g_, double b_) : r(r_), g(g_), b(b_) {}
  static constexpr Color black() { return {0, 0, 0}; }
  static constexpr Color white() { return {1, 1, 1}; }
  static constexpr Color gray(double v) { return {v, v, v}; }

  constexpr Color operator+(const Color& o) const { return {r + o.r, g + o.g, b + o.b}; }
  constexpr Color operator-(const Color& o) const { return {r - o.r, g - o.g, b - o.b}; }
  constexpr Color operator*(double s) const { return {r * s, g * s, b * s}; }
  constexpr Color operator*(const Color& o) const { return {r * o.r, g * o.g, b * o.b}; }
  constexpr Color operator/(double s) const { return {r / s, g / s, b / s}; }
  Color& operator+=(const Color& o) { r += o.r; g += o.g; b += o.b; return *this; }
  Color& operator*=(double s) { r *= s; g *= s; b *= s; return *this; }
  constexpr bool operator==(const Color& o) const { return r == o.r && g == o.g && b == o.b; }
  constexpr bool operator!=(const Color& o) const { return !(*this == o); }

  constexpr double max_component() const {
    return r > g ? (r > b ? r : b) : (g > b ? g : b);
  }
};

constexpr Color operator*(double s, const Color& c) { return c * s; }

constexpr Color lerp(const Color& a, const Color& b, double t) {
  return a * (1.0 - t) + b * t;
}

/// Quantize a linear component to the 8-bit value stored in TGA output.
std::uint8_t to_byte(double channel);

std::ostream& operator<<(std::ostream& os, const Color& c);

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

constexpr double degrees_to_radians(double deg) { return deg * kPi / 180.0; }

constexpr double clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

constexpr double clampd(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Tolerant floating comparison used by tests and geometric predicates.
inline bool nearly_equal(double a, double b, double eps = 1e-9) {
  return std::fabs(a - b) <= eps * (1.0 + std::fabs(a) + std::fabs(b));
}

}  // namespace now
