#include "src/core/coherent_renderer.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace now {

namespace {

/// Rows per parallel render chunk. Fixed (not derived from thread count) so
/// the chunk decomposition — and therefore the merged mark order — is a pure
/// function of the region, independent of `threads`.
constexpr int kChunkRows = 4;

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Aabb animation_extent(const AnimatedScene& scene) {
  Aabb extent;
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    extent.absorb(scene.world_at(frame).bounded_extent());
  }
  return extent;
}

CoherentRenderer::CoherentRenderer(const AnimatedScene& scene,
                                   const PixelRect& region,
                                   const CoherenceOptions& options)
    : scene_(scene),
      region_(region),
      options_(options),
      threads_(resolve_thread_count(options.threads)) {
  const VoxelGrid voxels =
      options_.grid_override.has_value()
          ? *options_.grid_override
          : VoxelGrid::heuristic(animation_extent(scene), scene.object_count(),
                                 options_.grid_density,
                                 options_.grid_max_axis);
  grid_ = std::make_unique<CoherenceGrid>(voxels, region);
  recorder_ =
      std::make_unique<RayRecorder>(grid_.get(), options_.record_shadow_rays);
  if (options_.metrics != nullptr) {
    metric_full_renders_ = &options_.metrics->counter("coherence.full_renders");
    metric_incremental_renders_ =
        &options_.metrics->counter("coherence.incremental_renders");
    metric_pixels_recomputed_ =
        &options_.metrics->counter("coherence.pixels_recomputed");
    metric_voxels_marked_ =
        &options_.metrics->counter("coherence.voxels_marked");
    metric_dirty_voxels_ = &options_.metrics->counter("coherence.dirty_voxels");
  }
}

void CoherentRenderer::rebuild_frame_state(int frame) {
  world_ = scene_.world_at(frame);
  accel_ = std::make_unique<UniformGridAccelerator>(world_);
  tracer_ = std::make_unique<Tracer>(world_, *accel_, options_.trace);
  tracer_->set_listener(options_.enabled ? recorder_.get() : nullptr);
}

FrameRenderResult CoherentRenderer::render_frame(int frame, Framebuffer* fb) {
  assert(fb->width() >= region_.x0 + region_.width &&
         fb->height() >= region_.y0 + region_.height);
  // A camera or light move invalidates everything the grid knows: restart
  // with a full render (lights are outside the voxel change model).
  const bool continues_sequence =
      options_.enabled && last_frame_ >= 0 && frame == last_frame_ + 1 &&
      !scene_.camera_changed(last_frame_, frame) &&
      !scene_.lights_changed(last_frame_, frame);

  FrameRenderResult result;
  if (continues_sequence) {
    result = incremental_render(frame, fb);
  } else {
    grid_->reset();
    rebuild_frame_state(frame);
    result = full_render(fb);
  }
  last_frame_ = frame;
  if (options_.metrics != nullptr) {
    (result.full_render ? metric_full_renders_ : metric_incremental_renders_)
        ->inc();
    metric_pixels_recomputed_->inc(
        static_cast<std::uint64_t>(result.pixels_recomputed));
    metric_voxels_marked_->inc(
        static_cast<std::uint64_t>(result.voxels_marked));
    metric_dirty_voxels_->inc(static_cast<std::uint64_t>(result.dirty_voxels));
  }
  return result;
}

void CoherentRenderer::render_pixels_parallel(const PixelMask* mask,
                                              bool bump_epochs,
                                              Framebuffer* fb,
                                              FrameRenderResult* result) {
  const int chunk_count = (region_.height + kChunkRows - 1) / kChunkRows;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads_);
    mark_stamp_.assign(
        static_cast<std::size_t>(threads_),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(grid_->grid().cell_count()), 0));
    mark_serial_.assign(static_cast<std::size_t>(threads_), 0);
  }

  struct ChunkState {
    int y0 = 0;
    int rows = 0;
    int worker = 0;
    std::int64_t pixels = 0;
    TraceStats stats;
    std::unique_ptr<BufferedRayRecorder> recorder;
    double start_seconds = 0.0;
    double seconds = 0.0;
  };
  std::vector<ChunkState> chunks(static_cast<std::size_t>(chunk_count));

  const auto frame_start = std::chrono::steady_clock::now();
  pool_->parallel_for(chunk_count, [&](int c, int worker) {
    ChunkState& chunk = chunks[static_cast<std::size_t>(c)];
    const auto chunk_start = std::chrono::steady_clock::now();
    chunk.worker = worker;
    chunk.y0 = region_.y0 + c * kChunkRows;
    chunk.rows = std::min(kChunkRows, region_.y0 + region_.height - chunk.y0);
    Tracer tracer(world_, *accel_, options_.trace);
    if (options_.enabled) {
      chunk.recorder = std::make_unique<BufferedRayRecorder>(
          grid_->grid(), options_.record_shadow_rays,
          &mark_stamp_[static_cast<std::size_t>(worker)],
          &mark_serial_[static_cast<std::size_t>(worker)]);
      tracer.set_listener(chunk.recorder.get());
    }
    for (int y = chunk.y0; y < chunk.y0 + chunk.rows; ++y) {
      for (int x = region_.x0; x < region_.x0 + region_.width; ++x) {
        if (mask != nullptr && !mask->at(x, y)) continue;
        if (chunk.recorder != nullptr) chunk.recorder->begin_pixel(x, y);
        fb->set(x, y, tracer.shade_pixel(x, y, fb->width(), fb->height()));
        ++chunk.pixels;
      }
    }
    chunk.stats = tracer.stats();
    const auto chunk_end = std::chrono::steady_clock::now();
    chunk.start_seconds = seconds_between(frame_start, chunk_start);
    chunk.seconds = seconds_between(chunk_start, chunk_end);
  });

  // Deterministic merge: replaying the buffered marks in ascending chunk
  // order reproduces the sequential row-major mark order exactly; all stat
  // counters are integers, so chunked summation is byte-identical too.
  result->chunks.reserve(static_cast<std::size_t>(chunk_count));
  for (int c = 0; c < chunk_count; ++c) {
    ChunkState& chunk = chunks[static_cast<std::size_t>(c)];
    if (chunk.recorder != nullptr) {
      chunk.recorder->replay(grid_.get(), bump_epochs);
      recorder_->accumulate(chunk.recorder->stats());
    }
    result->stats += chunk.stats;
    result->pixels_recomputed += chunk.pixels;
    result->chunks.push_back({c, chunk.worker, chunk.y0, chunk.rows,
                              chunk.start_seconds, chunk.seconds});
  }
}

FrameRenderResult CoherentRenderer::full_render(Framebuffer* fb) {
  FrameRenderResult result;
  result.full_render = true;
  result.pixels_total = region_.area();
  result.recomputed = PixelMask(fb->width(), fb->height());
  for (int y = region_.y0; y < region_.y0 + region_.height; ++y) {
    for (int x = region_.x0; x < region_.x0 + region_.width; ++x) {
      result.recomputed.set(x, y, true);
    }
  }
  const std::uint64_t marks_before = recorder_->stats().voxels_visited;
  if (threads_ > 1) {
    render_pixels_parallel(/*mask=*/nullptr, /*bump_epochs=*/false, fb,
                           &result);
  } else {
    result.pixels_recomputed = region_.area();
    result.stats = render_region(tracer_.get(), fb, region_);
  }
  result.voxels_marked = static_cast<std::int64_t>(
      recorder_->stats().voxels_visited - marks_before);
  return result;
}

FrameRenderResult CoherentRenderer::incremental_render(int frame,
                                                       Framebuffer* fb) {
  FrameRenderResult result;
  result.pixels_total = region_.area();
  result.recomputed = PixelMask(fb->width(), fb->height());

  // 1. Which voxels change between the previous frame and this one?
  World next = scene_.world_at(frame);
  const std::vector<int> changed = scene_.changed_objects(last_frame_, frame);
  const DirtyVoxels dirty =
      find_dirty_voxels(grid_->grid(), world_, next, changed, &dirty_scratch_);

  // 2. Which pixels had rays through those voxels?
  // The sequential per-pixel path can shade straight off the dirty-pixel
  // list instead of rescanning the whole region against the mask; block
  // expansion and the parallel path mutate/consume the mask, so they keep
  // the scan.
  const bool use_pixel_list =
      threads_ == 1 && options_.block_size == 0 && !dirty.all_dirty;
  if (dirty.all_dirty) {
    // Everything is recomputed, so every stored mark is stale: drop them all
    // now instead of retiring pixel-by-pixel (keeping them would leak marks
    // for pixels whose rays no longer reach their old voxels).
    grid_->reset();
    for (int y = region_.y0; y < region_.y0 + region_.height; ++y) {
      for (int x = region_.x0; x < region_.x0 + region_.width; ++x) {
        result.recomputed.set(x, y, true);
      }
    }
    result.dirty_voxels = grid_->grid().cell_count();
  } else {
    dirty_pixels_.clear();
    grid_->collect_pixels(dirty.cells, &result.recomputed,
                          use_pixel_list ? &dirty_pixels_ : nullptr);
    result.dirty_voxels = static_cast<std::int64_t>(dirty.cells.size());
  }
  if (options_.block_size > 0) expand_to_blocks(&result.recomputed);

  // 3. Advance to the new frame's geometry and recompute only those pixels.
  const std::uint64_t marks_before = recorder_->stats().voxels_visited;
  world_ = std::move(next);
  accel_ = std::make_unique<UniformGridAccelerator>(world_);
  tracer_ = std::make_unique<Tracer>(world_, *accel_, options_.trace);
  tracer_->set_listener(recorder_.get());

  if (threads_ > 1) {
    render_pixels_parallel(&result.recomputed, /*bump_epochs=*/true, fb,
                           &result);
  } else if (use_pixel_list) {
    // Ascending region-local index is exactly row-major order within the
    // region, so shading off the sorted list reproduces the masked scan —
    // same begin_pixel order, same mark order — while skipping the
    // region-area scan entirely on low-motion frames.
    std::sort(dirty_pixels_.begin(), dirty_pixels_.end());
    for (const std::uint32_t p : dirty_pixels_) {
      const int x = region_.x0 + static_cast<int>(p) % region_.width;
      const int y = region_.y0 + static_cast<int>(p) / region_.width;
      grid_->begin_pixel(x, y);
      fb->set(x, y, tracer_->shade_pixel(x, y, fb->width(), fb->height()));
    }
    result.pixels_recomputed =
        static_cast<std::int64_t>(dirty_pixels_.size());
    result.stats = tracer_->stats();  // fresh tracer: stats started at zero
  } else {
    for (int y = region_.y0; y < region_.y0 + region_.height; ++y) {
      for (int x = region_.x0; x < region_.x0 + region_.width; ++x) {
        if (!result.recomputed.at(x, y)) continue;
        grid_->begin_pixel(x, y);
        fb->set(x, y, tracer_->shade_pixel(x, y, fb->width(), fb->height()));
        ++result.pixels_recomputed;
      }
    }
    result.stats = tracer_->stats();  // fresh tracer: stats started at zero
  }
  result.voxels_marked = static_cast<std::int64_t>(
      recorder_->stats().voxels_visited - marks_before);

  grid_->maybe_compact();
  return result;
}

void CoherentRenderer::expand_to_blocks(PixelMask* mask) const {
  const int bs = options_.block_size;
  const int bx = (region_.width + bs - 1) / bs;
  const int by = (region_.height + bs - 1) / bs;
  std::vector<std::uint8_t> block_dirty(static_cast<std::size_t>(bx) * by, 0);
  for (int y = region_.y0; y < region_.y0 + region_.height; ++y) {
    for (int x = region_.x0; x < region_.x0 + region_.width; ++x) {
      if (mask->at(x, y)) {
        const int b = ((y - region_.y0) / bs) * bx + (x - region_.x0) / bs;
        block_dirty[b] = 1;
      }
    }
  }
  for (int y = region_.y0; y < region_.y0 + region_.height; ++y) {
    for (int x = region_.x0; x < region_.x0 + region_.width; ++x) {
      const int b = ((y - region_.y0) / bs) * bx + (x - region_.x0) / bs;
      if (block_dirty[b]) mask->set(x, y, true);
    }
  }
}

PixelMask CoherentRenderer::predict_dirty(int next_frame) const {
  assert(last_frame_ >= 0 && next_frame == last_frame_ + 1);
  PixelMask mask(scene_.width(), scene_.height());
  const World next = scene_.world_at(next_frame);
  const std::vector<int> changed =
      scene_.changed_objects(last_frame_, next_frame);
  const DirtyVoxels dirty =
      find_dirty_voxels(grid_->grid(), world_, next, changed);
  if (dirty.all_dirty) {
    for (int y = region_.y0; y < region_.y0 + region_.height; ++y) {
      for (int x = region_.x0; x < region_.x0 + region_.width; ++x) {
        mask.set(x, y, true);
      }
    }
  } else {
    grid_->collect_pixels(dirty.cells, &mask);
  }
  if (options_.block_size > 0) expand_to_blocks(&mask);
  return mask;
}

}  // namespace now
