#include "src/core/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace now {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) {
  assert(threads >= 1);
  helpers_.reserve(static_cast<std::size_t>(std::max(0, threads - 1)));
  for (int i = 1; i < threads; ++i) {
    helpers_.emplace_back([this, i] { helper_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void ThreadPool::drain_tasks(int worker) {
  try {
    for (;;) {
      const int task = next_task_.fetch_add(1, std::memory_order_relaxed);
      if (task >= task_count_) break;
      (*job_)(task, worker);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
    // Abandon the remaining tasks: workers polling the counter fall through.
    next_task_.store(task_count_, std::memory_order_relaxed);
  }
}

void ThreadPool::helper_loop(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    drain_tasks(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --helpers_active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    int task_count, const std::function<void(int task, int worker)>& fn) {
  if (task_count <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    task_count_ = task_count;
    next_task_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    helpers_active_ = static_cast<int>(helpers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  drain_tasks(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return helpers_active_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace now
