// ChangeDetector: "find the voxels in which change occurs in the next frame
// as compared with this one" (Figure 3).
//
// For every object whose transform changed between the frames, the voxels
// overlapped by its geometry in the *old* frame (it left them) and in the
// *new* frame (it entered them) are dirty. Overlap uses each primitive's
// conservative overlaps_box() test, so the dirty voxel set is a superset of
// the truth — required for correctness, never for tightness.
//
// Moves of unbounded primitives (planes) dirty the entire grid, as does a
// light-set or camera change (callers normally handle those by full
// re-render instead).
#pragma once

#include <vector>

#include "src/geom/voxel_grid.h"
#include "src/trace/world.h"

namespace now {

struct DirtyVoxels {
  /// Cell indices, each listed once, unordered.
  std::vector<std::uint32_t> cells;
  bool all_dirty = false;  // a conservative full invalidation

  bool empty() const { return !all_dirty && cells.empty(); }
};

/// Reusable allocations for find_dirty_voxels. A renderer calls the
/// detector once per frame with the same grid; reusing the dedup bitset
/// turns a cell_count-sized allocation + zero-fill per call into a sweep
/// over only the cells actually dirtied.
struct DirtyScratch {
  std::vector<std::uint8_t> seen;
};

/// Compute the dirty voxels for the transition prev → next. `changed_ids`
/// are the scene object ids whose transforms differ between the frames
/// (AnimatedScene::changed_objects); both worlds must carry those ids.
DirtyVoxels find_dirty_voxels(const VoxelGrid& grid, const World& prev,
                              const World& next,
                              const std::vector<int>& changed_ids);

/// Same, reusing `scratch` across calls (must be used with one grid at a
/// time; the bitset is returned all-zero).
DirtyVoxels find_dirty_voxels(const VoxelGrid& grid, const World& prev,
                              const World& next,
                              const std::vector<int>& changed_ids,
                              DirtyScratch* scratch);

/// Rasterize one primitive's voxel footprint into `cells` (deduplicated via
/// `seen`, a bitset of grid.cell_count() entries).
void add_footprint(const VoxelGrid& grid, const Primitive& prim,
                   std::vector<std::uint32_t>* cells,
                   std::vector<std::uint8_t>* seen);

}  // namespace now
