// ThreadPool: the intra-worker compute pool behind CoherentRenderer's
// multithreaded render paths.
//
// A pool of `threads` workers executes parallel_for() jobs: the task indices
// [0, task_count) are handed out through a shared atomic counter (dynamic
// load balancing — ray-tracing chunks have wildly uneven costs), the calling
// thread participates as worker 0, and the call returns only when every task
// has finished. The pool itself imposes no ordering — callers that need
// determinism (CoherentRenderer does) buffer per-task results and merge them
// in task order after the join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace now {

/// Resolve a thread-count knob: 0 means "one per hardware thread", anything
/// else is used as given (clamped to at least 1).
int resolve_thread_count(int requested);

class ThreadPool {
 public:
  /// Spawns `threads - 1` helper threads; the caller of parallel_for is the
  /// remaining worker. `threads` must be >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(helpers_.size()) + 1; }

  /// Run fn(task, worker) for every task in [0, task_count), distributing
  /// tasks dynamically over all workers; blocks until every task completed.
  /// `worker` is in [0, thread_count()), unique per concurrent invocation
  /// (worker 0 is the calling thread). An exception thrown by `fn` stops the
  /// job (remaining tasks are abandoned) and is rethrown here.
  void parallel_for(int task_count,
                    const std::function<void(int task, int worker)>& fn);

 private:
  void helper_loop(int worker);
  /// Pull tasks until the counter runs dry; records the first exception.
  void drain_tasks(int worker);

  std::vector<std::thread> helpers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // helpers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for helpers to finish
  std::uint64_t generation_ = 0;      // bumped per parallel_for call
  int helpers_active_ = 0;            // helpers still inside the current job
  bool stopping_ = false;

  const std::function<void(int, int)>* job_ = nullptr;
  int task_count_ = 0;
  std::atomic<int> next_task_{0};
  std::exception_ptr first_error_;
};

}  // namespace now
