// CoherenceGrid: the voxel → pixel-list data structure at the heart of the
// paper's frame-coherence algorithm (Figure 3).
//
// "As rays are fired during the rendering process, the frame coherence
//  algorithm tracks their paths and marks all of the voxels that they pass
//  through. ... If a particular voxel experiences some sort of change in the
//  next frame, all of the pixels whose rays pass through that voxel must be
//  updated."
//
// Marks are retired lazily with per-pixel epochs: when a pixel is about to
// be recomputed its epoch is bumped, which invalidates every mark it left
// behind; the new computation re-marks its (possibly different) ray paths.
// Stale entries are dropped whenever a voxel's list is scanned, plus in a
// global compaction pass when the stale fraction grows too large. Memory is
// proportional to the tracked pixel region — the property that makes frame
// division cheaper per worker than sequence division (Section 3).
#pragma once

#include <cstdint>
#include <vector>

#include "src/geom/voxel_grid.h"
#include "src/image/framebuffer.h"
#include "src/image/image_diff.h"

namespace now {

struct CoherenceGridStats {
  std::int64_t live_marks = 0;
  std::int64_t total_marks = 0;  // live + stale currently stored
  std::int64_t compactions = 0;
  /// Mark slots *allocated* across all cell lists (vector capacities).
  /// Compaction and reset shrink sizes but keep capacity, so this is the
  /// memory high-water behavior the allocator actually sees.
  std::int64_t reserved_marks = 0;
  /// Fixed overhead allocated at construction: the per-pixel epoch and
  /// live-mark arrays plus the cell-list headers.
  std::int64_t fixed_bytes = 0;
  /// Allocated footprint, not live-entry count: stale-but-stored marks and
  /// grown-but-unused capacity both occupy real memory, and the paper's
  /// "memory proportional to image area" claim is about the allocation.
  std::int64_t bytes() const {
    return fixed_bytes +
           reserved_marks * static_cast<std::int64_t>(2 * sizeof(std::uint32_t));
  }
};

class CoherenceGrid {
 public:
  /// Track pixels of `region` (a subarea of the full image) against `grid`.
  CoherenceGrid(const VoxelGrid& grid, const PixelRect& region);

  const VoxelGrid& grid() const { return grid_; }
  const PixelRect& region() const { return region_; }

  /// Append pixel (x, y) — full-image coordinates, must lie in the region —
  /// to the pixel list of the given voxel cell.
  void mark(int cell, int x, int y);

  /// The pixel is about to be recomputed: retire all marks it left.
  void begin_pixel(int x, int y);

  /// Forget everything (used when a full re-render invalidates all state).
  void reset();

  /// Union of the live pixels of the given voxel cells into `out` (mask in
  /// full-image coordinates). Scanned lists are compacted in passing.
  /// When `pixels` is non-null it additionally receives the region-local
  /// index of every pixel newly set in `out` (deduplicated via the mask, in
  /// scan order — not sorted); callers that iterate only the dirty pixels
  /// avoid rescanning the whole region.
  void collect_pixels(const std::vector<std::uint32_t>& cells, PixelMask* out,
                      std::vector<std::uint32_t>* pixels = nullptr);

  /// Drop stale marks everywhere when they exceed `stale_fraction` of all
  /// stored marks. Returns true if a compaction ran.
  bool maybe_compact(double stale_fraction = 0.5);

  const CoherenceGridStats& stats() const { return stats_; }

 private:
  struct Mark {
    std::uint32_t pixel;  // region-local index
    std::uint32_t epoch;
  };

  std::uint32_t local_index(int x, int y) const {
    return static_cast<std::uint32_t>((y - region_.y0) * region_.width +
                                      (x - region_.x0));
  }

  void compact_cell(std::vector<Mark>& list);

  VoxelGrid grid_;
  PixelRect region_;
  std::vector<std::vector<Mark>> cells_;
  std::vector<std::uint32_t> pixel_epoch_;  // per region-local pixel
  std::vector<std::uint32_t> pixel_marks_;  // live marks held per pixel
  CoherenceGridStats stats_;
};

}  // namespace now
