// CoherentRenderer: the complete frame-coherence rendering loop of Figure 3.
//
//   parse the user input parameters
//   initialize frame coherence data structures
//   for each frame of the animation
//     for each pixel that needs to be computed
//       for each voxel that a ray associated with this pixel intersects
//         add the pixel to the voxel's pixel list
//     find the voxels in which change occurs in the next frame
//     mark those pixels on the pixel list of the changed voxels for
//     recomputation in the next frame
//
// The renderer owns a persistent CoherenceGrid spanning the whole animation
// extent and renders frames of a pixel region in ascending order. The first
// frame (or any out-of-sequence frame, or a frame across a camera cut) is a
// full render; subsequent consecutive frames recompute only predicted-dirty
// pixels. Output is guaranteed byte-identical to a from-scratch render.
//
// Granularity is per pixel. Setting `block_size > 0` switches to the
// Jevans-1992 baseline the paper contrasts against: "if one pixel in the
// block needs to be updated, all pixels in the block are re-computed."
//
// Intra-worker parallelism (`threads`): the region's pixels are sharded into
// fixed row-band chunks; a thread pool shades chunks concurrently, each with
// its own Tracer and a BufferedRayRecorder that defers grid marks and ray
// stats into per-chunk buffers. After the join, buffers are merged into the
// CoherenceGrid and stats are reduced in ascending chunk order — the
// framebuffer, the grid's mark lists, and every FrameRenderResult counter
// are byte-identical to a `threads = 1` render (only the wall-clock
// `chunks` timing metadata differs; it is empty when sequential).
#pragma once

#include <memory>
#include <optional>

#include "src/core/change_detector.h"
#include "src/core/coherence_grid.h"
#include "src/core/ray_recorder.h"
#include "src/core/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/scene/animated_scene.h"
#include "src/trace/render.h"
#include "src/trace/uniform_grid.h"

namespace now {

struct CoherenceOptions {
  TraceOptions trace;

  /// Use frame coherence at all (false = full render every frame).
  bool enabled = true;

  /// Mark shadow-ray paths (must stay true while shadows are on; exposed for
  /// the shadow-coherence ablation with shadows disabled).
  bool record_shadow_rays = true;

  /// Jevans-style block granularity; 0 = the paper's per-pixel granularity.
  int block_size = 0;

  /// Render threads inside this renderer: 0 = one per hardware thread, 1 =
  /// sequential. Output is bit-deterministic for every value (render_farm
  /// forces 1 under the sim backend so virtual-time traces stay
  /// reproducible).
  int threads = 0;

  /// Coherence-grid resolution heuristic inputs (see VoxelGrid::heuristic).
  double grid_density = 3.0;
  int grid_max_axis = 64;

  /// Explicit coherence grid override (resolution-sweep benchmarks).
  std::optional<VoxelGrid> grid_override;

  /// Optional metrics sink: per-frame coherence counters (coherence.*) are
  /// published here. Null = no instrumentation, zero overhead.
  MetricsRegistry* metrics = nullptr;
};

/// Wall-clock timing of one parallel render chunk (a row band of the
/// region). Timing metadata only: inherently nondeterministic, excluded from
/// the threads-vs-sequential byte-identity guarantee.
struct ChunkTiming {
  int chunk = 0;    // index in fixed row-band order
  int thread = 0;   // pool worker that rendered it
  int y0 = 0;       // first image row of the band
  int rows = 0;
  double start_seconds = 0.0;  // offset from the frame's render start
  double seconds = 0.0;        // time spent shading the band
};

struct FrameRenderResult {
  TraceStats stats;
  std::int64_t pixels_recomputed = 0;
  std::int64_t pixels_total = 0;
  std::int64_t dirty_voxels = 0;
  /// Coherence bookkeeping volume: voxels visited by the DDA marker this
  /// frame (0 when coherence is disabled). Drives the overhead cost model.
  std::int64_t voxels_marked = 0;
  bool full_render = false;
  /// Pixels recomputed this frame (full-image coordinates; only pixels of
  /// the renderer's region can be set). Drives sparse network returns and
  /// the Figure 2 predicted-difference images.
  PixelMask recomputed;
  /// Per-chunk wall timings of the parallel section (empty when the frame
  /// was rendered sequentially). See ChunkTiming.
  std::vector<ChunkTiming> chunks;
};

/// Voxel-grid extent covering the scene's geometry across every frame, so
/// moving objects never escape the coherence grid.
Aabb animation_extent(const AnimatedScene& scene);

class CoherentRenderer {
 public:
  /// Renders pixels of `region` (full-image coordinates) of `scene`.
  CoherentRenderer(const AnimatedScene& scene, const PixelRect& region,
                   const CoherenceOptions& options = {});

  /// Render `frame` into `fb` (full image size). Frames rendered in
  /// ascending consecutive order reuse coherence; anything else triggers a
  /// full render of the region.
  FrameRenderResult render_frame(int frame, Framebuffer* fb);

  const CoherenceGrid& coherence_grid() const { return *grid_; }
  const PixelRect& region() const { return region_; }
  /// Resolved render-thread count (>= 1).
  int thread_count() const { return threads_; }

  /// Predicted-dirty mask for the transition last_frame → last_frame+1
  /// without rendering (used by the Figure 2 accuracy benchmark).
  PixelMask predict_dirty(int next_frame) const;

 private:
  FrameRenderResult full_render(Framebuffer* fb);
  FrameRenderResult incremental_render(int frame, Framebuffer* fb);
  void rebuild_frame_state(int frame);
  void expand_to_blocks(PixelMask* mask) const;

  /// Shade the region's pixels (those in `mask`, or all when null) on the
  /// thread pool and merge marks/stats deterministically. `bump_epochs`
  /// retires each pixel's stale marks before re-marking (incremental path).
  void render_pixels_parallel(const PixelMask* mask, bool bump_epochs,
                              Framebuffer* fb, FrameRenderResult* result);

  const AnimatedScene& scene_;
  PixelRect region_;
  CoherenceOptions options_;
  int threads_ = 1;

  std::unique_ptr<CoherenceGrid> grid_;
  std::unique_ptr<RayRecorder> recorder_;

  // Per-frame scratch reused across the incremental hot loop: the change
  // detector's voxel-dedup bitset and the dirty-pixel list from
  // collect_pixels (sorted ascending = row-major shading order).
  DirtyScratch dirty_scratch_;
  std::vector<std::uint32_t> dirty_pixels_;

  // Parallel-render state, created on first threaded frame: the pool, and
  // one mark-dedup stamp array + pixel serial per pool worker (see
  // BufferedRayRecorder).
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::vector<std::uint64_t>> mark_stamp_;
  std::vector<std::uint64_t> mark_serial_;

  // Cached instruments (null when options_.metrics is null): the registry
  // lookup by name happens once at construction, not per frame.
  Counter* metric_full_renders_ = nullptr;
  Counter* metric_incremental_renders_ = nullptr;
  Counter* metric_pixels_recomputed_ = nullptr;
  Counter* metric_voxels_marked_ = nullptr;
  Counter* metric_dirty_voxels_ = nullptr;

  int last_frame_ = -1;
  World world_;                                   // world of last_frame_
  std::unique_ptr<UniformGridAccelerator> accel_; // accel over world_
  std::unique_ptr<Tracer> tracer_;
};

}  // namespace now
