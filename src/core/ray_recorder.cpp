#include "src/core/ray_recorder.h"

#include <cassert>

namespace now {

namespace {

/// Marking limit for a segment ending at `t_end`: extend fractionally past
/// the hit so the voxel containing the hit point is marked even when the hit
/// lies exactly on a cell boundary.
double mark_limit(double t_end) {
  return t_end >= kRayInfinity ? kRayInfinity : t_end * (1.0 + 1e-9) + 1e-12;
}

}  // namespace

void RayRecorder::on_segment(int px, int py, const Ray& ray, double t_end,
                             RayKind kind) {
  if (kind == RayKind::kShadow && !record_shadow_rays_) return;
  ++stats_.segments;
  const VoxelGrid& vg = grid_->grid();
  vg.walk(ray, 0.0, mark_limit(t_end),
          [&](int ix, int iy, int iz, double, double) {
            grid_->mark(vg.cell_index(ix, iy, iz), px, py);
            ++stats_.voxels_visited;
            return true;
          });
}

void BufferedRayRecorder::begin_pixel(int x, int y) {
  ++*stamp_serial_;
  pixels_.push_back({x, y, 0});
}

void BufferedRayRecorder::on_segment(int px, int py, const Ray& ray,
                                     double t_end, RayKind kind) {
  if (kind == RayKind::kShadow && !record_shadow_rays_) return;
  assert(!pixels_.empty() && pixels_.back().x == px &&
         pixels_.back().y == py && "segment outside begin_pixel scope");
  (void)px;
  (void)py;
  ++stats_.segments;
  const std::uint64_t serial = *stamp_serial_;
  std::vector<std::uint64_t>& stamp = *cell_stamp_;
  grid_.walk(ray, 0.0, mark_limit(t_end),
             [&](int ix, int iy, int iz, double, double) {
               ++stats_.voxels_visited;
               const int cell = grid_.cell_index(ix, iy, iz);
               // One buffered mark per (pixel, cell): the grid's consecutive-
               // duplicate check would drop the rest during a sequential
               // render anyway (pixels are processed contiguously).
               if (stamp[static_cast<std::size_t>(cell)] != serial) {
                 stamp[static_cast<std::size_t>(cell)] = serial;
                 cells_.push_back(static_cast<std::uint32_t>(cell));
                 ++pixels_.back().cell_count;
               }
               return true;
             });
}

void BufferedRayRecorder::replay(CoherenceGrid* grid, bool bump_epochs) const {
  std::size_t cursor = 0;
  for (const PixelEntry& p : pixels_) {
    if (bump_epochs) grid->begin_pixel(p.x, p.y);
    for (std::uint32_t i = 0; i < p.cell_count; ++i) {
      grid->mark(static_cast<int>(cells_[cursor + i]), p.x, p.y);
    }
    cursor += p.cell_count;
  }
  assert(cursor == cells_.size());
}

}  // namespace now
