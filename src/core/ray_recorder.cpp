#include "src/core/ray_recorder.h"

namespace now {

void RayRecorder::on_segment(int px, int py, const Ray& ray, double t_end,
                             RayKind kind) {
  if (kind == RayKind::kShadow && !record_shadow_rays_) return;
  ++stats_.segments;
  const VoxelGrid& vg = grid_->grid();
  // Extend fractionally past the hit so the voxel containing the hit point
  // is marked even when the hit lies exactly on a cell boundary.
  const double limit =
      t_end >= kRayInfinity ? kRayInfinity : t_end * (1.0 + 1e-9) + 1e-12;
  vg.walk(ray, 0.0, limit, [&](int ix, int iy, int iz, double, double) {
    grid_->mark(vg.cell_index(ix, iy, iz), px, py);
    ++stats_.voxels_visited;
    return true;
  });
}

}  // namespace now
