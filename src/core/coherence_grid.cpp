#include "src/core/coherence_grid.h"

#include <cassert>

namespace now {

CoherenceGrid::CoherenceGrid(const VoxelGrid& grid, const PixelRect& region)
    : grid_(grid),
      region_(region),
      cells_(static_cast<std::size_t>(grid.cell_count())),
      pixel_epoch_(static_cast<std::size_t>(region.area()), 0),
      pixel_marks_(static_cast<std::size_t>(region.area()), 0) {
  stats_.fixed_bytes =
      static_cast<std::int64_t>(region.area()) * 2 * sizeof(std::uint32_t) +
      static_cast<std::int64_t>(cells_.size()) * sizeof(std::vector<Mark>);
}

void CoherenceGrid::mark(int cell, int x, int y) {
  assert(region_.contains(x, y));
  const std::uint32_t pixel = local_index(x, y);
  const std::uint32_t epoch = pixel_epoch_[pixel];
  std::vector<Mark>& list = cells_[cell];
  // Successive rays of one pixel often pierce the same voxel; skipping the
  // immediate duplicate removes most of that redundancy for free.
  if (!list.empty() && list.back().pixel == pixel &&
      list.back().epoch == epoch) {
    return;
  }
  // Capacity-delta accounting: compaction and reset shrink sizes but never
  // release capacity, so allocation only ever grows here.
  const std::size_t before = list.capacity();
  list.push_back({pixel, epoch});
  stats_.reserved_marks +=
      static_cast<std::int64_t>(list.capacity() - before);
  ++stats_.total_marks;
  ++stats_.live_marks;
  ++pixel_marks_[pixel];
}

void CoherenceGrid::begin_pixel(int x, int y) {
  const std::uint32_t pixel = local_index(x, y);
  ++pixel_epoch_[pixel];
  stats_.live_marks -= pixel_marks_[pixel];
  pixel_marks_[pixel] = 0;
}

void CoherenceGrid::reset() {
  for (auto& list : cells_) list.clear();
  std::fill(pixel_epoch_.begin(), pixel_epoch_.end(), 0);
  std::fill(pixel_marks_.begin(), pixel_marks_.end(), 0);
  stats_.live_marks = 0;
  stats_.total_marks = 0;
}

void CoherenceGrid::collect_pixels(const std::vector<std::uint32_t>& cells,
                                   PixelMask* out,
                                   std::vector<std::uint32_t>* pixels) {
  for (const std::uint32_t cell : cells) {
    std::vector<Mark>& list = cells_[cell];
    std::size_t keep = 0;
    for (const Mark& m : list) {
      if (m.epoch != pixel_epoch_[m.pixel]) continue;  // stale: drop
      list[keep++] = m;
      const int x = region_.x0 + static_cast<int>(m.pixel) % region_.width;
      const int y = region_.y0 + static_cast<int>(m.pixel) / region_.width;
      if (!out->at(x, y)) {
        out->set(x, y, true);
        if (pixels != nullptr) pixels->push_back(m.pixel);
      }
    }
    stats_.total_marks -= static_cast<std::int64_t>(list.size() - keep);
    list.resize(keep);
  }
}

void CoherenceGrid::compact_cell(std::vector<Mark>& list) {
  std::size_t keep = 0;
  for (const Mark& m : list) {
    if (m.epoch == pixel_epoch_[m.pixel]) list[keep++] = m;
  }
  stats_.total_marks -= static_cast<std::int64_t>(list.size() - keep);
  list.resize(keep);
}

bool CoherenceGrid::maybe_compact(double stale_fraction) {
  const std::int64_t stale = stats_.total_marks - stats_.live_marks;
  if (stats_.total_marks == 0 ||
      static_cast<double>(stale) <
          stale_fraction * static_cast<double>(stats_.total_marks)) {
    return false;
  }
  for (auto& list : cells_) compact_cell(list);
  ++stats_.compactions;
  return true;
}

}  // namespace now
