// RayRecorder: the RayListener that implements the inner loop of Figure 3 —
//   "for each voxel that a ray associated with this pixel intersects,
//    add the pixel to the voxel's pixel list."
//
// Each reported ray segment is walked through the coherence grid with the
// 3D-DDA (the paper's "modified 3D-DDA algorithm"), clipped at the segment's
// termination parameter: objects behind a hit point cannot affect the pixel,
// so voxels beyond it are not marked. Shadow-ray marking can be disabled to
// measure the cost/benefit of the paper's shadow-coherence feature (only
// valid with shadows off, otherwise occluder motion would be missed).
//
// BufferedRayRecorder is the multithreaded variant: it performs the same DDA
// walk but defers the grid updates into a private per-chunk buffer, which
// the renderer replays into the shared CoherenceGrid in fixed chunk order
// after the parallel section — the grid ends byte-identical to a sequential
// render (see CoherentRenderer's "Intra-worker parallelism" notes).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/coherence_grid.h"
#include "src/trace/tracer.h"

namespace now {

struct RayRecorderStats {
  std::uint64_t segments = 0;
  std::uint64_t voxels_visited = 0;
};

class RayRecorder final : public RayListener {
 public:
  explicit RayRecorder(CoherenceGrid* grid, bool record_shadow_rays = true)
      : grid_(grid), record_shadow_rays_(record_shadow_rays) {}

  void on_segment(int px, int py, const Ray& ray, double t_end,
                  RayKind kind) override;

  const RayRecorderStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Fold a buffered chunk's counts in, so per-frame stat deltas stay
  /// consistent when sequential and threaded frames alternate.
  void accumulate(const RayRecorderStats& s) {
    stats_.segments += s.segments;
    stats_.voxels_visited += s.voxels_visited;
  }

 private:
  CoherenceGrid* grid_;
  bool record_shadow_rays_;
  RayRecorderStats stats_;
};

/// Mark buffer for one render chunk. The owning render thread announces each
/// pixel with begin_pixel() before shading it; every subsequent segment's
/// DDA-visited cells are appended to that pixel's entry. replay() then feeds
/// the buffered sequence through CoherenceGrid in recording order.
///
/// Dedup invariant: sequential rendering processes each pixel contiguously,
/// so the grid's "skip the immediate duplicate" tail check collapses to "at
/// most one mark per (pixel, cell) per frame". The recorder applies exactly
/// that rule at buffer time (via a caller-owned stamp array, reusable across
/// chunks on the same pool worker), and replay still goes through
/// CoherenceGrid::mark, whose own tail check handles the chunk-boundary
/// cases — the stored mark lists end byte-identical to a sequential render.
class BufferedRayRecorder final : public RayListener {
 public:
  /// `cell_stamp` must have grid.cell_count() entries and live as long as
  /// the recorder; `stamp_serial` is the monotonically increasing pixel
  /// serial shared by every recorder using that stamp array.
  BufferedRayRecorder(const VoxelGrid& grid, bool record_shadow_rays,
                      std::vector<std::uint64_t>* cell_stamp,
                      std::uint64_t* stamp_serial)
      : grid_(grid),
        record_shadow_rays_(record_shadow_rays),
        cell_stamp_(cell_stamp),
        stamp_serial_(stamp_serial) {}

  /// Start buffering marks for pixel (x, y) — full-image coordinates.
  void begin_pixel(int x, int y);

  void on_segment(int px, int py, const Ray& ray, double t_end,
                  RayKind kind) override;

  /// Feed the buffered pixels into `grid` in recording order. When
  /// `bump_epochs` (incremental renders), each pixel's stale marks are
  /// retired with CoherenceGrid::begin_pixel first, exactly as the
  /// sequential recompute loop does.
  void replay(CoherenceGrid* grid, bool bump_epochs) const;

  const RayRecorderStats& stats() const { return stats_; }
  std::int64_t pixels() const {
    return static_cast<std::int64_t>(pixels_.size());
  }

 private:
  struct PixelEntry {
    std::int32_t x;
    std::int32_t y;
    std::uint32_t cell_count;  // marks buffered for this pixel
  };

  const VoxelGrid& grid_;
  bool record_shadow_rays_;
  std::vector<std::uint64_t>* cell_stamp_;
  std::uint64_t* stamp_serial_;
  std::vector<PixelEntry> pixels_;
  std::vector<std::uint32_t> cells_;  // concatenated per-pixel mark cells
  RayRecorderStats stats_;
};

}  // namespace now
