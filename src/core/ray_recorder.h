// RayRecorder: the RayListener that implements the inner loop of Figure 3 —
//   "for each voxel that a ray associated with this pixel intersects,
//    add the pixel to the voxel's pixel list."
//
// Each reported ray segment is walked through the coherence grid with the
// 3D-DDA (the paper's "modified 3D-DDA algorithm"), clipped at the segment's
// termination parameter: objects behind a hit point cannot affect the pixel,
// so voxels beyond it are not marked. Shadow-ray marking can be disabled to
// measure the cost/benefit of the paper's shadow-coherence feature (only
// valid with shadows off, otherwise occluder motion would be missed).
#pragma once

#include "src/core/coherence_grid.h"
#include "src/trace/tracer.h"

namespace now {

struct RayRecorderStats {
  std::uint64_t segments = 0;
  std::uint64_t voxels_visited = 0;
};

class RayRecorder final : public RayListener {
 public:
  explicit RayRecorder(CoherenceGrid* grid, bool record_shadow_rays = true)
      : grid_(grid), record_shadow_rays_(record_shadow_rays) {}

  void on_segment(int px, int py, const Ray& ray, double t_end,
                  RayKind kind) override;

  const RayRecorderStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  CoherenceGrid* grid_;
  bool record_shadow_rays_;
  RayRecorderStats stats_;
};

}  // namespace now
