#include "src/core/change_detector.h"

namespace now {
namespace {

const Primitive* find_object(const World& world, int object_id) {
  // Scene-built worlds store object id == index; fall back to a scan.
  if (object_id >= 0 && object_id < world.object_count() &&
      world.object(object_id).object_id == object_id) {
    return world.object(object_id).primitive.get();
  }
  for (const WorldObject& obj : world.objects()) {
    if (obj.object_id == object_id) return obj.primitive.get();
  }
  return nullptr;
}

}  // namespace

void add_footprint(const VoxelGrid& grid, const Primitive& prim,
                   std::vector<std::uint32_t>* cells,
                   std::vector<std::uint8_t>* seen) {
  int ix0, iy0, iz0, ix1, iy1, iz1;
  if (!grid.cell_range(prim.bounds(), &ix0, &iy0, &iz0, &ix1, &iy1, &iz1)) {
    return;
  }
  for (int iz = iz0; iz <= iz1; ++iz) {
    for (int iy = iy0; iy <= iy1; ++iy) {
      for (int ix = ix0; ix <= ix1; ++ix) {
        const int cell = grid.cell_index(ix, iy, iz);
        if ((*seen)[cell]) continue;
        if (prim.overlaps_box(grid.cell_bounds(ix, iy, iz))) {
          (*seen)[cell] = 1;
          cells->push_back(static_cast<std::uint32_t>(cell));
        }
      }
    }
  }
}

DirtyVoxels find_dirty_voxels(const VoxelGrid& grid, const World& prev,
                              const World& next,
                              const std::vector<int>& changed_ids,
                              DirtyScratch* scratch) {
  DirtyVoxels out;
  if (changed_ids.empty()) return out;
  std::vector<std::uint8_t>& seen = scratch->seen;
  if (seen.size() != static_cast<std::size_t>(grid.cell_count())) {
    seen.assign(static_cast<std::size_t>(grid.cell_count()), 0);
  }
  // The bitset contract: all-zero on entry, all-zero on return. Clearing
  // only the cells we set costs O(dirty) instead of O(cell_count).
  const auto unsee = [&] {
    for (const std::uint32_t cell : out.cells) seen[cell] = 0;
  };
  for (const int id : changed_ids) {
    for (const World* world : {&prev, &next}) {
      const Primitive* prim = find_object(*world, id);
      if (prim == nullptr) continue;  // object absent in this frame
      if (!prim->is_bounded()) {
        // A moving plane can sweep anywhere: dirty everything.
        out.all_dirty = true;
        unsee();
        out.cells.clear();
        return out;
      }
      add_footprint(grid, *prim, &out.cells, &seen);
    }
  }
  unsee();
  return out;
}

DirtyVoxels find_dirty_voxels(const VoxelGrid& grid, const World& prev,
                              const World& next,
                              const std::vector<int>& changed_ids) {
  DirtyScratch scratch;
  return find_dirty_voxels(grid, prev, next, changed_ids, &scratch);
}

}  // namespace now
