// Image file I/O: 24-bit uncompressed Targa (the paper's output format) and
// binary PPM (for easy viewing/diffing with standard tools).
#pragma once

#include <string>

#include "src/image/framebuffer.h"

namespace now {

/// Write `fb` as an uncompressed 24-bit Targa (type 2, top-left origin).
/// Returns false on I/O failure.
bool write_tga(const Framebuffer& fb, const std::string& path);

/// Read a Targa produced by write_tga (type 2, 24-bit, either vertical
/// origin). Returns false on I/O failure or unsupported format.
bool read_tga(Framebuffer* fb, const std::string& path);

/// Crash-safe write_tga: write to a temp file in the same directory, fsync,
/// then rename over `path`. A crash mid-write leaves at most a stale temp
/// file — `path` is always absent or a complete frame, never torn.
bool write_tga_atomic(const Framebuffer& fb, const std::string& path);

/// Write `fb` as a binary PPM (P6).
bool write_ppm(const Framebuffer& fb, const std::string& path);

/// Read a binary PPM (P6, maxval 255).
bool read_ppm(Framebuffer* fb, const std::string& path);

/// Serialize to an in-memory TGA byte stream (used by tests and by the
/// master's file-writing path so output is identical regardless of backend).
std::string encode_tga(const Framebuffer& fb);

/// Decode an in-memory TGA byte stream.
bool decode_tga(Framebuffer* fb, const std::string& bytes);

}  // namespace now
