// Wire encoding for pixel results returned from workers to the master.
//
// A worker that exploited frame coherence recomputed only a sparse subset of
// its pixels, so sending the full region every frame would waste the shared
// Ethernet (the paper's network is 10 Mb/s for the whole cluster). The codec
// supports two layouts and pickers choose the smaller:
//   dense  — every pixel of the rect, row-major (3 bytes/pixel)
//   sparse — run-length spans of updated pixels within the rect
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/image/framebuffer.h"
#include "src/image/image_diff.h"

namespace now {

/// One run of consecutive (row-major within the rect) updated pixels.
struct PixelRun {
  std::uint32_t offset = 0;  // first pixel index within the rect
  std::vector<Rgb8> pixels;
};

struct PixelPayload {
  PixelRect rect;
  bool dense = true;
  std::vector<Rgb8> dense_pixels;   // when dense
  std::vector<PixelRun> runs;       // when sparse

  /// Number of pixels carried (all runs or the whole rect).
  std::int64_t carried_pixels() const;
};

/// Build a dense payload covering `rect` from `fb`.
PixelPayload make_dense_payload(const Framebuffer& fb, const PixelRect& rect);

/// Build a sparse payload carrying only pixels of `rect` set in `updated`
/// (mask indexed in full-image coordinates). Falls back to dense when the
/// sparse encoding would be larger.
PixelPayload make_sparse_payload(const Framebuffer& fb, const PixelRect& rect,
                                 const PixelMask& updated);

/// Apply a payload onto a full-size framebuffer.
void apply_payload(Framebuffer* fb, const PixelPayload& payload);

/// Serialize / deserialize. Deserialization validates structure and returns
/// false on malformed input (never reads out of bounds).
std::string encode_payload(const PixelPayload& payload);
bool decode_payload(PixelPayload* payload, const std::string& bytes);

/// Exact wire size of the encoded payload, used by the Ethernet cost model.
std::size_t encoded_size(const PixelPayload& payload);

}  // namespace now
