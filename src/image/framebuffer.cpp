#include "src/image/framebuffer.h"

#include <algorithm>
#include <cassert>

namespace now {

PixelRect PixelRect::intersect(const PixelRect& a, const PixelRect& b) {
  const int x0 = std::max(a.x0, b.x0);
  const int y0 = std::max(a.y0, b.y0);
  const int x1 = std::min(a.x0 + a.width, b.x0 + b.width);
  const int y1 = std::min(a.y0 + a.height, b.y0 + b.height);
  return {x0, y0, std::max(0, x1 - x0), std::max(0, y1 - y0)};
}

Framebuffer::Framebuffer(int width, int height, Rgb8 fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill) {
  assert(width >= 0 && height >= 0);
}

void Framebuffer::fill(Rgb8 c) {
  std::fill(pixels_.begin(), pixels_.end(), c);
}

void Framebuffer::blit(const PixelRect& rect, const std::vector<Rgb8>& src) {
  assert(static_cast<int>(src.size()) == rect.area());
  assert(rect.x0 >= 0 && rect.y0 >= 0);
  assert(rect.x0 + rect.width <= width_ && rect.y0 + rect.height <= height_);
  for (int row = 0; row < rect.height; ++row) {
    std::copy_n(src.begin() + static_cast<std::size_t>(row) * rect.width,
                rect.width, pixels_.begin() + index(rect.x0, rect.y0 + row));
  }
}

std::vector<Rgb8> Framebuffer::extract(const PixelRect& rect) const {
  std::vector<Rgb8> out(static_cast<std::size_t>(rect.area()));
  for (int row = 0; row < rect.height; ++row) {
    std::copy_n(pixels_.begin() + index(rect.x0, rect.y0 + row), rect.width,
                out.begin() + static_cast<std::size_t>(row) * rect.width);
  }
  return out;
}

}  // namespace now
