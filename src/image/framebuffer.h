// Framebuffer: the 24-bit image the renderer produces.
//
// Pixels are stored as quantized 8-bit RGB (matching the paper's 24-bit targa
// output) rather than floats: the frame-coherence guarantee is byte-identical
// output, and quantizing at write time makes "identical" well defined.
#pragma once

#include <cstdint>
#include <vector>

#include "src/math/vec3.h"

namespace now {

struct Rgb8 {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Rgb8&) const = default;
};

/// A rectangular pixel region [x0, x0+width) × [y0, y0+height) in image
/// coordinates. Used for frame-division work assignment and pixel returns.
struct PixelRect {
  int x0 = 0;
  int y0 = 0;
  int width = 0;
  int height = 0;

  int area() const { return width * height; }
  bool empty() const { return width <= 0 || height <= 0; }
  bool contains(int x, int y) const {
    return x >= x0 && x < x0 + width && y >= y0 && y < y0 + height;
  }
  bool operator==(const PixelRect&) const = default;

  /// Intersection of two rects (possibly empty).
  static PixelRect intersect(const PixelRect& a, const PixelRect& b);
};

class Framebuffer {
 public:
  Framebuffer() = default;
  Framebuffer(int width, int height, Rgb8 fill = {});

  int width() const { return width_; }
  int height() const { return height_; }
  int pixel_count() const { return width_ * height_; }
  PixelRect full_rect() const { return {0, 0, width_, height_}; }

  Rgb8 at(int x, int y) const { return pixels_[index(x, y)]; }
  void set(int x, int y, Rgb8 c) { pixels_[index(x, y)] = c; }
  void set(int x, int y, const Color& c) {
    set(x, y, Rgb8{to_byte(c.r), to_byte(c.g), to_byte(c.b)});
  }

  const std::vector<Rgb8>& pixels() const { return pixels_; }

  void fill(Rgb8 c);

  /// Copy `src` (sized rect.width × rect.height) into this buffer at `rect`.
  void blit(const PixelRect& rect, const std::vector<Rgb8>& src);

  /// Extract the pixels of `rect` in row-major order.
  std::vector<Rgb8> extract(const PixelRect& rect) const;

  bool operator==(const Framebuffer& o) const {
    return width_ == o.width_ && height_ == o.height_ && pixels_ == o.pixels_;
  }

  int index(int x, int y) const { return y * width_ + x; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb8> pixels_;
};

}  // namespace now
