#include "src/image/image_diff.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

namespace now {

PixelMask::PixelMask(int width, int height, bool value)
    : width_(width),
      height_(height),
      bits_(static_cast<std::size_t>(width) * height, value ? 1 : 0) {}

std::int64_t PixelMask::count() const {
  return std::accumulate(bits_.begin(), bits_.end(), std::int64_t{0});
}

PixelMask PixelMask::minus(const PixelMask& other) const {
  assert(width_ == other.width_ && height_ == other.height_);
  PixelMask out(width_, height_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] && !other.bits_[i];
  }
  return out;
}

PixelMask PixelMask::union_with(const PixelMask& other) const {
  assert(width_ == other.width_ && height_ == other.height_);
  PixelMask out(width_, height_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] || other.bits_[i];
  }
  return out;
}

bool PixelMask::subset_of(const PixelMask& other) const {
  assert(width_ == other.width_ && height_ == other.height_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] && !other.bits_[i]) return false;
  }
  return true;
}

Framebuffer PixelMask::to_image() const {
  Framebuffer fb(width_, height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const std::uint8_t v = at(x, y) ? 255 : 0;
      fb.set(x, y, Rgb8{v, v, v});
    }
  }
  return fb;
}

PixelMask actual_diff_mask(const Framebuffer& prev, const Framebuffer& next) {
  assert(prev.width() == next.width() && prev.height() == next.height());
  PixelMask mask(prev.width(), prev.height());
  for (int y = 0; y < prev.height(); ++y) {
    for (int x = 0; x < prev.width(); ++x) {
      mask.set(x, y, !(prev.at(x, y) == next.at(x, y)));
    }
  }
  return mask;
}

DiffStats diff_stats(const Framebuffer& prev, const Framebuffer& next) {
  DiffStats stats;
  stats.total_pixels = prev.pixel_count();
  stats.changed_pixels = actual_diff_mask(prev, next).count();
  return stats;
}

double mean_absolute_error(const Framebuffer& a, const Framebuffer& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.pixel_count() == 0) return 0.0;
  std::int64_t sum = 0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      const Rgb8 pa = a.at(x, y);
      const Rgb8 pb = b.at(x, y);
      sum += std::abs(int(pa.r) - int(pb.r)) + std::abs(int(pa.g) - int(pb.g)) +
             std::abs(int(pa.b) - int(pb.b));
    }
  }
  return static_cast<double>(sum) / (3.0 * a.pixel_count());
}

}  // namespace now
