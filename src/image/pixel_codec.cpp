#include "src/image/pixel_codec.h"

#include <cassert>
#include <cstring>

namespace now {
namespace {

constexpr std::uint32_t kDenseTag = 0x44454e53;   // "DENS"
constexpr std::uint32_t kSparseTag = 0x53505253;  // "SPRS"

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string* out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_pixels(std::string* out, const std::vector<Rgb8>& px) {
  for (const Rgb8& p : px) {
    out->push_back(static_cast<char>(p.r));
    out->push_back(static_cast<char>(p.g));
    out->push_back(static_cast<char>(p.b));
  }
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : data_(bytes) {}

  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    const auto* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
    *v = std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
    pos_ += 4;
    return true;
  }

  bool i32(std::int32_t* v) {
    std::uint32_t u;
    if (!u32(&u)) return false;
    *v = static_cast<std::int32_t>(u);
    return true;
  }

  bool pixels(std::vector<Rgb8>* px, std::uint32_t count) {
    if (pos_ + std::size_t{count} * 3 > data_.size()) return false;
    px->resize(count);
    const auto* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
    for (std::uint32_t i = 0; i < count; ++i) {
      (*px)[i] = Rgb8{p[0], p[1], p[2]};
      p += 3;
    }
    pos_ += std::size_t{count} * 3;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::int64_t PixelPayload::carried_pixels() const {
  if (dense) return rect.area();
  std::int64_t n = 0;
  for (const PixelRun& run : runs) n += static_cast<std::int64_t>(run.pixels.size());
  return n;
}

PixelPayload make_dense_payload(const Framebuffer& fb, const PixelRect& rect) {
  PixelPayload payload;
  payload.rect = rect;
  payload.dense = true;
  payload.dense_pixels = fb.extract(rect);
  return payload;
}

PixelPayload make_sparse_payload(const Framebuffer& fb, const PixelRect& rect,
                                 const PixelMask& updated) {
  PixelPayload payload;
  payload.rect = rect;
  payload.dense = false;
  PixelRun* open = nullptr;
  for (int row = 0; row < rect.height; ++row) {
    open = nullptr;  // runs never wrap rows: keeps decoding simple
    for (int col = 0; col < rect.width; ++col) {
      const int x = rect.x0 + col;
      const int y = rect.y0 + row;
      if (!updated.at(x, y)) {
        open = nullptr;
        continue;
      }
      if (open == nullptr) {
        payload.runs.push_back(
            {static_cast<std::uint32_t>(row * rect.width + col), {}});
        open = &payload.runs.back();
      }
      open->pixels.push_back(fb.at(x, y));
    }
  }
  // Sparse overhead is 8 bytes per run + 4 bytes run count; fall back to
  // dense when it does not actually save bytes.
  const std::size_t sparse_bytes =
      4 + payload.runs.size() * 8 +
      static_cast<std::size_t>(payload.carried_pixels()) * 3;
  const std::size_t dense_bytes = static_cast<std::size_t>(rect.area()) * 3;
  if (sparse_bytes >= dense_bytes) return make_dense_payload(fb, rect);
  return payload;
}

void apply_payload(Framebuffer* fb, const PixelPayload& payload) {
  const PixelRect& rect = payload.rect;
  if (payload.dense) {
    fb->blit(rect, payload.dense_pixels);
    return;
  }
  for (const PixelRun& run : payload.runs) {
    for (std::size_t i = 0; i < run.pixels.size(); ++i) {
      const std::uint32_t idx = run.offset + static_cast<std::uint32_t>(i);
      const int x = rect.x0 + static_cast<int>(idx % rect.width);
      const int y = rect.y0 + static_cast<int>(idx / rect.width);
      fb->set(x, y, run.pixels[i]);
    }
  }
}

std::string encode_payload(const PixelPayload& payload) {
  std::string out;
  put_u32(&out, payload.dense ? kDenseTag : kSparseTag);
  put_i32(&out, payload.rect.x0);
  put_i32(&out, payload.rect.y0);
  put_i32(&out, payload.rect.width);
  put_i32(&out, payload.rect.height);
  if (payload.dense) {
    put_pixels(&out, payload.dense_pixels);
  } else {
    put_u32(&out, static_cast<std::uint32_t>(payload.runs.size()));
    for (const PixelRun& run : payload.runs) {
      put_u32(&out, run.offset);
      put_u32(&out, static_cast<std::uint32_t>(run.pixels.size()));
      put_pixels(&out, run.pixels);
    }
  }
  return out;
}

bool decode_payload(PixelPayload* payload, const std::string& bytes) {
  Reader r(bytes);
  std::uint32_t tag;
  if (!r.u32(&tag)) return false;
  if (tag != kDenseTag && tag != kSparseTag) return false;
  payload->dense = (tag == kDenseTag);
  payload->dense_pixels.clear();
  payload->runs.clear();
  if (!r.i32(&payload->rect.x0) || !r.i32(&payload->rect.y0) ||
      !r.i32(&payload->rect.width) || !r.i32(&payload->rect.height)) {
    return false;
  }
  if (payload->rect.width < 0 || payload->rect.height < 0) return false;
  if (payload->dense) {
    const std::int64_t n = payload->rect.area();
    if (!r.pixels(&payload->dense_pixels, static_cast<std::uint32_t>(n))) return false;
  } else {
    std::uint32_t run_count;
    if (!r.u32(&run_count)) return false;
    const std::uint32_t rect_pixels = static_cast<std::uint32_t>(payload->rect.area());
    payload->runs.reserve(run_count);
    for (std::uint32_t i = 0; i < run_count; ++i) {
      PixelRun run;
      std::uint32_t count;
      if (!r.u32(&run.offset) || !r.u32(&count)) return false;
      if (run.offset > rect_pixels || count > rect_pixels - run.offset) return false;
      if (!r.pixels(&run.pixels, count)) return false;
      payload->runs.push_back(std::move(run));
    }
  }
  return r.done();
}

std::size_t encoded_size(const PixelPayload& payload) {
  std::size_t size = 4 + 16;  // tag + rect
  if (payload.dense) {
    size += payload.dense_pixels.size() * 3;
  } else {
    size += 4;
    for (const PixelRun& run : payload.runs) size += 8 + run.pixels.size() * 3;
  }
  return size;
}

}  // namespace now
