#include "src/image/image_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace now {
namespace {

constexpr int kTgaHeaderSize = 18;

void put_u16le(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

std::uint16_t get_u16le(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool read_file(const std::string& path, std::string* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *bytes = ss.str();
  return true;
}

}  // namespace

std::string encode_tga(const Framebuffer& fb) {
  std::string out;
  out.reserve(kTgaHeaderSize + static_cast<std::size_t>(fb.pixel_count()) * 3);
  out.push_back(0);  // id length
  out.push_back(0);  // no color map
  out.push_back(2);  // uncompressed true-color
  out.append(5, '\0');  // color map spec
  put_u16le(&out, 0);  // x origin
  put_u16le(&out, 0);  // y origin
  put_u16le(&out, static_cast<std::uint16_t>(fb.width()));
  put_u16le(&out, static_cast<std::uint16_t>(fb.height()));
  out.push_back(24);    // bits per pixel
  out.push_back(0x20);  // descriptor: top-left origin
  for (int y = 0; y < fb.height(); ++y) {
    for (int x = 0; x < fb.width(); ++x) {
      const Rgb8 p = fb.at(x, y);
      // TGA stores BGR.
      out.push_back(static_cast<char>(p.b));
      out.push_back(static_cast<char>(p.g));
      out.push_back(static_cast<char>(p.r));
    }
  }
  return out;
}

bool decode_tga(Framebuffer* fb, const std::string& bytes) {
  if (bytes.size() < kTgaHeaderSize) return false;
  const auto* h = reinterpret_cast<const unsigned char*>(bytes.data());
  const int id_length = h[0];
  if (h[1] != 0 || h[2] != 2) return false;  // only uncompressed true-color
  const int width = get_u16le(h + 12);
  const int height = get_u16le(h + 14);
  const int bpp = h[16];
  const bool top_left = (h[17] & 0x20) != 0;
  if (bpp != 24) return false;
  const std::size_t need = kTgaHeaderSize + id_length +
                           static_cast<std::size_t>(width) * height * 3;
  if (bytes.size() < need) return false;
  const unsigned char* px = h + kTgaHeaderSize + id_length;
  *fb = Framebuffer(width, height);
  for (int row = 0; row < height; ++row) {
    const int y = top_left ? row : (height - 1 - row);
    for (int x = 0; x < width; ++x) {
      fb->set(x, y, Rgb8{px[2], px[1], px[0]});
      px += 3;
    }
  }
  return true;
}

bool write_tga(const Framebuffer& fb, const std::string& path) {
  return write_file(path, encode_tga(fb));
}

bool write_tga_atomic(const Framebuffer& fb, const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::string bytes = encode_tga(fb);
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ok = false;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_tga(Framebuffer* fb, const std::string& path) {
  std::string bytes;
  return read_file(path, &bytes) && decode_tga(fb, bytes);
}

bool write_ppm(const Framebuffer& fb, const std::string& path) {
  std::string out;
  char header[64];
  std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n", fb.width(),
                fb.height());
  out = header;
  out.reserve(out.size() + static_cast<std::size_t>(fb.pixel_count()) * 3);
  for (int y = 0; y < fb.height(); ++y) {
    for (int x = 0; x < fb.width(); ++x) {
      const Rgb8 p = fb.at(x, y);
      out.push_back(static_cast<char>(p.r));
      out.push_back(static_cast<char>(p.g));
      out.push_back(static_cast<char>(p.b));
    }
  }
  return write_file(path, out);
}

bool read_ppm(Framebuffer* fb, const std::string& path) {
  std::string bytes;
  if (!read_file(path, &bytes)) return false;
  std::istringstream in(bytes);
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  in >> magic >> width >> height >> maxval;
  if (magic != "P6" || maxval != 255 || width <= 0 || height <= 0) return false;
  in.get();  // single whitespace after maxval
  const std::size_t offset = static_cast<std::size_t>(in.tellg());
  const std::size_t need = static_cast<std::size_t>(width) * height * 3;
  if (bytes.size() < offset + need) return false;
  const auto* px = reinterpret_cast<const unsigned char*>(bytes.data()) + offset;
  *fb = Framebuffer(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      fb->set(x, y, Rgb8{px[0], px[1], px[2]});
      px += 3;
    }
  }
  return true;
}

}  // namespace now
