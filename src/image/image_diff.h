// Pixel-difference analysis between successive frames.
//
// Reproduces Figure 2 of the paper: (a) the *actual* per-pixel difference
// between two rendered frames and (b) the *predicted* difference computed by
// the frame-coherence algorithm. Also provides the statistics used by the
// coherence-accuracy benchmark (false negatives must be zero).
#pragma once

#include <cstdint>
#include <vector>

#include "src/image/framebuffer.h"

namespace now {

struct DiffStats {
  std::int64_t total_pixels = 0;
  std::int64_t changed_pixels = 0;

  double changed_fraction() const {
    return total_pixels == 0
               ? 0.0
               : static_cast<double>(changed_pixels) / static_cast<double>(total_pixels);
  }
};

/// Boolean per-pixel mask, row-major; used both for actual diffs and for the
/// coherence algorithm's predicted dirty sets.
class PixelMask {
 public:
  PixelMask() = default;
  PixelMask(int width, int height, bool value = false);

  int width() const { return width_; }
  int height() const { return height_; }
  bool at(int x, int y) const { return bits_[index(x, y)] != 0; }
  void set(int x, int y, bool v) { bits_[index(x, y)] = v ? 1 : 0; }

  std::int64_t count() const;
  int pixel_count() const { return width_ * height_; }

  /// this ∧ ¬other — pixels set here but not in `other`.
  PixelMask minus(const PixelMask& other) const;
  PixelMask union_with(const PixelMask& other) const;

  /// True when every set pixel of this mask is also set in `other`.
  bool subset_of(const PixelMask& other) const;

  /// Render as a white-on-black image (paper Figure 2 style).
  Framebuffer to_image() const;

  bool operator==(const PixelMask&) const = default;

 private:
  int index(int x, int y) const { return y * width_ + x; }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// Exact per-pixel comparison of two equal-sized frames.
PixelMask actual_diff_mask(const Framebuffer& prev, const Framebuffer& next);

DiffStats diff_stats(const Framebuffer& prev, const Framebuffer& next);

/// Mean absolute per-channel error — convenience for fuzzier comparisons.
double mean_absolute_error(const Framebuffer& a, const Framebuffer& b);

}  // namespace now
