#include "src/fault/chaos.h"

#include <cassert>

namespace now {

std::uint64_t ChaosRng::next() {
  std::uint64_t x = (state += 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

int ChaosRng::below(int n) {
  assert(n >= 1);
  return static_cast<int>(next() % static_cast<std::uint64_t>(n));
}

double ChaosRng::unit() {
  // 53 uniform bits → [0, 1), the same mapping the backoff jitter uses.
  return static_cast<double>(next() >> 11) / 9007199254740992.0;
}

double ChaosRng::range(double lo, double hi) { return lo + (hi - lo) * unit(); }

FaultPlan make_chaos_plan(const ChaosConfig& config) {
  assert(config.worker_count >= 1);
  ChaosRng rng{config.seed};
  // Burn a few draws so adjacent seeds do not share a prefix of decisions.
  for (int i = 0; i < 3; ++i) rng.next();

  FaultPlan plan;
  const bool sharded = config.shard_count > 1;
  const int first_shard_rank = config.worker_count + 1;

  // One worker kill+rejoin in roughly two plans out of three. The crash is
  // progress-triggered (after N frame results) so it always lands mid-render
  // regardless of scene size; the rejoin is relative so the revived rank
  // comes back while recovery is still interesting.
  if (config.worker_count >= 1 && rng.below(3) != 0) {
    const int rank = 1 + rng.below(config.worker_count);
    plan.events.push_back(
        FaultPlan::crash_after_frames(rank, 1 + rng.below(3)));
    plan.events.push_back(
        FaultPlan::rejoin_after_crash(rank, rng.range(0.5, 4.0)));
  }

  // One shard kill+rejoin in half of the journaled sharded plans. Never the
  // same rank class twice: a shard rank is disjoint from the worker ranks,
  // so the one-crash-per-rank rule holds by construction.
  if (sharded && config.journaled && rng.below(2) == 0) {
    const int rank = first_shard_rank + rng.below(config.shard_count);
    plan.events.push_back(
        FaultPlan::crash_after_frames(rank, 1 + rng.below(4)));
    plan.events.push_back(
        FaultPlan::rejoin_after_crash(rank, rng.range(0.5, 4.0)));
  }

  // Message and window faults on top.
  const int extras = config.max_events > 0 ? rng.below(config.max_events + 1)
                                           : 0;
  for (int i = 0; i < extras; ++i) {
    const int worker = 1 + rng.below(config.worker_count);
    switch (rng.below(config.sim ? 5 : 4)) {
      case 0:
        if (config.result_tag < 0) break;
        plan.events.push_back(FaultPlan::drop_nth(worker, 1 + rng.below(6),
                                                  config.result_tag));
        break;
      case 1:
        if (config.result_tag < 0) break;
        plan.events.push_back(FaultPlan::duplicate_nth(
            worker, 1 + rng.below(6), config.result_tag));
        break;
      case 2:
        if (config.result_tag < 0) break;
        plan.events.push_back(FaultPlan::reorder_nth(
            worker, 1 + rng.below(6), config.result_tag));
        break;
      case 3: {
        // Delay spike into any non-zero rank's mailbox — worker or shard;
        // delivery delay is survivable everywhere.
        const int faultable = config.worker_count +
                              (sharded ? config.shard_count : 0);
        const int rank = 1 + rng.below(faultable);
        const double begin = rng.range(0.0, config.horizon_seconds * 0.75);
        plan.events.push_back(FaultPlan::delay_window(
            rank, begin, begin + rng.range(0.5, config.horizon_seconds * 0.25),
            rng.range(0.05, 1.0)));
        break;
      }
      case 4: {
        const double begin = rng.range(0.0, config.horizon_seconds * 0.5);
        plan.events.push_back(FaultPlan::slowdown_window(
            worker, begin, begin + rng.range(1.0, config.horizon_seconds * 0.5),
            rng.range(0.3, 0.9)));
        break;
      }
    }
  }
  return plan;
}

}  // namespace now
