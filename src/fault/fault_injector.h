// FaultInjector: the runtime-side interpreter of a FaultPlan.
//
// All three runtimes consult the same injector object from their message
// paths, so fault semantics are identical everywhere:
//
//   - crashed(rank, now): a crashed rank is fail-stop inert — the runtime
//     drops every message it sends (including self-continuations, halting
//     its render loop) and every message addressed to it.
//   - on_send(src, dest, tag, now): consulted once per cross-rank send by a
//     live rank; counts the rank's sends and frame-result progress (arming
//     after_frames crash triggers) and reports whether this particular
//     message must be dropped, duplicated, or held for reordering. A held
//     message is buffered by the runtime and delivered right after the
//     rank's next send to the same destination (degrading to a drop when no
//     later send comes — the lease machinery recovers either way).
//   - delivery_delay(dest, now): extra latency for deliveries into `dest`
//     while inside a kDelaySpike window.
//   - charge_scale(rank, now): compute-time multiplier (>= 1 when slowed)
//     applied by SimContext::charge inside kSlowdown windows.
//
// Under SimRuntime every call happens inside the sequential event loop with
// virtual timestamps, so a plan replays bit-identically. The wall-clock
// runtimes call from several threads; a mutex keeps the counters coherent
// (their timing is inherently non-deterministic anyway).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/obs/event_trace.h"
#include "src/obs/metrics.h"

namespace now {

class FaultInjector {
 public:
  struct SendFaults {
    bool drop = false;
    bool duplicate = false;
    /// Hold this message and release it after the rank's next send to the
    /// same destination (kReorderMessage).
    bool hold = false;
  };

  /// Called (outside the injector lock) when a crash fires for a rank whose
  /// kRejoin uses after_crash_seconds: the runtime must arrange the rejoin
  /// delivery at the resolved absolute time.
  using RejoinHook = std::function<void(int rank, double at_time)>;

  /// `tracer` (optional) receives an instant event for every injected fault
  /// — crash, drop, duplicate — on the affected rank's timeline.
  FaultInjector(FaultPlan plan, int world_size, EventTracer* tracer = nullptr);

  /// True once `rank` is crashed; evaluates pending at_time triggers.
  bool crashed(int rank, double now);

  /// Elastic membership: un-crash `rank` (a kRejoin event fired). All of the
  /// rank's crash events are consumed — fired or not — so the rank cannot
  /// immediately re-crash on a stale at_time trigger; "rejoin at T" means
  /// the rank is alive from T onward, whichever order the runtime happened
  /// to observe the crash in.
  void revive(int rank, double now);

  /// Per-send hook for live ranks (call after a crashed() check; the send
  /// that arms an after_frames trigger is still delivered).
  SendFaults on_send(int src, int dest, int tag, double now);

  double delivery_delay(int dest, double now) const;
  double charge_scale(int rank, double now) const;

  /// Installs the relative-rejoin scheduler. Invoked at most once per rank,
  /// the moment its crash fires, from whichever thread observed the crash.
  void set_rejoin_hook(RejoinHook hook);

  // -- counters (for stats/tests) -----------------------------------------
  int crashes_triggered() const;
  int rejoins_triggered() const;
  std::int64_t messages_dropped() const;
  std::int64_t messages_duplicated() const;
  std::int64_t messages_reordered() const;

  /// Publishes the fault counters (fault.crashes, fault.messages_dropped,
  /// fault.messages_duplicated) into `registry`.
  void export_metrics(MetricsRegistry* registry) const;

 private:
  bool crashed_locked(int rank, double now);
  /// Crash fired for `rank`: if the tracer carries a FlightRecorder with a
  /// flush directory configured, write the rank's crash trace now.
  void flush_flight_locked(int rank);
  /// Crash fired for `rank`: queue its relative rejoin (if any) for the
  /// hook, resolved against the crash time.
  void queue_relative_rejoin_locked(int rank, double now);
  /// Invoke the rejoin hook for queued resolutions. Call WITHOUT mu_ held.
  void drain_rejoin_queue();

  mutable std::mutex mu_;
  FaultPlan plan_;
  EventTracer* tracer_;
  RejoinHook rejoin_hook_;
  std::vector<std::pair<int, double>> rejoin_queue_;  // (rank, at_time)
  struct RankState {
    bool crashed = false;
    std::int64_t progress_sends = 0;  // messages with the rank's progress tag
  };
  std::vector<RankState> ranks_;
  std::vector<std::int64_t> event_matches_;  // per drop/dup/reorder event
  std::vector<bool> event_fired_;            // drop/dup/reorder/crash
  int crashes_ = 0;
  int rejoins_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t duplicated_ = 0;
  std::int64_t reordered_ = 0;
};

}  // namespace now
