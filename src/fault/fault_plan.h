// Deterministic, schedulable fault descriptions for the render farm.
//
// A FaultPlan is data, not behavior: it lists the faults that *will* happen
// during a run — a worker crash at virtual/wall time T or after its N-th
// delivered frame, the loss or duplication of a specific message, a window
// of extra link delay, a window of degraded compute speed. The SimRuntime
// injects these as discrete events (bit-reproducible across runs); the
// Thread and TCP runtimes apply the same plan through injection hooks on
// their send/receive paths (crash, drop, duplicate and delay; slowdown is
// simulation-only because wall-clock compute cannot be throttled honestly).
//
// Times are seconds since the start of the run: virtual seconds under
// SimRuntime, wall seconds elsewhere. Ranks use world numbering: workers are
// 1..worker_count, framebuffer shards (when sharded) follow the workers, and
// rank 0 is the scheduler. Any rank may be faulted — shard crashes need a
// journal segment to rebuild from, and a scheduler crash is only meaningful
// under the sim backend with journaling (the run ends partial and a --resume
// restart continues it).
#pragma once

#include <string>
#include <vector>

namespace now {

enum class FaultKind {
  kCrash,             // rank goes permanently silent (fail-stop)
  kDropMessage,       // swallow the n-th matching message sent by rank
  kDuplicateMessage,  // deliver the n-th matching message twice
  kReorderMessage,    // hold the n-th matching message; deliver it after the
                      // rank's next send to the same destination
  kDelaySpike,        // extra delivery latency into rank during a window
  kSlowdown,          // scale rank's compute speed during a window (sim only)
  kRejoin,            // a crashed rank restarts and re-announces itself
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Target rank (the crashing sender, the sender of the dropped/duplicated
  /// message, the receiver of delayed deliveries, the slowed machine).
  int rank = -1;

  // -- kCrash / kRejoin trigger --------------------------------------------
  /// kCrash: crash once the rank's clock reaches this time (set exactly one
  /// of at_time / after_frames). kRejoin: restart the rank at this time (set
  /// exactly one of at_time / after_crash_seconds).
  double at_time = -1.0;
  /// Crash immediately after the rank has delivered this many progress
  /// messages (frame results); the N-th result itself still arrives.
  int after_frames = -1;
  /// kRejoin only: restart this many seconds after the rank's crash actually
  /// fires (usable with after_frames crashes, whose time is unknowable up
  /// front). The runtimes learn the resolved time through the injector's
  /// rejoin hook.
  double after_crash_seconds = -1.0;

  // -- kDropMessage / kDuplicateMessage / kReorderMessage ------------------
  /// 1-based index among the rank's matching cross-rank sends.
  int nth_message = 1;
  /// Only count messages with this tag (-1 = any tag).
  int tag = -1;

  // -- kDelaySpike / kSlowdown window [t_begin, t_end) --------------------
  double t_begin = 0.0;
  double t_end = 0.0;
  /// kDelaySpike: seconds added to each delivery inside the window.
  double extra_seconds = 0.0;
  /// kSlowdown: speed multiplier inside the window (0.5 = half speed).
  double factor = 1.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Tag counted as "one frame of progress" for after_frames crash triggers
  /// on worker ranks. render_farm() sets this to the protocol's frame-result
  /// tag.
  int progress_tag = -1;
  /// Progress tag for shard ranks (commit digests) and the rank-0 scheduler
  /// (task assignments), so after_frames triggers mean "after N digests" /
  /// "after N assignments" there. -1 falls back to progress_tag.
  int shard_progress_tag = -1;
  int scheduler_progress_tag = -1;
  /// First shard rank in world numbering (workers end just below it); -1
  /// when the run is unsharded and every non-zero rank is a worker.
  int first_shard_rank = -1;
  /// Tag delivered to a rank when its kRejoin event fires (the "you have
  /// been restarted" signal). render_farm() sets this to the protocol's
  /// rejoin tag; -1 disables rejoin delivery.
  int rejoin_tag = -1;

  bool empty() const { return events.empty(); }
  bool has_crashes() const;
  bool has_rejoins() const;
  /// True when `rank` has a kRejoin event scheduled.
  bool rank_rejoins(int rank) const;
  /// True when `rank` has a crash event (fired or not).
  bool rank_crashes(int rank) const;
  /// The progress tag armed for `rank` given its world role.
  int progress_tag_for(int rank) const;

  // Convenience builders.
  static FaultEvent crash_at(int rank, double time);
  static FaultEvent crash_after_frames(int rank, int frames);
  static FaultEvent drop_nth(int rank, int nth, int tag = -1);
  static FaultEvent duplicate_nth(int rank, int nth, int tag = -1);
  static FaultEvent reorder_nth(int rank, int nth, int tag = -1);
  static FaultEvent delay_window(int rank, double t_begin, double t_end,
                                 double extra_seconds);
  static FaultEvent slowdown_window(int rank, double t_begin, double t_end,
                                    double factor);
  static FaultEvent rejoin_at(int rank, double time);
  static FaultEvent rejoin_after_crash(int rank, double seconds);
};

/// One human-readable line per event plus the plan's tag wiring — printed by
/// the chaos tests so any failing schedule can be read and replayed.
std::string describe_fault_plan(const FaultPlan& plan);

/// Throws std::invalid_argument with a precise message when an event is
/// malformed or targets a rank outside the faultable range. Ranks must be in
/// [1, world_size); a kCrash on rank 0 (scheduler kill, recovered by resume)
/// is additionally allowed when `allow_scheduler_crash` is set.
void validate_fault_plan(const FaultPlan& plan, int world_size,
                         bool allow_scheduler_crash = false);

}  // namespace now
