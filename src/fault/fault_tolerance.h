// Master-side failure detection and recovery accounting.
//
// Detection is lease-based: every message a worker sends doubles as a
// heartbeat (frame results piggyback liveness for free). When a task is
// assigned, the master takes out a progress lease whose deadline scales
// with the task's size and is renewed by every accepted frame result; if a
// worker makes no progress past its lease, the master sends an explicit
// ping and grants one grace period. No pong means the worker is dead; a
// pong without progress means the task is stuck (lost in transit) and is
// written off while the worker lives on. A dead worker's unfinished frames
// are reclaimed and re-enqueued —
// the replacement pays a fresh full first-frame render, exactly the
// coherence-restart cost the paper's Section 3 analysis prices for adaptive
// re-splitting.
#pragma once

#include <cstdint>

namespace now {

struct FaultToleranceConfig {
  /// Master tracks leases, pings silent workers, reassigns dead tasks.
  bool enabled = false;
  /// Progress lease = base + per_frame × frames in the assigned task, in
  /// runtime seconds (virtual under kSim, wall seconds elsewhere). The base
  /// must comfortably exceed one full first-frame render on the slowest
  /// machine; each accepted frame result renews the full lease.
  double lease_base_seconds = 30.0;
  double lease_per_frame_seconds = 5.0;
  /// Extra time a pinged worker gets to answer before being declared dead.
  double ping_grace_seconds = 10.0;
};

struct FaultReport {
  int deaths_detected = 0;
  int pings_sent = 0;
  /// Workers re-admitted after a crash (elastic membership): a Hello from a
  /// dead rank clears its death sentence; the rank starts fresh and pays a
  /// full first-frame coherence restart on its next assignment.
  int workers_rejoined = 0;
  // -- shard failover -------------------------------------------------------
  /// Framebuffer shards declared dead (liveness lease expired, ping
  /// unanswered). The scheduler rolls the dead shard's incomplete frames
  /// back to uncommitted and holds their work until a replacement re-admits.
  int shards_failed = 0;
  /// Shards re-admitted after rebuilding committed state from their journal
  /// segment (a Hello from a shard rank).
  int shards_rejoined = 0;
  /// Region-frame commits rolled back because their shard died before the
  /// frame reached durable completion.
  std::int64_t shard_commits_rolled_back = 0;
  // -- end-game speculation -----------------------------------------------
  /// Tasks cloned to idle workers when the pending queue ran dry.
  int speculations_launched = 0;
  /// Speculation pairs resolved with a surviving winner (one copy beat the
  /// other to the remaining frames; the loser was shrunk away).
  int speculations_won = 0;
  /// Region-frames delivered by the losing copy after the winner had
  /// already committed them (discarded by the idempotent-commit gate).
  std::int64_t speculation_frames_wasted = 0;
  /// Compute seconds carried by those discarded duplicate results.
  double speculation_wasted_seconds = 0.0;
  /// Assignments a busy worker refused (kTagTaskNack): requeued immediately
  /// with no restart cost — the worker never started them.
  int tasks_nacked = 0;
  /// Tasks re-enqueued: dead workers' remainders plus ranges reclaimed when
  /// a frame result was lost in transit.
  int tasks_reassigned = 0;
  std::int64_t frames_reassigned = 0;  // region-frames re-enqueued
  /// Messages discarded: from dead ranks, duplicates, cancelled tasks.
  std::int64_t results_ignored = 0;
  /// Compute seconds carried by discarded frame results (work performed by
  /// a worker but thrown away by the master).
  double lost_work_seconds = 0.0;
  /// Compute seconds spent on the full first-frame renders of reassigned
  /// tasks — the coherence-restart price of each recovery.
  double restart_work_seconds = 0.0;
  /// Sum over deaths of (declaration time − last message heard).
  double detection_latency_seconds = 0.0;
};

}  // namespace now
