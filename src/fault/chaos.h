// Seeded chaos schedules for the soak harness.
//
// make_chaos_plan() expands one 64-bit seed into a randomized-but-legal
// FaultPlan: worker and shard kills with rejoins, message drops /
// duplications / reorders on the frame-result path, delivery-delay spikes
// and (sim-only) compute slowdowns. The generator owns its PRNG (a
// splitmix64 walk — std::minstd/mt19937 distributions are not bit-stable
// across standard libraries) so a seed names exactly one schedule on every
// platform: a failing soak iteration prints its seed and anyone can replay
// the identical run with --chaos-seed.
//
// Every plan the generator emits passes validate_fault_plan() and respects
// the farm's recovery envelope:
//   - at most one crash (+ its rejoin) per rank;
//   - shard kills only when the run is journaled (the replacement rebuilds
//     from its journal segment);
//   - scheduler kills are never generated — rank 0 cannot rejoin in-process
//     and is exercised by the dedicated checkpoint/restart tests instead;
//   - message faults target the frame-result tag, whose loss the lease /
//     gap-reclaim machinery is designed to absorb (dropping e.g. a Hello
//     models a failure the protocol does not claim to survive).
#pragma once

#include <cstdint>

#include "src/fault/fault_plan.h"

namespace now {

/// Deterministic splitmix64 stream. Public because the soak tests also draw
/// per-iteration seeds from it.
struct ChaosRng {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;

  std::uint64_t next();
  /// Uniform in [0, n); n must be >= 1.
  int below(int n);
  /// Uniform in [0, 1).
  double unit();
  /// Uniform in [lo, hi).
  double range(double lo, double hi);
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  int worker_count = 3;
  /// FarmConfig::shards. <= 1 means unsharded: no shard ranks exist and no
  /// shard kills are generated.
  int shard_count = 1;
  /// The run writes a journal: shard kills become legal.
  bool journaled = false;
  /// The plan targets the sim backend: slowdown windows may be generated.
  bool sim = true;
  /// Upper bound for window placement (virtual seconds under kSim).
  double horizon_seconds = 20.0;
  /// Soft cap on message/window faults (crashes and rejoins are extra).
  int max_events = 5;
  /// Tag whose messages may be dropped/duplicated/reordered — wire this to
  /// kTagFrameResult. < 0 disables message faults.
  int result_tag = -1;
};

/// Expands `config.seed` into a legal fault schedule (see file comment).
/// The returned plan still needs the farm's tag wiring (progress/rejoin
/// tags), which render_farm() applies to every plan it is handed.
FaultPlan make_chaos_plan(const ChaosConfig& config);

}  // namespace now
