#include "src/fault/fault_plan.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace now {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDropMessage: return "drop";
    case FaultKind::kDuplicateMessage: return "duplicate";
    case FaultKind::kReorderMessage: return "reorder";
    case FaultKind::kDelaySpike: return "delay";
    case FaultKind::kSlowdown: return "slowdown";
    case FaultKind::kRejoin: return "rejoin";
  }
  return "unknown";
}

bool FaultPlan::has_crashes() const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kCrash) return true;
  }
  return false;
}

bool FaultPlan::has_rejoins() const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kRejoin) return true;
  }
  return false;
}

bool FaultPlan::rank_rejoins(int rank) const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kRejoin && e.rank == rank) return true;
  }
  return false;
}

bool FaultPlan::rank_crashes(int rank) const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kCrash && e.rank == rank) return true;
  }
  return false;
}

int FaultPlan::progress_tag_for(int rank) const {
  if (rank == 0 && scheduler_progress_tag >= 0) return scheduler_progress_tag;
  if (first_shard_rank > 0 && rank >= first_shard_rank &&
      shard_progress_tag >= 0) {
    return shard_progress_tag;
  }
  return progress_tag;
}

FaultEvent FaultPlan::crash_at(int rank, double time) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.rank = rank;
  e.at_time = time;
  return e;
}

FaultEvent FaultPlan::crash_after_frames(int rank, int frames) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.rank = rank;
  e.after_frames = frames;
  return e;
}

FaultEvent FaultPlan::drop_nth(int rank, int nth, int tag) {
  FaultEvent e;
  e.kind = FaultKind::kDropMessage;
  e.rank = rank;
  e.nth_message = nth;
  e.tag = tag;
  return e;
}

FaultEvent FaultPlan::duplicate_nth(int rank, int nth, int tag) {
  FaultEvent e;
  e.kind = FaultKind::kDuplicateMessage;
  e.rank = rank;
  e.nth_message = nth;
  e.tag = tag;
  return e;
}

FaultEvent FaultPlan::reorder_nth(int rank, int nth, int tag) {
  FaultEvent e;
  e.kind = FaultKind::kReorderMessage;
  e.rank = rank;
  e.nth_message = nth;
  e.tag = tag;
  return e;
}

FaultEvent FaultPlan::delay_window(int rank, double t_begin, double t_end,
                                   double extra_seconds) {
  FaultEvent e;
  e.kind = FaultKind::kDelaySpike;
  e.rank = rank;
  e.t_begin = t_begin;
  e.t_end = t_end;
  e.extra_seconds = extra_seconds;
  return e;
}

FaultEvent FaultPlan::slowdown_window(int rank, double t_begin, double t_end,
                                      double factor) {
  FaultEvent e;
  e.kind = FaultKind::kSlowdown;
  e.rank = rank;
  e.t_begin = t_begin;
  e.t_end = t_end;
  e.factor = factor;
  return e;
}

FaultEvent FaultPlan::rejoin_at(int rank, double time) {
  FaultEvent e;
  e.kind = FaultKind::kRejoin;
  e.rank = rank;
  e.at_time = time;
  return e;
}

FaultEvent FaultPlan::rejoin_after_crash(int rank, double seconds) {
  FaultEvent e;
  e.kind = FaultKind::kRejoin;
  e.rank = rank;
  e.after_crash_seconds = seconds;
  return e;
}

std::string describe_fault_plan(const FaultPlan& plan) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "fault plan: %zu event(s), progress tags worker=%d shard=%d "
                "scheduler=%d, first shard rank %d\n",
                plan.events.size(), plan.progress_tag,
                plan.shard_progress_tag, plan.scheduler_progress_tag,
                plan.first_shard_rank);
  out += line;
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& e = plan.events[i];
    switch (e.kind) {
      case FaultKind::kCrash:
        if (e.after_frames >= 0) {
          std::snprintf(line, sizeof(line),
                        "  [%zu] crash rank %d after %d progress message(s)\n",
                        i, e.rank, e.after_frames);
        } else {
          std::snprintf(line, sizeof(line),
                        "  [%zu] crash rank %d at t=%.3f\n", i, e.rank,
                        e.at_time);
        }
        break;
      case FaultKind::kDropMessage:
      case FaultKind::kDuplicateMessage:
      case FaultKind::kReorderMessage:
        std::snprintf(line, sizeof(line),
                      "  [%zu] %s rank %d message #%d (tag %d)\n", i,
                      to_string(e.kind), e.rank, e.nth_message, e.tag);
        break;
      case FaultKind::kDelaySpike:
        std::snprintf(line, sizeof(line),
                      "  [%zu] delay into rank %d +%.3fs over [%.3f, %.3f)\n",
                      i, e.rank, e.extra_seconds, e.t_begin, e.t_end);
        break;
      case FaultKind::kSlowdown:
        std::snprintf(line, sizeof(line),
                      "  [%zu] slowdown rank %d x%.3f over [%.3f, %.3f)\n", i,
                      e.rank, e.factor, e.t_begin, e.t_end);
        break;
      case FaultKind::kRejoin:
        if (e.after_crash_seconds > 0.0) {
          std::snprintf(line, sizeof(line),
                        "  [%zu] rejoin rank %d %.3fs after its crash\n", i,
                        e.rank, e.after_crash_seconds);
        } else {
          std::snprintf(line, sizeof(line),
                        "  [%zu] rejoin rank %d at t=%.3f\n", i, e.rank,
                        e.at_time);
        }
        break;
    }
    out += line;
  }
  return out;
}

void validate_fault_plan(const FaultPlan& plan, int world_size,
                         bool allow_scheduler_crash) {
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& e = plan.events[i];
    const std::string where = "FaultPlan event " + std::to_string(i) + " (" +
                              to_string(e.kind) + "): ";
    const bool rank0_crash = e.kind == FaultKind::kCrash && e.rank == 0;
    if (rank0_crash) {
      if (!allow_scheduler_crash) {
        throw std::invalid_argument(
            where + "a scheduler (rank 0) crash needs the sim backend and a "
                    "journal to restart from");
      }
    } else if (e.rank < 1 || e.rank >= world_size) {
      throw std::invalid_argument(
          where + "rank " + std::to_string(e.rank) +
          " outside faultable range [1, " + std::to_string(world_size) + ")");
    }
    switch (e.kind) {
      case FaultKind::kCrash: {
        const bool by_time = e.at_time >= 0.0;
        const bool by_frames = e.after_frames >= 0;
        if (by_time == by_frames) {
          throw std::invalid_argument(
              where + "set exactly one of at_time or after_frames");
        }
        break;
      }
      case FaultKind::kDropMessage:
      case FaultKind::kDuplicateMessage:
      case FaultKind::kReorderMessage:
        if (e.nth_message < 1) {
          throw std::invalid_argument(where + "nth_message must be >= 1");
        }
        break;
      case FaultKind::kDelaySpike:
        if (!(e.t_end > e.t_begin)) {
          throw std::invalid_argument(where + "window needs t_end > t_begin");
        }
        if (!(e.extra_seconds >= 0.0) || !std::isfinite(e.extra_seconds)) {
          throw std::invalid_argument(where + "extra_seconds must be >= 0");
        }
        break;
      case FaultKind::kSlowdown:
        if (!(e.t_end > e.t_begin)) {
          throw std::invalid_argument(where + "window needs t_end > t_begin");
        }
        if (!(e.factor > 0.0) || !std::isfinite(e.factor)) {
          throw std::invalid_argument(where + "factor must be > 0");
        }
        break;
      case FaultKind::kRejoin: {
        const bool by_time = e.at_time >= 0.0 && std::isfinite(e.at_time);
        const bool by_delay = e.after_crash_seconds > 0.0 &&
                              std::isfinite(e.after_crash_seconds);
        if (by_time == by_delay) {
          throw std::invalid_argument(
              where + "set exactly one of at_time or after_crash_seconds");
        }
        // A rejoin only makes sense against exactly one crash of the same
        // rank, and (when both are time-triggered) strictly after it —
        // multiple crash/rejoin cycles per rank are not modeled. A relative
        // rejoin (after_crash_seconds) is ordered after the crash by
        // construction, whichever trigger the crash uses.
        int crashes = 0;
        double crash_time = -1.0;
        int rejoins = 0;
        for (const FaultEvent& other : plan.events) {
          if (other.rank != e.rank) continue;
          if (other.kind == FaultKind::kCrash) {
            ++crashes;
            crash_time = other.at_time;
          } else if (other.kind == FaultKind::kRejoin) {
            ++rejoins;
          }
        }
        if (crashes != 1) {
          throw std::invalid_argument(
              where + "rank must have exactly one crash event to rejoin");
        }
        if (rejoins != 1) {
          throw std::invalid_argument(
              where + "rank may have at most one rejoin event");
        }
        if (by_time && crash_time >= 0.0 && !(e.at_time > crash_time)) {
          throw std::invalid_argument(
              where + "rejoin must be scheduled after the rank's crash");
        }
        break;
      }
    }
  }
}

}  // namespace now
