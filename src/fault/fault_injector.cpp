#include "src/fault/fault_injector.h"

#include <cassert>

#include "src/obs/flight_recorder.h"

namespace now {

FaultInjector::FaultInjector(FaultPlan plan, int world_size,
                             EventTracer* tracer)
    : plan_(std::move(plan)), tracer_(tracer) {
  assert(world_size >= 1);
  ranks_.assign(static_cast<std::size_t>(world_size), {});
  event_matches_.assign(plan_.events.size(), 0);
  event_fired_.assign(plan_.events.size(), false);
}

bool FaultInjector::crashed(int rank, double now) {
  bool out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = crashed_locked(rank, now);
  }
  drain_rejoin_queue();
  return out;
}

bool FaultInjector::crashed_locked(int rank, double now) {
  if (rank < 0 || rank >= static_cast<int>(ranks_.size())) return false;
  RankState& state = ranks_[rank];
  if (state.crashed) return true;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind == FaultKind::kCrash && e.rank == rank && !event_fired_[i] &&
        e.at_time >= 0.0 && now >= e.at_time) {
      event_fired_[i] = true;
      state.crashed = true;
      ++crashes_;
      if (tracer_) tracer_->instant(rank, "fault", "fault.crash", now);
      flush_flight_locked(rank);
      queue_relative_rejoin_locked(rank, now);
      return true;
    }
  }
  return false;
}

void FaultInjector::revive(int rank, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank < 0 || rank >= static_cast<int>(ranks_.size())) return;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (plan_.events[i].kind == FaultKind::kCrash &&
        plan_.events[i].rank == rank) {
      event_fired_[i] = true;
    }
  }
  ranks_[rank].crashed = false;
  ++rejoins_;
  if (tracer_) tracer_->instant(rank, "fault", "fault.rejoin", now);
}

FaultInjector::SendFaults FaultInjector::on_send(int src, int /*dest*/,
                                                 int tag, double now) {
  SendFaults out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (src < 0 || src >= static_cast<int>(ranks_.size())) return out;
    RankState& state = ranks_[src];

    if (tag == plan_.progress_tag_for(src)) {
      ++state.progress_sends;
      // after_frames crash: the N-th result is delivered, then the rank dies.
      if (!state.crashed) {
        for (std::size_t i = 0; i < plan_.events.size(); ++i) {
          const FaultEvent& e = plan_.events[i];
          if (e.kind == FaultKind::kCrash && e.rank == src &&
              !event_fired_[i] && e.after_frames >= 0 &&
              state.progress_sends >= e.after_frames) {
            event_fired_[i] = true;
            state.crashed = true;
            ++crashes_;
            if (tracer_) tracer_->instant(src, "fault", "fault.crash", now);
            flush_flight_locked(src);
            queue_relative_rejoin_locked(src, now);
            break;
          }
        }
      }
    }

    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& e = plan_.events[i];
      if (e.rank != src || event_fired_[i]) continue;
      if (e.kind != FaultKind::kDropMessage &&
          e.kind != FaultKind::kDuplicateMessage &&
          e.kind != FaultKind::kReorderMessage) {
        continue;
      }
      if (e.tag >= 0 && e.tag != tag) continue;
      if (++event_matches_[i] < e.nth_message) continue;
      event_fired_[i] = true;
      if (e.kind == FaultKind::kDropMessage) {
        out.drop = true;
        ++dropped_;
        if (tracer_) {
          tracer_->instant(src, "fault", "fault.drop", now, {{"tag", tag}});
        }
      } else if (e.kind == FaultKind::kDuplicateMessage) {
        out.duplicate = true;
        ++duplicated_;
        if (tracer_) {
          tracer_->instant(src, "fault", "fault.duplicate", now,
                           {{"tag", tag}});
        }
      } else {
        out.hold = true;
        ++reordered_;
        if (tracer_) {
          tracer_->instant(src, "fault", "fault.reorder", now, {{"tag", tag}});
        }
      }
    }
  }
  drain_rejoin_queue();
  return out;
}

double FaultInjector::delivery_delay(int dest, double now) const {
  std::lock_guard<std::mutex> lock(mu_);
  double delay = 0.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kDelaySpike && e.rank == dest &&
        now >= e.t_begin && now < e.t_end) {
      delay += e.extra_seconds;
    }
  }
  return delay;
}

double FaultInjector::charge_scale(int rank, double now) const {
  std::lock_guard<std::mutex> lock(mu_);
  double scale = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kSlowdown && e.rank == rank &&
        now >= e.t_begin && now < e.t_end) {
      scale /= e.factor;
    }
  }
  return scale;
}

void FaultInjector::set_rejoin_hook(RejoinHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  rejoin_hook_ = std::move(hook);
}

void FaultInjector::queue_relative_rejoin_locked(int rank, double now) {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kRejoin && e.rank == rank &&
        e.after_crash_seconds > 0.0) {
      rejoin_queue_.emplace_back(rank, now + e.after_crash_seconds);
    }
  }
}

void FaultInjector::drain_rejoin_queue() {
  std::vector<std::pair<int, double>> fire;
  RejoinHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rejoin_queue_.empty() || !rejoin_hook_) return;
    fire.swap(rejoin_queue_);
    hook = rejoin_hook_;
  }
  for (const auto& f : fire) hook(f.first, f.second);
}

void FaultInjector::flush_flight_locked(int rank) {
  // A fault-injected death is the moment the flight recorder exists for:
  // dump the dead rank's retained tail as its crash trace. The tracer's
  // fault.crash instant above is already in the ring, so the file records
  // its own cause of death.
  if (tracer_ == nullptr) return;
  FlightRecorder* fr = tracer_->flight_recorder();
  if (fr == nullptr) return;
  const std::string dir = fr->flush_dir();
  if (dir.empty()) return;
  fr->flush_rank(rank, dir);
}

int FaultInjector::crashes_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_;
}

int FaultInjector::rejoins_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejoins_;
}

std::int64_t FaultInjector::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::int64_t FaultInjector::messages_duplicated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicated_;
}

std::int64_t FaultInjector::messages_reordered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reordered_;
}

void FaultInjector::export_metrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  registry->counter("fault.crashes").inc(static_cast<std::uint64_t>(crashes_));
  registry->counter("fault.rejoins").inc(static_cast<std::uint64_t>(rejoins_));
  registry->counter("fault.messages_dropped")
      .inc(static_cast<std::uint64_t>(dropped_));
  registry->counter("fault.messages_duplicated")
      .inc(static_cast<std::uint64_t>(duplicated_));
  registry->counter("fault.messages_reordered")
      .inc(static_cast<std::uint64_t>(reordered_));
}

}  // namespace now
