#include "src/fault/fault_injector.h"

#include <cassert>

#include "src/obs/flight_recorder.h"

namespace now {

FaultInjector::FaultInjector(FaultPlan plan, int world_size,
                             EventTracer* tracer)
    : plan_(std::move(plan)), tracer_(tracer) {
  assert(world_size >= 1);
  ranks_.assign(static_cast<std::size_t>(world_size), {});
  event_matches_.assign(plan_.events.size(), 0);
  event_fired_.assign(plan_.events.size(), false);
}

bool FaultInjector::crashed(int rank, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_locked(rank, now);
}

bool FaultInjector::crashed_locked(int rank, double now) {
  if (rank < 0 || rank >= static_cast<int>(ranks_.size())) return false;
  RankState& state = ranks_[rank];
  if (state.crashed) return true;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind == FaultKind::kCrash && e.rank == rank && !event_fired_[i] &&
        e.at_time >= 0.0 && now >= e.at_time) {
      event_fired_[i] = true;
      state.crashed = true;
      ++crashes_;
      if (tracer_) tracer_->instant(rank, "fault", "fault.crash", now);
      flush_flight_locked(rank);
      return true;
    }
  }
  return false;
}

void FaultInjector::revive(int rank, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank < 0 || rank >= static_cast<int>(ranks_.size())) return;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (plan_.events[i].kind == FaultKind::kCrash &&
        plan_.events[i].rank == rank) {
      event_fired_[i] = true;
    }
  }
  ranks_[rank].crashed = false;
  ++rejoins_;
  if (tracer_) tracer_->instant(rank, "fault", "fault.rejoin", now);
}

FaultInjector::SendFaults FaultInjector::on_send(int src, int /*dest*/,
                                                 int tag, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  SendFaults out;
  if (src < 0 || src >= static_cast<int>(ranks_.size())) return out;
  RankState& state = ranks_[src];

  if (tag == plan_.progress_tag) {
    ++state.progress_sends;
    // after_frames crash: the N-th result is delivered, then the rank dies.
    if (!state.crashed) {
      for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent& e = plan_.events[i];
        if (e.kind == FaultKind::kCrash && e.rank == src && !event_fired_[i] &&
            e.after_frames >= 0 && state.progress_sends >= e.after_frames) {
          event_fired_[i] = true;
          state.crashed = true;
          ++crashes_;
          if (tracer_) tracer_->instant(src, "fault", "fault.crash", now);
          flush_flight_locked(src);
          break;
        }
      }
    }
  }

  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.rank != src || event_fired_[i]) continue;
    if (e.kind != FaultKind::kDropMessage &&
        e.kind != FaultKind::kDuplicateMessage) {
      continue;
    }
    if (e.tag >= 0 && e.tag != tag) continue;
    if (++event_matches_[i] < e.nth_message) continue;
    event_fired_[i] = true;
    if (e.kind == FaultKind::kDropMessage) {
      out.drop = true;
      ++dropped_;
      if (tracer_) {
        tracer_->instant(src, "fault", "fault.drop", now, {{"tag", tag}});
      }
    } else {
      out.duplicate = true;
      ++duplicated_;
      if (tracer_) {
        tracer_->instant(src, "fault", "fault.duplicate", now, {{"tag", tag}});
      }
    }
  }
  return out;
}

double FaultInjector::delivery_delay(int dest, double now) const {
  std::lock_guard<std::mutex> lock(mu_);
  double delay = 0.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kDelaySpike && e.rank == dest &&
        now >= e.t_begin && now < e.t_end) {
      delay += e.extra_seconds;
    }
  }
  return delay;
}

double FaultInjector::charge_scale(int rank, double now) const {
  std::lock_guard<std::mutex> lock(mu_);
  double scale = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kSlowdown && e.rank == rank &&
        now >= e.t_begin && now < e.t_end) {
      scale /= e.factor;
    }
  }
  return scale;
}

void FaultInjector::flush_flight_locked(int rank) {
  // A fault-injected death is the moment the flight recorder exists for:
  // dump the dead rank's retained tail as its crash trace. The tracer's
  // fault.crash instant above is already in the ring, so the file records
  // its own cause of death.
  if (tracer_ == nullptr) return;
  FlightRecorder* fr = tracer_->flight_recorder();
  if (fr == nullptr) return;
  const std::string dir = fr->flush_dir();
  if (dir.empty()) return;
  fr->flush_rank(rank, dir);
}

int FaultInjector::crashes_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_;
}

int FaultInjector::rejoins_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejoins_;
}

std::int64_t FaultInjector::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::int64_t FaultInjector::messages_duplicated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicated_;
}

void FaultInjector::export_metrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  registry->counter("fault.crashes").inc(static_cast<std::uint64_t>(crashes_));
  registry->counter("fault.rejoins").inc(static_cast<std::uint64_t>(rejoins_));
  registry->counter("fault.messages_dropped")
      .inc(static_cast<std::uint64_t>(dropped_));
  registry->counter("fault.messages_duplicated")
      .inc(static_cast<std::uint64_t>(duplicated_));
}

}  // namespace now
