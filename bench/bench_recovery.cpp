// Crash-recovery pricing: what does the render journal cost while nothing
// goes wrong, and what does a resume buy after a crash?
//
// The journal is pure master-side I/O — one fsync'd record per committed
// region — so its price is wall-clock, not virtual-cluster time. This bench
// measures (a) the wall overhead of journaling the paper's Newton workload
// with fsync on and off, and (b) resume cost: wall time to restore a
// finished run from disk versus re-rendering, and the render work saved
// when resuming from a half-complete journal.
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/ckpt/journal.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

FarmConfig base_config(const std::string& dir) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = bench::paper_cluster_speeds();
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.output_dir = dir;
  config.output_prefix = "bench";
  return config;
}

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 12 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  const std::string dir = "bench_recovery_out";
  ::mkdir(dir.c_str(), 0755);

  std::printf("journal + resume cost — Newton, %d frames at %dx%d, workers "
              "{1,.5,.5}\n\n",
              scene.frame_count(), scene.width(), scene.height());

  // -- journal overhead on the fault-free path ------------------------------
  struct Mode {
    const char* label;
    bool journal;
    bool fsync;
  };
  const Mode modes[] = {{"no journal", false, false},
                        {"journal, no fsync", true, false},
                        {"journal, fsync", true, true}};
  double clean_wall = 0.0;
  std::printf("%-20s %10s %10s %9s %12s %12s\n", "mode", "wall", "overhead",
              "records", "bytes", "checkpoints");
  bench::print_rule(80);
  for (const Mode& mode : modes) {
    FarmConfig config = base_config(dir);
    if (mode.journal) {
      config.journal_path = dir + "/render.journal";
      config.journal_fsync = mode.fsync;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const FarmResult r = render_farm(scene, config);
    const double wall = wall_seconds(t0);
    if (!mode.journal) clean_wall = wall;
    const double overhead =
        clean_wall > 0.0 ? 100.0 * (wall - clean_wall) / clean_wall : 0.0;
    std::printf("%-20s %9.3fs %9.1f%% %9lld %12lld %12lld\n", mode.label,
                wall, overhead,
                static_cast<long long>(r.master.journal_records),
                static_cast<long long>(r.master.journal_bytes),
                static_cast<long long>(r.master.journal_checkpoints));
    const std::string prefix =
        std::string("journal.") + (mode.journal ? (mode.fsync ? "fsync" : "nofsync") : "off") + ".";
    bench::record_farm_metrics(prefix, r.metrics);
    bench::bench_registry().gauge(prefix + "wall_seconds").set(wall);
  }

  // -- resume cost ----------------------------------------------------------
  // The journal on disk is now complete. A full resume restores every frame
  // without rendering a single pixel; a half-truncated journal restores the
  // prefix and re-renders the rest.
  const std::string journal = dir + "/render.journal";
  std::printf("\n%-24s %10s %10s %10s %10s\n", "resume from", "wall",
              "restored", "demoted", "rendered");
  bench::print_rule(70);

  const JournalReplay replay = replay_journal(journal);
  const struct {
    const char* label;
    std::size_t keep;  // journal bytes to keep, 0 = whole file
  } cuts[] = {{"complete journal", 0},
              {"half the journal",
               replay.ok ? replay.record_offsets[replay.record_offsets.size() / 2]
                         : 0}};
  for (const auto& cut : cuts) {
    if (cut.keep != 0) {
      // Truncate in place: the previous resume left the journal complete
      // again, so re-read and slice it for the next round.
      std::string bytes;
      {
        std::ifstream f(journal, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
      }
      std::ofstream f(journal, std::ios::binary | std::ios::trunc);
      f.write(bytes.data(), static_cast<std::streamsize>(cut.keep));
    }
    FarmConfig config = base_config(dir);
    config.journal_path = journal;
    config.journal_fsync = false;
    config.resume = true;
    const auto t0 = std::chrono::steady_clock::now();
    const FarmResult r = render_farm(scene, config);
    const double wall = wall_seconds(t0);
    std::int64_t rendered = 0;
    for (const WorkerReport& w : r.workers) rendered += w.frames_rendered;
    std::printf("%-24s %9.3fs %10d %10d %10lld\n", cut.label, wall,
                r.resume.frames_restored, r.resume.frames_demoted,
                static_cast<long long>(rendered));
    const std::string prefix = cut.keep == 0 ? "resume.full." : "resume.half.";
    bench::bench_registry().gauge(prefix + "wall_seconds").set(wall);
    bench::bench_registry()
        .counter(prefix + "frames_restored")
        .inc(static_cast<std::uint64_t>(r.resume.frames_restored));
  }
  std::printf("\nfull restore skips every ray; the half resume pays only for "
              "the un-journaled suffix\n(plus one dense restart frame per "
              "reclaimed range).\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts = now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  if (rc != 0) return rc;
  return now::bench::finish_bench(opts);
}
