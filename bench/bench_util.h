// Shared helpers for the experiment-reproduction benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now::bench {

/// Command-line contract shared by every bench binary:
///   --quick            smoke-sized workload (CI)
///   --metrics-out FILE write the bench's metrics snapshot as JSON
struct BenchOptions {
  bool quick = false;
  std::string metrics_out;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

inline BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      opts.metrics_out = argv[++i];
    }
  }
  return opts;
}

/// Process-wide registry the bench records its headline numbers into.
inline MetricsRegistry& bench_registry() {
  static MetricsRegistry registry(true);
  return registry;
}

/// Fold a farm run's metrics snapshot into the bench registry under a
/// prefix, so one bench can record several configurations side by side.
/// (Histograms are not merged; benches read them from FarmResult directly.)
inline void record_farm_metrics(const std::string& prefix,
                                const MetricsSnapshot& snap) {
  MetricsRegistry& reg = bench_registry();
  for (const auto& [name, value] : snap.counters) {
    reg.counter(prefix + name).inc(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    reg.gauge(prefix + name).set(value);
  }
}

/// Write the registry snapshot to --metrics-out (no-op without the flag).
/// Returns the bench's exit code.
inline int finish_bench(const BenchOptions& opts) {
  if (opts.metrics_out.empty()) return 0;
  MetricsRegistry& reg = bench_registry();
  reg.gauge("bench.quick").set(opts.quick ? 1.0 : 0.0);
  reg.gauge("bench.wall_seconds")
      .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         opts.start)
               .count());
  std::ofstream f(opts.metrics_out, std::ios::binary);
  f << reg.snapshot().to_json();
  if (!f.good()) {
    std::fprintf(stderr, "failed to write %s\n", opts.metrics_out.c_str());
    return 1;
  }
  std::printf("metrics written to %s\n", opts.metrics_out.c_str());
  return 0;
}

/// The paper's workload: the first Newton rendering run — 45 frames at
/// 76,800 pixels per frame (we use 320×240), 24-bit targa, ray depth 5.
inline AnimatedScene paper_newton_scene() {
  CradleParams params;
  params.frames = 45;
  params.width = 320;
  params.height = 240;
  return newton_cradle_scene(params);
}

/// The paper's cluster: one 200 MHz Indigo2 (speed 1.0) and two 100 MHz
/// machines (speed 0.5) on shared 10 Mb/s Ethernet.
inline std::vector<double> paper_cluster_speeds() { return {1.0, 0.5, 0.5}; }

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline std::string hms(double seconds) { return format_hms(seconds); }

/// "x.xx" speedup formatting.
inline std::string speedup(double base_seconds, double this_seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", base_seconds / this_seconds);
  return buf;
}

inline std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace now::bench
