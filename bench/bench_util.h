// Shared helpers for the experiment-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now::bench {

/// The paper's workload: the first Newton rendering run — 45 frames at
/// 76,800 pixels per frame (we use 320×240), 24-bit targa, ray depth 5.
inline AnimatedScene paper_newton_scene() {
  CradleParams params;
  params.frames = 45;
  params.width = 320;
  params.height = 240;
  return newton_cradle_scene(params);
}

/// The paper's cluster: one 200 MHz Indigo2 (speed 1.0) and two 100 MHz
/// machines (speed 0.5) on shared 10 Mb/s Ethernet.
inline std::vector<double> paper_cluster_speeds() { return {1.0, 0.5, 0.5}; }

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline std::string hms(double seconds) { return format_hms(seconds); }

/// "x.xx" speedup formatting.
inline std::string speedup(double base_seconds, double this_seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", base_seconds / this_seconds);
  return buf;
}

inline std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace now::bench
