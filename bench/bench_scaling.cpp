// Section 5 extension: "Depending on the number of workstations
// participating in the computation and the performance power of each of the
// machines, one can build an extremely powerful rendering environment" —
// and "further tests with heterogeneous environments, as well as more
// homogeneous ones, will prove beneficial".
//
// Scalability sweep: cluster sizes 1..16, homogeneous and heterogeneous
// mixes, for both partitioning schemes, with efficiency relative to the
// aggregate compute power.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "bench/bench_util.h"
#include "src/core/coherent_renderer.h"
#include "src/par/render_farm.h"
#include "src/par/serial.h"

namespace now {
namespace {

double run_farm(const AnimatedScene& scene, PartitionScheme scheme,
                const std::vector<double>& speeds) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = speeds;
  config.partition.scheme = scheme;
  config.partition.block_size = 40;
  return render_farm(scene, config).elapsed_seconds;
}

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 10 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  const SerialResult serial = render_serial(scene);
  std::printf("scaling — Newton, %d frames at %dx%d, coherence on\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("serial baseline (speed 1.0, with coherence): %s\n\n",
              bench::hms(serial.virtual_seconds).c_str());

  std::printf("homogeneous clusters (all workers speed 1.0)\n");
  std::printf("%8s %16s %10s %12s %16s %10s %12s\n", "workers", "seq-div",
              "speedup", "efficiency", "frame-div", "speedup", "efficiency");
  bench::print_rule(92);
  for (const int n : {1, 2, 3, 4, 6, 8, 12, 16}) {
    const std::vector<double> speeds(static_cast<std::size_t>(n), 1.0);
    const double seq =
        run_farm(scene, PartitionScheme::kSequenceDivision, speeds);
    const double frame = run_farm(scene, PartitionScheme::kFrameDivision, speeds);
    std::printf("%8d %16s %10s %11.1f%% %16s %10s %11.1f%%\n", n,
                bench::hms(seq).c_str(),
                bench::speedup(serial.virtual_seconds, seq).c_str(),
                100.0 * serial.virtual_seconds / seq / n,
                bench::hms(frame).c_str(),
                bench::speedup(serial.virtual_seconds, frame).c_str(),
                100.0 * serial.virtual_seconds / frame / n);
  }

  std::printf("\nheterogeneous clusters (efficiency vs aggregate power)\n");
  std::printf("%-26s %8s %16s %16s\n", "mix", "power", "seq-div", "frame-div");
  bench::print_rule(72);
  const std::vector<std::pair<const char*, std::vector<double>>> mixes = {
      {"{1.0, 0.5, 0.5} (paper)", {1.0, 0.5, 0.5}},
      {"{1.0, 1.0, 1.0}", {1.0, 1.0, 1.0}},
      {"{2.0, 0.5, 0.5}", {2.0, 0.5, 0.5}},
      {"{1.0, 0.25}", {1.0, 0.25}},
      {"{1.0, 0.75, 0.5, 0.25}", {1.0, 0.75, 0.5, 0.25}},
  };
  for (const auto& [label, speeds] : mixes) {
    const double power =
        std::accumulate(speeds.begin(), speeds.end(), 0.0);
    const double seq =
        run_farm(scene, PartitionScheme::kSequenceDivision, speeds);
    const double frame = run_farm(scene, PartitionScheme::kFrameDivision, speeds);
    std::printf("%-26s %8.2f %9s (%4.0f%%) %9s (%4.0f%%)\n", label, power,
                bench::hms(seq).c_str(),
                100.0 * serial.virtual_seconds / seq / power,
                bench::hms(frame).c_str(),
                100.0 * serial.virtual_seconds / frame / power);
  }
  std::printf("\nexpected shape: frame division holds efficiency further out "
              "(coherence never\nrestarts); sequence division flattens as "
              "subsequences shrink and every worker\npays its own full "
              "first frame\n");
  return 0;
}

/// Intra-node sweep: the same sequence rendered at 1/2/4/8 worker threads,
/// measured in wall-clock time (not simulated) and split into the dense
/// first frame vs. the sparse incremental remainder. Every frame is checked
/// byte-identical against the single-threaded run — a mismatch fails the
/// bench, since determinism is the feature, not a nice-to-have.
int run_intra_node(bool quick) {
  CradleParams params;
  params.frames = quick ? 6 : 16;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);
  const PixelRect region{0, 0, scene.width(), scene.height()};

  struct Sample {
    double dense_seconds = 0.0;
    double sparse_seconds = 0.0;
    std::vector<Framebuffer> frames;
  };
  const auto render_all = [&](int threads) {
    Sample s;
    CoherenceOptions options;
    options.threads = threads;
    CoherentRenderer renderer(scene, region, options);
    Framebuffer fb(scene.width(), scene.height());
    for (int frame = 0; frame < scene.frame_count(); ++frame) {
      const auto t0 = std::chrono::steady_clock::now();
      const FrameRenderResult r = renderer.render_frame(frame, &fb);
      const double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      (r.full_render ? s.dense_seconds : s.sparse_seconds) += dt;
      s.frames.push_back(fb);
    }
    return s;
  };

  std::printf("\nintra-node threading (wall clock, %d frames at %dx%d)\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("%8s %14s %10s %14s %10s %12s\n", "threads", "dense", "speedup",
              "sparse", "speedup", "identical");
  bench::print_rule(74);

  const Sample base = render_all(1);
  int rc = 0;
  for (const int threads : {1, 2, 4, 8}) {
    const Sample s = threads == 1 ? base : render_all(threads);
    bool identical = s.frames.size() == base.frames.size();
    for (std::size_t f = 0; identical && f < s.frames.size(); ++f) {
      identical = s.frames[f] == base.frames[f];
    }
    if (!identical) rc = 1;
    std::printf("%8d %13.3fs %10s %13.3fs %10s %12s\n", threads,
                s.dense_seconds,
                bench::speedup(base.dense_seconds, s.dense_seconds).c_str(),
                s.sparse_seconds,
                bench::speedup(base.sparse_seconds, s.sparse_seconds).c_str(),
                identical ? "yes" : "MISMATCH");
    const std::string prefix = "intra.threads_" + std::to_string(threads);
    bench::bench_registry().gauge(prefix + ".dense_seconds")
        .set(s.dense_seconds);
    bench::bench_registry().gauge(prefix + ".sparse_seconds")
        .set(s.sparse_seconds);
  }
  if (rc != 0) {
    std::fprintf(stderr,
                 "intra-node sweep: threaded output differs from --threads 1\n");
  }
  return rc;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  int rc = now::run(opts.quick);
  if (rc == 0) rc = now::run_intra_node(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
