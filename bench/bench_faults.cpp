// Fault-tolerance overhead: what does losing 1, 2, or 3 workers mid-run
// cost against a fault-free render on the paper's cluster?
//
// PVM offered no recovery — a dead slave meant restarting the whole
// animation. With leases + reassignment the farm finishes anyway; the price
// is detection latency (the master waits out the lease before reacting),
// the dead workers' in-flight work, and one coherence-restart full frame
// per reclaimed range. This benchmark prices all three.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/fault/chaos.h"
#include "src/par/protocol.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

FarmConfig base_config() {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  // The paper's cluster plus a fourth machine so three deaths leave a
  // survivor to finish the animation.
  config.worker_speeds = {1.0, 1.0, 0.5, 0.5};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  return config;
}

// Progress leases must comfortably outlast one frame render or healthy
// workers get written off as dead mid-frame (a busy sim worker cannot pong
// until its frame completes and the master then stops short with stale
// frames). Size them from the measured fault-free run: elapsed × total
// speed / frames ≈ a speed-1.0 worker's per-frame cost; the slowest worker
// here is 2× that.
FarmConfig leased_config(double frame_cost) {
  FarmConfig config = base_config();
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 4.0 * frame_cost;
  config.fault.lease_per_frame_seconds = 3.0 * frame_cost;
  config.fault.ping_grace_seconds = 3.0 * frame_cost;
  return config;
}

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 12 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("recovery overhead — Newton, %d frames, workers {1,1,.5,.5}, "
              "sequence division\n\n", scene.frame_count());

  const FarmResult clean = render_farm(scene, base_config());
  bench::record_farm_metrics("deaths.0.", clean.metrics);
  const double frame_cost = clean.elapsed_seconds * 3.0 / scene.frame_count();

  std::printf("%-8s %12s %9s %8s %9s %10s %12s %12s\n", "deaths", "elapsed",
              "overhead", "tasks", "frames", "detect", "restarts",
              "frames ok");
  bench::print_rule(90);
  std::printf("%-8d %12s %8s%% %8s %9s %10s %12s %9d/%d\n", 0,
              bench::hms(clean.elapsed_seconds).c_str(), "0.0", "-", "-", "-",
              "-", static_cast<int>(clean.master.frames_completed),
              scene.frame_count());

  for (int deaths = 1; deaths <= 3; ++deaths) {
    FarmConfig config = leased_config(frame_cost);
    // Each worker dies partway into its initial task (roughly frames/8
    // results in, staggered so the recoveries overlap) — early enough that
    // real work is stranded and must be reclaimed.
    const int base_kill = std::max(1, scene.frame_count() / 8);
    for (int w = 1; w <= deaths; ++w) {
      config.fault_plan.events.push_back(
          FaultPlan::crash_after_frames(w, base_kill + w - 1));
    }
    const FarmResult r = render_farm(scene, config);
    bench::record_farm_metrics("deaths." + std::to_string(deaths) + ".",
                               r.metrics);
    const double overhead =
        100.0 * (r.elapsed_seconds - clean.elapsed_seconds) /
        clean.elapsed_seconds;
    std::printf("%-8d %12s %8.1f%% %8lld %9lld %10s %12s %9d/%d\n", deaths,
                bench::hms(r.elapsed_seconds).c_str(), overhead,
                static_cast<long long>(r.faults.tasks_reassigned),
                static_cast<long long>(r.faults.frames_reassigned),
                bench::hms(r.faults.detection_latency_seconds).c_str(),
                bench::hms(r.faults.restart_work_seconds).c_str(),
                static_cast<int>(r.master.frames_completed),
                scene.frame_count());
  }

  std::printf("\noverhead = elapsed vs the fault-free run. 'tasks'/'frames' "
              "count reclaimed\nregion-frame ranges, 'detect' sums lease+grace "
              "waits per death, and 'restarts'\nis the dense first frame each "
              "reclaimed range pays to rebuild coherence\nstate. Every run "
              "still delivers the complete animation.\n");

  // Chaos soak: seeded randomized schedules (kills with quick rejoins,
  // drops, duplicates, reorders, delay spikes, slowdowns) against the same
  // fault-free baseline. Byte-identical frames on every seed is a hard gate
  // in both modes. The <10% mean-overhead budget binds at soak scale
  // (--quick, the mode CI gates): there the recovery machinery itself is
  // what's priced — a fault-free chaos seed runs at 0.0% overhead. At full
  // scale the same schedules forfeit up to a whole sequence task's delta
  // chain per dropped result (~11 frames here), so overhead is dominated by
  // inherent re-render work, not machinery; full mode reports it without
  // failing the budget.
  const int chaos_seeds = 20;
  const bool gate_overhead = quick;
  std::printf("\nchaos soak — %d seeded schedules vs fault-free\n\n",
              chaos_seeds);
  std::printf("%-8s %12s %9s %8s %8s %8s %7s %10s\n", "seed", "elapsed",
              "overhead", "crashes", "rejoins", "msgflt", "frames",
              "identical");
  bench::print_rule(78);
  double overhead_sum = 0.0;
  double overhead_max = 0.0;
  bool identical_all = true;
  for (int seed = 1; seed <= chaos_seeds; ++seed) {
    FarmConfig config = leased_config(frame_cost);
    ChaosConfig cc;
    cc.seed = static_cast<std::uint64_t>(seed);
    cc.worker_count = static_cast<int>(config.worker_speeds.size());
    cc.result_tag = kTagFrameResult;
    const FaultPlan plan = make_chaos_plan(cc);
    config.fault_plan.events = plan.events;
    const FarmResult r = render_farm(scene, config);
    bench::record_farm_metrics("chaos." + std::to_string(seed) + ".",
                               r.metrics);
    const double overhead =
        100.0 * (r.elapsed_seconds - clean.elapsed_seconds) /
        clean.elapsed_seconds;
    overhead_sum += overhead;
    overhead_max = std::max(overhead_max, overhead);
    // A seed passes only if the run *finished* (an early stop can leave
    // stale frames whose pixels happen to match) and every pixel matches.
    bool identical =
        r.master.frames_completed == scene.frame_count() &&
        r.frames.size() == clean.frames.size();
    for (std::size_t i = 0; identical && i < r.frames.size(); ++i) {
      identical = r.frames[i].pixels() == clean.frames[i].pixels();
    }
    identical_all = identical_all && identical;
    int crashes = 0, rejoins = 0, message_faults = 0;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kCrash) ++crashes;
      else if (e.kind == FaultKind::kRejoin) ++rejoins;
      else if (e.kind == FaultKind::kDropMessage ||
               e.kind == FaultKind::kDuplicateMessage ||
               e.kind == FaultKind::kReorderMessage) ++message_faults;
    }
    std::printf("%-8d %12s %8.1f%% %8d %8d %8d %4d/%d %10s\n", seed,
                bench::hms(r.elapsed_seconds).c_str(), overhead, crashes,
                rejoins, message_faults,
                static_cast<int>(r.master.frames_completed),
                scene.frame_count(), identical ? "yes" : "NO");
  }
  const double overhead_mean = overhead_sum / chaos_seeds;
  std::printf("\nmean overhead %.1f%% (max %.1f%%), budget < 10%% %s: %s; "
              "frames %s\n",
              overhead_mean, overhead_max,
              gate_overhead ? "(gated)" : "(full scale: reported only — "
                                          "re-render blast radius, not "
                                          "machinery)",
              overhead_mean < 10.0 ? "PASS" : "FAIL",
              identical_all ? "byte-identical on every seed"
                            : "DIFFER — chaos identity violated");
  if (!identical_all) return 1;
  if (gate_overhead && overhead_mean >= 10.0) return 1;
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
