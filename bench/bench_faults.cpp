// Fault-tolerance overhead: what does losing 1, 2, or 3 workers mid-run
// cost against a fault-free render on the paper's cluster?
//
// PVM offered no recovery — a dead slave meant restarting the whole
// animation. With leases + reassignment the farm finishes anyway; the price
// is detection latency (the master waits out the lease before reacting),
// the dead workers' in-flight work, and one coherence-restart full frame
// per reclaimed range. This benchmark prices all three.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

FarmConfig base_config() {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  // The paper's cluster plus a fourth machine so three deaths leave a
  // survivor to finish the animation.
  config.worker_speeds = {1.0, 1.0, 0.5, 0.5};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 120.0;
  config.fault.lease_per_frame_seconds = 30.0;
  config.fault.ping_grace_seconds = 30.0;
  return config;
}

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 12 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("recovery overhead — Newton, %d frames, workers {1,1,.5,.5}, "
              "sequence division\n\n", scene.frame_count());

  const FarmResult clean = render_farm(scene, base_config());
  bench::record_farm_metrics("deaths.0.", clean.metrics);

  std::printf("%-8s %12s %9s %8s %9s %10s %12s %12s\n", "deaths", "elapsed",
              "overhead", "tasks", "frames", "detect", "restarts",
              "frames ok");
  bench::print_rule(90);
  std::printf("%-8d %12s %8s%% %8s %9s %10s %12s %9d/%d\n", 0,
              bench::hms(clean.elapsed_seconds).c_str(), "0.0", "-", "-", "-",
              "-", static_cast<int>(clean.master.frames_completed),
              scene.frame_count());

  for (int deaths = 1; deaths <= 3; ++deaths) {
    FarmConfig config = base_config();
    // Each worker dies partway into its initial task (roughly frames/8
    // results in, staggered so the recoveries overlap) — early enough that
    // real work is stranded and must be reclaimed.
    const int base_kill = std::max(1, scene.frame_count() / 8);
    for (int w = 1; w <= deaths; ++w) {
      config.fault_plan.events.push_back(
          FaultPlan::crash_after_frames(w, base_kill + w - 1));
    }
    const FarmResult r = render_farm(scene, config);
    bench::record_farm_metrics("deaths." + std::to_string(deaths) + ".",
                               r.metrics);
    const double overhead =
        100.0 * (r.elapsed_seconds - clean.elapsed_seconds) /
        clean.elapsed_seconds;
    std::printf("%-8d %12s %8.1f%% %8lld %9lld %10s %12s %9d/%d\n", deaths,
                bench::hms(r.elapsed_seconds).c_str(), overhead,
                static_cast<long long>(r.faults.tasks_reassigned),
                static_cast<long long>(r.faults.frames_reassigned),
                bench::hms(r.faults.detection_latency_seconds).c_str(),
                bench::hms(r.faults.restart_work_seconds).c_str(),
                static_cast<int>(r.master.frames_completed),
                scene.frame_count());
  }

  std::printf("\noverhead = elapsed vs the fault-free run. 'tasks'/'frames' "
              "count reclaimed\nregion-frame ranges, 'detect' sums lease+grace "
              "waits per death, and 'restarts'\nis the dense first frame each "
              "reclaimed range pays to rebuild coherence\nstate. Every run "
              "still delivers the complete animation.\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
