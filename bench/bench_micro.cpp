// Google-benchmark microbenchmarks for the hot inner loops: primitive
// intersection, DDA grid traversal, coherence marking/collection, the
// pixel codec and the wire format.
//
// Shares the bench-suite flag contract: --metrics-out FILE maps onto
// google-benchmark's JSON reporter, --quick trims the per-benchmark
// measurement time for CI smoke runs.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/coherence_grid.h"
#include "src/geom/cylinder.h"
#include "src/geom/sphere.h"
#include "src/geom/voxel_grid.h"
#include "src/image/pixel_codec.h"
#include "src/math/rng.h"
#include "src/par/protocol.h"
#include "src/scene/builtin_scenes.h"
#include "src/trace/render.h"
#include "src/trace/uniform_grid.h"

namespace now {
namespace {

void BM_SphereIntersect(benchmark::State& state) {
  const Sphere sphere({0, 0, 0}, 1.0);
  Rng rng(1);
  std::vector<Ray> rays;
  for (int i = 0; i < 1024; ++i) {
    rays.push_back({rng.point_in_box({-3, -3, -3}, {3, 3, 3}),
                    rng.unit_vector()});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    Hit hit;
    benchmark::DoNotOptimize(
        sphere.intersect(rays[i++ & 1023], 1e-9, 1e9, &hit));
  }
}
BENCHMARK(BM_SphereIntersect);

void BM_CylinderIntersect(benchmark::State& state) {
  const Cylinder cyl({0, 0, 0}, {0, 2, 0}, 0.5);
  Rng rng(2);
  std::vector<Ray> rays;
  for (int i = 0; i < 1024; ++i) {
    rays.push_back({rng.point_in_box({-3, -3, -3}, {3, 3, 3}),
                    rng.unit_vector()});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    Hit hit;
    benchmark::DoNotOptimize(cyl.intersect(rays[i++ & 1023], 1e-9, 1e9, &hit));
  }
}
BENCHMARK(BM_CylinderIntersect);

void BM_GridWalk(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const VoxelGrid grid({{-2, -2, -2}, {2, 2, 2}}, n, n, n);
  Rng rng(3);
  std::vector<Ray> rays;
  for (int i = 0; i < 256; ++i) {
    rays.push_back({rng.point_in_box({-4, -4, -4}, {4, 4, 4}),
                    rng.unit_vector()});
  }
  std::size_t i = 0;
  std::int64_t cells = 0;
  for (auto _ : state) {
    grid.walk(rays[i++ & 255], 0.0, kRayInfinity,
              [&](int, int, int, double, double) {
                ++cells;
                return true;
              });
  }
  benchmark::DoNotOptimize(cells);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridWalk)->Arg(8)->Arg(32)->Arg(128);

void BM_AccelClosestHit(benchmark::State& state) {
  const AnimatedScene scene = orbit_scene(20, 1);
  const World world = scene.world_at(0);
  const UniformGridAccelerator accel(world);
  Rng rng(4);
  std::vector<Ray> rays;
  for (int i = 0; i < 1024; ++i) {
    rays.push_back({rng.point_in_box({-4, 0, -4}, {4, 4, 4}),
                    rng.unit_vector()});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    Hit hit;
    benchmark::DoNotOptimize(
        accel.closest_hit(rays[i++ & 1023], 1e-9, kRayInfinity, &hit));
  }
}
BENCHMARK(BM_AccelClosestHit);

void BM_CoherenceMark(benchmark::State& state) {
  const VoxelGrid vg({{-2, -2, -2}, {2, 2, 2}}, 32, 32, 32);
  CoherenceGrid grid(vg, {0, 0, 320, 240});
  Rng rng(5);
  int x = 0, y = 0;
  for (auto _ : state) {
    grid.mark(static_cast<int>(rng.next_below(32 * 32 * 32)), x, y);
    x = (x + 7) % 320;
    y = (y + 3) % 240;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherenceMark);

void BM_CoherenceCollect(benchmark::State& state) {
  const VoxelGrid vg({{-2, -2, -2}, {2, 2, 2}}, 16, 16, 16);
  CoherenceGrid grid(vg, {0, 0, 320, 240});
  Rng rng(6);
  for (int i = 0; i < 200000; ++i) {
    grid.mark(static_cast<int>(rng.next_below(16 * 16 * 16)),
              static_cast<int>(rng.next_below(320)),
              static_cast<int>(rng.next_below(240)));
  }
  std::vector<std::uint32_t> cells;
  for (std::uint32_t c = 0; c < 16 * 16 * 16; c += 7) cells.push_back(c);
  for (auto _ : state) {
    PixelMask mask(320, 240);
    grid.collect_pixels(cells, &mask);
    benchmark::DoNotOptimize(mask.count());
  }
}
BENCHMARK(BM_CoherenceCollect);

void BM_PixelCodecSparse(benchmark::State& state) {
  Framebuffer fb(320, 240);
  Rng rng(7);
  PixelMask updated(320, 240);
  for (int i = 0; i < 5000; ++i) {
    updated.set(static_cast<int>(rng.next_below(320)),
                static_cast<int>(rng.next_below(240)), true);
  }
  const PixelRect rect{0, 0, 320, 240};
  for (auto _ : state) {
    const PixelPayload payload = make_sparse_payload(fb, rect, updated);
    const std::string bytes = encode_payload(payload);
    PixelPayload decoded;
    decode_payload(&decoded, bytes);
    benchmark::DoNotOptimize(decoded.carried_pixels());
  }
}
BENCHMARK(BM_PixelCodecSparse);

void BM_FrameResultRoundTrip(benchmark::State& state) {
  Framebuffer fb(80, 80);
  FrameResult result;
  result.payload = make_dense_payload(fb, {0, 0, 80, 80});
  for (auto _ : state) {
    FrameResult out;
    decode_frame_result(&out, encode_frame_result(result));
    benchmark::DoNotOptimize(out.frame);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 80 * 80 * 3);
}
BENCHMARK(BM_FrameResultRoundTrip);

void BM_RenderNewtonFrame(benchmark::State& state) {
  CradleParams params;
  params.frames = 1;
  const AnimatedScene scene = newton_cradle_scene(params);
  const World world = scene.world_at(0);
  const UniformGridAccelerator accel(world);
  const int w = static_cast<int>(state.range(0));
  const int h = w * 3 / 4;
  for (auto _ : state) {
    Tracer tracer(world, accel);
    Framebuffer fb(w, h);
    render_frame(&tracer, &fb);
    benchmark::DoNotOptimize(fb.at(0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * w * h);
}
BENCHMARK(BM_RenderNewtonFrame)->Arg(80)->Arg(160)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.push_back("--benchmark_out_format=json");
    } else if (arg == "--quick") {
      args.push_back("--benchmark_min_time=0.05");
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> cargv;
  for (std::string& s : args) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
