// Section 4 observation: "The frame coherence algorithm performs well on
// this particular animation because performance depends on the amount of
// frame coherence we can actually extract from the scene. Only a small area
// of the scene changes per frame, allowing us to avoid computing the
// majority of the pixels."
//
// Sensitivity sweep: orbit scenes where an increasing number of spheres
// move every frame. As the changed area grows, the coherence speedup
// decays toward 1 — quantifying when the algorithm pays off.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/serial.h"

namespace now {
namespace {

int run(bool quick) {
  const int frames = quick ? 8 : 20;
  std::printf("coherence sensitivity — orbit scenes, %d frames at 160x120\n",
              frames);
  std::printf("(every sphere orbits, so sphere count controls the changed "
              "area per frame)\n\n");
  std::printf("%10s %12s %14s %14s %10s %10s\n", "spheres", "changed/frm",
              "rays +FC", "rays -FC", "ray gain", "speedup");
  bench::print_rule(76);

  for (const int spheres : {1, 2, 4, 8, 16, 32}) {
    const AnimatedScene scene = orbit_scene(spheres, frames, 160, 120);

    CoherenceOptions nofc;
    nofc.enabled = false;
    const SerialResult plain = render_serial(scene, nofc);
    const SerialResult fc = render_serial(scene);

    // Average actually-changed fraction per frame.
    double changed_sum = 0.0;
    {
      Framebuffer prev = plain.frames[0];
      for (int f = 1; f < frames; ++f) {
        changed_sum += diff_stats(prev, plain.frames[f]).changed_fraction();
        prev = plain.frames[f];
      }
    }

    std::printf("%10d %11.1f%% %14s %14s %9.2fx %9.2fx\n", spheres,
                100.0 * changed_sum / (frames - 1),
                bench::with_commas(fc.stats.total_rays()).c_str(),
                bench::with_commas(plain.stats.total_rays()).c_str(),
                static_cast<double>(plain.stats.total_rays()) /
                    static_cast<double>(fc.stats.total_rays()),
                plain.virtual_seconds / fc.virtual_seconds);
  }
  std::printf("\nspeedup decays as the per-frame changed area grows — the "
              "paper's Newton scene\nsits at the favorable end (a small "
              "moving area with expensive pixels)\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
