// Table 1 reproduction: performance results for the Newton sequence.
//
// Paper configuration (Section 4): 45 frames, 76,800 pixels per frame,
// 24-bit targa, image quality high, max ray depth 5; one 200 MHz SGI
// Indigo2 (the serial machine) plus two 100 MHz SGIs, PVM 3.1, shared
// 10 Mb/s Ethernet. Distributed runs place the master on the fast machine.
//
// Columns (numbers in parentheses match the paper's Table 1):
//   (1) single processor, no frame coherence
//   (2) single processor + frame coherence        (3) = speedup vs (1)
//   (4) distributed, no coherence, demand-driven 80×80 blocks
//                                                 (5) = speedup vs (1)
//   (6) distributed + coherence, sequence division (adaptive)
//                                                 (7) = speedup vs (1)
//   (8) distributed + coherence, frame division (80×80 subareas)
//                                                 (9) = speedup vs (1)
//
// Expected shape (paper): (3) ≈ 3 with rays cut ≈5×, (5) ≈ 2 (the cluster
// has twice the fast machine's power), (7) ≈ 5, (9) ≈ 7 — coherence and
// distribution multiply, and frame division beats sequence division because
// sequence division restarts coherence at every subsequence boundary.
//
// All five configurations must produce byte-identical frames; the harness
// verifies this before printing.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

struct Column {
  std::string label;
  std::uint64_t rays = 0;
  double first_frame = -1.0;  // serial runs only
  double total = 0.0;
  const std::vector<Framebuffer>* frames = nullptr;
};

void print_table(const std::vector<Column>& cols) {
  const double base = cols[0].total;
  std::printf("%-22s", "");
  for (const auto& c : cols) std::printf("%22s", c.label.c_str());
  std::printf("\n");
  bench::print_rule(22 + 22 * static_cast<int>(cols.size()));

  std::printf("%-22s", "# rays");
  for (const auto& c : cols)
    std::printf("%22s", bench::with_commas(c.rays).c_str());
  std::printf("\n");

  std::printf("%-22s", "first frame");
  for (const auto& c : cols) {
    std::printf("%22s",
                c.first_frame < 0 ? "-" : bench::hms(c.first_frame).c_str());
  }
  std::printf("\n");

  std::printf("%-22s", "average frame");
  for (const auto& c : cols)
    std::printf("%22s", bench::hms(c.total / 45.0).c_str());
  std::printf("\n");

  std::printf("%-22s", "total");
  for (const auto& c : cols) std::printf("%22s", bench::hms(c.total).c_str());
  std::printf("\n");

  std::printf("%-22s", "speedup vs (1)");
  for (const auto& c : cols)
    std::printf("%22s", bench::speedup(base, c.total).c_str());
  std::printf("\n");
}

int run(bool quick) {
  CradleParams params;
  params.frames = 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);
  const CostModel cost;

  std::printf("Table 1 — Newton sequence, %d frames at %dx%d, depth 5\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("cluster: speeds {1.0, 0.5, 0.5} (200 MHz + 2x100 MHz), "
              "10 Mb/s shared Ethernet\n\n");

  // (1) single processor, no coherence.
  CoherenceOptions nofc;
  nofc.enabled = false;
  const SerialResult serial_plain = render_serial(scene, nofc, cost);

  // (2) single processor with coherence.
  const SerialResult serial_fc = render_serial(scene, {}, cost);

  const auto farm = [&](PartitionScheme scheme, bool coherence,
                        int hybrid_frames) {
    FarmConfig config;
    config.backend = FarmBackend::kSim;
    config.worker_speeds = bench::paper_cluster_speeds();
    config.cost = cost;
    config.coherence.enabled = coherence;
    config.partition.scheme = scheme;
    config.partition.block_size = 80;
    config.partition.hybrid_frames = hybrid_frames;
    config.partition.adaptive = true;
    return render_farm(scene, config);
  };

  // (4) distributed without coherence: demand-driven per-frame 80×80 blocks.
  const FarmResult dist_plain = farm(PartitionScheme::kHybrid, false, 1);
  // (6) distributed + coherence, sequence division.
  const FarmResult dist_seq = farm(PartitionScheme::kSequenceDivision, true, 0);
  // (8) distributed + coherence, frame division.
  const FarmResult dist_frame = farm(PartitionScheme::kFrameDivision, true, 0);

  // Correctness gate: every configuration renders the same animation.
  const std::vector<const std::vector<Framebuffer>*> all = {
      &serial_plain.frames, &serial_fc.frames, &dist_plain.frames,
      &dist_seq.frames, &dist_frame.frames};
  for (std::size_t i = 1; i < all.size(); ++i) {
    for (int f = 0; f < scene.frame_count(); ++f) {
      if (!((*all[i])[f] == (*all[0])[f])) {
        std::fprintf(stderr,
                     "FATAL: configuration %zu frame %d differs from serial\n",
                     i, f);
        return 1;
      }
    }
  }
  std::printf("[verified: all five configurations produce byte-identical "
              "frames]\n\n");

  std::vector<Column> cols;
  cols.push_back({"(1) 1 proc", serial_plain.stats.total_rays(),
                  serial_plain.first_frame_seconds,
                  serial_plain.virtual_seconds, &serial_plain.frames});
  cols.push_back({"(2) 1 proc +FC", serial_fc.stats.total_rays(),
                  serial_fc.first_frame_seconds, serial_fc.virtual_seconds,
                  &serial_fc.frames});
  cols.push_back({"(4) distrib", dist_plain.master.rays_total, -1.0,
                  dist_plain.elapsed_seconds, &dist_plain.frames});
  cols.push_back({"(6) +FC seq div", dist_seq.master.rays_total, -1.0,
                  dist_seq.elapsed_seconds, &dist_seq.frames});
  cols.push_back({"(8) +FC frame div", dist_frame.master.rays_total, -1.0,
                  dist_frame.elapsed_seconds, &dist_frame.frames});
  print_table(cols);

  std::printf("\nsupporting detail\n");
  bench::print_rule(60);
  std::printf("ray reduction from coherence (serial): %.2fx\n",
              static_cast<double>(serial_plain.stats.total_rays()) /
                  static_cast<double>(serial_fc.stats.total_rays()));
  std::printf("first-frame coherence overhead: %.1f%%\n",
              100.0 * (serial_fc.first_frame_seconds -
                       serial_plain.first_frame_seconds) /
                  serial_fc.first_frame_seconds);
  const auto detail = [&](const char* name, const FarmResult& r) {
    std::printf(
        "%-18s splits=%-3lld full-renders=%-4lld messages=%-6lld "
        "MB=%-8.2f eth-contention=%s\n",
        name, static_cast<long long>(r.master.adaptive_splits),
        static_cast<long long>(r.master.full_renders),
        static_cast<long long>(r.runtime.messages),
        static_cast<double>(r.runtime.bytes) / 1e6,
        bench::hms(r.metrics.gauge("sim.ethernet_contention_seconds"))
            .c_str());
  };
  detail("(4) distrib", dist_plain);
  detail("(6) seq div", dist_seq);
  detail("(8) frame div", dist_frame);
  bench::record_farm_metrics("distrib.", dist_plain.metrics);
  bench::record_farm_metrics("seqdiv.", dist_seq.metrics);
  bench::record_farm_metrics("framediv.", dist_frame.metrics);

  std::printf("\npaper reference: rays 21,970,900 -> ~4.4M (/5); total "
              "2:55:51 -> x3 (FC), x2 (distrib), x5 (seq), x7 (frame)\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
