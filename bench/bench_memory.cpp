// Section 3 memory claim: frame division "has the advantage of requiring
// less memory of each of the processors to execute the frame coherence
// program since memory requirements are directly proportional to the size
// of the image area. ... This scheme becomes most effective when each frame
// has large dimensions or contains objects with complex characteristics
// since these cases have high memory requirements."
//
// Measures the per-worker high-water mark of coherence mark storage under
// sequence division (full-frame tracking) vs frame division at several
// block sizes, plus a resolution sweep showing storage ∝ tracked area.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

std::int64_t peak_worker_bytes(const FarmResult& r) {
  std::int64_t peak = 0;
  for (const WorkerReport& w : r.workers) {
    peak = std::max(peak, w.peak_mark_bytes);
  }
  return peak;
}

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 10 : 30;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("per-worker coherence memory — Newton, %d frames at %dx%d, "
              "3 workers\n\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("%-34s %14s %16s %10s\n", "partitioning",
              "tracked px", "peak marks MB", "total");
  bench::print_rule(80);

  const auto run_config = [&](const char* label, PartitionScheme scheme,
                              int block, std::int64_t tracked_pixels) {
    FarmConfig config;
    config.backend = FarmBackend::kSim;
    config.worker_speeds = bench::paper_cluster_speeds();
    config.partition.scheme = scheme;
    config.partition.block_size = block;
    const FarmResult r = render_farm(scene, config);
    std::printf("%-34s %14s %16.2f %10s\n", label,
                bench::with_commas(
                    static_cast<std::uint64_t>(tracked_pixels)).c_str(),
                static_cast<double>(peak_worker_bytes(r)) / 1e6,
                bench::hms(r.elapsed_seconds).c_str());
  };

  const std::int64_t full = std::int64_t{scene.width()} * scene.height();
  run_config("sequence division (whole frames)",
             PartitionScheme::kSequenceDivision, 0, full);
  const int big = quick ? 80 : 160;
  char label[64];
  std::snprintf(label, sizeof(label), "frame division, %dx%d blocks", big, big);
  run_config(label, PartitionScheme::kFrameDivision, big,
             std::int64_t{big} * big);
  const int mid = quick ? 40 : 80;
  std::snprintf(label, sizeof(label), "frame division, %dx%d blocks (paper)",
                mid, mid);
  run_config(label, PartitionScheme::kFrameDivision, mid,
             std::int64_t{mid} * mid);
  const int small = quick ? 20 : 40;
  std::snprintf(label, sizeof(label), "frame division, %dx%d blocks", small,
                small);
  run_config(label, PartitionScheme::kFrameDivision, small,
             std::int64_t{small} * small);

  std::printf("\npeak mark storage tracks the subarea each worker is "
              "responsible for — the\npaper's motivation for frame division "
              "on memory-constrained workstations\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
