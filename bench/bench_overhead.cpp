// Section 4 overhead measurement: "The measurements for the first frame
// rendering are provided to show the overhead associated with the
// algorithm. Here, overhead constitutes a reasonable 12% of the total
// generation time."
//
// Renders the first Newton frame with and without coherence bookkeeping and
// breaks the cost model's virtual time into its components; also reports
// the real (wall-clock) bookkeeping overhead of the implementation.
#include <chrono>
#include <cstdio>
#include <cstring>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/par/cost_model.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

int run(bool quick) {
  CradleParams params;
  params.frames = 2;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);
  const PixelRect full{0, 0, scene.width(), scene.height()};
  const CostModel cost;

  const auto render_first = [&](bool coherence, MetricsRegistry* metrics,
                                FrameRenderResult* out) {
    CoherenceOptions options;
    options.enabled = coherence;
    options.metrics = metrics;
    CoherentRenderer renderer(scene, full, options);
    Framebuffer fb(scene.width(), scene.height());
    const auto t0 = std::chrono::steady_clock::now();
    *out = renderer.render_frame(0, &fb);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  FrameRenderResult with_fc, without_fc, with_obs;
  const double wall_fc = render_first(true, nullptr, &with_fc);
  const double wall_plain = render_first(false, nullptr, &without_fc);
  // Observability acceptance: rendering against a *disabled* registry must
  // be indistinguishable from rendering with no registry at all (<2%).
  MetricsRegistry disabled(false);
  const double wall_obs_off = render_first(true, &disabled, &with_obs);

  const double ray_cost =
      static_cast<double>(with_fc.stats.total_rays()) * cost.seconds_per_ray;
  const double mark_cost =
      static_cast<double>(with_fc.voxels_marked) * cost.seconds_per_voxel_mark;
  const double pixel_cost =
      static_cast<double>(with_fc.pixels_total) * cost.seconds_per_pixel_touch;
  const double total =
      cost.frame_compute_seconds(with_fc) + cost.master_frame_write_seconds;

  std::printf("first-frame coherence overhead — Newton at %dx%d\n\n",
              scene.width(), scene.height());
  std::printf("rays traced:           %s (same with and without coherence)\n",
              bench::with_commas(with_fc.stats.total_rays()).c_str());
  std::printf("voxels marked by DDA:  %s\n",
              bench::with_commas(
                  static_cast<std::uint64_t>(with_fc.voxels_marked)).c_str());
  std::printf("\nvirtual-time breakdown (reference machine):\n");
  std::printf("  ray tracing       %8s  (%5.1f%%)\n",
              bench::hms(ray_cost).c_str(), 100.0 * ray_cost / total);
  std::printf("  coherence marking %8s  (%5.1f%%)  <- the paper's ~12%%\n",
              bench::hms(mark_cost).c_str(), 100.0 * mark_cost / total);
  std::printf("  pixel bookkeeping %8s  (%5.1f%%)\n",
              bench::hms(pixel_cost).c_str(), 100.0 * pixel_cost / total);
  std::printf("  frame setup+write %8s\n",
              bench::hms(cost.seconds_per_frame_setup +
                         cost.master_frame_write_seconds).c_str());
  std::printf("  total first frame %8s (without coherence: %8s)\n",
              bench::hms(total).c_str(),
              bench::hms(cost.frame_compute_seconds(without_fc) +
                         cost.master_frame_write_seconds).c_str());

  std::printf("\nactual wall clock on this machine:\n");
  std::printf("  with coherence    %7.3f s\n", wall_fc);
  std::printf("  without           %7.3f s\n", wall_plain);
  std::printf("  real overhead     %6.1f%%\n",
              100.0 * (wall_fc - wall_plain) / wall_fc);
  const double obs_pct = 100.0 * (wall_obs_off - wall_fc) / wall_fc;
  std::printf("  disabled metrics  %7.3f s  (%+.1f%% vs no registry)\n",
              wall_obs_off, obs_pct);
  std::printf("\npaper reference: 12%% of first-frame generation time\n");

  MetricsRegistry& reg = bench::bench_registry();
  reg.counter("overhead.rays").inc(with_fc.stats.total_rays());
  reg.counter("overhead.voxels_marked")
      .inc(static_cast<std::uint64_t>(with_fc.voxels_marked));
  reg.gauge("overhead.wall_with_coherence_seconds").set(wall_fc);
  reg.gauge("overhead.wall_without_coherence_seconds").set(wall_plain);
  reg.gauge("overhead.wall_disabled_registry_seconds").set(wall_obs_off);
  reg.gauge("overhead.coherence_pct")
      .set(100.0 * (wall_fc - wall_plain) / wall_fc);
  reg.gauge("overhead.disabled_registry_pct").set(obs_pct);
  reg.gauge("overhead.virtual_mark_pct").set(100.0 * mark_cost / total);

  // -- live telemetry plane: on vs off on the Table-1 scene -----------------
  // The tentpole's standing constraint is that the sampler, the status
  // endpoint and the flight recorder stay observably cheap when armed. Run
  // the paper's Newton farm on real threads both ways (min of two runs each
  // to damp scheduler noise) and gate the delta.
  CradleParams farm_params;
  farm_params.frames = quick ? 12 : 45;
  farm_params.width = params.width;
  farm_params.height = params.height;
  const AnimatedScene farm_scene = newton_cradle_scene(farm_params);

  FarmConfig base;
  base.backend = FarmBackend::kThreads;
  base.workers = 3;
  base.partition.scheme = PartitionScheme::kFrameDivision;

  FarmConfig telemetry = base;
  telemetry.obs.sample_interval_seconds = 0.1;
  telemetry.obs.status_port = 0;  // ephemeral: live /metrics + /status
  telemetry.obs.flight_recorder = true;
  telemetry.obs.flight_dir = "";  // ring only; no implicit flush

  const auto farm_wall = [&](const FarmConfig& cfg) {
    double best = 0.0;
    for (int i = 0; i < 2; ++i) {
      const FarmResult r = render_farm(farm_scene, cfg);
      if (i == 0 || r.elapsed_seconds < best) best = r.elapsed_seconds;
    }
    return best;
  };
  const double wall_off = farm_wall(base);
  const double wall_on = farm_wall(telemetry);
  const double telemetry_pct =
      wall_off > 0.0 ? 100.0 * (wall_on - wall_off) / wall_off : 0.0;

  std::printf("\nlive telemetry plane — Newton farm (%d frames, threads):\n",
              farm_scene.frame_count());
  std::printf("  telemetry off     %7.3f s\n", wall_off);
  std::printf("  telemetry on      %7.3f s  (sampler + /status + recorder)\n",
              wall_on);
  // The 3% gate is defined on the full Table-1 scene; the sub-second quick
  // farm gets headroom for scheduler noise so CI doesn't flake.
  const double gate_pct = quick ? 10.0 : 3.0;
  std::printf("  plane overhead    %+6.1f%%  (gate: < %.0f%%)\n",
              telemetry_pct, gate_pct);

  reg.gauge("overhead.telemetry_off_seconds").set(wall_off);
  reg.gauge("overhead.telemetry_on_seconds").set(wall_on);
  reg.gauge("overhead.telemetry_pct").set(telemetry_pct);
  if (telemetry_pct >= gate_pct) {
    std::fprintf(stderr,
                 "FAIL: telemetry plane costs %.1f%% wall clock (gate %.0f%%)\n",
                 telemetry_pct, gate_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
