// Section 2 feature: "we are also exploring the use of frame coherence in
// the generation of shadows" (and future work: "development of frame
// coherence algorithms with shadow generation").
//
// Measures what shadow-ray marking costs and buys:
//   1. shadows on,  shadow marking on   — the paper's full algorithm
//   2. shadows off, shadow marking n/a  — how much of the marking volume
//                                         and dirty traffic shadows cause
//   3. correctness probe: with shadows on, disabling shadow marking MUST
//      break coherence (an occluder's motion goes unnoticed) — the harness
//      demonstrates the resulting false negatives on a crafted scene.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/par/serial.h"

namespace now {
namespace {

void report(const char* label, const SerialResult& r) {
  std::printf("%-34s %14s %14s %12s %10s\n", label,
              bench::with_commas(r.stats.total_rays()).c_str(),
              bench::with_commas(
                  static_cast<std::uint64_t>(r.voxels_marked)).c_str(),
              bench::with_commas(
                  static_cast<std::uint64_t>(r.pixels_recomputed)).c_str(),
              bench::hms(r.virtual_seconds).c_str());
}

/// A scene built so that the ONLY thing changing a pixel is an occluder
/// moving across a light: camera sees a wall; a ball slides between the
/// light and the wall, off-camera.
AnimatedScene occluder_scene() {
  AnimatedScene scene;
  scene.set_resolution(96, 72);
  scene.set_frames(6, 10.0);
  scene.set_background(Color::black());
  scene.set_camera(Camera{{0, 1, 5}, {0, 1, 0}, {0, 1, 0}, 40.0, 96.0 / 72.0});
  const int wall_mat = scene.add_material(Material::matte(Color::gray(0.8)));
  const int ball_mat = scene.add_material(Material::matte(Color::gray(0.3)));
  scene.add_object("wall", std::make_unique<Plane>(Vec3{0, 0, 1}, -1.0),
                   wall_mat);
  // The occluder slides between the light (above/right of camera) and the
  // wall, staying outside the camera frustum's view of itself.
  Spline path(InterpMode::kLinear);
  path.add_key(0.0, {0, 0, 0});
  path.add_key(0.5, {3.0, 0, 0});
  scene.add_object("occluder",
                   std::make_unique<Sphere>(Vec3{-1.5, 4.0, 1.5}, 1.0),
                   ball_mat, std::make_unique<KeyframeAnimator>(std::move(path)));
  scene.add_light(Light::point({0, 8, 4}, Color::white(), 1.0));
  return scene;
}

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 10 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("shadow coherence — Newton, %d frames at %dx%d\n\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("%-34s %14s %14s %12s %10s\n", "configuration", "rays",
              "voxel marks", "recomputed", "total");
  bench::print_rule(90);

  {
    CoherenceOptions options;  // shadows on, shadow marking on
    report("shadows on, shadow marking on", render_serial(scene, options));
  }
  {
    CoherenceOptions options;
    options.trace.shadows = false;
    options.record_shadow_rays = false;
    report("shadows off (no shadow work)", render_serial(scene, options));
  }

  // Correctness probe.
  std::printf("\ncorrectness probe: occluder moving outside every camera ray "
              "path\n");
  const AnimatedScene probe = occluder_scene();
  for (const bool mark_shadows : {true, false}) {
    CoherenceOptions options;
    options.record_shadow_rays = mark_shadows;
    CoherentRenderer renderer(
        probe, {0, 0, probe.width(), probe.height()}, options);
    Framebuffer fb(probe.width(), probe.height());
    std::int64_t mismatched_frames = 0;
    for (int f = 0; f < probe.frame_count(); ++f) {
      renderer.render_frame(f, &fb);
      const Framebuffer ref =
          render_world(probe.world_at(f), probe.width(), probe.height(),
                       options.trace);
      if (!(fb == ref)) ++mismatched_frames;
    }
    std::printf("  shadow marking %-3s -> %lld/%d frames wrong%s\n",
                mark_shadows ? "on" : "off",
                static_cast<long long>(mismatched_frames),
                probe.frame_count(),
                mark_shadows ? "  (correct: shadow rays tracked)"
                             : "  (broken: occluder motion missed)");
    if (mark_shadows && mismatched_frames != 0) {
      std::fprintf(stderr, "FATAL: shadow marking on but output wrong\n");
      return 1;
    }
  }
  std::printf("\nshadow-ray marking is mandatory whenever shadows are "
              "rendered; its cost is\nthe voxel-marks delta above\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
