// Figure 4 reproduction: "(a) sequence division (b) frame division".
//
// The paper's figure is a diagram of the two data partitionings; this
// harness regenerates the same information as data — the exact assignment
// each scheme produces for the paper's configuration (45 frames of 320x240
// across the 3-machine cluster) — and then runs both schemes on the
// simulated NOW to report the per-worker load balance that results.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

void print_assignment(const char* title, const PartitionConfig& config,
                      int width, int height, int frames, int workers) {
  std::printf("\n%s\n", title);
  bench::print_rule(70);
  const auto tasks = make_initial_tasks(config, width, height, frames, workers);
  std::printf("%zu initial task(s):\n", tasks.size());
  for (const RenderTask& t : tasks) {
    std::printf("  task %2d: region [%3d,%3d %3dx%3d]  frames %2d..%2d "
                "(%lld pixel-frames)\n",
                t.task_id, t.region.x0, t.region.y0, t.region.width,
                t.region.height, t.first_frame, t.end_frame() - 1,
                static_cast<long long>(t.region.area()) * t.frame_count);
  }
}

void run_balance(const char* title, PartitionScheme scheme, bool quick) {
  CradleParams params;
  params.frames = quick ? 12 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = bench::paper_cluster_speeds();
  config.partition.scheme = scheme;
  config.partition.block_size = 80;
  const FarmResult r = render_farm(scene, config);

  std::printf("\n%s on the simulated cluster {1.0, 0.5, 0.5}:\n", title);
  std::printf("  total %s, %lld adaptive splits\n",
              bench::hms(r.elapsed_seconds).c_str(),
              static_cast<long long>(r.master.adaptive_splits));
  double busy_sum = 0.0;
  double busy_max = 0.0;
  const int n = static_cast<int>(config.worker_speeds.size());
  for (int w = 1; w <= n; ++w) {
    const double busy =
        r.metrics.gauge("rank." + std::to_string(w) + ".busy_seconds");
    const double util = busy / r.elapsed_seconds;
    std::printf("  worker %d (speed %.2f): busy %s  util %5.1f%%  "
                "region-frames %lld\n",
                w, config.worker_speeds[w - 1], bench::hms(busy).c_str(),
                100.0 * util,
                static_cast<long long>(r.master.frames_by_worker[w]));
    busy_sum += busy;
    busy_max = std::max(busy_max, busy);
  }
  std::printf("  load imbalance (max/mean busy): %.3f\n",
              busy_max / (busy_sum / n));
  bench::record_farm_metrics(std::string(to_string(scheme)) + ".", r.metrics);
}

int run(bool quick) {
  std::printf("Figure 4 — sequence division vs frame division\n");

  PartitionConfig seq;
  seq.scheme = PartitionScheme::kSequenceDivision;
  print_assignment("(a) sequence division: consecutive whole-frame "
                   "subsequences per worker",
                   seq, 320, 240, 45, 3);

  PartitionConfig frame;
  frame.scheme = PartitionScheme::kFrameDivision;
  frame.block_size = 80;
  print_assignment("(b) frame division: 80x80 subareas for the entire "
                   "animation (more tasks than workers -> demand driven)",
                   frame, 320, 240, 45, 3);

  PartitionConfig hybrid;
  hybrid.scheme = PartitionScheme::kHybrid;
  hybrid.block_size = 160;
  hybrid.hybrid_frames = 15;
  print_assignment("(c) hybrid: subarea x subsequence chunks (Section 3's "
                   "'many other decomposition schemes')",
                   hybrid, 320, 240, 45, 3);

  run_balance("(a) sequence division", PartitionScheme::kSequenceDivision,
              quick);
  run_balance("(b) frame division", PartitionScheme::kFrameDivision, quick);
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
