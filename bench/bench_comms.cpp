// Wire cost of frame delivery: raw vs delta codec across dirty fractions.
//
// The paper's cluster shares one 10 Mb/s Ethernet, so every byte a worker
// ships back to the master is contended medium time. Frame coherence means
// most of an incremental frame's pixels are bytes the master already has;
// the delta codec (value-diffed sparse payloads + RLE/byte-delta
// compression, dense key frames where coherence restarts) makes the wire
// cost proportional to *change*. This bench sweeps scenes from near-static
// to a mid-sequence camera cut, prices both codecs in wire bytes and
// simulated Ethernet time, and then holds the hard gate: final frames must
// be byte-identical to a serial render on every backend — pipelined or not,
// across a resume, and under fault injection. Exit code is non-zero if any
// identity check (or the headline compression ratio) fails.
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/ckpt/journal.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

/// The delta codec's home turf: a gray still-life where one small sphere
/// drifts at a fraction of a pixel per frame. The voxel-granular change
/// predictor conservatively recomputes the sphere's whole footprint and
/// shadow every frame, but almost none of those pixels change value — raw
/// sparse returns ship the full footprint, delta ships the thin crescent
/// that actually moved. The gray palette keeps shading gradients byte-delta
/// compressible, so even the dense key frames shrink.
AnimatedScene low_motion_scene(int frames, int width, int height) {
  AnimatedScene scene;
  scene.set_frames(frames, 15.0);
  scene.set_resolution(width, height);
  scene.set_background(Color{0.06, 0.06, 0.06});

  Material floor_m = Material::textured(std::make_shared<CheckerTexture>(
      Color{0.55, 0.55, 0.55}, Color{0.25, 0.25, 0.25}, 2.5));
  const int floor_mat = scene.add_material(floor_m);
  scene.add_object("floor", std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0),
                   floor_mat);

  const int prop = scene.add_material(Material::matte(Color::gray(0.7)));
  scene.add_object("prop0", std::make_unique<Sphere>(Vec3{-1.2, 0.5, -0.6}, 0.5),
                   prop);
  scene.add_object("prop1", std::make_unique<Sphere>(Vec3{1.3, 0.35, 0.4}, 0.35),
                   prop);

  const int mover = scene.add_material(Material::matte(Color::gray(0.45)));
  scene.add_object("drift", std::make_unique<Sphere>(Vec3{1.1, 0.9, 0.0}, 0.42),
                   mover,
                   std::make_unique<OrbitAnimator>(Vec3{0, 0.9, 0},
                                                   Vec3{0, 1, 0}, 60.0));

  scene.add_light(Light::point({3, 5, 3}, Color::white(), 0.9));
  // A near-horizon view: the flat background fills the upper half of the
  // frame, so dense key frames are long constant runs for the compressor.
  scene.set_camera(Camera{{0, 1.4, 7.0},
                          {0, 1.3, 0},
                          {0, 1, 0},
                          42.0,
                          static_cast<double>(width) / height});
  return scene;
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
}

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(render_world(scene.world_at(f), scene.width(),
                               scene.height(), TraceOptions{}));
  }
  return out;
}

bool frames_equal(const std::vector<Framebuffer>& got,
                  const std::vector<Framebuffer>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t f = 0; f < got.size(); ++f) {
    if (!(got[f] == want[f])) return false;
  }
  return true;
}

FarmConfig comms_config(FarmBackend backend, FrameCodec codec) {
  FarmConfig config;
  config.backend = backend;
  config.workers = 3;
  config.frame_codec = codec;
  // One render thread per worker: the wall-clock backends already run one
  // OS thread per rank, and identical shading order keeps runs comparable.
  if (backend != FarmBackend::kSim) config.coherence.threads = 1;
  return config;
}

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// -- Part 1: dirty-fraction sweep (sim, virtual Ethernet) -------------------

void sweep(const AnimatedScene& scene, const std::string& label,
           bool gate_5x) {
  const FarmResult raw =
      render_farm(scene, comms_config(FarmBackend::kSim, FrameCodec::kRaw));
  const FarmResult delta =
      render_farm(scene, comms_config(FarmBackend::kSim, FrameCodec::kDelta));
  check(frames_equal(raw.frames, delta.frames),
        label + ": delta frames differ from raw frames");

  const std::uint64_t raw_wire = raw.metrics.counter("net.frame_bytes_wire");
  const std::uint64_t delta_wire =
      delta.metrics.counter("net.frame_bytes_wire");
  const double ratio =
      delta_wire > 0 ? static_cast<double>(raw_wire) / delta_wire : 0.0;
  const double total_pixels =
      static_cast<double>(scene.frame_count()) * scene.width() *
      scene.height();
  const double dirty_pct =
      100.0 * delta.metrics.counter("coherence.pixels_recomputed") /
      total_pixels;

  std::printf("%-14s %7.1f%% %14s %14s %8.2fx %6llu %6llu %10.2f %10.2f\n",
              label.c_str(), dirty_pct,
              bench::with_commas(raw_wire).c_str(),
              bench::with_commas(delta_wire).c_str(), ratio,
              static_cast<unsigned long long>(
                  delta.metrics.counter("net.key_frames")),
              static_cast<unsigned long long>(
                  delta.metrics.counter("net.delta_frames")),
              raw.metrics.gauge("sim.ethernet_busy_seconds"),
              delta.metrics.gauge("sim.ethernet_busy_seconds"));

  const std::string prefix = "comms." + label + ".";
  bench::record_farm_metrics(prefix + "raw.", raw.metrics);
  bench::record_farm_metrics(prefix + "delta.", delta.metrics);
  bench::bench_registry().gauge(prefix + "wire_reduction").set(ratio);
  if (gate_5x) {
    check(ratio >= 5.0, label + ": wire reduction " + std::to_string(ratio) +
                            "x is below the 5x gate");
  }
}

// -- Part 2: backend identity + pipelining wall clock -----------------------

void backend_matrix(const AnimatedScene& scene,
                    const std::vector<Framebuffer>& ref) {
  std::printf("\n%-10s %-8s %-10s %12s   identical\n", "backend", "codec",
              "pipeline", "wall");
  bench::print_rule(56);
  for (const FarmBackend backend :
       {FarmBackend::kSim, FarmBackend::kThreads, FarmBackend::kTcp}) {
    for (const FrameCodec codec : {FrameCodec::kRaw, FrameCodec::kDelta}) {
      for (const bool pipeline : {false, true}) {
        // The sim always sends inline; skip its redundant pipelined leg.
        if (backend == FarmBackend::kSim && pipeline) continue;
        FarmConfig config = comms_config(backend, codec);
        config.pipeline = pipeline;
        const auto t0 = std::chrono::steady_clock::now();
        const FarmResult r = render_farm(scene, config);
        const double wall = wall_seconds(t0);
        const bool same = frames_equal(r.frames, ref);
        const std::string label = std::string(to_string(backend)) + "/" +
                                  to_string(codec) + "/" +
                                  (pipeline ? "piped" : "inline");
        check(same, label + ": frames differ from the serial reference");
        std::printf("%-10s %-8s %-10s %11.3fs   %s\n", to_string(backend),
                    to_string(codec), pipeline ? "on" : "off", wall,
                    same ? "yes" : "NO");
        bench::bench_registry()
            .gauge("identity." + label + ".wall_seconds")
            .set(wall);
      }
    }
  }
}

// -- Part 3: identity under fault injection ---------------------------------

void fault_runs(const AnimatedScene& scene,
                const std::vector<Framebuffer>& ref) {
  for (const FrameCodec codec : {FrameCodec::kRaw, FrameCodec::kDelta}) {
    FarmConfig config = comms_config(FarmBackend::kSim, codec);
    config.fault.enabled = true;
    config.fault.lease_base_seconds = 120.0;
    config.fault.lease_per_frame_seconds = 30.0;
    config.fault.ping_grace_seconds = 30.0;
    // Drop one frame result (breaks the sender's delta chain mid-task),
    // duplicate another, and kill a worker two frames into its task so the
    // reclaimed remainder must restart from a dense key frame.
    config.fault_plan.events.push_back(
        FaultPlan::drop_nth(2, 2, kTagFrameResult));
    config.fault_plan.events.push_back(
        FaultPlan::duplicate_nth(3, 3, kTagFrameResult));
    config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
    const FarmResult r = render_farm(scene, config);
    const bool same = frames_equal(r.frames, ref);
    check(same, std::string("faults/") + to_string(codec) +
                    ": frames differ from the serial reference");
    check(r.metrics.counter("net.frame_decode_failures") == 0,
          std::string("faults/") + to_string(codec) + ": decode failures");
    std::printf("faults     %-8s drop+dup+death        identical: %s\n",
                to_string(codec), same ? "yes" : "NO");
  }
}

// -- Part 4: identity across a crash + resume -------------------------------

void resume_run(const AnimatedScene& scene,
                const std::vector<Framebuffer>& ref) {
  const std::string dir = "bench_comms_out";
  ::mkdir(dir.c_str(), 0755);
  const std::string journal = dir + "/render.journal";

  FarmConfig config = comms_config(FarmBackend::kSim, FrameCodec::kDelta);
  // Sequence division: whole frames complete (and restore) per journal
  // record, so the halfway cut below leaves real work to skip.
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.output_dir = dir;
  config.journal_path = journal;
  config.journal_fsync = false;
  render_farm(scene, config);

  // Cut the journal at its halfway record boundary — what a crash leaves —
  // then resume. The restored prefix comes from disk; the re-rendered
  // suffix starts from dense key frames; the result must still match.
  const JournalReplay replay = replay_journal(journal);
  if (replay.ok && replay.record_offsets.size() > 2) {
    std::string bytes;
    {
      std::ifstream f(journal, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(f),
                   std::istreambuf_iterator<char>());
    }
    std::ofstream f(journal, std::ios::binary | std::ios::trunc);
    const std::size_t keep =
        replay.record_offsets[replay.record_offsets.size() / 2];
    f.write(bytes.data(), static_cast<std::streamsize>(keep));
  }
  config.resume = true;
  const FarmResult r = render_farm(scene, config);
  const bool same = frames_equal(r.frames, ref);
  check(r.resume.resumed, "resume: run did not actually resume");
  check(r.resume.frames_restored > 0, "resume: nothing was restored");
  check(same, "resume: frames differ from the serial reference");
  std::printf("resume     delta    restored %-2d frames    identical: %s\n",
              r.resume.frames_restored, same ? "yes" : "NO");
  bench::bench_registry()
      .counter("resume.frames_restored")
      .inc(static_cast<std::uint64_t>(r.resume.frames_restored));
}

int run(bool quick) {
  const int frames = quick ? 10 : 40;
  const int width = quick ? 96 : 192;
  const int height = quick ? 72 : 144;

  // The sweep spans the dirty-fraction axis: a fully static scene, the
  // near-static drift scene (the regime delta transport exists for), a busy
  // eight-sphere orbit, and a camera cut that forces a coherence restart
  // and a dense key frame mid-sequence.
  const AnimatedScene still = orbit_scene(0, frames, width, height);
  const AnimatedScene low = low_motion_scene(frames, width, height);
  const AnimatedScene busy = orbit_scene(8, frames, width, height);
  const AnimatedScene cut = two_shot_scene(frames, frames / 2);

  std::printf("frame transport — raw vs delta codec, %d frames, 3 workers\n\n",
              frames);
  std::printf("%-14s %8s %14s %14s %9s %6s %6s %10s %10s\n", "scene",
              "dirty", "raw wire", "delta wire", "reduce", "key", "delta",
              "eth raw", "eth delta");
  bench::print_rule(100);
  sweep(still, "static", /*gate_5x=*/false);
  sweep(low, "low-motion", /*gate_5x=*/true);
  sweep(busy, "busy", /*gate_5x=*/false);
  sweep(cut, "camera-cut", /*gate_5x=*/false);

  // Identity gates all run on the low-motion scene: the smallest payloads,
  // the longest delta chains, the least forgiving case for a codec bug.
  const std::vector<Framebuffer> ref = reference_frames(low);
  backend_matrix(low, ref);
  std::printf("\n");
  fault_runs(low, ref);
  resume_run(low, ref);

  std::printf("\n'dirty' is the fraction of pixels recomputed; 'eth' is "
              "virtual seconds the shared\nEthernet was busy. Every row must "
              "be byte-identical to a serial render.\n");
  if (g_failures > 0) {
    std::fprintf(stderr, "\n%d check(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  // Write the metrics snapshot even when a gate fails: the numbers are what
  // you need to diagnose the failure.
  const int rc = now::run(opts.quick);
  const int finish_rc = now::bench::finish_bench(opts);
  return rc != 0 ? rc : finish_rc;
}
