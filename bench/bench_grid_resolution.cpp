// Uniform-subdivision resolution ablation (Glassner 1984 grids underpin
// both the ray accelerator and the coherence grid).
//
// Sweep the coherence-grid resolution: coarse voxels over-invalidate (one
// dirty voxel drags many pixels), fine voxels cost more marking time and
// memory. Sweep the accelerator grid separately: pure wall-clock effect,
// identical images.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/serial.h"
#include "src/trace/uniform_grid.h"

namespace now {
namespace {

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 8 : 20;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("coherence-grid resolution sweep — Newton, %d frames\n\n",
              scene.frame_count());
  std::printf("%10s %14s %14s %14s %10s %12s\n", "grid", "rays",
              "voxel marks", "recomputed", "total", "marks MB");
  bench::print_rule(80);

  const Aabb extent = animation_extent(scene);
  for (const int n : {4, 8, 16, 32, 64}) {
    CoherenceOptions options;
    options.grid_override = VoxelGrid(extent.padded(0.01), n, n, n);
    const PixelRect full{0, 0, scene.width(), scene.height()};
    CoherentRenderer renderer(scene, full, options);
    Framebuffer fb(scene.width(), scene.height());
    SerialResult r;
    const CostModel cost;
    for (int f = 0; f < scene.frame_count(); ++f) {
      const FrameRenderResult fr = renderer.render_frame(f, &fb);
      r.stats += fr.stats;
      r.pixels_recomputed += fr.pixels_recomputed;
      r.voxels_marked += fr.voxels_marked;
      r.virtual_seconds +=
          cost.frame_compute_seconds(fr) + cost.master_frame_write_seconds;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%d^3", n);
    std::printf("%10s %14s %14s %14s %10s %12.2f\n", label,
                bench::with_commas(r.stats.total_rays()).c_str(),
                bench::with_commas(
                    static_cast<std::uint64_t>(r.voxels_marked)).c_str(),
                bench::with_commas(
                    static_cast<std::uint64_t>(r.pixels_recomputed)).c_str(),
                bench::hms(r.virtual_seconds).c_str(),
                static_cast<double>(
                    renderer.coherence_grid().stats().bytes()) / 1e6);
  }
  std::printf("\ncoarse grids over-invalidate (more rays recomputed); fine "
              "grids pay marking\ntime and memory — the classic spatial-"
              "subdivision trade-off\n");

  // Accelerator-grid sweep: wall clock only, identical output.
  std::printf("\naccelerator-grid resolution (single frame, wall clock)\n");
  std::printf("%10s %14s %12s\n", "grid", "wall ms", "cell entries");
  bench::print_rule(42);
  const World world = scene.world_at(0);
  for (const int n : {1, 4, 8, 16, 32, 64}) {
    const VoxelGrid vg(world.bounded_extent().padded(0.01), n, n, n);
    const UniformGridAccelerator accel(world, vg);
    Tracer tracer(world, accel);
    Framebuffer fb(scene.width(), scene.height());
    const auto t0 = std::chrono::steady_clock::now();
    render_frame(&tracer, &fb);
    const auto t1 = std::chrono::steady_clock::now();
    char label[32];
    std::snprintf(label, sizeof(label), "%d^3", n);
    std::printf("%10s %14.1f %12lld\n", label,
                1e3 * std::chrono::duration<double>(t1 - t0).count(),
                static_cast<long long>(accel.total_cell_entries()));
  }
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
