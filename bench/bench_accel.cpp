// Accelerator baseline comparison: the paper-era uniform grid (Glassner
// 1984, as in POV-Ray 3.0) vs a BVH vs brute force — wall-clock per frame
// across scene sizes. All three produce identical images (asserted).
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/trace/bvh.h"
#include "src/trace/uniform_grid.h"

namespace now {
namespace {

double render_ms(const World& world, const Accelerator& accel, int w, int h,
                 Framebuffer* out) {
  Tracer tracer(world, accel);
  *out = Framebuffer(w, h);
  const auto t0 = std::chrono::steady_clock::now();
  render_frame(&tracer, out);
  const auto t1 = std::chrono::steady_clock::now();
  return 1e3 * std::chrono::duration<double>(t1 - t0).count();
}

int run(bool quick) {
  const int w = quick ? 120 : 240;
  const int h = quick ? 90 : 180;
  std::printf("accelerator comparison — orbit scenes at %dx%d, wall clock "
              "per frame\n\n",
              w, h);
  std::printf("%10s %14s %14s %14s %12s %12s\n", "objects", "brute ms",
              "grid ms", "bvh ms", "grid gain", "bvh gain");
  bench::print_rule(82);

  for (const int objects : {5, 20, 50, 100, quick ? 150 : 250}) {
    const AnimatedScene scene = orbit_scene(objects, 1, w, h);
    const World world = scene.world_at(0);

    const BruteForceAccelerator brute(world);
    const UniformGridAccelerator grid(world);
    const BvhAccelerator bvh(world);

    Framebuffer fb_brute, fb_grid, fb_bvh;
    const double ms_brute = render_ms(world, brute, w, h, &fb_brute);
    const double ms_grid = render_ms(world, grid, w, h, &fb_grid);
    const double ms_bvh = render_ms(world, bvh, w, h, &fb_bvh);

    if (!(fb_brute == fb_grid) || !(fb_brute == fb_bvh)) {
      std::fprintf(stderr, "FATAL: accelerators disagree at %d objects\n",
                   objects);
      return 1;
    }
    std::printf("%10d %14.1f %14.1f %14.1f %11.2fx %11.2fx\n", objects,
                ms_brute, ms_grid, ms_bvh, ms_brute / ms_grid,
                ms_brute / ms_bvh);
  }
  std::printf("\n[verified: identical images from all three accelerators]\n");
  std::printf("the uniform grid is the paper's accelerator; the BVH is the "
              "modern baseline\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
