// Section 3 granularity trade-off: "Reducing the size of the subarea ...
// can result in better load balancing. ... At the extreme, we could assign
// each processor a single pixel to compute for the entire sequence; however,
// the overhead of message passing, as well as other bookkeeping tasks,
// would result in inefficiency and longer execution time."
//
// Sweep the frame-division block size from very small to whole-frame and
// report total time, message counts and Ethernet load on the simulated NOW.
// The expected shape is a U-curve: large blocks load-balance poorly, tiny
// blocks drown in per-task overhead and message passing.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 10 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("block-size sweep — Newton, %d frames at %dx%d, frame "
              "division + coherence,\ncluster {1.0, 0.5, 0.5}\n\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("%10s %8s %10s %10s %12s %14s %12s\n", "block", "tasks",
              "total", "speedup*", "messages", "ethernet MB", "eth busy");
  bench::print_rule(84);

  double whole_frame_time = 0.0;
  const int whole = std::max(scene.width(), scene.height());
  std::vector<int> blocks = {4, 8, 16, 40, 80, 160, whole};
  if (quick) blocks = {4, 8, 20, 40, 80, whole};

  for (const int block : blocks) {
    FarmConfig config;
    config.backend = FarmBackend::kSim;
    config.worker_speeds = bench::paper_cluster_speeds();
    config.partition.scheme = PartitionScheme::kFrameDivision;
    config.partition.block_size = block;
    const FarmResult r = render_farm(scene, config);
    if (block == whole) whole_frame_time = r.elapsed_seconds;
    const auto tasks =
        make_initial_tasks(config.partition, scene.width(), scene.height(),
                           scene.frame_count(), 3);
    char label[32];
    std::snprintf(label, sizeof(label), "%dx%d", block, block);
    std::printf("%10s %8zu %10s %10s %12lld %14.2f %12s\n", label,
                tasks.size(), bench::hms(r.elapsed_seconds).c_str(),
                whole_frame_time > 0
                    ? bench::speedup(whole_frame_time, r.elapsed_seconds).c_str()
                    : "-",
                static_cast<long long>(r.runtime.messages),
                static_cast<double>(r.runtime.bytes) / 1e6,
                bench::hms(r.metrics.gauge("sim.ethernet_busy_seconds"))
                    .c_str());
    bench::record_farm_metrics("block." + std::to_string(block) + ".",
                               r.metrics);
  }
  std::printf("\n* speedup relative to whole-frame blocks (single region "
              "spanning the image)\n");
  std::printf("expected shape: a sweet spot near the paper's 80x80; tiny "
              "blocks pay per-task\nfull-render + message overhead, "
              "whole-frame blocks can't balance 3 workers\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
