// Figure 2 reproduction: "(a) actual pixel differences between frames,
// (b) pixel differences as computed by the frame coherence algorithm".
//
// For every consecutive frame pair of both paper workloads (glass ball in
// brick room; Newton cradle) this harness reports the actually-changed
// pixel count, the coherence algorithm's predicted dirty count, the false
// negatives (must be zero — the algorithm is conservative or it is wrong)
// and the overprediction factor. It also writes the two Figure-2 mask
// images for the bouncing-ball frame pair (0, 1).
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/core/coherent_renderer.h"
#include "src/image/image_io.h"

namespace now {
namespace {

struct AccuracyTotals {
  std::int64_t actual = 0;
  std::int64_t predicted = 0;
  std::int64_t false_negatives = 0;
  int frames = 0;
};

AccuracyTotals run_scene(const char* name, const AnimatedScene& scene,
                         bool write_masks, const char* out_prefix) {
  std::printf("\n%s — %d frames at %dx%d\n", name, scene.frame_count(),
              scene.width(), scene.height());
  std::printf("frame |   actual |   predicted | false-neg | overshoot | changed%%\n");
  bench::print_rule(70);

  const PixelRect full{0, 0, scene.width(), scene.height()};
  CoherentRenderer renderer(scene, full);
  Framebuffer fb(scene.width(), scene.height());
  Framebuffer prev;
  AccuracyTotals totals;

  for (int f = 0; f < scene.frame_count(); ++f) {
    PixelMask predicted;
    if (f > 0) predicted = renderer.predict_dirty(f);
    renderer.render_frame(f, &fb);
    if (f > 0) {
      const PixelMask actual = actual_diff_mask(prev, fb);
      const std::int64_t fn = actual.minus(predicted).count();
      std::printf("%5d | %8lld | %11lld | %9lld | %8.2fx | %6.2f%%\n", f,
                  static_cast<long long>(actual.count()),
                  static_cast<long long>(predicted.count()),
                  static_cast<long long>(fn),
                  actual.count() > 0
                      ? static_cast<double>(predicted.count()) / actual.count()
                      : 0.0,
                  100.0 * actual.count() / full.area());
      totals.actual += actual.count();
      totals.predicted += predicted.count();
      totals.false_negatives += fn;
      ++totals.frames;
      if (f == 1 && write_masks) {
        char path[256];
        std::snprintf(path, sizeof(path), "%s_actual.tga", out_prefix);
        write_tga(actual.to_image(), path);
        std::snprintf(path, sizeof(path), "%s_predicted.tga", out_prefix);
        write_tga(predicted.to_image(), path);
        std::printf("      [wrote %s_{actual,predicted}.tga]\n", out_prefix);
      }
    }
    prev = fb;
  }
  std::printf("totals: actual=%lld predicted=%lld false-neg=%lld "
              "mean-overshoot=%.2fx\n",
              static_cast<long long>(totals.actual),
              static_cast<long long>(totals.predicted),
              static_cast<long long>(totals.false_negatives),
              totals.actual > 0
                  ? static_cast<double>(totals.predicted) / totals.actual
                  : 0.0);
  return totals;
}

int run(bool quick) {
  std::printf("Figure 2 — coherence-prediction accuracy\n");
  std::printf("the predicted dirty set must contain every changed pixel "
              "(false-neg == 0);\noverprediction is the price of "
              "conservative voxel-level change tracking\n");

  BounceParams bounce;
  bounce.frames = quick ? 6 : 15;
  bounce.width = quick ? 160 : 320;
  bounce.height = quick ? 120 : 240;
  const AccuracyTotals a = run_scene(
      "glass ball in brick room (paper Figure 1/2)",
      bouncing_ball_scene(bounce), true, "fig2_bounce");

  CradleParams cradle;
  cradle.frames = quick ? 8 : 20;
  cradle.width = quick ? 160 : 320;
  cradle.height = quick ? 120 : 240;
  const AccuracyTotals b = run_scene("Newton cradle (paper Section 4)",
                                     newton_cradle_scene(cradle), false, "");

  if (a.false_negatives != 0 || b.false_negatives != 0) {
    std::fprintf(stderr, "\nFATAL: coherence produced false negatives\n");
    return 1;
  }
  std::printf("\n[verified: zero false negatives on both workloads]\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
