// Section 3/5 ablation: adaptive re-splitting vs static assignment.
//
// "Each sequence can be adaptively subdivided such that a faster processor
//  can receive more work once it completes its sequence" — and the future
// work calls for "refinement of adaptive partitioning schemes".
//
// Compares static vs adaptive sequence division across heterogeneity
// levels, with coherence on and off — exposing the interplay the Table-1
// numbers hint at: adaptive stealing always helps without coherence, but
// with coherence every steal pays a full-render restart on the stolen
// range, so the benefit depends on the imbalance being large enough.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

struct Row {
  double static_time = 0.0;
  double adaptive_time = 0.0;
  std::int64_t splits = 0;
};

Row run_pair(const AnimatedScene& scene, const std::vector<double>& speeds,
             bool coherence) {
  Row row;
  for (const bool adaptive : {false, true}) {
    FarmConfig config;
    config.backend = FarmBackend::kSim;
    config.worker_speeds = speeds;
    config.coherence.enabled = coherence;
    config.partition.scheme = PartitionScheme::kSequenceDivision;
    config.partition.adaptive = adaptive;
    const FarmResult r = render_farm(scene, config);
    if (adaptive) {
      row.adaptive_time = r.elapsed_seconds;
      row.splits = r.master.adaptive_splits;
    } else {
      row.static_time = r.elapsed_seconds;
    }
  }
  return row;
}

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 12 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("adaptive vs static sequence division — Newton, %d frames\n\n",
              scene.frame_count());
  std::printf("%-26s %-10s %12s %12s %8s %8s\n", "cluster", "coherence",
              "static", "adaptive", "gain", "splits");
  bench::print_rule(82);

  const std::vector<std::pair<const char*, std::vector<double>>> mixes = {
      {"{1.0, 1.0, 1.0}", {1.0, 1.0, 1.0}},
      {"{1.0, 0.5, 0.5} (paper)", {1.0, 0.5, 0.5}},
      {"{1.0, 0.25, 0.25}", {1.0, 0.25, 0.25}},
      {"{2.0, 0.25}", {2.0, 0.25}},
  };
  for (const auto& [label, speeds] : mixes) {
    for (const bool coherence : {false, true}) {
      const Row row = run_pair(scene, speeds, coherence);
      std::printf("%-26s %-10s %12s %12s %7.2fx %8lld\n", label,
                  coherence ? "on" : "off",
                  bench::hms(row.static_time).c_str(),
                  bench::hms(row.adaptive_time).c_str(),
                  row.static_time / row.adaptive_time,
                  static_cast<long long>(row.splits));
    }
  }
  std::printf("\ngain > 1 means adaptive wins. With coherence on, small "
              "imbalances can make\nstealing counterproductive (each steal "
              "full-renders its first frame) — the\neffect that caps the "
              "paper's sequence-division speedup at 5 vs frame\n"
              "division's 7.\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
