// Section 2 comparison vs Jevans (1992): "Jevans' algorithm computes
// coherence for blocks of pixels (that is, if one pixel in the block needs
// to be updated, all pixels in the block are re-computed). Our algorithm,
// in contrast, computes coherence on a much finer level of granularity of
// individual pixels."
//
// Runs the coherent renderer with block granularities from per-pixel
// (block = 0, the paper's algorithm) up through Jevans-style blocks, and
// reports pixels recomputed, rays traced and serial virtual time. Output
// correctness is identical in every mode; only the work differs.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/par/serial.h"

namespace now {
namespace {

int run(bool quick) {
  CradleParams params;
  params.frames = quick ? 10 : 45;
  params.width = quick ? 160 : 320;
  params.height = quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);
  const std::int64_t total_pixel_frames =
      std::int64_t{scene.width()} * scene.height() * scene.frame_count();

  std::printf("per-pixel coherence (paper) vs block coherence (Jevans 1992)\n");
  std::printf("Newton, %d frames at %dx%d, serial on the reference machine\n\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("%12s %16s %10s %16s %10s %10s\n", "granularity",
              "pixels recomp.", "fraction", "rays", "total", "vs pixel");
  bench::print_rule(80);

  double pixel_time = 0.0;
  for (const int block : {0, 2, 4, 8, 16, 32, 64}) {
    CoherenceOptions options;
    options.block_size = block;
    const SerialResult r = render_serial(scene, options);
    if (block == 0) pixel_time = r.virtual_seconds;
    char label[32];
    if (block == 0) {
      std::snprintf(label, sizeof(label), "per-pixel");
    } else {
      std::snprintf(label, sizeof(label), "%dx%d", block, block);
    }
    std::printf("%12s %16s %9.2f%% %16s %10s %9.2fx\n", label,
                bench::with_commas(
                    static_cast<std::uint64_t>(r.pixels_recomputed)).c_str(),
                100.0 * static_cast<double>(r.pixels_recomputed) /
                    static_cast<double>(total_pixel_frames),
                bench::with_commas(r.stats.total_rays()).c_str(),
                bench::hms(r.virtual_seconds).c_str(),
                r.virtual_seconds / pixel_time);
  }
  std::printf("\nper-pixel granularity recomputes the least; block modes "
              "inflate every dirty\nregion to block boundaries (the paper's "
              "stated advantage over Jevans)\n");
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  const int rc = now::run(opts.quick);
  return rc != 0 ? rc : now::bench::finish_bench(opts);
}
