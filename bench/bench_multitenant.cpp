// Multi-tenant service benchmark: what does slicing the farm between many
// tenants cost, and does the weighted-fair scheduler actually deliver the
// shares it promises?
//
// Scenarios (sim backend, deterministic):
//   single — one tenant submits N short shots (the baseline: same work,
//            same task shapes, no multi-tenancy in play)
//   multi  — 50 tenants submit the same N shots, one each
//   long   — one tenant, one N×4-frame shot (informational: how much the
//            long-lived coherence state amortizes the full first-frames)
//   2:1    — two tenants with 2:1 weights contend for two workers
//
// Gates (exit code):
//   * no throughput cliff: multi-tenant elapsed <= 1.20x the single-tenant
//     baseline for identical work
//   * fairness: over the contended window of the grant log, the heavy
//     tenant's pixel-frame share is within [1.4, 3.0]x the light one's
//   * byte-identity: every shot's frames equal a solo serial render
//   * determinism: re-running the multi scenario reproduces the grant log
//     and every frame byte-for-byte
//
// --tcp-smoke runs the CI scenario instead: two tenants over loopback TCP,
// several short shots, one cancelled mid-flight; every shot that reports
// done must be byte-identical to the serial reference. Wall-clock timing
// decides whether the cancel lands before completion, so the cancelled
// shot may legitimately finish — the gate accepts either terminal phase.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"
#include "src/scene/builtin_scenes.h"
#include "src/trace/render.h"

namespace now {
namespace {

constexpr int kShotFrames = 4;

ClientAction submit_at(double t, const std::string& tenant, double weight,
                       int first, int count) {
  ClientAction a;
  a.at_seconds = t;
  a.kind = ClientActionKind::kSubmit;
  a.submit.tenant = tenant;
  a.submit.weight = weight;
  a.submit.first_frame = first;
  a.submit.frame_count = count;
  return a;
}

FarmConfig base_config(int workers) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds.assign(static_cast<std::size_t>(workers), 1.0);
  // Spatial tiles spanning each shot's whole frame range: short shots keep
  // frame coherence within the shot, the long shot amortizes further.
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  // Static tasks: adaptive shrink/steal reacts to grant order, which would
  // fold re-render cost into the tenancy-overhead comparison. With the same
  // fixed task set in every scenario, the elapsed delta is pure scheduling.
  config.partition.adaptive = false;
  config.service.enabled = true;
  return config;
}

std::vector<Framebuffer> reference_range(const AnimatedScene& scene,
                                         int first, int count,
                                         const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = first; f < first + count; ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

/// Every done shot must match the serial render of its scene range.
/// `reference` holds the solo render of the whole scene, indexed by frame.
bool shots_match_reference(const FarmResult& result,
                           const std::vector<Framebuffer>& reference,
                           const char* scenario) {
  for (const auto& shot : result.shots) {
    if (shot.summary.phase != ShotPhase::kDone) continue;
    if (shot.frames.size() != static_cast<std::size_t>(
                                  shot.summary.frame_count)) {
      std::fprintf(stderr, "%s: shot %d frame count %zu != %d\n", scenario,
                   shot.summary.shot_id, shot.frames.size(),
                   shot.summary.frame_count);
      return false;
    }
    for (std::size_t f = 0; f < shot.frames.size(); ++f) {
      const std::size_t scene_frame =
          static_cast<std::size_t>(shot.summary.scene_first_frame) + f;
      if (scene_frame >= reference.size() ||
          !(shot.frames[f] == reference[scene_frame])) {
        std::fprintf(stderr, "%s: shot %d frame %zu differs from solo\n",
                     scenario, shot.summary.shot_id, f);
        return false;
      }
    }
  }
  return true;
}

/// Heavy/light pixel-frame unit ratio over the contended prefix of the
/// grant log (up to the last grant of whichever tenant drains first).
double contended_ratio(const FarmResult& result, const std::string& heavy,
                       const std::string& light) {
  int heavy_id = -1;
  int light_id = -1;
  for (int t = 0; t < static_cast<int>(result.tenants.size()); ++t) {
    if (result.tenants[t].name == heavy) heavy_id = t;
    if (result.tenants[t].name == light) light_id = t;
  }
  if (heavy_id < 0 || light_id < 0) return 0.0;
  int last_heavy = -1;
  int last_light = -1;
  for (int i = 0; i < static_cast<int>(result.assignment_log.size()); ++i) {
    if (result.assignment_log[i].tenant == heavy_id) last_heavy = i;
    if (result.assignment_log[i].tenant == light_id) last_light = i;
  }
  const int window_end = std::min(last_heavy, last_light);
  double heavy_units = 0.0;
  double light_units = 0.0;
  for (int i = 0; i <= window_end; ++i) {
    const ServiceAssignment& grant = result.assignment_log[i];
    if (grant.tenant == heavy_id) heavy_units += grant.units;
    if (grant.tenant == light_id) light_units += grant.units;
  }
  return light_units > 0.0 ? heavy_units / light_units : 0.0;
}

int run_tcp_smoke() {
  // Big enough that the run takes a couple of wall seconds on two workers:
  // the mid-flight cancel below must have something to interrupt.
  const AnimatedScene scene = orbit_scene(6, 8, 128, 96);
  FarmConfig config;
  config.backend = FarmBackend::kTcp;
  config.workers = 2;
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  config.service.enabled = true;
  ClientScript a, b;
  for (int i = 0; i < 3; ++i) {
    a.actions.push_back(submit_at(0.0, "alpha", 2.0, 0, kShotFrames));
    b.actions.push_back(submit_at(0.0, "beta", 1.0, 0, kShotFrames));
  }
  ClientAction cancel;
  cancel.at_seconds = 0.05;  // wall clock: may race completion (idempotent)
  cancel.kind = ClientActionKind::kCancel;
  cancel.submit_index = 2;
  b.actions.push_back(cancel);
  config.service.clients.push_back(a);
  config.service.clients.push_back(b);

  const FarmResult result = render_farm(scene, config);
  const auto reference =
      reference_range(scene, 0, kShotFrames, config.coherence.trace);

  int done = 0;
  int cancelled = 0;
  for (const auto& shot : result.shots) {
    if (shot.summary.phase == ShotPhase::kDone) ++done;
    if (shot.summary.phase == ShotPhase::kCancelled) ++cancelled;
  }
  std::printf("tcp smoke: %zu shots admitted, %d done, %d cancelled\n",
              result.shots.size(), done, cancelled);
  bool ok = true;
  if (result.shots.size() != 6) {
    std::fprintf(stderr, "tcp smoke: expected 6 admitted shots\n");
    ok = false;
  }
  if (done + cancelled != static_cast<int>(result.shots.size())) {
    std::fprintf(stderr, "tcp smoke: shot left non-terminal\n");
    ok = false;
  }
  if (done < 5) {  // at most the cancel target may be missing
    std::fprintf(stderr, "tcp smoke: too few completed shots\n");
    ok = false;
  }
  if (!shots_match_reference(result, reference, "tcp")) ok = false;

  MetricsRegistry& reg = bench::bench_registry();
  reg.gauge("multitenant.tcp.shots_done").set(done);
  reg.gauge("multitenant.tcp.shots_cancelled").set(cancelled);
  reg.gauge("multitenant.tcp.elapsed_seconds").set(result.elapsed_seconds);
  reg.gauge("multitenant.tcp.fairness_ratio")
      .set(contended_ratio(result, "alpha", "beta"));
  for (const TenantSummary& t : result.tenants) {
    reg.gauge("multitenant.tcp.tenant." + t.name + ".units")
        .set(static_cast<double>(t.units_assigned));
    reg.gauge("multitenant.tcp.tenant." + t.name + ".frames")
        .set(static_cast<double>(t.frames_committed));
  }
  std::printf("tcp smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int run(const bench::BenchOptions& opts) {
  const int shots = opts.quick ? 12 : 50;
  const int workers = opts.quick ? 4 : 8;
  const AnimatedScene scene =
      orbit_scene(3, shots * kShotFrames, opts.quick ? 48 : 64,
                  opts.quick ? 36 : 48);
  const double pixel_frames = static_cast<double>(scene.width()) *
                              scene.height() * shots * kShotFrames;

  std::printf("multi-tenant service — %d shots x %d frames at %dx%d, "
              "%d sim workers\n\n",
              shots, kShotFrames, scene.width(), scene.height(), workers);

  // Baseline: the same shots, one tenant. Identical task shapes, so the
  // delta to the multi-tenant run is pure tenancy overhead.
  FarmConfig single = base_config(workers);
  ClientScript solo_script;
  for (int i = 0; i < shots; ++i) {
    solo_script.actions.push_back(
        submit_at(0.0, "solo", 1.0, i * kShotFrames, kShotFrames));
  }
  single.service.clients.push_back(solo_script);
  const FarmResult single_result = render_farm(scene, single);

  // 50 tenants, one shot each — each its own segment of the animation —
  // split over two client ranks.
  FarmConfig multi = base_config(workers);
  ClientScript c0, c1;
  for (int i = 0; i < shots; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "t%02d", i);
    (i % 2 == 0 ? c0 : c1).actions.push_back(
        submit_at(0.0, name, 1.0, i * kShotFrames, kShotFrames));
  }
  multi.service.clients.push_back(c0);
  multi.service.clients.push_back(c1);
  const FarmResult multi_result = render_farm(scene, multi);

  // One long shot with the same total pixel-frames.
  FarmConfig longshot = base_config(workers);
  ClientScript long_script;
  long_script.actions.push_back(
      submit_at(0.0, "epic", 1.0, 0, shots * kShotFrames));
  longshot.service.clients.push_back(long_script);
  const FarmResult long_result = render_farm(scene, longshot);

  std::printf("%10s %12s %14s %10s\n", "scenario", "elapsed", "pixfr/s",
              "tenants");
  bench::print_rule(52);
  const auto row = [&](const char* name, const FarmResult& r) {
    std::printf("%10s %12s %14.0f %10zu\n", name,
                bench::hms(r.elapsed_seconds).c_str(),
                pixel_frames / r.elapsed_seconds, r.tenants.size());
  };
  row("single", single_result);
  row("multi", multi_result);
  row("long", long_result);
  std::printf("\n");

  bool ok = true;

  // Gate: no throughput cliff from multi-tenancy.
  const double cliff = multi_result.elapsed_seconds /
                       single_result.elapsed_seconds;
  std::printf("multi/single elapsed ratio: %.3f (gate <= 1.20)\n", cliff);
  if (cliff > 1.20) {
    std::fprintf(stderr, "FAIL: multi-tenant throughput cliff\n");
    ok = false;
  }

  // Gate: byte-identity of every shot against the serial reference.
  const auto reference =
      reference_range(scene, 0, shots * kShotFrames, multi.coherence.trace);
  const bool identity =
      shots_match_reference(single_result, reference, "single") &&
      shots_match_reference(multi_result, reference, "multi");
  std::printf("byte-identity vs solo render: %s\n",
              identity ? "ok" : "FAILED");
  if (!identity) ok = false;

  // Gate: 2:1 weights over two contended workers.
  FarmConfig weighted = base_config(2);
  ClientScript heavy, light;
  for (int i = 0; i < 6; ++i) {
    heavy.actions.push_back(submit_at(0.0, "heavy", 2.0, 0, kShotFrames));
    light.actions.push_back(submit_at(0.0, "light", 1.0, 0, kShotFrames));
  }
  weighted.service.clients.push_back(heavy);
  weighted.service.clients.push_back(light);
  const FarmResult weighted_result = render_farm(scene, weighted);
  const double ratio = contended_ratio(weighted_result, "heavy", "light");
  std::printf("2:1 contended-window unit ratio: %.2f (gate 1.4 - 3.0)\n",
              ratio);
  if (ratio < 1.4 || ratio > 3.0) {
    std::fprintf(stderr, "FAIL: weighted-fair share out of tolerance\n");
    ok = false;
  }

  // Gate: determinism — the multi scenario replays grant-for-grant.
  const FarmResult rerun = render_farm(scene, multi);
  bool same = rerun.elapsed_seconds == multi_result.elapsed_seconds &&
              rerun.assignment_log.size() == multi_result.assignment_log.size();
  for (std::size_t i = 0; same && i < rerun.assignment_log.size(); ++i) {
    same = rerun.assignment_log[i].tenant ==
               multi_result.assignment_log[i].tenant &&
           rerun.assignment_log[i].shot_id ==
               multi_result.assignment_log[i].shot_id &&
           rerun.assignment_log[i].units ==
               multi_result.assignment_log[i].units;
  }
  for (std::size_t s = 0; same && s < rerun.shots.size(); ++s) {
    same = rerun.shots[s].frames == multi_result.shots[s].frames;
  }
  std::printf("sim determinism (rerun): %s\n", same ? "ok" : "FAILED");
  if (!same) ok = false;

  MetricsRegistry& reg = bench::bench_registry();
  reg.gauge("multitenant.single.elapsed_seconds")
      .set(single_result.elapsed_seconds);
  reg.gauge("multitenant.multi.elapsed_seconds")
      .set(multi_result.elapsed_seconds);
  reg.gauge("multitenant.long.elapsed_seconds")
      .set(long_result.elapsed_seconds);
  reg.gauge("multitenant.cliff_ratio").set(cliff);
  reg.gauge("multitenant.fairness_ratio").set(ratio);
  reg.gauge("multitenant.multi.grants")
      .set(static_cast<double>(multi_result.assignment_log.size()));
  reg.gauge("multitenant.multi.preemptions")
      .set(static_cast<double>(multi_result.master.preemptions));

  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts =
      now::bench::parse_bench_options(argc, argv);
  bool tcp_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tcp-smoke") == 0) tcp_smoke = true;
  }
  const int rc = tcp_smoke ? now::run_tcp_smoke() : now::run(opts);
  const int finish = now::bench::finish_bench(opts);
  return rc != 0 ? rc : finish;
}
