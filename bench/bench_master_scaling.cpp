// The sharded-master scaling experiment: how much traffic does the central
// coordinator absorb as the farm grows, and does splitting the framebuffer
// into shards (--shards N) actually remove the master-bytes bottleneck?
//
// Sweep: 16–64 sim workers × shards {1, 2, 4, 8}. For each cell we report
// wall-in-sim frames/sec and the scheduler's inbound byte rate — with one
// master that rate carries every pixel of the animation; with shards it
// carries only fixed-size commit digests.
//
// Gate (exit code): at shards=4 the scheduler's inbound bytes must be
// independent of pixel volume — rendering 4× the pixels must not raise
// them appreciably — while the single-master configuration demonstrably
// scales with pixels. This is the acceptance criterion of the subsystem:
// scheduler load proportional to results, not resolution.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/par/render_farm.h"

namespace now {
namespace {

struct Cell {
  double elapsed = 0.0;
  double frames_per_sec = 0.0;
  std::uint64_t sched_bytes = 0;        // scheduler-inbound frame + digests
  std::uint64_t sched_pixel_bytes = 0;  // frame payloads landing at rank 0
  std::uint64_t shard_pixel_bytes = 0;  // frame payloads landing at shards
};

Cell run_cell(const AnimatedScene& scene, int workers, int shards) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds.assign(static_cast<std::size_t>(workers), 1.0);
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.shards = shards;
  const FarmResult result = render_farm(scene, config);

  Cell cell;
  cell.elapsed = result.elapsed_seconds;
  cell.frames_per_sec = scene.frame_count() / result.elapsed_seconds;
  cell.sched_pixel_bytes = result.metrics.counter("endpoint.0.frame_bytes");
  cell.sched_bytes = cell.sched_pixel_bytes +
                     result.metrics.counter("endpoint.0.digest_bytes");
  ShardMap map;
  map.shard_count = shards;
  map.worker_count = workers;
  map.frame_count = scene.frame_count();
  for (int s = 0; s < shards && map.sharded(); ++s) {
    cell.shard_pixel_bytes += result.metrics.counter(
        "endpoint." + std::to_string(map.rank_of_shard(s)) + ".frame_bytes");
  }
  return cell;
}

int run(const bench::BenchOptions& opts) {
  CradleParams params;
  params.frames = opts.quick ? 16 : 45;
  params.width = opts.quick ? 160 : 320;
  params.height = opts.quick ? 120 : 240;
  const AnimatedScene scene = newton_cradle_scene(params);

  std::printf("master scaling — Newton, %d frames at %dx%d, sim backend\n\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("%8s %7s %12s %12s %16s %14s\n", "workers", "shards",
              "elapsed", "frames/s", "sched bytes", "sched KB/s");
  bench::print_rule(76);

  const std::vector<int> worker_counts =
      opts.quick ? std::vector<int>{8, 16} : std::vector<int>{16, 32, 64};
  for (const int workers : worker_counts) {
    for (const int shards : {1, 2, 4, 8}) {
      const Cell cell = run_cell(scene, workers, shards);
      std::printf("%8d %7d %12s %12.2f %16s %14.1f\n", workers, shards,
                  bench::hms(cell.elapsed).c_str(), cell.frames_per_sec,
                  bench::with_commas(cell.sched_bytes).c_str(),
                  static_cast<double>(cell.sched_bytes) / cell.elapsed /
                      1024.0);
      const std::string prefix = "master_scaling.w" + std::to_string(workers) +
                                 ".s" + std::to_string(shards) + ".";
      bench::bench_registry()
          .counter(prefix + "sched_bytes")
          .inc(cell.sched_bytes);
      bench::bench_registry()
          .gauge(prefix + "frames_per_sec")
          .set(cell.frames_per_sec);
    }
    std::printf("\n");
  }

  // The gate: quadruple the pixel volume (2× each dimension) at fixed
  // worker count and compare scheduler-inbound bytes. Digests have no
  // pixels in them, so the sharded scheduler must be flat; the single
  // master carries the framebuffer and must scale.
  CradleParams small = params;
  small.width = params.width / 2;
  small.height = params.height / 2;
  const AnimatedScene small_scene = newton_cradle_scene(small);
  const int gate_workers = opts.quick ? 8 : 16;

  const Cell single_small = run_cell(small_scene, gate_workers, 1);
  const Cell single_large = run_cell(scene, gate_workers, 1);
  const Cell shard_small = run_cell(small_scene, gate_workers, 4);
  const Cell shard_large = run_cell(scene, gate_workers, 4);

  const double single_ratio = static_cast<double>(single_large.sched_bytes) /
                              static_cast<double>(single_small.sched_bytes);
  const double shard_ratio = static_cast<double>(shard_large.sched_bytes) /
                             static_cast<double>(shard_small.sched_bytes);
  std::printf("pixel-volume gate (%d workers, %dx%d -> %dx%d = 4x pixels)\n",
              gate_workers, small.width, small.height, params.width,
              params.height);
  std::printf("  shards=1 scheduler bytes: %s -> %s  (x%.2f, pixel-bound)\n",
              bench::with_commas(single_small.sched_bytes).c_str(),
              bench::with_commas(single_large.sched_bytes).c_str(),
              single_ratio);
  std::printf("  shards=4 scheduler bytes: %s -> %s  (x%.2f, digest-bound)\n",
              bench::with_commas(shard_small.sched_bytes).c_str(),
              bench::with_commas(shard_large.sched_bytes).c_str(),
              shard_ratio);
  std::printf("  shards=4 pixel bytes rerouted to shards: %s "
              "(at scheduler: %s)\n",
              bench::with_commas(shard_large.shard_pixel_bytes).c_str(),
              bench::with_commas(shard_large.sched_pixel_bytes).c_str());
  bench::bench_registry()
      .gauge("master_scaling.gate.single_ratio")
      .set(single_ratio);
  bench::bench_registry()
      .gauge("master_scaling.gate.shard_ratio")
      .set(shard_ratio);

  // Flat means "within scheduling noise": the digest count varies only with
  // task/result counts (identical here), so 1.25 is generous. The single
  // master must visibly scale toward the 4x pixel factor.
  const bool sharded_flat = shard_ratio < 1.25;
  const bool single_scales = single_ratio > 2.0;
  const bool no_pixels_at_scheduler =
      shard_large.sched_pixel_bytes == 0 && shard_large.shard_pixel_bytes > 0;
  std::printf("\ngate: sharded flat (x%.2f < 1.25): %s;  single master "
              "pixel-bound (x%.2f > 2.0): %s;  zero pixel bytes at "
              "scheduler: %s\n",
              shard_ratio, sharded_flat ? "PASS" : "FAIL", single_ratio,
              single_scales ? "PASS" : "FAIL",
              no_pixels_at_scheduler ? "PASS" : "FAIL");
  if (!sharded_flat || !single_scales || !no_pixels_at_scheduler) return 1;
  return 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  const now::bench::BenchOptions opts = now::bench::parse_bench_options(argc,
                                                                        argv);
  const int rc = now::run(opts);
  const int finish = now::bench::finish_bench(opts);
  return rc != 0 ? rc : finish;
}
