// The paper's Figure 1 / Figure 2 demonstration: a glass ball bouncing
// around a brick room.
//
// Writes, for the first two frames (and optionally every consecutive pair):
//   bounce_frame0.tga / bounce_frame1.tga   — Figure 1 (a), (b)
//   bounce_actual_diff.tga                  — Figure 2 (a): pixels that
//                                             actually changed
//   bounce_predicted_diff.tga               — Figure 2 (b): pixels the frame
//                                             coherence algorithm recomputes
// and prints the per-frame accuracy table (the predicted set must cover the
// actual set; the overshoot is the algorithm's conservatism).
//
//   $ ./bouncing_ball [--frames N] [--out DIR]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/coherent_renderer.h"
#include "src/image/image_io.h"
#include "src/scene/builtin_scenes.h"

using namespace now;

int main(int argc, char** argv) {
  int frames = 12;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) frames = std::atoi(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out_dir = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--frames N] [--out DIR]\n", argv[0]);
      return 2;
    }
  }

  BounceParams params;
  params.frames = frames;
  const AnimatedScene scene = bouncing_ball_scene(params);

  const PixelRect full{0, 0, scene.width(), scene.height()};
  CoherentRenderer renderer(scene, full);
  Framebuffer fb(scene.width(), scene.height());
  Framebuffer prev;

  std::printf("frame | actually changed | predicted dirty | false-neg | overshoot\n");
  std::printf("------+------------------+-----------------+-----------+----------\n");

  for (int f = 0; f < scene.frame_count(); ++f) {
    PixelMask predicted;
    if (f > 0) predicted = renderer.predict_dirty(f);
    renderer.render_frame(f, &fb);

    char name[256];
    if (f <= 1) {
      std::snprintf(name, sizeof(name), "%s/bounce_frame%d.tga",
                    out_dir.c_str(), f);
      write_tga(fb, name);
    }
    if (f > 0) {
      const PixelMask actual = actual_diff_mask(prev, fb);
      const std::int64_t false_neg = actual.minus(predicted).count();
      std::printf("%5d | %10lld px    | %9lld px    | %9lld | %8.2fx\n", f,
                  static_cast<long long>(actual.count()),
                  static_cast<long long>(predicted.count()),
                  static_cast<long long>(false_neg),
                  actual.count() > 0
                      ? static_cast<double>(predicted.count()) /
                            static_cast<double>(actual.count())
                      : 0.0);
      if (f == 1) {
        std::snprintf(name, sizeof(name), "%s/bounce_actual_diff.tga",
                      out_dir.c_str());
        write_tga(actual.to_image(), name);
        std::snprintf(name, sizeof(name), "%s/bounce_predicted_diff.tga",
                      out_dir.c_str());
        write_tga(predicted.to_image(), name);
      }
      if (false_neg != 0) {
        std::fprintf(stderr, "coherence violation at frame %d!\n", f);
        return 1;
      }
    }
    prev = fb;
  }
  std::printf("\nimages written to %s/bounce_*.tga\n", out_dir.c_str());
  std::printf("zero false negatives: every changed pixel was predicted\n");
  return 0;
}
