// Render the paper's Newton-cradle animation on a simulated network of
// workstations, exactly as in Section 4 — and write every frame (including
// frame 22, the paper's Figure 5) as a 24-bit targa.
//
//   $ ./newton_animation [--scheme seq|frame|hybrid] [--workers N]
//                        [--no-coherence] [--frames N] [--out DIR]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

using namespace now;

int main(int argc, char** argv) {
  PartitionScheme scheme = PartitionScheme::kFrameDivision;
  int workers = 3;
  bool coherence = true;
  int frames = 45;
  std::string out_dir = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scheme" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "seq") scheme = PartitionScheme::kSequenceDivision;
      else if (v == "frame") scheme = PartitionScheme::kFrameDivision;
      else if (v == "hybrid") scheme = PartitionScheme::kHybrid;
      else { std::fprintf(stderr, "unknown scheme '%s'\n", v.c_str()); return 2; }
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--no-coherence") {
      coherence = false;
    } else if (arg == "--frames" && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scheme seq|frame|hybrid] [--workers N] "
                   "[--no-coherence] [--frames N] [--out DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  CradleParams params;
  params.frames = frames;
  const AnimatedScene scene = newton_cradle_scene(params);

  FarmConfig config;
  config.backend = FarmBackend::kSim;
  // The paper's cluster: a 200 MHz Indigo2 plus 100 MHz machines.
  config.worker_speeds.assign(static_cast<std::size_t>(workers), 0.5);
  if (workers >= 1) config.worker_speeds[0] = 1.0;
  config.partition.scheme = scheme;
  config.partition.block_size = 80;
  config.coherence.enabled = coherence;
  config.output_dir = out_dir;
  config.output_prefix = "newton";

  std::printf("rendering %d frames of the Newton cradle at %dx%d\n",
              scene.frame_count(), scene.width(), scene.height());
  std::printf("scheme=%s workers=%d coherence=%s\n", to_string(scheme),
              workers, coherence ? "on" : "off");

  const FarmResult result = render_farm(scene, config);

  std::printf("\nvirtual cluster time: %s\n",
              format_hms(result.elapsed_seconds).c_str());
  std::printf("rays traced: %llu   pixels recomputed: %lld\n",
              static_cast<unsigned long long>(result.master.rays_total),
              static_cast<long long>(result.master.pixels_recomputed_total));
  std::printf("adaptive splits: %lld   messages: %lld (%.2f MB)\n",
              static_cast<long long>(result.master.adaptive_splits),
              static_cast<long long>(result.runtime.messages),
              static_cast<double>(result.runtime.bytes) / 1e6);
  std::printf("per-worker region-frames:");
  for (std::size_t w = 1; w < result.master.frames_by_worker.size(); ++w) {
    std::printf(" w%zu=%lld", w,
                static_cast<long long>(result.master.frames_by_worker[w]));
  }
  std::printf("\nframes written to %s/newton_NNNN.tga", out_dir.c_str());
  if (scene.frame_count() > 22) {
    std::printf("  (newton_0022.tga is the paper's Figure 5)");
  }
  std::printf("\n");
  return 0;
}
