// Quickstart: build a small animated scene with the public API, render it
// twice — once from scratch every frame, once with the frame-coherence
// algorithm — verify the outputs are identical, and report the savings.
//
//   $ ./quickstart [output_dir]
#include <cstdio>
#include <memory>

#include "src/core/coherent_renderer.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/image/image_io.h"
#include "src/scene/animated_scene.h"

using namespace now;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. Describe the animation: a red ball sliding over a checker floor.
  AnimatedScene scene;
  scene.set_resolution(320, 240);
  scene.set_frames(24, 12.0);  // 2 seconds at 12 fps
  scene.set_background({0.06, 0.06, 0.1});
  scene.set_camera(Camera{{0, 2.2, 6}, {0, 1, 0}, {0, 1, 0}, 40.0, 320.0 / 240.0});

  Material red = Material::matte({0.85, 0.12, 0.1});
  red.reflectivity = 0.2;
  const int red_id = scene.add_material(red);
  const int floor_id = scene.add_material(Material::textured(
      std::make_shared<CheckerTexture>(Color::gray(0.65), Color::gray(0.25), 0.7)));

  Spline path(InterpMode::kCatmullRom);
  path.add_key(0.0, {-2.0, 0, 0});
  path.add_key(1.0, {0.0, 0.8, 0});
  path.add_key(2.0, {2.0, 0, 0});
  scene.add_object("ball", std::make_unique<Sphere>(Vec3{0, 1.0, 0}, 0.6),
                   red_id, std::make_unique<KeyframeAnimator>(std::move(path)));
  scene.add_object("floor", std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0),
                   floor_id);
  scene.add_light(Light::point({3, 5, 4}, Color::white(), 0.9));

  // 2. Render with frame coherence (and a plain renderer as reference).
  CoherenceOptions with_fc;               // defaults: coherence on, depth 5
  CoherenceOptions without_fc;
  without_fc.enabled = false;

  const PixelRect full{0, 0, scene.width(), scene.height()};
  CoherentRenderer coherent(scene, full, with_fc);
  CoherentRenderer plain(scene, full, without_fc);

  Framebuffer frame(scene.width(), scene.height());
  Framebuffer reference(scene.width(), scene.height());
  std::uint64_t rays_fc = 0, rays_plain = 0;
  std::int64_t recomputed = 0;

  for (int f = 0; f < scene.frame_count(); ++f) {
    const FrameRenderResult r = coherent.render_frame(f, &frame);
    const FrameRenderResult ref = plain.render_frame(f, &reference);
    rays_fc += r.stats.total_rays();
    rays_plain += ref.stats.total_rays();
    recomputed += r.pixels_recomputed;

    if (!(frame == reference)) {
      std::fprintf(stderr, "frame %d differs from reference!\n", f);
      return 1;
    }
    char name[256];
    std::snprintf(name, sizeof(name), "%s/quickstart_%03d.tga",
                  out_dir.c_str(), f);
    write_tga(frame, name);
  }

  // 3. Report.
  const std::int64_t total_pixels =
      std::int64_t{scene.width()} * scene.height() * scene.frame_count();
  std::printf("rendered %d frames at %dx%d into %s\n", scene.frame_count(),
              scene.width(), scene.height(), out_dir.c_str());
  std::printf("frame coherence recomputed %lld of %lld pixels (%.1f%%)\n",
              static_cast<long long>(recomputed),
              static_cast<long long>(total_pixels),
              100.0 * static_cast<double>(recomputed) /
                  static_cast<double>(total_pixels));
  std::printf("rays: %llu with coherence vs %llu without (%.2fx fewer)\n",
              static_cast<unsigned long long>(rays_fc),
              static_cast<unsigned long long>(rays_plain),
              static_cast<double>(rays_plain) / static_cast<double>(rays_fc));
  std::printf("all frames byte-identical to the non-coherent reference\n");
  return 0;
}
